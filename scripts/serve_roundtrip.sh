#!/usr/bin/env bash
# End-to-end crash/repair drill of the sharded `rted serve` service
# through the real binary and its authenticated TCP front-end, with the
# corpus striped over THREE shards:
#
#   1. start a durable 3-shard service on a TCP listener (port 0 = auto)
#      gated by a shared-secret auth token; reject a bad token;
#   2. build the corpus over TCP inserts (global ids stripe across the
#      shard files), then assert the shard layout through `status`;
#   3. drive one exactly-counted query sequence and require the
#      per-shard counters (`serve_shard{K}_queries_total`) and the
#      `serve_scatter_fanout` histogram to match it to the count;
#   4. check batched diff (`pairs`) answers the same scripts as the
#      equivalent single diffs, one workspace amortized;
#   5. hammer the service with concurrent TCP clients (range / topk /
#      join / distance), all answered without error;
#   6. record reference answers, then `kill -9` the server MID-UPDATE
#      (a client is streaming inserts when it dies) and tear two shard
#      files' tails for good measure;
#   7. `--strict` startup must refuse the damage; default repair mode
#      must recover every shard, report what it dropped, and — after
#      clearing the partially-applied crash-window inserts — answer the
#      reference queries byte-identically over TCP;
#   8. threshold-driven background compaction must clear every shard's
#      tombstone backlog (3 files -> 3 single-segment files).
#
# Usage: scripts/serve_roundtrip.sh [path-to-rted-binary]
set -euo pipefail

RTED=${1:-target/release/rted}
if [[ ! -x "$RTED" ]]; then
    echo "rted binary not found at $RTED (build with: cargo build --release)" >&2
    exit 1
fi
WORK=$(mktemp -d)
SERVER_PID=""
cleanup() {
    [[ -n "$SERVER_PID" ]] && kill "$SERVER_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "serve-roundtrip FAILED: $*" >&2; exit 1; }

TOKEN="drill-secret-$$"
ADDR=""
STARTS=0

start_server() { # args: extra flags...; sets ADDR from the bound port
    STARTS=$((STARTS + 1))
    LOG="$WORK/serve.$STARTS.log"
    "$RTED" serve --index "$WORK/corpus.idx" --shards 3 \
        --tcp 127.0.0.1:0 --auth-token "$TOKEN" --timeout-ms 10000 "$@" \
        2> "$LOG" &
    SERVER_PID=$!
    ADDR=""
    for _ in $(seq 1 100); do
        ADDR=$(sed -n 's/.*listening on tcp \([0-9.:]*\).*/\1/p' "$LOG" | tail -1)
        [[ -n "$ADDR" ]] && return 0
        kill -0 "$SERVER_PID" 2>/dev/null || fail "server died on startup: $(tail -2 "$LOG")"
        sleep 0.1
    done
    fail "server never reported its TCP address"
}

stop_server() {
    echo '{"op":"shutdown"}' | q > /dev/null
    wait "$SERVER_PID" || fail "server exited nonzero"
    SERVER_PID=""
}

# The drill's client: auth token through the environment on purpose, so
# both the flag (server side) and the env var (client side) are covered.
q() { RTED_AUTH_TOKEN="$TOKEN" "$RTED" query --tcp "$ADDR"; }

# --- 1. Fresh 3-shard service over authenticated TCP --------------------
start_server --workers 3
[[ -f "$WORK/corpus.idx" ]] || fail "shard 0 file not created"
grep -q "auth required" "$LOG" || fail "server did not report auth gating"

# A wrong token gets exactly one error line, then the connection drops.
# Raw TCP client (bash /dev/tcp): send ONLY the bad token so the close
# is clean — a pipelined request after it can race the drop into an RST.
exec 3<>"/dev/tcp/${ADDR%:*}/${ADDR##*:}"
printf 'wrong-%s\n' "$TOKEN" >&3
bad=$(cat <&3 || true)
exec 3>&- 3<&-
echo "$bad" | grep -q '"ok":false,"error":"authentication failed"' \
    || fail "bad token not rejected: $bad"

# --- 2. Build the corpus over TCP: ids stripe across 3 shard files ------
shapes=(lb rb fb zz mx random)
for i in $(seq 0 29); do
    tree=$("$RTED" generate "${shapes[$((i % 6))]}" $((8 + i % 17)) --seed "$i")
    echo "{\"op\":\"insert\",\"trees\":[\"$tree\"]}"
done | q > "$WORK/insert.out"
[[ $(grep -c '"ok":true' "$WORK/insert.out") -eq 30 ]] || fail "inserts failed: $(grep -m1 '"ok":false' "$WORK/insert.out")"
sed -n 1p "$WORK/insert.out" | grep -q '"ids":\[0\]' || fail "first insert id wrong"
sed -n 30p "$WORK/insert.out" | grep -q '"ids":\[29\]' || fail "last insert id wrong"
[[ -f "$WORK/corpus.idx.shard1" && -f "$WORK/corpus.idx.shard2" ]] || fail "shard files not created"

status=$(echo '{"op":"status"}' | q)
echo "$status" | grep -q '"shards":3' || fail "status shards wrong: $status"
echo "$status" | grep -q '"live":30' || fail "status live wrong: $status"
echo "$status" | grep -q '"shard_live":\[10,10,10\]' || fail "ids did not stripe evenly: $status"
echo "$status" | grep -q "\"tcp\":\"$ADDR\"" || fail "status must surface the TCP address: $status"
echo "$status" | grep -q '"ops":\["range","topk","distance","insert","remove","status","compact","metrics","diff","join","explain","shutdown"\]' \
    || fail "status must list supported ops incl. join and explain: $status"

# --- 3. Exactly-counted scatter traffic vs per-shard telemetry ----------
# 2 range + 1 topk + 1 join = 4 scatter ops, every one fanning out to all
# 3 shards (fanout histogram count 4). Per-shard legs: 4 scatter legs
# each, plus the join's cross-shard legs recorded on the lower shard
# (0-1, 0-2 -> shard0 +2; 1-2 -> shard1 +1), plus routed ops: distance
# 0,1 (+1 on shards 0 and 1), diff 0,2 (+1 on shards 0 and 2), batched
# diff [[0,1],[2,4]] (left shards: +1 on shards 0 and 2).
# Totals: shard0 = 4+2+1+1+1 = 9, shard1 = 4+1+1 = 6, shard2 = 4+1+1 = 6.
QUERY=$("$RTED" generate mx 14 --seed 99)
{
    echo "{\"op\":\"range\",\"tree\":\"$QUERY\",\"tau\":5}"
    echo "{\"op\":\"range\",\"tree\":\"$QUERY\",\"tau\":9}"
    echo "{\"op\":\"topk\",\"tree\":\"$QUERY\",\"k\":6}"
    echo '{"op":"join","tau":6}'
    echo '{"op":"distance","left":0,"right":1}'
    echo '{"op":"diff","left":0,"right":2}'
    echo '{"op":"diff","pairs":[[0,1],[2,4]]}'
} | q > "$WORK/counted.out"
grep -q '"ok":false' "$WORK/counted.out" && fail "counted sequence errored: $(grep -m1 '"ok":false' "$WORK/counted.out")"
metrics=$(echo '{"op":"metrics","format":"json"}' | q)
echo "$metrics" | grep -q '"serve_scatter_fanout":{"count":4,"sum":12,"p50":3,"p95":3,"p99":3,"max":3}' \
    || fail "metrics: expected 4 scatter ops fanning out to 3 shards: $metrics"
echo "$metrics" | grep -q '"serve_shard0_queries_total":9' || fail "metrics: shard0 legs wrong: $metrics"
echo "$metrics" | grep -q '"serve_shard1_queries_total":6' || fail "metrics: shard1 legs wrong: $metrics"
echo "$metrics" | grep -q '"serve_shard2_queries_total":6' || fail "metrics: shard2 legs wrong: $metrics"
echo "$metrics" | grep -q '"serve_latency_join_ns":{"count":1,' || fail "metrics: expected 1 join request: $metrics"
echo "$metrics" | grep -q '"serve_latency_diff_ns":{"count":2,' || fail "metrics: expected 2 diff requests (single + batch): $metrics"
# The batch counts each extracted pair in the index totals: 1 single + 2.
echo "$metrics" | grep -q '"index_diff_calls_total":3' || fail "metrics: expected 3 extracted scripts: $metrics"
# The scrape client renders the same counters as a Prometheus exposition.
RTED_AUTH_TOKEN="$TOKEN" "$RTED" metrics --tcp "$ADDR" > "$WORK/metrics.prom"
grep -q '^serve_shard0_queries_total 9$' "$WORK/metrics.prom" || fail "exposition shard0 count wrong: $(grep shard0 "$WORK/metrics.prom")"
grep -q '^serve_scatter_fanout_count 4$' "$WORK/metrics.prom" || fail "exposition fanout count wrong: $(grep fanout "$WORK/metrics.prom")"

# --- 3b. Planner decision record over the wire --------------------------
# The adaptive planner is on by default; `explain` answers its decision
# record for a hypothetical query (tau present = budgeted) and the
# plan counters surface what it chose for the traffic above.
plan=$(echo '{"op":"explain","tau":6}' | q)
echo "$plan" | grep -q '"ok":true,"plan":{"candidate_gen":"' || fail "explain did not answer a plan: $plan"
echo "$plan" | grep -q '"budgeted":true' || fail "a tau explain must plan a budgeted query: $plan"
echo "$plan" | grep -q '"stage_order":\["size"' || fail "plan must lead with the size stage: $plan"
echo '{"op":"explain"}' | q | grep -q '"budgeted":false' \
    || fail "a tau-less explain must plan an unbudgeted query"
metrics=$(echo '{"op":"metrics","format":"json"}' | q)
echo "$metrics" | grep -q '"serve_latency_explain_ns":{"count":2,' || fail "metrics: expected 2 explain requests: $metrics"
echo "$metrics" | grep -q '"index_plan_linear_total":[1-9]' || fail "metrics: no planned queries recorded: $metrics"
echo "$metrics" | grep -qE '"index_plan_(zs|bounded|rted)_pairs_total":[1-9]' \
    || fail "metrics: the planned verifier dispatched no pairs: $metrics"

# --- 4. Batched diff answers the same scripts as single diffs -----------
single1=$(echo '{"op":"diff","left":0,"right":1}' | q)
single2=$(echo '{"op":"diff","left":2,"right":4}' | q)
batch=$(echo '{"op":"diff","pairs":[[0,1],[2,4]]}' | q)
body1=${single1#'{"ok":true,'}; body1=${body1%'}'}
body2=${single2#'{"ok":true,'}; body2=${body2%'}'}
[[ "$batch" == "{\"ok\":true,\"results\":[{$body1},{$body2}]}" ]] \
    || fail "batched diff differs from single diffs: $batch"
echo '{"op":"diff","pairs":[[0,9999]]}' | q | grep -q '"ok":false.*no live tree with id 9999' \
    || fail "batched diff with a dead id must fail whole-request"

# --- 4b. Budget-aware distance: exact wire bytes over TCP ---------------
# Same contract as over the Unix socket: a met budget answers the plain
# exact distance line, a blown budget a certified exceeds/lower_bound
# line — byte-for-byte, with client request ids echoed first.
{
    echo '{"op":"distance","left":"{a{b}{c}}","right":"{a{b}{x}}","at_most":5,"id":"b1"}'
    echo '{"op":"distance","left":"{a{b}{c}}","right":"{x{y}{z}}","at_most":1,"id":"b2"}'
    echo '{"op":"distance","left":"{a{b}{c}}","right":"{q{w{e{r{t{y}}}}}}","at_most":1,"id":"b3"}'
    echo '{"op":"distance","left":"{a{b}{c}}","right":"{x{y}{z}}","at_most":3,"id":"b4"}'
} | q > "$WORK/bounded.out"
[[ "$(sed -n 1p "$WORK/bounded.out")" == '{"id":"b1","ok":true,"distance":1}' ]] \
    || fail "met budget must answer the exact distance: $(sed -n 1p "$WORK/bounded.out")"
[[ "$(sed -n 2p "$WORK/bounded.out")" == '{"id":"b2","ok":true,"exceeds":true,"lower_bound":1}' ]] \
    || fail "abandoned frontier must certify the budget as the bound: $(sed -n 2p "$WORK/bounded.out")"
[[ "$(sed -n 3p "$WORK/bounded.out")" == '{"id":"b3","ok":true,"exceeds":true,"lower_bound":3}' ]] \
    || fail "size pre-bound must be the certified bound: $(sed -n 3p "$WORK/bounded.out")"
[[ "$(sed -n 4p "$WORK/bounded.out")" == '{"id":"b4","ok":true,"distance":3}' ]] \
    || fail "budget exactly at the distance must stay exact: $(sed -n 4p "$WORK/bounded.out")"

# --- 5. Concurrent TCP clients, all answered without error --------------
client_pids=()
for c in 1 2 3; do
    {
        for t in 4 7 10; do
            echo "{\"op\":\"range\",\"tree\":\"$QUERY\",\"tau\":$t}"
            echo "{\"op\":\"topk\",\"tree\":\"$QUERY\",\"k\":$((c + 2))}"
            echo "{\"op\":\"distance\",\"left\":$((c - 1)),\"right\":$((c + 10))}"
            echo "{\"op\":\"join\",\"tau\":$((c + 3))}"
        done
    } | q > "$WORK/client$c.out" &
    client_pids+=($!)
done
for pid in "${client_pids[@]}"; do
    wait "$pid" || fail "a concurrent client exited nonzero"
done
for c in 1 2 3; do
    [[ $(wc -l < "$WORK/client$c.out") -eq 12 ]] || fail "client $c: expected 12 responses"
    grep -q '"ok":false' "$WORK/client$c.out" && fail "client $c got an error: $(grep -m1 '"ok":false' "$WORK/client$c.out")"
    grep -q '"neighbors":\[{' "$WORK/client$c.out" || fail "client $c: no non-empty result (corpus too sparse?)"
done

# --- 6. Durable updates, references, then a crash MID-UPDATE ------------
{
    echo '{"op":"remove","ids":[3,17,5]}'
} | q > "$WORK/update.out"
grep -q '"removed":3' "$WORK/update.out" || fail "remove count wrong: $(cat "$WORK/update.out")"

# The fixed query set asked again after recovery must answer the same.
{
    for t in 5 9; do
        echo "{\"op\":\"range\",\"tree\":\"$QUERY\",\"tau\":$t}"
    done
    echo "{\"op\":\"topk\",\"tree\":\"$QUERY\",\"k\":6}"
    echo '{"op":"join","tau":5}'
    echo '{"op":"distance","left":0,"right":11}'
    echo "{\"op\":\"distance\",\"left\":0,\"right\":\"$QUERY\"}"
    echo '{"op":"diff","pairs":[[0,11],[1,2]]}'
    echo '{"op":"distance","left":"{a{b}{c}}","right":"{x{y}{z}}","at_most":1}'
} > "$WORK/queries.ndjson"
q < "$WORK/queries.ndjson" > "$WORK/ref.out"
grep -q '"ok":false' "$WORK/ref.out" && fail "reference query errored: $(cat "$WORK/ref.out")"
grep -q '"exceeds":true,"lower_bound":1' "$WORK/ref.out" || fail "bounded distance must certify the blown budget: $(tail -1 "$WORK/ref.out")"

# Kill -9 while a client is streaming inserts: a real crash mid-update.
FILLER=$("$RTED" generate random 10 --seed 777)
( while :; do echo "{\"op\":\"insert\",\"trees\":[\"$FILLER\"]}"; done | q > /dev/null 2>&1 ) &
FEEDER_PID=$!
sleep 0.4
{ kill -9 "$SERVER_PID" && wait "$SERVER_PID"; } 2>/dev/null || true
SERVER_PID=""
kill "$FEEDER_PID" 2>/dev/null || true
wait "$FEEDER_PID" 2>/dev/null || true
# And tear two shard files' tails so repair provably has bytes to drop.
head -c 61 "$WORK/corpus.idx.shard1" | tail -c 13 >> "$WORK/corpus.idx.shard1"
head -c 45 "$WORK/corpus.idx.shard2" | tail -c 9 >> "$WORK/corpus.idx.shard2"

# --- 7. Strict refuses; repair recovers; answers byte-identical ---------
if "$RTED" serve --index "$WORK/corpus.idx" --shards 3 --strict < /dev/null \
    2> "$WORK/strict.err"; then
    fail "strict serve accepted torn shard files"
fi
grep -qiE "truncat|checksum|corrupt" "$WORK/strict.err" || fail "unclear strict error: $(cat "$WORK/strict.err")"

start_server --workers 2 --compact-frac 0.05
grep -q "repaired" "$LOG" || fail "no repair report in: $(tail -3 "$LOG")"
grep -q "byte(s) of torn tail" "$LOG" || fail "unexpected repair report: $(grep repaired "$LOG")"

# Clear the crash-window inserts (some acked, some torn away — both are
# fine; what matters is the surviving prefix) to restore the reference
# corpus, then the answers must match the pre-crash bytes — strictly:
# the striped top-k replays the union index's deterministic batch
# schedule, so even the `verified` counters are interleaving-free.
status=$(echo '{"op":"status"}' | q)
bound=$(echo "$status" | sed 's/.*"id_bound"://; s/[,}].*//')
[[ "$bound" -ge 30 ]] || fail "recovered id bound regressed below the pre-crash corpus: $status"
if [[ "$bound" -gt 30 ]]; then
    ids=$(seq 30 $((bound - 1)) | paste -sd, -)
    echo "{\"op\":\"remove\",\"ids\":[$ids]}" | q > /dev/null
fi
echo '{"op":"status"}' | q | grep -q '"live":27' || fail "live set not restored after cleanup: $(echo '{"op":"status"}' | q)"
q < "$WORK/queries.ndjson" > "$WORK/post.out"
diff "$WORK/ref.out" "$WORK/post.out" || fail "recovered service answers differ from pre-crash references"

# --- 8. Background compaction clears every shard's backlog --------------
# Three consecutive ids stripe one tree onto every shard; removing them
# again guarantees each of the 3 shards carries a tombstone no matter
# which shards the crash-window inserts landed on. The maintenance
# thread must then settle all 3 files to single segments with zero
# recorded tombstones.
bound=$(echo '{"op":"status"}' | q | sed 's/.*"id_bound"://; s/[,}].*//')
echo "{\"op\":\"insert\",\"trees\":[\"$FILLER\",\"$FILLER\",\"$FILLER\"]}" | q > /dev/null
echo "{\"op\":\"remove\",\"ids\":[$bound,$((bound + 1)),$((bound + 2))]}" | q \
    | grep -q '"removed":3' || fail "tombstone seeding failed"
compacted=""
for _ in $(seq 1 100); do
    status=$(echo '{"op":"status"}' | q)
    if echo "$status" | grep -q '"compactions":[1-9]' \
        && echo "$status" | grep -q '"file_tombstones":0' \
        && echo "$status" | grep -q '"shard_tombstones":\[0,0,0\]' \
        && echo "$status" | grep -q '"segments":3'; then
        compacted=yes
        break
    fi
    sleep 0.1
done
[[ -n "$compacted" ]] || fail "background compaction never settled: $status"
stop_server

# The repaired shard files are clean again: strict offline tools agree.
for f in "$WORK/corpus.idx" "$WORK/corpus.idx.shard1" "$WORK/corpus.idx.shard2"; do
    "$RTED" index repair "$f" 2> "$WORK/repair.err"
    grep -q "already clean" "$WORK/repair.err" || fail "$f not clean after drill: $(cat "$WORK/repair.err")"
done

echo "serve-roundtrip OK: 3-shard TCP service with auth, even striping, exact per-shard telemetry, planner explain + plan counters, batched diff == single diffs, concurrent clients served, kill -9 mid-update + torn tails repaired on restart (answers byte-identical), strict mode refuses damage, per-shard compaction reclaims"
