#!/usr/bin/env bash
# End-to-end smoke test of the `rted serve` query service through the
# real binary and its Unix-socket front-end:
#
#   1. build a persistent index and start the service on a socket;
#   2. drive it with several *concurrent* `rted query` clients;
#   3. apply durable updates (insert + remove) and record reference
#      answers for a fixed query set;
#   4. shut down, tear the store's tail (simulating a crash mid-append),
#      and check that `--strict` startup refuses the file;
#   5. restart in the default repair mode, require the recovery report,
#      and require byte-identical answers to the pre-crash references;
#   6. restart with --metric-tree: identical answers through the
#      vantage-point candidate generator, request ids echoed (pipelined
#      clients), metric state reported by status;
#   7. check threshold-driven background compaction clears the backlog.
#
# Along the way the telemetry surface is exercised for real: after the
# concurrent-client stage the `metrics` response must show the exact
# request counts served, `rted metrics` must emit a Prometheus
# exposition with the same numbers, and a repair-mode restart must come
# up with all counters at zero (metrics are process state, not corpus
# state).
#
# Usage: scripts/serve_roundtrip.sh [path-to-rted-binary]
set -euo pipefail

RTED=${1:-target/release/rted}
if [[ ! -x "$RTED" ]]; then
    echo "rted binary not found at $RTED (build with: cargo build --release)" >&2
    exit 1
fi
WORK=$(mktemp -d)
SERVER_PID=""
cleanup() {
    [[ -n "$SERVER_PID" ]] && kill "$SERVER_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "serve-roundtrip FAILED: $*" >&2; exit 1; }

SOCK="$WORK/rted.sock"

start_server() { # args: extra flags...; returns when the socket exists
    "$RTED" serve --index "$WORK/corpus.idx" --socket "$SOCK" "$@" \
        2>> "$WORK/serve.log" &
    SERVER_PID=$!
    for _ in $(seq 1 100); do
        [[ -S "$SOCK" ]] && return 0
        kill -0 "$SERVER_PID" 2>/dev/null || fail "server died on startup: $(tail -2 "$WORK/serve.log")"
        sleep 0.1
    done
    fail "server socket never appeared"
}

stop_server() {
    echo '{"op":"shutdown"}' | "$RTED" query --socket "$SOCK" > /dev/null
    wait "$SERVER_PID" || fail "server exited nonzero"
    SERVER_PID=""
}

# --- 1. Build an index and start the service ----------------------------
shapes=(lb rb fb zz mx random)
for i in $(seq 0 29); do
    "$RTED" generate "${shapes[$((i % 6))]}" $((8 + i % 17)) --seed "$i"
done > "$WORK/a.trees"
"$RTED" index build "$WORK/corpus.idx" "$WORK/a.trees" 2>/dev/null
start_server --workers 3

# --- 2. Concurrent clients, all answered without error ------------------
QUERY=$("$RTED" generate mx 14 --seed 99)
client_pids=()
for c in 1 2 3; do
    {
        for t in 4 7 10; do
            echo "{\"op\":\"range\",\"tree\":\"$QUERY\",\"tau\":$t}"
            echo "{\"op\":\"topk\",\"tree\":\"$QUERY\",\"k\":$((c + 2))}"
            echo "{\"op\":\"distance\",\"left\":$((c - 1)),\"right\":$((c + 10))}"
        done
    } | "$RTED" query --socket "$SOCK" > "$WORK/client$c.out" &
    client_pids+=($!)
done
# Wait per pid: a bare `wait` would also wait on the server job (which
# never exits on its own), and a multi-jobspec wait only reports the
# last job's status.
for pid in "${client_pids[@]}"; do
    wait "$pid" || fail "a concurrent client exited nonzero"
done
for c in 1 2 3; do
    [[ $(wc -l < "$WORK/client$c.out") -eq 9 ]] || fail "client $c: expected 9 responses"
    grep -q '"ok":false' "$WORK/client$c.out" && fail "client $c got an error: $(grep '"ok":false' "$WORK/client$c.out")"
    grep -q '"neighbors":\[{' "$WORK/client$c.out" || fail "client $c: no non-empty result (corpus too sparse?)"
done

# --- 2b. Telemetry reflects the traffic just served ----------------------
# 3 clients x 3 rounds = 9 of each query op; the counts must match exactly.
metrics=$(echo '{"op":"metrics","format":"json"}' | "$RTED" query --socket "$SOCK")
echo "$metrics" | grep -q '"ok":true' || fail "metrics request errored: $metrics"
for op in range topk distance; do
    echo "$metrics" | grep -q "\"serve_latency_${op}_ns\":{\"count\":9," \
        || fail "metrics: expected 9 $op requests: $metrics"
done
echo "$metrics" | grep -q '"serve_requests_total":27' || fail "metrics: expected 27 requests total: $metrics"
echo "$metrics" | grep -q '"serve_queue_wait_ns":{"count":2[0-9]' || fail "metrics: queue wait not recorded: $metrics"
echo "$metrics" | grep -q '"index_range_queries_total":9' || fail "metrics: index stage counters missing: $metrics"
# The CLI scraper renders the same numbers as a Prometheus exposition.
"$RTED" metrics --socket "$SOCK" > "$WORK/metrics.prom"
grep -q '^# TYPE serve_latency_range_ns summary' "$WORK/metrics.prom" || fail "no TYPE line in exposition: $(head -5 "$WORK/metrics.prom")"
grep -q '^serve_latency_range_ns_count 9$' "$WORK/metrics.prom" || fail "exposition range count wrong: $(grep range "$WORK/metrics.prom")"
grep -q '^serve_worker_busy_ns_total [1-9]' "$WORK/metrics.prom" || fail "no worker busy time in exposition"

# --- 2c. Structural diff: exact script bytes + telemetry -----------------
# The script for a known pair is deterministic down to the byte; an
# id-to-id diff must report the same distance the distance op does; a
# dead id errors with its request id echoed; and the diff traffic shows
# up in the per-type latency histogram and the index totals.
{
    echo '{"op":"diff","left":"{a{b}{c}}","right":"{a{b}{x}}","id":"d1"}'
    echo '{"op":"distance","left":0,"right":11,"id":"d2"}'
    echo '{"op":"diff","left":0,"right":11,"id":"d3"}'
    echo '{"op":"diff","left":0,"right":9999,"id":"d4"}'
} | "$RTED" query --socket "$SOCK" > "$WORK/diff.out"
expected='{"id":"d1","ok":true,"distance":1,"ops":[{"op":"keep","from":0,"to":0,"label":"b"},{"op":"rename","from":1,"to":1,"old":"c","new":"x"},{"op":"keep","from":2,"to":2,"label":"a"}],"summary":{"deletes":0,"inserts":0,"renames":1,"keeps":2}}'
[[ "$(sed -n 1p "$WORK/diff.out")" == "$expected" ]] || fail "diff script bytes wrong: $(sed -n 1p "$WORK/diff.out")"
dist=$(sed -n 2p "$WORK/diff.out" | sed 's/.*"distance"://; s/[,}].*//')
sed -n 3p "$WORK/diff.out" | grep -q "\"distance\":$dist," || fail "diff distance disagrees with distance op: $(sed -n 2,3p "$WORK/diff.out")"
sed -n 4p "$WORK/diff.out" | grep -q '"id":"d4","ok":false' || fail "dead-id diff must error with id echoed: $(sed -n 4p "$WORK/diff.out")"
metrics=$(echo '{"op":"metrics","format":"json"}' | "$RTED" query --socket "$SOCK")
echo "$metrics" | grep -q '"serve_latency_diff_ns":{"count":3,' || fail "metrics: expected 3 diff requests: $metrics"
echo "$metrics" | grep -q '"index_diff_calls_total":2' || fail "metrics: expected 2 index diff calls (dead id never reaches it): $metrics"
# status advertises the op set, diff included, for feature detection.
echo '{"op":"status"}' | "$RTED" query --socket "$SOCK" | grep -q '"ops":\["range","topk","distance","insert","remove","status","compact","metrics","diff","shutdown"\]' \
    || fail "status must list supported ops incl. diff"

# --- 2d. Budget-aware distance: at_most is a field, not a new op --------
# A met budget answers the plain exact distance line, byte-identical to
# an unbudgeted request; a blown budget answers a certified
# exceeds/lower_bound line. Both sides down to the byte: a near pair
# (distance 1), a same-size far pair (frontier abandonment, bound = τ),
# and a size-mismatched pair (size pre-bound 3 beats τ = 1).
{
    echo '{"op":"distance","left":"{a{b}{c}}","right":"{a{b}{x}}","at_most":5,"id":"b1"}'
    echo '{"op":"distance","left":"{a{b}{c}}","right":"{x{y}{z}}","at_most":1,"id":"b2"}'
    echo '{"op":"distance","left":"{a{b}{c}}","right":"{q{w{e{r{t{y}}}}}}","at_most":1,"id":"b3"}'
    echo '{"op":"distance","left":"{a{b}{c}}","right":"{x{y}{z}}","at_most":3,"id":"b4"}'
} | "$RTED" query --socket "$SOCK" > "$WORK/bounded.out"
[[ "$(sed -n 1p "$WORK/bounded.out")" == '{"id":"b1","ok":true,"distance":1}' ]] \
    || fail "met budget must answer the exact distance: $(sed -n 1p "$WORK/bounded.out")"
[[ "$(sed -n 2p "$WORK/bounded.out")" == '{"id":"b2","ok":true,"exceeds":true,"lower_bound":1}' ]] \
    || fail "abandoned frontier must certify the budget as the bound: $(sed -n 2p "$WORK/bounded.out")"
[[ "$(sed -n 3p "$WORK/bounded.out")" == '{"id":"b3","ok":true,"exceeds":true,"lower_bound":3}' ]] \
    || fail "size pre-bound must be the certified bound: $(sed -n 3p "$WORK/bounded.out")"
[[ "$(sed -n 4p "$WORK/bounded.out")" == '{"id":"b4","ok":true,"distance":3}' ]] \
    || fail "budget exactly at the distance must stay exact: $(sed -n 4p "$WORK/bounded.out")"
metrics=$(echo '{"op":"metrics","format":"json"}' | "$RTED" query --socket "$SOCK")
echo "$metrics" | grep -q '"index_verify_early_exit_total":[1-9]' \
    || fail "metrics: blown budgets must count as early exits: $metrics"
echo "$metrics" | grep -q '"index_verify_bounded_ns":[1-9]' \
    || fail "metrics: bounded kernel time must be nonzero: $metrics"

# --- 3. Durable updates + reference answers -----------------------------
NEW1=$("$RTED" generate random 12 --seed 201)
NEW2=$("$RTED" generate fb 15 --seed 202)
{
    echo "{\"op\":\"insert\",\"trees\":[\"$NEW1\",\"$NEW2\"]}"
    echo '{"op":"remove","ids":[3,17,5]}'
} | "$RTED" query --socket "$SOCK" > "$WORK/update.out"
grep -q '"ids":\[30,31\]' "$WORK/update.out" || fail "insert ids wrong: $(cat "$WORK/update.out")"
grep -q '"removed":3' "$WORK/update.out" || fail "remove count wrong: $(cat "$WORK/update.out")"

# The fixed query set asked again after every restart must answer the same.
{
    for t in 5 9; do
        echo "{\"op\":\"range\",\"tree\":\"$QUERY\",\"tau\":$t}"
    done
    echo "{\"op\":\"topk\",\"tree\":\"$QUERY\",\"k\":6}"
    echo "{\"op\":\"distance\",\"left\":30,\"right\":31}"
    echo "{\"op\":\"distance\",\"left\":0,\"right\":\"$QUERY\"}"
} > "$WORK/queries.ndjson"
"$RTED" query --socket "$SOCK" < "$WORK/queries.ndjson" > "$WORK/ref.out"
grep -q '"ok":false' "$WORK/ref.out" && fail "reference query errored: $(cat "$WORK/ref.out")"
stop_server

# --- 4. Tear the tail; strict startup must refuse -----------------------
head -c 61 "$WORK/corpus.idx" | tail -c 13 >> "$WORK/corpus.idx" # torn partial segment
# Stdio mode with closed stdin: if strict startup wrongly accepted the
# torn file, serve would just reach EOF and exit 0 — no hang either way.
if "$RTED" serve --index "$WORK/corpus.idx" --strict < /dev/null \
    2> "$WORK/strict.err"; then
    fail "strict serve accepted a torn store"
fi
grep -qiE "truncat|checksum|corrupt" "$WORK/strict.err" || fail "unclear strict error: $(cat "$WORK/strict.err")"

# --- 5. Repair-mode restart: recovery reported, answers identical -------
start_server --workers 2
grep -q "repaired" "$WORK/serve.log" || fail "no repair report in: $(tail -3 "$WORK/serve.log")"
grep -q "dropped 13 byte" "$WORK/serve.log" || fail "unexpected repair report: $(grep repaired "$WORK/serve.log")"
# Metrics are process state, not corpus state: the restarted service
# starts from zero (only the metrics request's own queue wait is ahead
# of its snapshot).
metrics=$(echo '{"op":"metrics","format":"json"}' | "$RTED" query --socket "$SOCK")
echo "$metrics" | grep -q '"serve_requests_total":0' || fail "restart did not reset request counter: $metrics"
echo "$metrics" | grep -q '"serve_latency_range_ns":{"count":0,' || fail "restart did not reset latency histograms: $metrics"
"$RTED" query --socket "$SOCK" < "$WORK/queries.ndjson" > "$WORK/post.out"
diff "$WORK/ref.out" "$WORK/post.out" || fail "recovered service answers differ from pre-crash references"
stop_server

# The repaired file is clean again: the strict offline tools accept it.
"$RTED" index info "$WORK/corpus.idx" > /dev/null || fail "repaired file rejected by index info"
"$RTED" index repair "$WORK/corpus.idx" 2> "$WORK/repair.err"
grep -q "already clean" "$WORK/repair.err" || fail "repair not idempotent: $(cat "$WORK/repair.err")"

# --- 6. Metric-tree serving answers identically; ids are echoed ---------
start_server --workers 2 --metric-tree
# Per-query counters legitimately differ between candidate generators;
# the answers must not.
strip_counters() { sed 's/,"candidates":[0-9]*,"verified":[0-9]*//'; }
"$RTED" query --socket "$SOCK" < "$WORK/queries.ndjson" | strip_counters > "$WORK/metric.out"
strip_counters < "$WORK/ref.out" > "$WORK/ref.stripped"
diff "$WORK/ref.stripped" "$WORK/metric.out" || fail "metric-tree service answers differ"
status=$(echo '{"op":"status","id":"m-7"}' | "$RTED" query --socket "$SOCK")
echo "$status" | grep -q '^{"id":"m-7",' || fail "request id not echoed first: $status"
echo "$status" | grep -q '"metric_tree":true' || fail "status must report the metric tree: $status"
echo "$status" | grep -q '"metric_built":[1-9]' || fail "metric tree not built after queries: $status"
# Pipelined client: several in-flight requests, answers correlatable.
{
    echo '{"op":"distance","left":0,"right":1,"id":1}'
    echo '{"op":"distance","left":1,"right":2,"id":2}'
    echo '{"op":"fly","id":3}'
} | "$RTED" query --socket "$SOCK" > "$WORK/pipe.out"
[[ $(grep -c '"id":' "$WORK/pipe.out") -eq 3 ]] || fail "pipelined ids missing: $(cat "$WORK/pipe.out")"
grep -q '"id":3,"ok":false' "$WORK/pipe.out" || fail "error response must keep its id: $(cat "$WORK/pipe.out")"
stop_server

# --- 7. Background compaction clears the tombstone backlog --------------
start_server --workers 2 --compact-frac 0.05
{
    echo '{"op":"remove","ids":[8,9,10,11]}'
} | "$RTED" query --socket "$SOCK" > /dev/null
# Poll for the *settled* post-compaction state in one condition: the
# recovered backlog from stage 3 can trigger a startup compaction before
# our remove lands, so an intermediate snapshot may legitimately show
# compactions >= 1 with the new tombstones still pending.
compacted=""
for _ in $(seq 1 100); do
    status=$(echo '{"op":"status"}' | "$RTED" query --socket "$SOCK")
    if echo "$status" | grep -q '"compactions":[1-9]' \
        && echo "$status" | grep -q '"file_tombstones":0' \
        && echo "$status" | grep -q '"segments":1'; then
        compacted=yes
        break
    fi
    sleep 0.1
done
[[ -n "$compacted" ]] || fail "background compaction never settled: $status"
stop_server

echo "serve-roundtrip OK: concurrent clients served, telemetry counts match traffic (and reset on restart), torn tail repaired on restart (answers identical), strict mode refuses damage, metric-tree serving identical with ids echoed, background compaction reclaims"
