#!/usr/bin/env bash
# End-to-end check of the persistent corpus pipeline through the CLI:
# build an index from generated trees, update it incrementally (inserts,
# removals, compaction), reload it, and require bit-identical search /
# topk / join output versus the in-memory path over the same live trees.
#
# The on-disk corpus keeps stable sparse ids (removals leave holes) while
# an in-memory corpus built from a flat file has dense ids; `index dump`
# emits `id<TAB>bracket` for every live tree in id order, so dense rank r
# maps to sparse id = line r of the dump — a monotone map, which makes
# ordered output and tie-breaks directly comparable after translation.
#
# Usage: scripts/index_roundtrip.sh [path-to-rted-binary]
set -euo pipefail

RTED=${1:-target/release/rted}
if [[ ! -x "$RTED" ]]; then
    echo "rted binary not found at $RTED (build with: cargo build --release)" >&2
    exit 1
fi
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

fail() { echo "index-roundtrip FAILED: $*" >&2; exit 1; }

# Translate dense in-memory ids to sparse on-disk ids via the dump.
# map_ids <dump.tsv> <n-id-columns> < results
map_ids() {
    awk -v idcols="$2" 'NR==FNR { map[FNR-1] = $1; next }
        { out = ""
          for (i = 1; i <= NF; i++) {
              v = (i <= idcols) ? map[$i] : $i
              out = out (i > 1 ? "\t" : "") v
          }
          print out }' "$1" -
}

shapes=(lb rb fb zz mx random)

# --- 1. Build an index from a generated corpus --------------------------
for i in $(seq 0 29); do
    "$RTED" generate "${shapes[$((i % 6))]}" $((8 + i % 17)) --seed "$i"
done > "$WORK/a.trees"
QUERY=$("$RTED" generate mx 14 --seed 99)

"$RTED" index build "$WORK/corpus.idx" "$WORK/a.trees" 2>/dev/null

# Pristine corpus: ids align 1:1, so outputs must match verbatim.
for tau in 4 9; do
    "$RTED" search "$WORK/a.trees" "$QUERY" --tau "$tau" 2>/dev/null > "$WORK/mem.out"
    "$RTED" search --index "$WORK/corpus.idx" "$QUERY" --tau "$tau" 2>/dev/null > "$WORK/idx.out"
    diff "$WORK/mem.out" "$WORK/idx.out" || fail "search tau=$tau on pristine corpus"
done

# --- 2. Incremental updates: add a batch, remove ids, compact -----------
for i in $(seq 30 39); do
    "$RTED" generate random $((10 + i % 9)) --seed "$i"
done > "$WORK/b.trees"
"$RTED" index update "$WORK/corpus.idx" --add "$WORK/b.trees" --remove 3,17 --remove 35 2>/dev/null
"$RTED" index compact "$WORK/corpus.idx" 2>/dev/null
"$RTED" index info "$WORK/corpus.idx" > /dev/null

# --- 2b. Metric-tree candidate generation must be invisible in results --
"$RTED" search --index "$WORK/corpus.idx" "$QUERY" --tau 9 2>/dev/null > "$WORK/metric.out"
"$RTED" search --index "$WORK/corpus.idx" "$QUERY" --tau 9 --no-metric-tree 2>/dev/null > "$WORK/linear.out"
diff "$WORK/metric.out" "$WORK/linear.out" || fail "metric vs linear search"
"$RTED" topk --index "$WORK/corpus.idx" "$QUERY" --k 5 2>/dev/null > "$WORK/metric.out"
"$RTED" topk --index "$WORK/corpus.idx" "$QUERY" --k 5 --no-metric-tree 2>/dev/null > "$WORK/linear.out"
diff "$WORK/metric.out" "$WORK/linear.out" || fail "metric vs linear topk"
"$RTED" join --index "$WORK/corpus.idx" --tau 7 2>/dev/null > "$WORK/metric.out"
"$RTED" join --index "$WORK/corpus.idx" --tau 7 --no-metric-tree 2>/dev/null > "$WORK/linear.out"
diff "$WORK/metric.out" "$WORK/linear.out" || fail "metric vs linear join"
# --- 2c. The adaptive planner must be invisible in results --------------
# Planner on (the default) vs --no-planner, and vs the fully fixed
# configuration (--no-planner --no-metric-tree): byte-identical output.
"$RTED" search --index "$WORK/corpus.idx" "$QUERY" --tau 9 2>/dev/null > "$WORK/plan.out"
"$RTED" search --index "$WORK/corpus.idx" "$QUERY" --tau 9 --no-planner 2>/dev/null > "$WORK/fixed.out"
diff "$WORK/plan.out" "$WORK/fixed.out" || fail "planner vs fixed search"
"$RTED" search --index "$WORK/corpus.idx" "$QUERY" --tau 9 --no-planner --no-metric-tree 2>/dev/null \
    | diff - "$WORK/plan.out" || fail "planner vs fixed-linear search"
"$RTED" topk --index "$WORK/corpus.idx" "$QUERY" --k 5 2>/dev/null > "$WORK/plan.out"
"$RTED" topk --index "$WORK/corpus.idx" "$QUERY" --k 5 --no-planner 2>/dev/null > "$WORK/fixed.out"
diff "$WORK/plan.out" "$WORK/fixed.out" || fail "planner vs fixed topk"
"$RTED" join --index "$WORK/corpus.idx" --tau 7 2>/dev/null > "$WORK/plan.out"
"$RTED" join --index "$WORK/corpus.idx" --tau 7 --no-planner 2>/dev/null > "$WORK/fixed.out"
diff "$WORK/plan.out" "$WORK/fixed.out" || fail "planner vs fixed join"
# `index info --stats` reports the planner's decisions and cost model.
"$RTED" index info "$WORK/corpus.idx" --stats > "$WORK/stats.out" 2>/dev/null
grep -q "planner report" "$WORK/stats.out" || fail "stats lost the planner report"
grep -q "candidate_gen" "$WORK/stats.out" || fail "stats lost the candidate_gen decision"
grep -q "stage_order" "$WORK/stats.out" || fail "stats lost the stage order"
grep -q "verifier mix" "$WORK/stats.out" || fail "stats lost the verifier mix counters"
grep -q "ns/subproblem" "$WORK/stats.out" || fail "stats lost the verifier cost model"

# A --pq override re-profiles in memory; results must not change.
"$RTED" search --index "$WORK/corpus.idx" "$QUERY" --tau 9 --pq 3,2 --no-metric-tree 2>/dev/null \
    > "$WORK/pq.out"
"$RTED" search --index "$WORK/corpus.idx" "$QUERY" --tau 9 --no-metric-tree 2>/dev/null \
    | diff - "$WORK/pq.out" || fail "--pq override changed search results"

# --- 3. Reload and diff against the in-memory path ----------------------
"$RTED" index dump "$WORK/corpus.idx" > "$WORK/dump.tsv"
[[ $(wc -l < "$WORK/dump.tsv") -eq 37 ]] || fail "expected 37 live trees after update"
cut -f2- "$WORK/dump.tsv" > "$WORK/live.trees"

for q in "$QUERY" "{a{b}{c}}"; do
    for tau in 5 10; do
        "$RTED" search "$WORK/live.trees" "$q" --tau "$tau" 2>/dev/null \
            | map_ids "$WORK/dump.tsv" 1 > "$WORK/mem.out"
        "$RTED" search --index "$WORK/corpus.idx" "$q" --tau "$tau" 2>/dev/null > "$WORK/idx.out"
        diff "$WORK/mem.out" "$WORK/idx.out" || fail "search q=$q tau=$tau after update"
    done
    "$RTED" topk "$WORK/live.trees" "$q" --k 7 2>/dev/null \
        | map_ids "$WORK/dump.tsv" 1 > "$WORK/mem.out"
    "$RTED" topk --index "$WORK/corpus.idx" "$q" --k 7 2>/dev/null > "$WORK/idx.out"
    diff "$WORK/mem.out" "$WORK/idx.out" || fail "topk q=$q after update"
done

"$RTED" join "$WORK/live.trees" --tau 8 2>/dev/null \
    | map_ids "$WORK/dump.tsv" 2 > "$WORK/mem.out"
"$RTED" join --index "$WORK/corpus.idx" --tau 8 2>/dev/null > "$WORK/idx.out"
diff "$WORK/mem.out" "$WORK/idx.out" || fail "join after update"
[[ -s "$WORK/idx.out" ]] || fail "join produced no matches — test corpus too sparse to be meaningful"

# --- 3b. Structural diff through the stored corpus ----------------------
# `rted diff --index` between two stored ids must print the same script
# as the flat-tree path over the dumped brackets, its distance line must
# agree with `rted distance`, and a self-diff is all keeps.
id_a=$(sed -n 1p "$WORK/dump.tsv" | cut -f1); tree_a=$(sed -n 1p "$WORK/dump.tsv" | cut -f2-)
id_b=$(sed -n 5p "$WORK/dump.tsv" | cut -f1); tree_b=$(sed -n 5p "$WORK/dump.tsv" | cut -f2-)
"$RTED" diff --index "$WORK/corpus.idx" "$id_a" "$id_b" 2>/dev/null > "$WORK/idx.diff"
"$RTED" diff "$tree_a" "$tree_b" 2>/dev/null > "$WORK/mem.diff"
diff "$WORK/idx.diff" "$WORK/mem.diff" || fail "diff --index differs from flat-tree diff"
d=$("$RTED" distance "$tree_a" "$tree_b" 2>/dev/null)
[[ "$(head -1 "$WORK/idx.diff")" == "distance $d" ]] || fail "diff distance $(head -1 "$WORK/idx.diff") != rted distance $d"
"$RTED" diff --index "$WORK/corpus.idx" "$id_a" "$id_a" 2>/dev/null > "$WORK/self.diff"
[[ "$(head -1 "$WORK/self.diff")" == "distance 0" ]] || fail "self-diff distance nonzero: $(head -1 "$WORK/self.diff")"
grep -vq '^keep\|^distance' "$WORK/self.diff" && fail "self-diff must be all keeps: $(cat "$WORK/self.diff")"
# Removed ids error out instead of resurrecting tombstones.
if "$RTED" diff --index "$WORK/corpus.idx" 3 "$id_b" 2> "$WORK/err.txt"; then
    fail "diff on a removed id succeeded"
fi
grep -q "no live tree" "$WORK/err.txt" || fail "unclear dead-id diff error: $(cat "$WORK/err.txt")"

# --- 3c. Budget-aware distance agrees with the full computation ---------
# A budget at the exact distance must reproduce it byte-for-byte; a
# budget below it must print a certified `exceeds` bound no larger than
# the true distance.
b=$("$RTED" distance "$tree_a" "$tree_b" --at-most "$d" 2>/dev/null)
[[ "$b" == "$d" ]] || fail "distance --at-most $d printed $b, full run printed $d"
if [[ "$d" != "0" ]]; then
    ex=$("$RTED" distance "$tree_a" "$tree_b" --at-most 0 2>/dev/null)
    [[ "$ex" == exceeds\ * ]] || fail "budget 0 on distinct trees must print exceeds: $ex"
    lb=${ex#exceeds }
    awk -v lb="$lb" -v d="$d" 'BEGIN { exit !(lb <= d && lb >= 0) }' \
        || fail "exceeds bound $lb not in [0, $d]"
fi

# --- 4. Damaged files must be rejected with a clear error ---------------
head -c 100 "$WORK/corpus.idx" > "$WORK/truncated.idx"
if "$RTED" search --index "$WORK/truncated.idx" "$QUERY" --tau 2 2> "$WORK/err.txt"; then
    fail "truncated index accepted"
fi
grep -qiE "truncat|checksum|corrupt" "$WORK/err.txt" || fail "unclear truncation error: $(cat "$WORK/err.txt")"

cp "$WORK/corpus.idx" "$WORK/flipped.idx"
# Overwrite byte 200 with its complement — guaranteed to differ.
orig=$(od -An -tu1 -j200 -N1 "$WORK/flipped.idx" | tr -d ' ')
printf "$(printf '\\x%02x' $((orig ^ 0xff)))" \
    | dd of="$WORK/flipped.idx" bs=1 seek=200 count=1 conv=notrunc 2>/dev/null
if "$RTED" search --index "$WORK/flipped.idx" "$QUERY" --tau 2 2> "$WORK/err.txt"; then
    fail "corrupted index accepted"
fi
grep -qiE "checksum|corrupt" "$WORK/err.txt" || fail "unclear corruption error: $(cat "$WORK/err.txt")"

# --- 5. Legacy v1 format: opens read-only, upgrades on first mutation ----
"$RTED" index build "$WORK/v1.idx" "$WORK/live.trees" --format-version 1 2>/dev/null
"$RTED" index build "$WORK/v2.idx" "$WORK/live.trees" 2>/dev/null
"$RTED" index info "$WORK/v1.idx" > "$WORK/v1.info"
grep -q "format version  1" "$WORK/v1.info" || fail "v1 fixture not reported as version 1"
grep -q "recomputed on load" "$WORK/v1.info" || fail "v1 info must say profiles are recomputed"
# (info output goes through a file: `grep -q` would close the pipe early
# and kill the CLI with SIGPIPE on larger outputs)
"$RTED" index info "$WORK/v2.idx" > "$WORK/v2.info"
grep -q "format version  2" "$WORK/v2.info" || fail "v2 build not version 2"

# Same trees, both versions: identical answers (v1 profiles recomputed).
for tau in 5 9; do
    "$RTED" search --index "$WORK/v1.idx" "$QUERY" --tau "$tau" 2>/dev/null > "$WORK/v1.out"
    "$RTED" search --index "$WORK/v2.idx" "$QUERY" --tau "$tau" 2>/dev/null > "$WORK/v2.out"
    diff "$WORK/v1.out" "$WORK/v2.out" || fail "v1 vs v2 search tau=$tau"
done
# Queries are read-only: the legacy file is untouched, still version 1.
"$RTED" index info "$WORK/v1.idx" > "$WORK/v1.again"
grep -q "format version  1" "$WORK/v1.again" || fail "query modified the v1 file"

# The first mutating open upgrades the file in place to version 2 with
# stored profiles; the data survives and strict tools accept it.
"$RTED" index update "$WORK/v1.idx" --remove 0 2>/dev/null
"$RTED" index info "$WORK/v1.idx" > "$WORK/v1up.info"
grep -q "format version  2" "$WORK/v1up.info" || fail "v1 file not upgraded by update"
grep -q "(stored)" "$WORK/v1up.info" || fail "upgraded file must store profiles"
[[ $(("$("$RTED" index dump "$WORK/v1.idx" | wc -l)")) -eq 36 ]] || fail "upgrade lost trees"

echo "index-roundtrip OK: persistent and in-memory paths agree (search/topk/join, metric and linear, planner and fixed), damage rejected, v1 opens and upgrades"
