//! Robustness demonstration: why a fixed decomposition strategy is a trap.
//!
//! For adversarial tree-shape pairs, each classic algorithm is the worst
//! choice on *some* input, with gaps of orders of magnitude. RTED's
//! strategy phase inspects the pair and never loses by more than the
//! strategy overhead. This is the paper's core claim, §1 and §8.
//!
//! ```text
//! cargo run --release --example shape_robustness -- [size]
//! ```

use rted::core::{Algorithm, UnitCost};
use rted::datasets::Shape;

fn main() {
    let size: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400);

    let pairs = [
        (Shape::LeftBranch, Shape::LeftBranch),
        (Shape::LeftBranch, Shape::RightBranch), // Theorem 2's Ω(n³) instance
        (Shape::FullBinary, Shape::FullBinary),
        (Shape::ZigZag, Shape::ZigZag),
        (Shape::ZigZag, Shape::FullBinary),
        (Shape::Mixed, Shape::Mixed),
    ];

    println!("relevant subproblems per algorithm, trees of {size} nodes\n");
    println!(
        "{:>6} {:>6}  {:>12} {:>12} {:>12} {:>12} {:>12}",
        "F", "G", "Zhang-L", "Zhang-R", "Klein-H", "Demaine-H", "RTED"
    );
    for (sf, sg) in pairs {
        let f = sf.generate(size, 1);
        let g = sg.generate(size, 2);
        print!("{:>6} {:>6}  ", sf.name(), sg.name());
        let counts: Vec<u64> = Algorithm::ALL
            .iter()
            .map(|a| a.predicted_subproblems(&f, &g))
            .collect();
        for c in &counts {
            print!("{c:>13}");
        }
        println!();
        // RTED never computes more subproblems than any competitor.
        let rted = counts[4];
        assert!(counts.iter().all(|&c| rted <= c));
    }

    println!("\nverifying distances agree across algorithms on one pair...");
    let f = Shape::LeftBranch.generate(size.min(200), 1);
    let g = Shape::RightBranch.generate(size.min(200), 2);
    let d: Vec<f64> = Algorithm::ALL
        .iter()
        .map(|a| a.run(&f, &g, &UnitCost).distance)
        .collect();
    assert!(d.windows(2).all(|w| w[0] == w[1]));
    println!("all five algorithms: distance = {}", d[0]);
}
