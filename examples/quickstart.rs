//! Quickstart: parse two trees, compute their edit distance, inspect what
//! the algorithm did.
//!
//! ```text
//! cargo run --release --example quickstart
//! cargo run --release --example quickstart -- '{a{b}{c}}' '{a{c{b}}}'
//! ```

use rted::core::{Algorithm, UnitCost};
use rted::{parse_bracket, to_bracket};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (a, b) = if args.len() == 2 {
        (args[0].clone(), args[1].clone())
    } else {
        // Two versions of a small document tree.
        (
            "{article{title{Tree Edit}}{sec{p}{p}{fig}}{sec{p}}}".to_string(),
            "{article{title{Tree Edit Distance}}{sec{p}{fig}}{sec{p}{p}}}".to_string(),
        )
    };

    let f = parse_bracket(&a).expect("first tree");
    let g = parse_bracket(&b).expect("second tree");
    println!("F ({} nodes): {}", f.len(), to_bracket(&f));
    println!("G ({} nodes): {}", g.len(), to_bracket(&g));

    // RTED: computes the optimal LRH strategy, then runs GTED under it.
    let run = Algorithm::Rted.run(&f, &g, &UnitCost);
    println!("\ntree edit distance     = {}", run.distance);
    println!("relevant subproblems   = {}", run.subproblems);
    println!("strategy computation   = {:?}", run.strategy_time);
    println!("distance computation   = {:?}", run.distance_time);
    println!(
        "single-path calls      = {} left, {} right, {} heavy",
        run.exec.spf_l_calls, run.exec.spf_r_calls, run.exec.spf_i_calls
    );

    // Every algorithm of the paper agrees on the distance; they differ in
    // the number of subproblems they compute.
    println!("\nper-algorithm subproblem counts:");
    for alg in Algorithm::ALL {
        let r = alg.run(&f, &g, &UnitCost);
        assert_eq!(r.distance, run.distance);
        println!("  {:10} {:>8}", alg.name(), r.subproblems);
    }
}
