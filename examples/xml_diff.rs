//! XML revision diff: the paper's motivating application, end to end.
//! Parses two XML documents (inline samples or files given as
//! arguments), converts them to label trees, and prints the **optimal
//! edit script** turning the old revision into the new one — which
//! elements were deleted, inserted, renamed, or kept — plus the distance
//! summaries under several cost models.
//!
//! The script comes from the workspace-reused diff pipeline
//! ([`rted::diff::edit_mapping_in`]): the second extraction below runs
//! through the same warm [`Workspace`] and allocates only its output.
//!
//! ```text
//! cargo run --release --example xml_diff
//! cargo run --release --example xml_diff -- old.xml new.xml
//! ```

use rted::core::{ted_with, PerLabelCost, UnitCost, Workspace};
use rted::datasets::xml::parse_xml;
use rted::diff::{edit_mapping_in, EditScript};

const OLD: &str = r#"
<catalog>
  <book id="1"><title>Data on the Web</title><year>1999</year></book>
  <book id="2"><title>Foundations of Databases</title><year>1995</year></book>
  <journal><title>VLDB Journal</title></journal>
</catalog>"#;

const NEW: &str = r#"
<catalog>
  <book id="1"><title>Data on the Web</title><year>2000</year></book>
  <journal><title>VLDB Journal</title><issue>4</issue></journal>
  <book id="3"><title>Database Systems</title></book>
</catalog>"#;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (old, new) = if args.len() == 2 {
        (
            std::fs::read_to_string(&args[0]).expect("read first file"),
            std::fs::read_to_string(&args[1]).expect("read second file"),
        )
    } else {
        (OLD.to_string(), NEW.to_string())
    };

    let f = parse_xml(&old).expect("parse first document");
    let g = parse_xml(&new).expect("parse second document");
    println!("old revision: {} nodes, depth {}", f.len(), f.max_depth());
    println!("new revision: {} nodes, depth {}", g.len(), g.max_depth());

    // The revision diff proper: one workspace serves both extractions —
    // the unit-cost script and the content-weighted one — warm after the
    // first call.
    let mut ws = Workspace::new();
    let unit_script: EditScript = {
        let m = edit_mapping_in(&f, &g, &UnitCost, &mut ws);
        m.script(&f, &g)
    };
    println!("\n== edit script (unit costs) ==");
    println!("distance {}", unit_script.cost);
    // Keeps are the unchanged bulk of a revision; show only the changes
    // and a tally, the way a reviewer reads a diff.
    for line in unit_script.render_text().lines() {
        if !line.starts_with("keep") {
            println!("{line}");
        }
    }
    println!("({})", unit_script.summary());

    // Content-weighted: renames (text edits) cheap, structural
    // insert/delete expensive — the mapping shifts toward relabeling.
    let weighted = edit_mapping_in(&f, &g, &PerLabelCost::new(2.0, 2.0, 0.5), &mut ws);
    let weighted_script = weighted.script(&f, &g);
    println!("\n== edit script (structure-weighted: delete/insert 2, rename 0.5) ==");
    println!("distance {}", weighted_script.cost);
    println!("({})", weighted_script.summary());

    // The script is a witness for the distance: its cost is the TED.
    let unit = ted_with(&f, &g, &UnitCost);
    assert_eq!(unit_script.cost, unit, "script cost equals the distance");
    let max = (f.len() + g.len()) as f64;
    println!("\nunit-cost edit distance          = {unit}");
    println!("normalized similarity            = {:.3}", 1.0 - unit / max);
}
