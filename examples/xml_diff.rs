//! XML difference: the paper's motivating application. Parses two XML
//! documents (inline samples or files given as arguments), converts them to
//! label trees, and reports how different they are under several cost
//! models.
//!
//! ```text
//! cargo run --release --example xml_diff
//! cargo run --release --example xml_diff -- old.xml new.xml
//! ```

use rted::core::{ted_with, PerLabelCost, UnitCost};
use rted::datasets::xml::parse_xml;

const OLD: &str = r#"
<catalog>
  <book id="1"><title>Data on the Web</title><year>1999</year></book>
  <book id="2"><title>Foundations of Databases</title><year>1995</year></book>
  <journal><title>VLDB Journal</title></journal>
</catalog>"#;

const NEW: &str = r#"
<catalog>
  <book id="1"><title>Data on the Web</title><year>2000</year></book>
  <journal><title>VLDB Journal</title><issue>4</issue></journal>
  <book id="3"><title>Database Systems</title></book>
</catalog>"#;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (old, new) = if args.len() == 2 {
        (
            std::fs::read_to_string(&args[0]).expect("read first file"),
            std::fs::read_to_string(&args[1]).expect("read second file"),
        )
    } else {
        (OLD.to_string(), NEW.to_string())
    };

    let f = parse_xml(&old).expect("parse first document");
    let g = parse_xml(&new).expect("parse second document");
    println!("document 1: {} nodes, depth {}", f.len(), f.max_depth());
    println!("document 2: {} nodes, depth {}", g.len(), g.max_depth());

    // Unit costs: every node edit counts 1.
    let unit = ted_with(&f, &g, &UnitCost);
    println!("\nunit-cost edit distance          = {unit}");

    // Structure-weighted: renames (content changes) are cheap, structural
    // insertions/deletions expensive.
    let structural = ted_with(&f, &g, &PerLabelCost::new(2.0, 2.0, 0.5));
    println!("structure-weighted edit distance = {structural}");

    // Normalized similarity in [0, 1] (1 = identical).
    let max = (f.len() + g.len()) as f64;
    println!("normalized similarity            = {:.3}", 1.0 - unit / max);
}
