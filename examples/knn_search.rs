//! k-nearest-neighbour search over an indexed tree corpus.
//!
//! Builds a mixed-shape corpus with planted near-duplicates, indexes it
//! once (per-tree analysis happens at insert time), then answers top-k and
//! range queries — showing how the staged lower-bound filters cut the
//! number of exact RTED computations.
//!
//! ```text
//! cargo run --release --example knn_search -- [corpus_size] [tree_size] [k]
//! ```

use rted::datasets::shapes::{perturb_labels, Shape, DEFAULT_ALPHABET};
use rted::index::TreeIndex;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let corpus_size: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(60);
    let tree_size: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(80);
    let k: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(5);

    // A corpus cycling through all six shapes, sizes jittered around
    // `tree_size`, labels from the default alphabet.
    let mut trees = Vec::with_capacity(corpus_size);
    for i in 0..corpus_size {
        let shape = Shape::ALL[i % Shape::ALL.len()];
        let n = tree_size + (i * 7) % 25;
        trees.push(shape.generate(n, i as u64));
    }
    // Plant a cluster of near-duplicates of tree 0, so the query has known
    // close neighbours — once the k-th best distance is small, the filter
    // stages can prune the far tail without computing its exact distances.
    let query_base = trees[0].clone();
    for edits in 1..=k.max(2) {
        trees.push(perturb_labels(
            &query_base,
            edits,
            DEFAULT_ALPHABET,
            4242 + edits as u64,
        ));
    }

    let index = TreeIndex::build(trees);
    println!(
        "indexed {} trees (~{} nodes each), {} filter stages, {} threads\n",
        index.corpus().len(),
        tree_size,
        index.pipeline().stages().len(),
        index.policy().threads,
    );

    let query = perturb_labels(&query_base, 1, DEFAULT_ALPHABET, 7);

    println!("top-{k} nearest neighbours of a perturbed copy of tree 0:");
    let knn = index.top_k(&query, k);
    for n in &knn.neighbors {
        println!("  tree {:>4}  distance {}", n.id, n.distance);
    }
    report(&knn.stats);

    let tau = 10.0;
    println!("\nrange query, tau = {tau}:");
    let res = index.range(&query, tau);
    for n in &res.neighbors {
        println!("  tree {:>4}  distance {}", n.id, n.distance);
    }
    report(&res.stats);

    // The same query without filters verifies every corpus tree exactly.
    let brute = index.corpus().len();
    println!(
        "\nfilters verified {} of {} candidates exactly ({}x fewer exact TED runs)",
        res.stats.verified,
        brute,
        brute.checked_div(res.stats.verified).unwrap_or(brute),
    );

    // Metric-tree candidate generation: identical answers, candidates now
    // come from a vantage-point tree (triangle-inequality routing) instead
    // of the linear size-window scan.
    let metric = {
        let corpus = index.corpus().clone();
        TreeIndex::from_corpus(corpus).with_metric_tree(true)
    };
    let mres = metric.range(&query, tau);
    assert_eq!(mres.neighbors, res.neighbors);
    println!(
        "\nmetric tree (built with {} one-time distances): {} exact per query, \
         {} vantages visited, {} routing skipped by cheap bounds",
        metric.metric_snapshot().build_ted,
        mres.stats.verified,
        mres.stats.metric.nodes_visited,
        mres.stats.metric.routing_skipped,
    );
}

fn report(stats: &rted::index::SearchStats) {
    let pruned: Vec<String> = stats
        .filter
        .stages
        .iter()
        .filter(|s| s.pruned > 0)
        .map(|s| format!("{}={}", s.stage, s.pruned))
        .collect();
    println!(
        "  [{} candidates | verified {} | pruned {} | {:?}]",
        stats.candidates,
        stats.verified,
        if pruned.is_empty() {
            "none".to_string()
        } else {
            pruned.join(" ")
        },
        stats.time,
    );
}
