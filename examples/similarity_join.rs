//! Similarity join over a mixed-shape tree collection — the workload of
//! Table 1, shown as an application: find all near-duplicate pairs in a
//! collection containing base trees and perturbed copies.
//!
//! ```text
//! cargo run --release --example similarity_join -- [size] [tau]
//! ```

use rted::core::{Algorithm, UnitCost};
use rted::datasets::shapes::{perturb_labels, Shape, DEFAULT_ALPHABET};
use rted::join::{self_join, JoinConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let size: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(120);
    let tau: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(8.0);

    // Build a collection: one tree per shape plus a near-duplicate of each.
    let mut trees = Vec::new();
    let mut names = Vec::new();
    for (i, shape) in Shape::ALL.iter().enumerate() {
        let base = shape.generate(size, 10 + i as u64);
        let dup = perturb_labels(&base, 3, DEFAULT_ALPHABET, 99 + i as u64);
        names.push(format!("{shape}"));
        trees.push(base);
        names.push(format!("{shape}~copy"));
        trees.push(dup);
    }

    println!(
        "self-join over {} trees of ~{size} nodes, tau = {tau} (RTED, size-bound pruning on)",
        trees.len()
    );
    let cfg = JoinConfig {
        tau,
        algorithm: Algorithm::Rted,
        size_prune: true,
    };
    let res = self_join(&trees, &UnitCost, &cfg);

    println!(
        "computed {} pairs ({} pruned) in {:?}, {} subproblems",
        res.pairs_computed, res.pairs_pruned, res.time, res.subproblems
    );
    println!("\nmatches (distance < {tau}):");
    for m in &res.matches {
        println!(
            "  {:12} ~ {:12}  distance {}",
            names[m.left], names[m.right], m.distance
        );
    }
    // Every perturbed copy must match its base.
    let found = Shape::ALL
        .iter()
        .enumerate()
        .filter(|(i, _)| {
            res.matches
                .iter()
                .any(|m| (m.left, m.right) == (2 * i, 2 * i + 1))
        })
        .count();
    println!("\n{found}/{} base~copy pairs found", Shape::ALL.len());
}
