//! Query-service walkthrough: start a durable `rted_serve::Server`,
//! issue queries and updates from concurrent clients, crash it (by
//! tearing the store file exactly as an interrupted append would), and
//! restart it — recovery keeps every committed tree.
//!
//! Run with: `cargo run --release --example query_service`

use rted::index::CorpusStore;
use rted::parse_bracket;
use rted::serve::{Recovery, Request, Response, Server, ServerConfig, TreeRef};

fn main() {
    let dir = std::env::temp_dir().join(format!("rted-serve-example-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let path = dir.join("service.idx");

    // --- Session 1: a durable service ----------------------------------
    let trees: Vec<_> = [
        "{article{title}{authors{a}{a}}{body{sec}{sec}}}",
        "{article{title}{authors{a}}{body{sec}{sec}{sec}}}",
        "{book{title}{chapters{ch{sec}}{ch{sec}{sec}}}}",
        "{note{title}{body}}",
    ]
    .iter()
    .map(|s| parse_bracket(s).unwrap())
    .collect();
    CorpusStore::create(&path, trees).expect("create store");
    let (server, _) =
        Server::open(&path, Recovery::Strict, ServerConfig::default()).expect("open service");

    // Concurrent clients share the resident corpus.
    std::thread::scope(|scope| {
        for who in 0..3 {
            let server = &server;
            scope.spawn(move || {
                let mut client = server.client();
                let query = parse_bracket("{article{title}{authors{a}}{body{sec}{sec}}}").unwrap();
                if let Response::Neighbors { neighbors, .. } = client.call(Request::Range {
                    tree: query,
                    tau: 4.0,
                }) {
                    println!("client {who}: {} trees within distance 4", neighbors.len());
                }
            });
        }
    });

    // A durable update, then the service stops cleanly.
    let mut client = server.client();
    if let Response::Inserted(ids) = client.call(Request::Insert {
        trees: vec![parse_bracket("{memo{title}{body{p}{p}}}").unwrap()],
    }) {
        println!("inserted memo as id {:?}", ids);
    }
    server.shutdown();

    // --- The crash: a torn append lands on disk ------------------------
    let committed = std::fs::read(&path).unwrap();
    let mut torn = committed.clone();
    torn.extend_from_slice(&committed[48..90]); // half-written segment
    std::fs::write(&path, &torn).unwrap();

    // --- Session 2: restart with recovery ------------------------------
    let (server, report) =
        Server::open(&path, Recovery::Repair, ServerConfig::default()).expect("recover service");
    println!(
        "recovered {} segments, dropped {} bytes of torn tail",
        report.segments_recovered, report.bytes_dropped
    );
    let mut client = server.client();
    if let Response::Distance(d) = client.call(Request::Distance {
        left: TreeRef::Id(0),
        right: TreeRef::Id(4), // the memo inserted before the crash
        at_most: f64::INFINITY,
    }) {
        println!("distance(article, memo) = {d}");
    }
    server.shutdown();

    // --- Session 3: the same corpus, striped over 3 shards --------------
    // A shard count is fixed when the corpus is written (shard files
    // store local ids), so the sharded service starts from an empty
    // store and the trees are inserted through it: global id g lands on
    // shard g mod 3 as local id g div 3, and the extra segment files
    // appear next to the root as `sharded.idx.shard{1,2}`. Scatter-
    // gather then answers exactly like the 1-shard sessions above.
    let sharded_path = dir.join("sharded.idx");
    CorpusStore::create(&sharded_path, std::iter::empty()).expect("create sharded store");
    let config = ServerConfig {
        shards: 3,
        ..ServerConfig::default()
    };
    let (server, _) = Server::open(&sharded_path, Recovery::Strict, config).expect("open sharded");
    let mut client = server.client();
    let reloaded: Vec<_> = [
        "{article{title}{authors{a}{a}}{body{sec}{sec}}}",
        "{article{title}{authors{a}}{body{sec}{sec}{sec}}}",
        "{book{title}{chapters{ch{sec}}{ch{sec}{sec}}}}",
        "{note{title}{body}}",
        "{memo{title}{body{p}{p}}}",
    ]
    .iter()
    .map(|s| parse_bracket(s).unwrap())
    .collect();
    if let Response::Inserted(ids) = client.call(Request::Insert { trees: reloaded }) {
        println!("sharded service assigned global ids {ids:?}");
    }
    let query = parse_bracket("{article{title}{authors{a}}{body{sec}{sec}}}").unwrap();
    if let Response::Neighbors { neighbors, .. } = client.call(Request::Range {
        tree: query,
        tau: 4.0,
    }) {
        println!(
            "sharded range: {} trees within distance 4 (gathered from 3 shards)",
            neighbors.len()
        );
    }
    server.shutdown();
}
