//! Query-service walkthrough: start a durable `rted_serve::Server`,
//! issue queries and updates from concurrent clients, crash it (by
//! tearing the store file exactly as an interrupted append would), and
//! restart it — recovery keeps every committed tree.
//!
//! Run with: `cargo run --release --example query_service`

use rted::index::CorpusStore;
use rted::parse_bracket;
use rted::serve::{Recovery, Request, Response, Server, ServerConfig, TreeRef};

fn main() {
    let dir = std::env::temp_dir().join(format!("rted-serve-example-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let path = dir.join("service.idx");

    // --- Session 1: a durable service ----------------------------------
    let trees: Vec<_> = [
        "{article{title}{authors{a}{a}}{body{sec}{sec}}}",
        "{article{title}{authors{a}}{body{sec}{sec}{sec}}}",
        "{book{title}{chapters{ch{sec}}{ch{sec}{sec}}}}",
        "{note{title}{body}}",
    ]
    .iter()
    .map(|s| parse_bracket(s).unwrap())
    .collect();
    CorpusStore::create(&path, trees).expect("create store");
    let (server, _) =
        Server::open(&path, Recovery::Strict, ServerConfig::default()).expect("open service");

    // Concurrent clients share the resident corpus.
    std::thread::scope(|scope| {
        for who in 0..3 {
            let server = &server;
            scope.spawn(move || {
                let mut client = server.client();
                let query = parse_bracket("{article{title}{authors{a}}{body{sec}{sec}}}").unwrap();
                if let Response::Neighbors { neighbors, .. } = client.call(Request::Range {
                    tree: query,
                    tau: 4.0,
                }) {
                    println!("client {who}: {} trees within distance 4", neighbors.len());
                }
            });
        }
    });

    // A durable update, then the service stops cleanly.
    let mut client = server.client();
    if let Response::Inserted(ids) = client.call(Request::Insert {
        trees: vec![parse_bracket("{memo{title}{body{p}{p}}}").unwrap()],
    }) {
        println!("inserted memo as id {:?}", ids);
    }
    server.shutdown();

    // --- The crash: a torn append lands on disk ------------------------
    let committed = std::fs::read(&path).unwrap();
    let mut torn = committed.clone();
    torn.extend_from_slice(&committed[48..90]); // half-written segment
    std::fs::write(&path, &torn).unwrap();

    // --- Session 2: restart with recovery ------------------------------
    let (server, report) =
        Server::open(&path, Recovery::Repair, ServerConfig::default()).expect("recover service");
    println!(
        "recovered {} segments, dropped {} bytes of torn tail",
        report.segments_recovered, report.bytes_dropped
    );
    let mut client = server.client();
    if let Response::Distance(d) = client.call(Request::Distance {
        left: TreeRef::Id(0),
        right: TreeRef::Id(4), // the memo inserted before the crash
        at_most: f64::INFINITY,
    }) {
        println!("distance(article, memo) = {d}");
    }
    server.shutdown();
}
