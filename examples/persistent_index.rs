//! Persistent corpus walkthrough: build a corpus on disk, reload it
//! without re-analysis, update it incrementally, and query through a
//! `TreeIndex` — the restart-survival story of the serving roadmap.
//!
//! Run with: `cargo run --release --example persistent_index`

use rted::index::{CorpusFile, CorpusStore, TreeIndex};
use rted::parse_bracket;

fn main() {
    let dir = std::env::temp_dir().join(format!("rted-example-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let path = dir.join("corpus.idx");

    // --- Session 1: build and save -------------------------------------
    let trees: Vec<_> = [
        "{article{title}{authors{a}{a}}{body{sec}{sec}}}",
        "{article{title}{authors{a}}{body{sec}{sec}{sec}}}",
        "{book{title}{chapters{ch{sec}}{ch{sec}{sec}}}}",
        "{note{title}{body}}",
    ]
    .iter()
    .map(|s| parse_bracket(s).unwrap())
    .collect();
    let store = CorpusStore::create(&path, trees).expect("save corpus");
    println!(
        "saved {} trees to {} ({} bytes)",
        store.corpus().len(),
        path.display(),
        std::fs::metadata(&path).unwrap().len()
    );
    drop(store); // process "restart"

    // --- Session 2: reload (no re-analysis) and update incrementally ---
    let mut store = CorpusStore::open(&path).expect("reload corpus");
    println!("reloaded {} trees, sketches included", store.corpus().len());

    let ids = store
        .insert_all(vec![parse_bracket(
            "{article{title}{authors{a}{a}}{body{sec}}}",
        )
        .unwrap()])
        .expect("append insert segment");
    store.remove_all(&[3]).expect("append tombstone segment");
    println!(
        "inserted ids {ids:?}, removed id 3 — {} segments on disk",
        store.segment_count()
    );

    // Queries see the updated corpus; ids are stable across updates.
    let index = TreeIndex::from_corpus(store.into_corpus());
    let query = parse_bracket("{article{title}{authors{a}{a}}{body{sec}{sec}}}").unwrap();
    for n in &index.range(&query, 4.0).neighbors {
        println!("  range hit: id {} at distance {}", n.id, n.distance);
    }

    // --- Zero-copy inspection: labels borrow from the file buffer ------
    let file = CorpusFile::read(&path).expect("read file");
    let borrowed = file.corpus().expect("zero-copy decode");
    println!(
        "zero-copy view: {} live trees, header live count {}",
        borrowed.len(),
        file.header().live
    );

    let _ = std::fs::remove_dir_all(&dir);
}
