//! # rted — Robust Tree Edit Distance
//!
//! A complete Rust implementation of **RTED** (Pawlik & Augsten, *RTED: A
//! Robust Algorithm for the Tree Edit Distance*, PVLDB 5(4), 2011), together
//! with the general path-strategy executor **GTED**, the optimal LRH
//! strategy computation, and all competitor algorithms the paper evaluates
//! (Zhang–Shasha left/right, Klein, Demaine).
//!
//! This crate is a thin facade re-exporting the workspace crates:
//!
//! * [`tree`] — ordered labeled trees, paths, decompositions
//!   ([`rted_tree`]);
//! * [`core`] — cost models, algorithms, strategies ([`rted_core`]);
//! * [`datasets`] — synthetic shapes and dataset simulators
//!   ([`rted_datasets`]);
//! * [`join`] — TED similarity joins ([`rted_join`]).
//!
//! # Quick start
//!
//! ```
//! use rted::{parse_bracket, ted};
//!
//! let f = parse_bracket("{a{b}{c{d}}}").unwrap();
//! let g = parse_bracket("{a{b{d}}{c}}").unwrap();
//! // Unit-cost tree edit distance with the robust (optimal-strategy)
//! // algorithm.
//! assert_eq!(ted(&f, &g), 2.0);
//! ```

pub use rted_core as core;
pub use rted_datasets as datasets;
pub use rted_join as join;
pub use rted_tree as tree;

pub use rted_core::{
    edit_mapping, ted, Algorithm, CostModel, EditMapping, EditOp, PerLabelCost, Rted, RunStats,
    UnitCost,
};
pub use rted_tree::{parse_bracket, to_bracket, NodeId, PathKind, Tree, TreeBuilder};
