//! # rted — Robust Tree Edit Distance
//!
//! A complete Rust implementation of **RTED** (Pawlik & Augsten, *RTED: A
//! Robust Algorithm for the Tree Edit Distance*, PVLDB 5(4), 2011), together
//! with the general path-strategy executor **GTED**, the optimal LRH
//! strategy computation, and all competitor algorithms the paper evaluates
//! (Zhang–Shasha left/right, Klein, Demaine).
//!
//! This crate is a thin facade re-exporting the workspace crates:
//!
//! * [`tree`] — ordered labeled trees, paths, decompositions
//!   ([`rted_tree`]);
//! * [`core`] — cost models, algorithms, strategies ([`rted_core`]);
//! * [`datasets`] — synthetic shapes and dataset simulators
//!   ([`rted_datasets`]);
//! * [`join`] — TED similarity joins ([`rted_join`]);
//! * [`index`] — the indexed, parallel similarity-search engine over tree
//!   corpora: threshold (`range`), k-nearest-neighbour (`top_k`) and
//!   self-join queries behind staged lower-bound filters (including the
//!   serialized pq-gram stage), with optional metric-tree (vantage-point)
//!   candidate generation ([`rted_index`]);
//! * [`obs`] — lock-free, allocation-free-at-record-time metrics:
//!   counters, gauges, log₂ latency histograms, Prometheus-style text
//!   exposition ([`rted_obs`]);
//! * [`plan`] — the adaptive query planner's decision core: observed
//!   crossover between candidate generators, per-pair verifier choice,
//!   selectivity-per-cost stage ordering ([`rted_plan`]);
//! * [`serve`] — the crash-safe, long-lived query service over a
//!   persistent corpus: request queue + worker pool, torn-tail recovery
//!   on startup, background compaction, scrape-able telemetry
//!   ([`rted_serve`]).
//!
//! # Quick start
//!
//! ```
//! use rted::{parse_bracket, ted};
//!
//! let f = parse_bracket("{a{b}{c{d}}}").unwrap();
//! let g = parse_bracket("{a{b{d}}{c}}").unwrap();
//! // Unit-cost tree edit distance with the robust (optimal-strategy)
//! // algorithm.
//! assert_eq!(ted(&f, &g), 2.0);
//! ```
//!
//! # Indexed similarity search
//!
//! ```
//! use rted::index::TreeIndex;
//! use rted::parse_bracket;
//!
//! let corpus = vec![
//!     parse_bracket("{a{b}{c}}").unwrap(),
//!     parse_bracket("{a{b}{d}}").unwrap(),
//!     parse_bracket("{x{y{z{w}}}}").unwrap(),
//! ];
//! let index = TreeIndex::build(corpus);
//! let query = parse_bracket("{a{b}{c}}").unwrap();
//!
//! // All trees within distance 2 of the query, cheap filters first.
//! let hits = index.range(&query, 2.0);
//! assert_eq!(hits.neighbors.len(), 2);
//!
//! // The two nearest neighbours.
//! let knn = index.top_k(&query, 2);
//! assert_eq!(knn.neighbors[0].distance, 0.0);
//! ```

pub use rted_core as core;
pub use rted_datasets as datasets;
pub use rted_index as index;
pub use rted_join as join;
pub use rted_obs as obs;
pub use rted_plan as plan;
pub use rted_serve as serve;
pub use rted_tree as tree;

pub use rted_core::{
    edit_mapping, ted, Algorithm, CostModel, EditMapping, EditOp, PerLabelCost, Rted, RunStats,
    UnitCost,
};
pub use rted_index::TreeIndex;
pub use rted_tree::{parse_bracket, to_bracket, NodeId, PathKind, Tree, TreeBuilder};

/// Structural diffing: optimal edit mappings and resolved edit scripts.
///
/// One coherent import for the diff surface — the same types the CLI's
/// `rted diff`, the serve protocol's `{"op":"diff"}`, and
/// [`TreeIndex::diff`] traffic in:
///
/// ```
/// use rted::diff::{edit_mapping, EditScript};
/// use rted::{parse_bracket, UnitCost};
///
/// let old = parse_bracket("{a{b}{c}}").unwrap();
/// let new = parse_bracket("{a{b}{x}}").unwrap();
/// let script: EditScript = edit_mapping(&old, &new, &UnitCost).script(&old, &new);
/// assert_eq!(script.cost, 1.0);
/// assert_eq!(script.renames, 1);
/// ```
///
/// [`edit_mapping`](rted_core::edit_mapping) is a thin wrapper over
/// [`edit_mapping_in`](rted_core::edit_mapping_in) with a throwaway
/// workspace; hold a [`rted_core::Workspace`] and call the `_in` variant
/// to extract many scripts allocation-free.
pub mod diff {
    pub use rted_core::{edit_mapping, edit_mapping_in, EditMapping, EditOp, EditScript, ScriptOp};
}
