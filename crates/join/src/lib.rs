//! Tree edit distance similarity joins (§8, Table 1 of the paper).
//!
//! A similarity self-join over a collection `T` of trees matches every pair
//! `(T_i, T_j)`, `i < j`, with `TED(T_i, T_j) < τ`. The join is the
//! paper's stress test for robustness: it pairs trees of *different*
//! shapes, so any fixed decomposition strategy degenerates on some pairs
//! while RTED adapts per pair.
//!
//! A cheap size-difference lower bound (`|size(F) − size(G)| ≤ TED` under
//! unit costs) can optionally prune pairs before the exact computation; the
//! paper's experiment computes all pairs, which remains the default.

use rted_core::{Algorithm, CostModel, RunStats};
use rted_tree::Tree;
use std::time::{Duration, Instant};

/// One matched pair of a join.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JoinMatch {
    /// Index of the first tree in the input collection.
    pub left: usize,
    /// Index of the second tree (always > `left`).
    pub right: usize,
    /// Their tree edit distance.
    pub distance: f64,
}

/// Aggregate result of a similarity self-join.
#[derive(Debug, Clone)]
pub struct JoinResult {
    /// Pairs within the threshold.
    pub matches: Vec<JoinMatch>,
    /// Total number of pairs compared exactly.
    pub pairs_computed: usize,
    /// Pairs skipped by the size lower bound (0 unless pruning enabled).
    pub pairs_pruned: usize,
    /// Total relevant subproblems computed over all pairs.
    pub subproblems: u64,
    /// Total wall-clock time of the distance computations.
    pub time: Duration,
}

/// Configuration of a similarity self-join.
#[derive(Debug, Clone, Copy)]
pub struct JoinConfig {
    /// Distance threshold: pairs with `TED < tau` match.
    pub tau: f64,
    /// Algorithm used for the exact distances.
    pub algorithm: Algorithm,
    /// Skip pairs whose size difference already exceeds `tau` (valid for
    /// cost models with all delete/insert costs ≥ 1, e.g. unit costs).
    pub size_prune: bool,
}

impl Default for JoinConfig {
    fn default() -> Self {
        JoinConfig { tau: f64::INFINITY, algorithm: Algorithm::Rted, size_prune: false }
    }
}

/// Runs a similarity self-join over `trees` under `config`.
pub fn self_join<L, C: CostModel<L>>(
    trees: &[Tree<L>],
    cm: &C,
    config: &JoinConfig,
) -> JoinResult {
    let mut matches = Vec::new();
    let mut pairs_computed = 0usize;
    let mut pairs_pruned = 0usize;
    let mut subproblems = 0u64;
    let start = Instant::now();
    for i in 0..trees.len() {
        for j in i + 1..trees.len() {
            if config.size_prune {
                let diff = (trees[i].len() as f64 - trees[j].len() as f64).abs();
                if diff >= config.tau {
                    pairs_pruned += 1;
                    continue;
                }
            }
            let run: RunStats = config.algorithm.run(&trees[i], &trees[j], cm);
            pairs_computed += 1;
            subproblems += run.subproblems;
            if run.distance < config.tau {
                matches.push(JoinMatch { left: i, right: j, distance: run.distance });
            }
        }
    }
    JoinResult { matches, pairs_computed, pairs_pruned, subproblems, time: start.elapsed() }
}

/// Total *predicted* subproblems of a self-join under `algorithm` (via the
/// Fig.-5 cost formula; no distances computed). This is the analytic
/// counterpart of [`JoinResult::subproblems`].
pub fn predicted_join_subproblems<L>(trees: &[Tree<L>], algorithm: Algorithm) -> u64 {
    let mut total = 0u64;
    for i in 0..trees.len() {
        for j in i + 1..trees.len() {
            total += algorithm.predicted_subproblems(&trees[i], &trees[j]);
        }
    }
    total
}

/// Similarity self-join with label-histogram pruning (§7's bound idea):
/// precomputes one label multiset per tree and skips every pair whose
/// combined size/histogram lower bound already reaches `tau`.
///
/// Sound for cost models where deletes/inserts cost ≥ 1 and renames of
/// distinct labels cost ≥ 1 (e.g. unit costs).
pub fn self_join_pruned<L, C>(trees: &[Tree<L>], cm: &C, tau: f64, algorithm: Algorithm) -> JoinResult
where
    L: Eq + std::hash::Hash + Clone,
    C: CostModel<L>,
{
    use rted_core::bounds::LabelHistogram;
    let histograms: Vec<LabelHistogram<L>> = trees.iter().map(LabelHistogram::new).collect();
    let mut matches = Vec::new();
    let mut pairs_computed = 0usize;
    let mut pairs_pruned = 0usize;
    let mut subproblems = 0u64;
    let start = Instant::now();
    for i in 0..trees.len() {
        for j in i + 1..trees.len() {
            let lb = histograms[i].lower_bound(&histograms[j]);
            if lb >= tau {
                pairs_pruned += 1;
                continue;
            }
            let run = algorithm.run(&trees[i], &trees[j], cm);
            pairs_computed += 1;
            subproblems += run.subproblems;
            if run.distance < tau {
                matches.push(JoinMatch { left: i, right: j, distance: run.distance });
            }
        }
    }
    JoinResult { matches, pairs_computed, pairs_pruned, subproblems, time: start.elapsed() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rted_core::UnitCost;
    use rted_datasets::shapes::{perturb_labels, Shape, DEFAULT_ALPHABET};

    fn sample_trees() -> Vec<rted_tree::Tree<u32>> {
        let base = Shape::Random.generate(40, 1);
        vec![
            base.clone(),
            perturb_labels(&base, 2, DEFAULT_ALPHABET, 7),
            Shape::LeftBranch.generate(40, 2),
            Shape::RightBranch.generate(40, 3),
            Shape::FullBinary.generate(15, 4),
        ]
    }

    #[test]
    fn join_finds_close_pairs() {
        let trees = sample_trees();
        let cfg = JoinConfig { tau: 4.0, algorithm: Algorithm::Rted, size_prune: false };
        let res = self_join(&trees, &UnitCost, &cfg);
        assert_eq!(res.pairs_computed, 10);
        // The perturbed copy must match its base.
        assert!(res.matches.iter().any(|m| m.left == 0 && m.right == 1));
        // The small FB tree is far from everything of size 40.
        assert!(!res.matches.iter().any(|m| m.right == 4 && m.distance >= 4.0));
    }

    #[test]
    fn all_algorithms_same_matches() {
        let trees = sample_trees();
        let base = self_join(
            &trees,
            &UnitCost,
            &JoinConfig { tau: 10.0, algorithm: Algorithm::ZhangL, size_prune: false },
        );
        for alg in Algorithm::ALL {
            let res = self_join(
                &trees,
                &UnitCost,
                &JoinConfig { tau: 10.0, algorithm: alg, size_prune: false },
            );
            assert_eq!(res.matches, base.matches, "{alg}");
        }
    }

    #[test]
    fn size_pruning_preserves_matches() {
        let trees = sample_trees();
        let full = self_join(
            &trees,
            &UnitCost,
            &JoinConfig { tau: 5.0, algorithm: Algorithm::Rted, size_prune: false },
        );
        let pruned = self_join(
            &trees,
            &UnitCost,
            &JoinConfig { tau: 5.0, algorithm: Algorithm::Rted, size_prune: true },
        );
        assert_eq!(full.matches, pruned.matches);
        assert!(pruned.pairs_pruned > 0);
        assert_eq!(pruned.pairs_computed + pruned.pairs_pruned, 10);
    }

    #[test]
    fn histogram_pruned_join_preserves_matches() {
        let trees = sample_trees();
        let full = self_join(
            &trees,
            &UnitCost,
            &JoinConfig { tau: 6.0, algorithm: Algorithm::Rted, size_prune: false },
        );
        let pruned = self_join_pruned(&trees, &UnitCost, 6.0, Algorithm::Rted);
        assert_eq!(full.matches, pruned.matches);
        // The histogram bound dominates the size bound, so it prunes at
        // least as many pairs.
        let size_only = self_join(
            &trees,
            &UnitCost,
            &JoinConfig { tau: 6.0, algorithm: Algorithm::Rted, size_prune: true },
        );
        assert!(pruned.pairs_pruned >= size_only.pairs_pruned);
    }

    #[test]
    fn measured_subproblems_match_predicted() {
        let trees = sample_trees();
        for alg in Algorithm::ALL {
            let res = self_join(
                &trees,
                &UnitCost,
                &JoinConfig { tau: 1.0, algorithm: alg, size_prune: false },
            );
            let predicted = predicted_join_subproblems(&trees, alg);
            assert_eq!(res.subproblems, predicted, "{alg}");
        }
    }
}
