//! Tree edit distance similarity joins (§8, Table 1 of the paper).
//!
//! A similarity self-join over a collection `T` of trees matches every pair
//! `(T_i, T_j)`, `i < j`, with `TED(T_i, T_j) < τ`. The join is the
//! paper's stress test for robustness: it pairs trees of *different*
//! shapes, so any fixed decomposition strategy degenerates on some pairs
//! while RTED adapts per pair.
//!
//! This crate is now a thin compatibility layer over the
//! [`rted_index`] search engine: [`self_join`] builds a [`TreeIndex`]
//! (analyzing each tree once), picks a filter pipeline matching the
//! requested pruning mode, and runs the index's sorted-by-size join.
//! Function signatures and result semantics are unchanged — with pruning
//! off every pair is verified exactly, and execution stays serial so the
//! wall-clock numbers of the paper-reproduction binaries (Table 1,
//! Fig. 8) remain comparable to the paper's single-threaded
//! measurements — but the trait bounds tightened (`L: Send + Sync +
//! 'static`, `C: Sync`) because the engine is built for scoped threads.
//!
//! Each call clones the slice into a fresh index and analyzes it; for
//! repeated joins, parallel execution, or mixed query workloads over the
//! same corpus, build one [`TreeIndex`] directly and reuse it.

use rted_core::{Algorithm, CostModel};
use rted_index::{AlgorithmVerifier, ExecPolicy, FilterPipeline, JoinOutcome, TreeIndex};
use rted_tree::Tree;
use std::time::Duration;

/// One matched pair of a join.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JoinMatch {
    /// Index of the first tree in the input collection.
    pub left: usize,
    /// Index of the second tree (always > `left`).
    pub right: usize,
    /// Their tree edit distance.
    pub distance: f64,
}

/// Aggregate result of a similarity self-join.
#[derive(Debug, Clone)]
pub struct JoinResult {
    /// Pairs within the threshold.
    pub matches: Vec<JoinMatch>,
    /// Total number of pairs compared exactly.
    pub pairs_computed: usize,
    /// Pairs skipped by the size lower bound (0 unless pruning enabled).
    pub pairs_pruned: usize,
    /// Total relevant subproblems computed over all pairs.
    pub subproblems: u64,
    /// Total wall-clock time of the distance computations.
    pub time: Duration,
}

/// Configuration of a similarity self-join.
#[derive(Debug, Clone, Copy)]
pub struct JoinConfig {
    /// Distance threshold: pairs with `TED < tau` match.
    pub tau: f64,
    /// Algorithm used for the exact distances.
    pub algorithm: Algorithm,
    /// Skip pairs whose size difference already exceeds `tau` (valid for
    /// cost models with all delete/insert costs ≥ 1, e.g. unit costs).
    pub size_prune: bool,
}

impl Default for JoinConfig {
    fn default() -> Self {
        JoinConfig {
            tau: f64::INFINITY,
            algorithm: Algorithm::Rted,
            size_prune: false,
        }
    }
}

/// Converts an index [`JoinOutcome`] into the legacy [`JoinResult`].
fn outcome_to_result(outcome: JoinOutcome) -> JoinResult {
    JoinResult {
        matches: outcome
            .matches
            .iter()
            .map(|m| JoinMatch {
                left: m.left,
                right: m.right,
                distance: m.distance,
            })
            .collect(),
        pairs_computed: outcome.stats.verified,
        pairs_pruned: outcome.stats.filter.total_pruned() as usize,
        subproblems: outcome.stats.subproblems,
        time: outcome.stats.time,
    }
}

/// Runs a similarity self-join over `trees` under `config`.
///
/// Implemented on the [`rted_index`] engine: trees are analyzed once into
/// a corpus and the join traverses them in size order (so the optional
/// size bound early-breaks instead of testing every pair). Execution is
/// deliberately single-threaded so timings stay comparable to the
/// paper's serial measurements — build a [`TreeIndex`] directly for
/// parallel joins. Matches are reported sorted by `(left, right)` — the
/// same order as the historical nested-loop scan.
pub fn self_join<L, C>(trees: &[Tree<L>], cm: &C, config: &JoinConfig) -> JoinResult
where
    L: Eq + std::hash::Hash + Clone + Send + Sync + 'static,
    C: CostModel<L> + Sync,
{
    let pipeline = if config.size_prune {
        FilterPipeline::size_only()
    } else {
        FilterPipeline::none()
    };
    // Serial on purpose: this wrapper backs the paper-reproduction
    // binaries (Table 1, Fig. 8), whose wall-clock numbers must stay
    // comparable to the single-threaded measurements of the paper. Build
    // a TreeIndex directly for parallel joins.
    let index = TreeIndex::build(trees.iter().cloned())
        .with_pipeline(pipeline)
        .with_policy(ExecPolicy::serial());
    let verifier = AlgorithmVerifier {
        algorithm: config.algorithm,
        cost_model: cm,
    };
    outcome_to_result(index.join_with(config.tau, &verifier))
}

/// Total *predicted* subproblems of a self-join under `algorithm` (via the
/// Fig.-5 cost formula; no distances computed). This is the analytic
/// counterpart of [`JoinResult::subproblems`].
pub fn predicted_join_subproblems<L>(trees: &[Tree<L>], algorithm: Algorithm) -> u64 {
    // One workspace serves every pair: after the first strategy run the
    // whole sweep is allocation-free.
    let mut ws = rted_core::Workspace::new();
    let mut total = 0u64;
    for i in 0..trees.len() {
        for j in i + 1..trees.len() {
            total += algorithm.predicted_subproblems_in(&trees[i], &trees[j], &mut ws);
        }
    }
    total
}

/// Similarity self-join with the full filter pipeline (§7's bound idea):
/// every pair runs the staged lower bounds — size, depth, leaf, degree,
/// label histogram — and only survivors are verified exactly.
///
/// Sound for cost models where deletes/inserts cost ≥ 1 and renames of
/// distinct labels cost ≥ 1 (e.g. unit costs).
pub fn self_join_pruned<L, C>(
    trees: &[Tree<L>],
    cm: &C,
    tau: f64,
    algorithm: Algorithm,
) -> JoinResult
where
    L: Eq + std::hash::Hash + Clone + Send + Sync + 'static,
    C: CostModel<L> + Sync,
{
    // Serial for the same timing-comparability reason as `self_join`.
    let index = TreeIndex::build(trees.iter().cloned()).with_policy(ExecPolicy::serial());
    let verifier = AlgorithmVerifier {
        algorithm,
        cost_model: cm,
    };
    outcome_to_result(index.join_with(tau, &verifier))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rted_core::UnitCost;
    use rted_datasets::shapes::{perturb_labels, Shape, DEFAULT_ALPHABET};

    fn sample_trees() -> Vec<rted_tree::Tree<u32>> {
        let base = Shape::Random.generate(40, 1);
        vec![
            base.clone(),
            perturb_labels(&base, 2, DEFAULT_ALPHABET, 7),
            Shape::LeftBranch.generate(40, 2),
            Shape::RightBranch.generate(40, 3),
            Shape::FullBinary.generate(15, 4),
        ]
    }

    #[test]
    fn join_finds_close_pairs() {
        let trees = sample_trees();
        let cfg = JoinConfig {
            tau: 4.0,
            algorithm: Algorithm::Rted,
            size_prune: false,
        };
        let res = self_join(&trees, &UnitCost, &cfg);
        assert_eq!(res.pairs_computed, 10);
        // The perturbed copy must match its base.
        assert!(res.matches.iter().any(|m| m.left == 0 && m.right == 1));
        // The small FB tree is far from everything of size 40.
        assert!(!res
            .matches
            .iter()
            .any(|m| m.right == 4 && m.distance >= 4.0));
    }

    #[test]
    fn all_algorithms_same_matches() {
        let trees = sample_trees();
        let base = self_join(
            &trees,
            &UnitCost,
            &JoinConfig {
                tau: 10.0,
                algorithm: Algorithm::ZhangL,
                size_prune: false,
            },
        );
        for alg in Algorithm::ALL {
            let res = self_join(
                &trees,
                &UnitCost,
                &JoinConfig {
                    tau: 10.0,
                    algorithm: alg,
                    size_prune: false,
                },
            );
            assert_eq!(res.matches, base.matches, "{alg}");
        }
    }

    #[test]
    fn size_pruning_preserves_matches() {
        let trees = sample_trees();
        let full = self_join(
            &trees,
            &UnitCost,
            &JoinConfig {
                tau: 5.0,
                algorithm: Algorithm::Rted,
                size_prune: false,
            },
        );
        let pruned = self_join(
            &trees,
            &UnitCost,
            &JoinConfig {
                tau: 5.0,
                algorithm: Algorithm::Rted,
                size_prune: true,
            },
        );
        assert_eq!(full.matches, pruned.matches);
        assert!(pruned.pairs_pruned > 0);
        assert_eq!(pruned.pairs_computed + pruned.pairs_pruned, 10);
    }

    #[test]
    fn histogram_pruned_join_preserves_matches() {
        let trees = sample_trees();
        let full = self_join(
            &trees,
            &UnitCost,
            &JoinConfig {
                tau: 6.0,
                algorithm: Algorithm::Rted,
                size_prune: false,
            },
        );
        let pruned = self_join_pruned(&trees, &UnitCost, 6.0, Algorithm::Rted);
        assert_eq!(full.matches, pruned.matches);
        // The histogram bound dominates the size bound, so it prunes at
        // least as many pairs.
        let size_only = self_join(
            &trees,
            &UnitCost,
            &JoinConfig {
                tau: 6.0,
                algorithm: Algorithm::Rted,
                size_prune: true,
            },
        );
        assert!(pruned.pairs_pruned >= size_only.pairs_pruned);
    }

    #[test]
    fn measured_subproblems_match_predicted() {
        let trees = sample_trees();
        for alg in Algorithm::ALL {
            let res = self_join(
                &trees,
                &UnitCost,
                &JoinConfig {
                    tau: 1.0,
                    algorithm: alg,
                    size_prune: false,
                },
            );
            let predicted = predicted_join_subproblems(&trees, alg);
            assert_eq!(res.subproblems, predicted, "{alg}");
        }
    }
}
