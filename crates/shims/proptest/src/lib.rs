//! Offline shim for the subset of the `proptest` crate API used in this
//! workspace.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal property-testing harness with the same surface the
//! tests use: the [`proptest!`] macro, [`prelude::Strategy`] with
//! `prop_map`/`prop_flat_map`, [`prelude::any`], integer-range and tuple
//! strategies, and [`collection::vec`]. Failing cases panic with the seed
//! of the failing iteration; there is no shrinking.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The per-test RNG handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    rng: StdRng,
}

impl TestRng {
    /// A deterministic RNG for case number `case` of test `name`.
    pub fn for_case(name: &str, case: u32) -> TestRng {
        // FNV-1a over the test name, mixed with the case index, so every
        // test gets an independent deterministic stream.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            rng: StdRng::seed_from_u64(h ^ ((case as u64) << 32 | 0x9e37_79b9)),
        }
    }

    /// The next random word.
    pub fn next_u64(&mut self) -> u64 {
        use rand::RngCore;
        self.rng.next_u64()
    }

    /// A uniform sample from an integer range.
    pub fn sample<T, R: rand::SampleRange<T>>(&mut self, range: R) -> T {
        self.rng.random_range(range)
    }
}

/// Test-runner configuration (`cases` = iterations per property).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` iterations.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Runs `body` for every case, reporting the failing case on panic.
pub fn run_property(name: &str, config: ProptestConfig, mut body: impl FnMut(&mut TestRng)) {
    for case in 0..config.cases {
        let mut rng = TestRng::for_case(name, case);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(payload) = result {
            eprintln!(
                "proptest shim: property `{name}` failed at case {case}/{}",
                config.cases
            );
            std::panic::resume_unwind(payload);
        }
    }
}

pub mod strategy {
    use super::TestRng;

    /// A generator of values of type `Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` returns.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Keeps only values satisfying `f` (re-draws up to a retry cap).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: &'static str,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                f,
                whence,
            }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
        pub(crate) whence: &'static str,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter `{}` rejected 1000 draws in a row", self.whence);
        }
    }

    /// `any::<T>()` — the full value range of `T`.
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// A strategy over the whole of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.sample(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.sample(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);

    /// `Just(v)` — always generates clones of `v`.
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Lengths acceptable to [`vec`]: a fixed size or a range of sizes.
    pub trait IntoLenRange {
        /// Resolves to concrete `(min, max)` bounds (inclusive).
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoLenRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoLenRange for std::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end.saturating_sub(1))
        }
    }

    impl IntoLenRange for std::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// A strategy generating `Vec`s of elements of `S`.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// `vec(element, len)` — vectors with `len` elements (or a length drawn
    /// from a range).
    pub fn vec<S: Strategy>(element: S, len: impl IntoLenRange) -> VecStrategy<S> {
        let (min, max) = len.bounds();
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.min >= self.max {
                self.min
            } else {
                rng.sample(self.min..=self.max)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Any, Arbitrary, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, TestRng};
}

/// Asserts a condition inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests: each `fn name(binding in strategy, ...) { .. }`
/// becomes a `#[test]` running the body over random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @cfg ($cfg) $($rest)* }
    };
    (@cfg ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let shim_cfg: $crate::ProptestConfig = $cfg;
                $crate::run_property(stringify!($name), shim_cfg, |shim_rng| {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), shim_rng);)+
                    $body
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair(max: usize) -> impl Strategy<Value = (usize, Vec<u8>)> {
        (1..=max).prop_flat_map(|n| (Just(n), collection::vec(0u8..5, n)))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn vec_len_matches(p in arb_pair(20)) {
            let (n, v) = p;
            prop_assert_eq!(v.len(), n);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn ranges_in_bounds(x in 3..10usize, y in 0u8..2) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y < 2);
        }
    }
}
