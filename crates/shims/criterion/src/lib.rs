//! Offline shim for the subset of the `criterion` crate API used by the
//! workspace benchmarks.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal harness: each `bench_with_input` runs a short warm-up,
//! then `sample_size` timed samples, and prints the mean/min/max per
//! iteration. No statistics, plots, or baselines — just honest wall-clock
//! numbers so `cargo bench` produces comparable output offline.
//!
//! Three environment variables drive CI integration:
//!
//! * `RTED_BENCH_QUICK` — any value but `0` caps every benchmark at 2
//!   samples, turning `cargo bench` into a smoke test that still exercises
//!   each measured code path.
//! * `RTED_BENCH_JSON_DIR` — when set, results are additionally written to
//!   `<dir>/BENCH_<binary>.json` (one JSON array per bench binary, rewritten
//!   after every benchmark so a crash mid-run still leaves the completed
//!   records), letting CI upload machine-readable perf artifacts per PR.
//! * `RTED_BENCH_FILTER` — when set, only benchmarks whose
//!   `group/function/parameter` label contains the substring run (the
//!   rest are skipped silently), so a tight-threshold gate can afford
//!   full sample counts on just the benchmarks it compares.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One completed benchmark measurement (for the JSON report).
struct Record {
    group: String,
    bench: String,
    mean_ns: u128,
    min_ns: u128,
    max_ns: u128,
    samples: usize,
}

/// Records completed so far by this bench binary.
static RECORDS: Mutex<Vec<Record>> = Mutex::new(Vec::new());

fn quick_mode() -> bool {
    std::env::var("RTED_BENCH_QUICK")
        .map(|v| v != "0")
        .unwrap_or(false)
}

/// Whether `RTED_BENCH_FILTER` (a substring of `group/label`) excludes
/// this benchmark. No filter = everything runs.
fn filtered_out(group: &str, label: &str) -> bool {
    match std::env::var("RTED_BENCH_FILTER") {
        Ok(filter) if !filter.is_empty() => !format!("{group}/{label}").contains(&filter),
        _ => false,
    }
}

/// `BENCH_<name>.json` target for this process, derived from the bench
/// binary's name with cargo's trailing `-<hash>` stripped.
fn json_path() -> Option<std::path::PathBuf> {
    let dir = std::env::var_os("RTED_BENCH_JSON_DIR")?;
    let exe = std::env::current_exe().ok()?;
    let stem = exe.file_stem()?.to_string_lossy().into_owned();
    let name = match stem.rsplit_once('-') {
        Some((head, tail)) if tail.len() == 16 && tail.bytes().all(|b| b.is_ascii_hexdigit()) => {
            head.to_string()
        }
        _ => stem,
    };
    Some(std::path::Path::new(&dir).join(format!("BENCH_{name}.json")))
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Rewrites the full JSON report (if configured) with every record so far.
fn write_json_report() {
    let Some(path) = json_path() else { return };
    let records = RECORDS.lock().unwrap();
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"group\": \"{}\", \"bench\": \"{}\", \"mean_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \"samples\": {}}}{}\n",
            json_escape(&r.group),
            json_escape(&r.bench),
            r.mean_ns,
            r.min_ns,
            r.max_ns,
            r.samples,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    out.push_str("]\n");
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("criterion shim: cannot write {}: {e}", path.display());
    }
}

/// The benchmark driver handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== group: {name} ==");
        BenchmarkGroup {
            _crit: self,
            name: name.to_string(),
            sample_size: 20,
        }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    _crit: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (capped at 2 in quick mode).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    fn effective_samples(&self) -> usize {
        if quick_mode() {
            self.sample_size.min(2)
        } else {
            self.sample_size
        }
    }

    /// Runs one benchmark identified by `id` with a borrowed `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        if filtered_out(&self.name, &id.label) {
            return self;
        }
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.effective_samples(),
        };
        f(&mut b, input);
        b.report(&self.name, &id.label);
        self
    }

    /// Runs one benchmark with no input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        if filtered_out(&self.name, &id.label) {
            return self;
        }
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.effective_samples(),
        };
        f(&mut b);
        b.report(&self.name, &id.label);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` identifier.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// An identifier from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

/// Times closures for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `f` repeatedly: a warm-up pass, then `sample_size` timed runs.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(f());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, group: &str, label: &str) {
        if self.samples.is_empty() {
            println!("{label:<40} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().unwrap();
        let max = self.samples.iter().max().unwrap();
        println!(
            "{label:<40} mean {mean:>12?}   min {min:>12?}   max {max:>12?}   ({} samples)",
            self.samples.len()
        );
        RECORDS.lock().unwrap().push(Record {
            group: group.to_string(),
            bench: label.to_string(),
            mean_ns: mean.as_nanos(),
            min_ns: min.as_nanos(),
            max_ns: max.as_nanos(),
            samples: self.samples.len(),
        });
        write_json_report();
    }
}

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// Declares a group function running each benchmark target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
