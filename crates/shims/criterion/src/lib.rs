//! Offline shim for the subset of the `criterion` crate API used by the
//! workspace benchmarks.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal harness: each `bench_with_input` runs a short warm-up,
//! then `sample_size` timed samples, and prints the mean/min/max per
//! iteration. No statistics, plots, or baselines — just honest wall-clock
//! numbers so `cargo bench` produces comparable output offline.

use std::time::{Duration, Instant};

/// The benchmark driver handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== group: {name} ==");
        BenchmarkGroup {
            _crit: self,
            sample_size: 20,
        }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    _crit: &'c mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark identified by `id` with a borrowed `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        b.report(&id.label);
        self
    }

    /// Runs one benchmark with no input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        b.report(&id.label);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` identifier.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// An identifier from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

/// Times closures for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `f` repeatedly: a warm-up pass, then `sample_size` timed runs.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(f());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("{label:<40} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().unwrap();
        let max = self.samples.iter().max().unwrap();
        println!(
            "{label:<40} mean {mean:>12?}   min {min:>12?}   max {max:>12?}   ({} samples)",
            self.samples.len()
        );
    }
}

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// Declares a group function running each benchmark target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
