//! Offline shim for the subset of the `rand` crate API used in this
//! workspace.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a tiny, dependency-free stand-in: [`rngs::StdRng`] is a
//! xoshiro256** generator seeded through SplitMix64 (the same seeding
//! scheme the real `rand` uses for `seed_from_u64`), and [`RngExt`]
//! provides `random_range` over integer ranges. Streams are deterministic
//! in the seed, which is all the repository's generators and tests rely
//! on; the exact values differ from upstream `rand`.

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from integer seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (SplitMix64 state expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range-sampling extension methods (the shim's analogue of `rand::Rng`).
pub trait RngExt: RngCore + Sized {
    /// A uniform sample from `range`. Panics if the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + Sized> RngExt for R {}

/// A range that can produce uniform samples of `T`.
pub trait SampleRange<T> {
    /// Draws one sample from `rng`.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Lemire's multiply-shift maps next_u64 uniformly onto the
                // span (bias < 2^-64, irrelevant for test workloads).
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (end as u128).wrapping_sub(start as u128) as u64 + 1;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                start.wrapping_add(hi as $t)
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The shim's standard generator: xoshiro256** with SplitMix64 seeding.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0..1000usize), b.random_range(0..1000usize));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.random_range(10..20u32);
            assert!((10..20).contains(&x));
            let y = rng.random_range(5..=6usize);
            assert!((5..=6).contains(&y));
        }
    }

    #[test]
    fn covers_the_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.random_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
