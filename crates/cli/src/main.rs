//! `rted` — command-line tree edit distance.
//!
//! ```text
//! rted distance  <TREE1> <TREE2> [--xml] [--algorithm NAME] [--costs D,I,R]
//! rted compare   <TREE1> <TREE2> [--xml]
//! rted diff      <TREE1> <TREE2> [--xml] [--costs D,I,R] [--format text|json]
//! rted diff      --index INDEX <ID1> <ID2> [--format text|json]
//! rted generate  <SHAPE> <N> [--seed S]
//! rted join      <FILE> [--tau T] [--algorithm NAME] [--threads N] [--no-filter]
//!                [--pq P,Q] [--no-metric-tree] [--no-planner]
//! rted search    <FILE> <QUERY> [--tau T] [--algorithm NAME] [--threads N] [--no-filter]
//!                [--pq P,Q] [--no-metric-tree] [--no-planner]
//! rted topk      <FILE> <QUERY> [--k K] [--algorithm NAME] [--threads N] [--no-filter]
//!                [--pq P,Q] [--no-metric-tree] [--no-planner]
//! rted index build   <INDEX> <FILE> [--format-version 1|2]
//! rted index update  <INDEX> [--add FILE] [--remove IDS]... [--compact]
//! rted index compact <INDEX>
//! rted index repair  <INDEX>
//! rted index info    <INDEX>
//! rted index dump    <INDEX>
//! rted serve   [--index INDEX | FILE] [--socket PATH] [--tcp ADDR]
//!              [--auth-token TOKEN] [--shards N] [--timeout-ms MS]
//!              [--workers N] [--threads N] [--compact-frac F] [--strict]
//!              [--metric-tree] [--slow-ms MS] [--no-planner]
//! rted query   (--socket PATH | --tcp ADDR) [--auth-token TOKEN]
//!              [--explain [--tau T]]
//! rted metrics (--socket PATH | --tcp ADDR) [--auth-token TOKEN] [--json]
//! ```
//!
//! Trees are given inline in bracket notation (`{a{b}{c}}`) or as file
//! paths; `--xml` parses the inputs as XML documents instead.
//!
//! `rted diff` prints the optimal edit script turning TREE1 into TREE2:
//! one `delete`/`insert`/`rename`/`keep` line per node (`--format json`
//! emits the serve protocol's `diff` response line instead — same bytes
//! a `{"op":"diff"}` request gets). With `--index` the operands are two
//! corpus tree ids of a persistent index and the script is unit-cost
//! (`mapping` is the legacy alias for `diff`). `<FILE>` for
//! `join`, `search` and `topk` holds one bracket tree per line and is
//! loaded into an in-memory [`rted_index::TreeIndex`]; alternatively
//! `--index <INDEX>` loads a persistent corpus built with `rted index
//! build` (then `join` takes no positional argument and `search`/`topk`
//! take only the query). `<SHAPE>` is one of `lb rb fb zz mx random`.
//!
//! `rted serve` runs the long-lived query service (`rted-serve`): one
//! newline-delimited JSON request per line over stdin/stdout, a Unix
//! socket (`--socket`), and/or a TCP listener (`--tcp ADDR`, which may
//! coexist with `--socket`; stdio is used only when neither is given) —
//! `rted query` is the matching line-pipe client for both. TCP
//! connections can be gated by a shared secret (`--auth-token`, or the
//! `RTED_AUTH_TOKEN` environment variable): the first line of each
//! connection must be the token, otherwise the connection is answered
//! with one error line and dropped. `--timeout-ms` applies per-connection
//! read/write timeouts so a stalled peer cannot pin a connection thread
//! forever. `--shards N` stripes the corpus over N independent index
//! shards (global id `g` lives on shard `g % N`): queries scatter-gather
//! with answers byte-identical to 1-shard serving, and mutations,
//! snapshots and compaction proceed per shard. With
//! `--index` the service is durable and **recovers the corpus on
//! startup** (shard `k > 0` lives at `INDEX.shard{k}`), repairing files
//! torn by a crash mid-update (tail-scan salvage) unless `--strict`
//! demands fully consistent files; what was recovered is reported on
//! stderr. `rted index repair` performs the same salvage as a one-shot
//! offline command.
//!
//! `rted metrics` scrapes a running service's telemetry (`metrics`
//! request): Prometheus text exposition by default, the raw JSON
//! response line with `--json`. With `--slow-ms` the serve front-end
//! logs every request whose wall time (queue wait included) crosses the
//! threshold to stderr, carrying the request's `id` when one was given.
//!
//! The adaptive query planner (`rted-plan`) steers candidate
//! generation, verifier choice, and filter-stage order per query; it is
//! answer-invariant and **on by default** for the query commands and
//! `rted serve` — `--no-planner` pins the fixed configuration instead.
//! `rted query --explain` asks a running service what it would plan
//! (`{"op":"explain"}`, `--tau T` for a budgeted query), and `rted
//! index info --stats` prints the planner's decision report and the
//! observed per-algorithm cost model alongside the pipeline probe.
//!
//! Every failure — malformed trees, missing files, unknown or
//! valueless flags, corrupt or version-mismatched index files — exits
//! with code 1 and a one-line `error: ...` message on stderr; a missing
//! or unknown *command* prints the usage text and exits with code 2.

use rted_core::mapping::edit_mapping;
use rted_core::{Algorithm, PerLabelCost, UnitCost, Workspace};
use rted_datasets::xml::parse_xml;
use rted_datasets::Shape;
use rted_index::{CorpusFile, CorpusStore, SearchStats, TreeIndex};
use rted_tree::{parse_bracket, to_bracket, Tree};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  \
         rted distance <TREE1> <TREE2> [--xml] [--algorithm NAME] [--costs D,I,R]\n  \
         \x20             [--at-most T]\n  \
         rted compare  <TREE1> <TREE2> [--xml]\n  \
         rted diff     <TREE1> <TREE2> [--xml] [--costs D,I,R] [--format text|json]\n  \
         rted diff     --index INDEX <ID1> <ID2> [--format text|json]\n  \
         rted generate <SHAPE> <N> [--seed S]\n  \
         rted join     <FILE> [--tau T] [--algorithm NAME] [--threads N] [--no-filter]\n  \
         rted search   <FILE> <QUERY> [--tau T] [--algorithm NAME] [--threads N] [--no-filter]\n  \
         rted topk     <FILE> <QUERY> [--k K] [--algorithm NAME] [--threads N] [--no-filter]\n  \
         rted index build   <INDEX> <FILE> [--format-version 1|2]\n  \
         rted index update  <INDEX> [--add FILE] [--remove IDS]... [--compact]\n  \
         rted index compact <INDEX>\n  \
         rted index repair  <INDEX>\n  \
         rted index info    <INDEX> [--stats]\n  \
         rted index dump    <INDEX>\n  \
         rted serve    [--index INDEX | FILE] [--socket PATH] [--tcp ADDR]\n  \
         \x20             [--auth-token TOKEN] [--shards N] [--timeout-ms MS]\n  \
         \x20             [--workers N] [--threads N] [--compact-frac F] [--strict]\n  \
         \x20             [--metric-tree] [--slow-ms MS] [--no-planner]\n  \
         rted query    (--socket PATH | --tcp ADDR) [--auth-token TOKEN]\n  \
         \x20             [--explain [--tau T]]\n  \
         rted metrics  (--socket PATH | --tcp ADDR) [--auth-token TOKEN] [--json]\n\n\
         join/search/topk also accept --index <INDEX> in place of <FILE>, plus\n\
         --pq P,Q (re-profile with those gram lengths), --no-metric-tree\n\
         (linear size-window scan instead of the vantage-point tree), and\n\
         --no-planner (fixed candidate generator / verifier / stage order\n\
         instead of the adaptive query planner; answers are identical).\n\
         serve/query speak one JSON request per line (see README); ops: range |\n\
         topk | distance | diff (single or batched pairs) | join | insert |\n\
         remove | status | compact | metrics | explain | shutdown. serve\n\
         --index recovers (and repairs) the corpus on startup, a FILE serves\n\
         from memory only.\n\
         serve --tcp listens on ADDR (may coexist with --socket); --auth-token\n\
         (or RTED_AUTH_TOKEN) gates TCP connections on a shared-secret first\n\
         line; --shards N stripes the corpus over N snapshot-isolated shards\n\
         with scatter-gather queries (answers identical to 1 shard).\n\
         serve --slow-ms logs slow requests to stderr; metrics scrapes the\n\
         service's telemetry (Prometheus text, or the raw line with --json).\n\
         query --explain asks the service for its current query plan (one\n\
         {{\"op\":\"explain\"}} round-trip; --tau T plans a budgeted query).\n\
         index info --stats probes the filter pipeline and prints per-stage\n\
         prune counts, hit rates, and the planner's decision report.\n\
         distance --at-most T runs the band-limited kernel: prints the\n\
         exact distance when it is <= T, else `exceeds B` with a certified\n\
         lower bound B, usually long before the full computation.\n\
         NAME: rted (default) | zhang-l | zhang-r | klein-h | demaine-h\n\
         SHAPE: lb | rb | fb | zz | mx | random\n\
         TREE/QUERY: inline bracket notation or a file path\n\
         FILE: one bracket tree per line (an indexed corpus)\n\
         INDEX: a persistent corpus file (`rted index build`)\n\
         IDS: comma-separated tree ids, e.g. --remove 3,17"
    );
    ExitCode::from(2)
}

/// Flags that consume the following argument as their value.
const VALUE_FLAGS: &[&str] = &[
    "algorithm",
    "costs",
    "seed",
    "tau",
    "k",
    "threads",
    "index",
    "add",
    "remove",
    "socket",
    "workers",
    "compact-frac",
    "pq",
    "format-version",
    "slow-ms",
    "format",
    "at-most",
    "tcp",
    "auth-token",
    "shards",
    "timeout-ms",
];

struct Opts {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Opts {
    fn parse(args: &[String]) -> Opts {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut i = 0;
        while i < args.len() {
            if let Some(name) = args[i].strip_prefix("--") {
                let value = if VALUE_FLAGS.contains(&name) {
                    args.get(i + 1).cloned()
                } else {
                    None
                };
                if value.is_some() {
                    i += 1;
                }
                flags.push((name.to_string(), value));
            } else {
                positional.push(args[i].clone());
            }
            i += 1;
        }
        Opts { positional, flags }
    }

    /// Rejects flags `cmd` does not understand, value flags missing their
    /// value, and duplicated non-repeatable flags — silent typos
    /// (`--taau 3`) or a stale `--tau 2 --tau 9` must not silently change
    /// query semantics. Only `--add`/`--remove` may repeat.
    fn expect_flags(&self, cmd: &str, allowed: &[&str]) -> Result<(), String> {
        const REPEATABLE: &[&str] = &["add", "remove"];
        for (i, (name, value)) in self.flags.iter().enumerate() {
            if !allowed.contains(&name.as_str()) {
                return Err(format!("unknown flag --{name} for `{cmd}`"));
            }
            if VALUE_FLAGS.contains(&name.as_str()) && value.is_none() {
                return Err(format!("flag --{name} needs a value"));
            }
            if !REPEATABLE.contains(&name.as_str())
                && self.flags[..i].iter().any(|(n, _)| n == name)
            {
                return Err(format!("flag --{name} given more than once"));
            }
        }
        Ok(())
    }

    fn flag(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    /// All values of a repeatable flag, in order.
    fn flag_values(&self, name: &str) -> Vec<&str> {
        self.flags
            .iter()
            .filter(|(n, _)| n == name)
            .filter_map(|(_, v)| v.as_deref())
            .collect()
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }
}

fn algorithm_by_name(name: &str) -> Option<Algorithm> {
    match name.to_ascii_lowercase().as_str() {
        "rted" => Some(Algorithm::Rted),
        "zhang-l" | "zhangl" => Some(Algorithm::ZhangL),
        "zhang-r" | "zhangr" => Some(Algorithm::ZhangR),
        "klein-h" | "klein" => Some(Algorithm::KleinH),
        "demaine-h" | "demaine" => Some(Algorithm::DemaineH),
        _ => None,
    }
}

fn shape_by_name(name: &str) -> Option<Shape> {
    match name.to_ascii_lowercase().as_str() {
        "lb" => Some(Shape::LeftBranch),
        "rb" => Some(Shape::RightBranch),
        "fb" => Some(Shape::FullBinary),
        "zz" => Some(Shape::ZigZag),
        "mx" => Some(Shape::Mixed),
        "random" | "rnd" => Some(Shape::Random),
        _ => None,
    }
}

/// Loads a tree argument: inline bracket text, or a file (bracket or XML).
fn load_tree(arg: &str, xml: bool) -> Result<Tree<String>, String> {
    let content = if arg.trim_start().starts_with('{') || (xml && arg.trim_start().starts_with('<'))
    {
        arg.to_string()
    } else {
        std::fs::read_to_string(arg).map_err(|e| format!("cannot read {arg}: {e}"))?
    };
    if xml {
        parse_xml(&content).map_err(|e| e.to_string())
    } else {
        parse_bracket(content.trim()).map_err(|e| e.to_string())
    }
}

/// Loads a one-bracket-tree-per-line corpus file, reporting the offending
/// line on parse errors.
fn load_tree_file(path: &str) -> Result<Vec<Tree<String>>, String> {
    let content = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    content
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(i, l)| parse_bracket(l.trim()).map_err(|e| format!("{path}:{}: {e}", i + 1)))
        .collect()
}

fn cost_model(opts: &Opts) -> Result<PerLabelCost, String> {
    match opts.flag("costs") {
        None => Ok(PerLabelCost::new(1.0, 1.0, 1.0)),
        Some(spec) => {
            let parts: Vec<f64> = spec
                .split(',')
                .map(|p| p.trim().parse::<f64>())
                .collect::<Result<_, _>>()
                .map_err(|e| format!("bad --costs {spec}: {e}"))?;
            if parts.len() != 3 {
                return Err(format!("--costs needs D,I,R — got {spec}"));
            }
            Ok(PerLabelCost::new(parts[0], parts[1], parts[2]))
        }
    }
}

fn cmd_distance(opts: &Opts) -> Result<(), String> {
    opts.expect_flags("distance", &["xml", "algorithm", "costs", "at-most"])?;
    if opts.positional.len() != 2 {
        return Err("distance needs two trees".into());
    }
    let xml = opts.has("xml");
    let f = load_tree(&opts.positional[0], xml)?;
    let g = load_tree(&opts.positional[1], xml)?;
    let alg = match opts.flag("algorithm") {
        None => Algorithm::Rted,
        Some(name) => algorithm_by_name(name).ok_or(format!("unknown algorithm {name}"))?,
    };
    let cm = cost_model(opts)?;
    if let Some(spec) = opts.flag("at-most") {
        // The budget path answers "is d <= T?" with the band-limited
        // kernel; the strategy choice does not apply there.
        if opts.has("algorithm") {
            return Err("--at-most uses the band-limited kernel; drop --algorithm".into());
        }
        let tau: f64 = spec
            .parse::<f64>()
            .ok()
            .filter(|t| !t.is_nan())
            .ok_or(format!("bad --at-most {spec}"))?;
        let run = rted_core::ted_at_most_run(&f, &g, &cm, tau, &mut Workspace::new());
        match run.result {
            rted_core::BoundedResult::Exact(d) => println!("{d}"),
            rted_core::BoundedResult::Exceeds(lb) => println!("exceeds {lb}"),
        }
        eprintln!(
            "bounded at {tau} | {} + {} nodes | {} subproblems | early exit: {}",
            f.len(),
            g.len(),
            run.subproblems,
            run.early_exit
        );
        return Ok(());
    }
    let run = alg.run_in(&f, &g, &cm, &mut Workspace::new());
    println!("{}", run.distance);
    eprintln!(
        "algorithm {} | {} + {} nodes | {} subproblems | strategy {:?} | distance {:?}",
        alg.name(),
        f.len(),
        g.len(),
        run.subproblems,
        run.strategy_time,
        run.distance_time
    );
    Ok(())
}

fn cmd_compare(opts: &Opts) -> Result<(), String> {
    opts.expect_flags("compare", &["xml"])?;
    if opts.positional.len() != 2 {
        return Err("compare needs two trees".into());
    }
    let xml = opts.has("xml");
    let f = load_tree(&opts.positional[0], xml)?;
    let g = load_tree(&opts.positional[1], xml)?;
    println!(
        "{:<10} {:>14} {:>12} {:>14}",
        "algorithm", "subproblems", "time", "distance"
    );
    // One workspace serves all five algorithms: after the first run the
    // remaining four verify allocation-free on the warm buffers.
    let mut ws = Workspace::new();
    for alg in Algorithm::ALL {
        let run = alg.run_in(&f, &g, &UnitCost, &mut ws);
        println!(
            "{:<10} {:>14} {:>12?} {:>14}",
            alg.name(),
            run.subproblems,
            run.strategy_time + run.distance_time,
            run.distance
        );
    }
    Ok(())
}

/// `rted diff` (and its legacy alias `mapping`): the optimal edit script
/// between two inline/file trees, or — with `--index` — between two
/// corpus trees of a persistent index (unit costs, through the index's
/// pooled workspaces).
fn cmd_diff(opts: &Opts, cmd: &str) -> Result<(), String> {
    let script = if opts.has("index") {
        opts.expect_flags(cmd, &["index", "format"])?;
        let path = opts.flag("index").unwrap();
        if opts.positional.len() != 2 {
            return Err(format!("{cmd} --index needs two tree ids"));
        }
        let id = |i: usize| {
            opts.positional[i]
                .parse::<usize>()
                .map_err(|_| format!("bad tree id {}", opts.positional[i]))
        };
        let (left, right) = (id(0)?, id(1)?);
        let corpus = CorpusFile::read(path)
            .and_then(|f| f.corpus_owned())
            .map_err(|e| format!("index {path}: {e}"))?;
        let index = TreeIndex::from_corpus(corpus);
        index
            .diff(left, right)
            .ok_or_else(|| format!("index {path}: no live tree with id {left} or {right}"))?
    } else {
        opts.expect_flags(cmd, &["xml", "costs", "format"])?;
        if opts.positional.len() != 2 {
            return Err(format!(
                "{cmd} needs two trees (or --index INDEX and two ids)"
            ));
        }
        let xml = opts.has("xml");
        let f = load_tree(&opts.positional[0], xml)?;
        let g = load_tree(&opts.positional[1], xml)?;
        let cm = cost_model(opts)?;
        let m = edit_mapping(&f, &g, &cm);
        m.script(&f, &g)
    };
    match opts.flag("format") {
        None | Some("text") => {
            println!("distance {}", script.cost);
            print!("{}", script.render_text());
            eprintln!("{}", script.summary());
        }
        Some("json") => {
            // The exact line a serve `{"op":"diff"}` request would get.
            println!(
                "{}",
                rted_serve::render_response(&rted_serve::Response::Diff(script))
            );
        }
        Some(other) => return Err(format!("--format must be text or json — got {other}")),
    }
    Ok(())
}

fn cmd_generate(opts: &Opts) -> Result<(), String> {
    opts.expect_flags("generate", &["seed"])?;
    if opts.positional.len() != 2 {
        return Err("generate needs SHAPE and N".into());
    }
    let shape = shape_by_name(&opts.positional[0])
        .ok_or(format!("unknown shape {}", opts.positional[0]))?;
    let n: usize = opts.positional[1]
        .parse()
        .map_err(|_| format!("bad size {}", opts.positional[1]))?;
    let seed: u64 = parsed_flag(opts, "seed", 42)?;
    let t = shape.generate(n.max(1), seed);
    println!("{}", to_bracket(&t.map_labels(|l| l.to_string())));
    Ok(())
}

/// Shared flags of the three query commands. `--xml` is *not* here — it
/// affects only the inline QUERY argument, so `join` (which has none)
/// must reject it rather than accept it inertly.
const QUERY_FLAGS: &[&str] = &[
    "algorithm",
    "threads",
    "no-filter",
    "index",
    "pq",
    "no-metric-tree",
    "no-planner",
];

fn cmd_join(opts: &Opts) -> Result<(), String> {
    opts.expect_flags("join", &[QUERY_FLAGS, &["tau"]].concat())?;
    let index = load_query_index(opts, "join", 0)?;
    let tau: f64 = parsed_flag(opts, "tau", f64::INFINITY)?;
    let res = index.join(tau);
    for m in &res.matches {
        println!("{}\t{}\t{}", m.left, m.right, m.distance);
    }
    report_stats(&res.stats, "pairs");
    Ok(())
}

/// Parses a `--pq P,Q` gram-length override.
fn parse_pq(spec: &str) -> Result<rted_core::PqParams, String> {
    let parts: Vec<&str> = spec.split(',').map(str::trim).collect();
    let [p, q] = parts.as_slice() else {
        return Err(format!("--pq needs P,Q — got {spec}"));
    };
    let parse = |s: &str| {
        s.parse::<u32>()
            .ok()
            .filter(|&v| (1..=16).contains(&v))
            .ok_or_else(|| format!("bad --pq {spec}: gram lengths must be 1..=16"))
    };
    Ok(rted_core::PqParams::new(parse(p)?, parse(q)?))
}

/// Loads the corpus for a query command — either the positional flat file
/// or a persistent `--index` file (read-only, via [`CorpusFile`], so a
/// query never touches the file) — honoring the shared `--algorithm`,
/// `--threads`, `--no-filter`, `--pq`, `--no-metric-tree` and
/// `--no-planner` flags. `extra` is how many positional arguments follow
/// the corpus (the query, for search/topk).
///
/// Metric-tree candidate generation and the adaptive query planner are
/// both **on** by default for the query commands (results are identical
/// either way; stderr counters show the difference) and disabled by
/// `--no-metric-tree` / `--no-planner` respectively.
fn load_query_index(opts: &Opts, cmd: &str, extra: usize) -> Result<TreeIndex<String>, String> {
    let mut corpus = match opts.flag("index") {
        Some(path) => {
            if opts.positional.len() != extra {
                return Err(format!(
                    "{cmd} with --index takes {extra} positional argument(s)"
                ));
            }
            CorpusFile::read(path)
                .and_then(|f| f.corpus_owned())
                .map_err(|e| format!("index {path}: {e}"))?
        }
        None => {
            if opts.positional.len() != extra + 1 {
                return Err(format!("{cmd} needs a corpus FILE (or --index INDEX)"));
            }
            rted_index::TreeCorpus::build(load_tree_file(&opts.positional[0])?)
        }
    };
    if let Some(spec) = opts.flag("pq") {
        // Stored profiles are fixed at build time; an override re-profiles
        // the loaded corpus in memory (the index file is not rewritten).
        corpus.recompute_profiles(parse_pq(spec)?);
    }
    let alg = match opts.flag("algorithm") {
        None => Algorithm::Rted,
        Some(name) => algorithm_by_name(name).ok_or(format!("unknown algorithm {name}"))?,
    };
    let mut index = TreeIndex::from_corpus(corpus)
        .with_algorithm(alg)
        .with_metric_tree(!opts.has("no-metric-tree"))
        .with_planner(!opts.has("no-planner"));
    if opts.has("no-filter") {
        index = index.unfiltered();
    }
    if let Some(t) = opts.flag("threads") {
        let threads: usize = t.parse().map_err(|_| format!("bad --threads {t}"))?;
        index = index.with_threads(threads);
    }
    Ok(index)
}

/// Parses an optional numeric flag, erroring on malformed values instead
/// of silently falling back to the default.
fn parsed_flag<T: std::str::FromStr>(opts: &Opts, name: &str, default: T) -> Result<T, String> {
    match opts.flag(name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("bad --{name} {v}")),
    }
}

/// Parses an optional integer flag that must be **at least 1** (worker
/// counts, shard counts, millisecond thresholds): `None` when absent,
/// an error on zero or malformed values.
fn positive_flag<T>(opts: &Opts, name: &str) -> Result<Option<T>, String>
where
    T: std::str::FromStr + PartialOrd + From<u8>,
{
    match opts.flag(name) {
        None => Ok(None),
        Some(v) => v
            .parse::<T>()
            .ok()
            .filter(|n| *n >= T::from(1u8))
            .map(Some)
            .ok_or_else(|| format!("bad --{name} {v}")),
    }
}

/// Prints query statistics, including per-filter-stage prune counters and
/// (when the metric tree ran) the traversal counters.
fn report_stats(stats: &SearchStats, what: &str) {
    let pruned: Vec<String> = stats
        .filter
        .stages
        .iter()
        .filter(|s| s.pruned > 0)
        .map(|s| format!("{} {}", s.stage, s.pruned))
        .collect();
    let pruned = if pruned.is_empty() {
        "none".to_string()
    } else {
        pruned.join(", ")
    };
    let m = &stats.metric;
    let metric = if *m == rted_index::MetricStats::default() {
        String::new()
    } else {
        format!(
            " | metric: {} visited, {} routed, {} bound-skipped, {} overflow",
            m.nodes_visited, m.routing_ted, m.routing_skipped, m.pending_scanned
        )
    };
    eprintln!(
        "{} {what} | {} verified exactly | pruned: {pruned} | {} subproblems{metric} | {:?}",
        stats.candidates, stats.verified, stats.subproblems, stats.time
    );
}

/// `rted index info --stats`: probes the filter pipeline with a
/// deterministic workload (up to 16 live trees, each queried at a tight
/// and a loose threshold) and prints the cumulative per-stage prune
/// counters the index keeps for its lifetime — stage order, prune
/// counts, and each stage's hit rate over the candidates that actually
/// reached it — followed by the adaptive planner's decision report for
/// the probed workload and the per-algorithm cost model (observed
/// ns/subproblem) that steers the verifier crossover.
fn print_pipeline_stats(corpus: rted_index::TreeCorpus<String>) {
    let index = TreeIndex::from_corpus(corpus).with_planner(true);
    let queries: Vec<Tree<String>> = index
        .corpus()
        .iter()
        .take(16)
        .map(|(_, e)| e.tree().clone())
        .collect();
    for query in &queries {
        for tau in [2.0, 8.0] {
            index.range(query, tau);
        }
    }
    let totals = index.totals();
    println!(
        "\npipeline probe  {} range queries, {} candidate pairs",
        totals.range_queries, totals.candidates
    );
    if totals.candidates == 0 {
        println!("filter stages   (empty corpus — nothing to probe)");
        return;
    }
    let mut entering = totals.candidates;
    for stage in &totals.stages {
        let rate = stage.pruned as f64 * 100.0 / entering.max(1) as f64;
        println!(
            "  {:<14} pruned {:>8} of {:>8} entering  ({rate:>5.1}% hit rate)",
            stage.stage, stage.pruned, entering
        );
        entering = entering.saturating_sub(stage.pruned);
    }
    println!(
        "  {:<14} {:>15} verified exactly ({} subproblems, {:.3} ms exact-TED)",
        "exact-ted",
        totals.verified,
        totals.subproblems,
        totals.ted_ns as f64 / 1e6
    );
    println!(
        "  {:<14} {:>15} early exits      ({:.3} ms in bounded kernel)",
        "bounded-ted",
        totals.verify_early_exits,
        totals.verify_bounded_ns as f64 / 1e6
    );
    println!(
        "  {:<14} {:>8} zhang-shasha / {} bounded / {} full-rted pairs",
        "verifier mix", totals.plan_zs_pairs, totals.plan_bounded_pairs, totals.plan_rted_pairs
    );
    println!("\nplanner report  (for a budgeted query, after the probe)");
    for line in index.explain(true).summary_lines() {
        println!("  {line}");
    }
    // The verifier crossover calibrates against observed ns/subproblem;
    // run both verifier arms over a few probe pairs through a local
    // workspace so the report shows real measurements, not placeholders.
    if queries.len() >= 2 {
        let mut ws = Workspace::new();
        for pair in queries.windows(2).take(8) {
            for alg in [Algorithm::ZhangL, Algorithm::Rted] {
                alg.run_in(&pair[0], &pair[1], &UnitCost, &mut ws);
            }
        }
        println!("\nverifier cost model (local probe)");
        for (alg, cost) in Algorithm::ALL.iter().zip(ws.algorithm_costs()) {
            if let Some(ns) = cost.ns_per_subproblem() {
                println!(
                    "  {:<10} {ns:>8.1} ns/subproblem over {} run(s)",
                    alg.name(),
                    cost.runs
                );
            }
        }
    }
}

fn cmd_search(opts: &Opts) -> Result<(), String> {
    opts.expect_flags("search", &[QUERY_FLAGS, &["tau", "xml"]].concat())?;
    let index = load_query_index(opts, "search", 1)?;
    let query = load_tree(
        opts.positional.last().ok_or("search needs a QUERY")?,
        opts.has("xml"),
    )?;
    let tau: f64 = parsed_flag(opts, "tau", f64::INFINITY)?;
    let res = index.range(&query, tau);
    for n in &res.neighbors {
        println!("{}\t{}", n.id, n.distance);
    }
    report_stats(&res.stats, "candidates");
    Ok(())
}

fn cmd_topk(opts: &Opts) -> Result<(), String> {
    opts.expect_flags("topk", &[QUERY_FLAGS, &["k", "xml"]].concat())?;
    let index = load_query_index(opts, "topk", 1)?;
    let query = load_tree(
        opts.positional.last().ok_or("topk needs a QUERY")?,
        opts.has("xml"),
    )?;
    let k: usize = parsed_flag(opts, "k", 5)?;
    let res = index.top_k(&query, k);
    for n in &res.neighbors {
        println!("{}\t{}", n.id, n.distance);
    }
    report_stats(&res.stats, "candidates");
    Ok(())
}

/// `rted index <build|update|compact|info|dump> ...` — management of
/// persistent corpus files.
fn cmd_index(opts: &Opts) -> Result<(), String> {
    let sub = opts
        .positional
        .first()
        .ok_or("index needs a subcommand: build | update | compact | repair | info | dump")?;
    let rest = &opts.positional[1..];
    match sub.as_str() {
        "build" => {
            opts.expect_flags("index build", &["format-version"])?;
            let [index_path, file] = rest else {
                return Err("index build needs INDEX and FILE".into());
            };
            let version: u32 = parsed_flag(opts, "format-version", 2)?;
            let trees = load_tree_file(file)?;
            let live = match version {
                2 => {
                    let store =
                        CorpusStore::create(index_path, trees).map_err(|e| e.to_string())?;
                    store.corpus().len()
                }
                1 => {
                    // The legacy writer: a PR 2-era file (no stored
                    // pq-gram profiles), kept so compatibility fixtures
                    // can be fabricated forever. Opening it with any
                    // mutating tool upgrades it to the current version.
                    let corpus = rted_index::TreeCorpus::build(trees);
                    let bytes = rted_index::persist::encode_corpus_v1(&corpus);
                    std::fs::write(index_path, bytes)
                        .map_err(|e| format!("cannot write {index_path}: {e}"))?;
                    corpus.len()
                }
                other => {
                    return Err(format!(
                        "--format-version {other} is not writable (1 = legacy, 2 = current)"
                    ))
                }
            };
            eprintln!(
                "built {index_path}: {} trees, {} bytes (format version {version})",
                live,
                std::fs::metadata(index_path).map(|m| m.len()).unwrap_or(0)
            );
            Ok(())
        }
        "update" => {
            opts.expect_flags("index update", &["add", "remove", "compact"])?;
            let [index_path] = rest else {
                return Err("index update needs INDEX".into());
            };
            let removals = parse_id_lists(&opts.flag_values("remove"))?;
            // Parse every input — removals above, and every --add file —
            // *before* the first store mutation: a malformed later file
            // must not leave earlier batches durably applied (a retry of
            // the fixed command would insert them twice).
            let additions: Vec<(&str, Vec<Tree<String>>)> = opts
                .flag_values("add")
                .into_iter()
                .map(|file| Ok((file, load_tree_file(file)?)))
                .collect::<Result<_, String>>()?;
            if additions.is_empty() && removals.is_empty() && !opts.has("compact") {
                return Err("index update needs --add, --remove and/or --compact".into());
            }
            let mut store = CorpusStore::open(index_path).map_err(|e| e.to_string())?;
            for (file, trees) in additions {
                let ids = store.insert_all(trees).map_err(|e| e.to_string())?;
                eprintln!("added {} trees from {file} (ids {:?})", ids.len(), ids);
            }
            if !removals.is_empty() {
                let removed = store.remove_all(&removals).map_err(|e| e.to_string())?;
                eprintln!("removed {removed} of {} requested ids", removals.len());
            }
            if opts.has("compact") {
                store.compact().map_err(|e| e.to_string())?;
                eprintln!("compacted");
            }
            eprintln!(
                "{index_path}: {} live trees, {} segment(s)",
                store.corpus().len(),
                store.segment_count()
            );
            Ok(())
        }
        "compact" => {
            opts.expect_flags("index compact", &[])?;
            let [index_path] = rest else {
                return Err("index compact needs INDEX".into());
            };
            let mut store = CorpusStore::open(index_path).map_err(|e| e.to_string())?;
            store.compact().map_err(|e| e.to_string())?;
            eprintln!(
                "compacted {index_path}: {} live trees, {} bytes",
                store.corpus().len(),
                std::fs::metadata(index_path).map(|m| m.len()).unwrap_or(0)
            );
            Ok(())
        }
        "repair" => {
            opts.expect_flags("index repair", &[])?;
            let [index_path] = rest else {
                return Err("index repair needs INDEX".into());
            };
            let (_, report) = CorpusStore::open_repair(index_path).map_err(|e| e.to_string())?;
            if report.bytes_dropped == 0 && !report.header_rewritten {
                eprintln!(
                    "{index_path}: already clean — {} segment(s), {} live trees",
                    report.segments_recovered, report.live
                );
            } else {
                eprintln!("repaired {index_path}: {}", repair_summary(&report));
            }
            Ok(())
        }
        "info" => {
            opts.expect_flags("index info", &["stats"])?;
            let [index_path] = rest else {
                return Err("index info needs INDEX".into());
            };
            let file = CorpusFile::read(index_path).map_err(|e| e.to_string())?;
            let header = file.header();
            // Full validation (checksums + structure), not just the header.
            let corpus = file.corpus().map_err(|e| e.to_string())?;
            println!("path            {index_path}");
            println!("format version  {}", header.version);
            println!("feature flags   {:#010x}", header.flags);
            match rted_index::candidates::pqgram::profile_params(&corpus) {
                None => println!("pq profile      none (empty corpus)"),
                Some(params) => println!(
                    "pq profile      p={} q={} ({})",
                    params.p,
                    params.q,
                    if header.has_pq_profiles() {
                        "stored"
                    } else {
                        "recomputed on load"
                    }
                ),
            }
            println!("live trees      {}", corpus.len());
            println!("next id         {}", header.next_id);
            println!("segments        {}", file.segment_count());
            println!("file bytes      {}", file.bytes().len());
            let nodes: usize = corpus.iter().map(|(_, e)| e.tree().len()).sum();
            println!("total nodes     {nodes}");
            if opts.has("stats") {
                let owned = file.corpus_owned().map_err(|e| e.to_string())?;
                print_pipeline_stats(owned);
            }
            Ok(())
        }
        "dump" => {
            opts.expect_flags("index dump", &[])?;
            let [index_path] = rest else {
                return Err("index dump needs INDEX".into());
            };
            let file = CorpusFile::read(index_path).map_err(|e| e.to_string())?;
            // Zero-copy load: labels borrow from the file buffer.
            let corpus = file.corpus().map_err(|e| e.to_string())?;
            let mut out = String::new();
            for (id, entry) in corpus.iter() {
                out.push_str(&format!("{id}\t{}\n", to_bracket(entry.tree())));
            }
            print!("{out}");
            Ok(())
        }
        other => Err(format!(
            "unknown index subcommand `{other}` (build | update | compact | repair | info | dump)"
        )),
    }
}

/// `rted serve` — the long-lived query service over stdin/stdout, a
/// Unix socket, and/or an authenticated TCP listener. See the crate
/// docs of `rted-serve` for the protocol.
fn cmd_serve(opts: &Opts) -> Result<(), String> {
    opts.expect_flags(
        "serve",
        &[
            "index",
            "socket",
            "tcp",
            "auth-token",
            "shards",
            "timeout-ms",
            "workers",
            "threads",
            "compact-frac",
            "strict",
            "metric-tree",
            "slow-ms",
            "no-planner",
        ],
    )?;
    let mut config = rted_serve::ServerConfig::default();
    if let Some(w) = positive_flag(opts, "workers")? {
        config.workers = w;
    }
    config.query_threads = parsed_flag(opts, "threads", 1)?;
    if let Some(s) = positive_flag(opts, "shards")? {
        config.shards = s;
    }
    let frac: f64 = parsed_flag(opts, "compact-frac", 0.25)?;
    // A non-positive fraction disables background compaction.
    config.compact_fraction = (frac > 0.0).then_some(frac);
    config.metric_tree = opts.has("metric-tree");
    config.planner = !opts.has("no-planner");
    // Slow-query threshold: off unless asked for. Measured at the
    // front-end around the whole call, so queue wait counts — that is
    // what the client experienced.
    let slow = positive_flag::<u64>(opts, "slow-ms")?.map(std::time::Duration::from_millis);
    // Per-connection read/write timeouts for the TCP front-end: a
    // stalled or vanished peer can hold its connection thread for at
    // most this long per I/O operation. Off unless asked for (a local
    // interactive client may legitimately idle).
    let timeout = positive_flag::<u64>(opts, "timeout-ms")?.map(std::time::Duration::from_millis);
    let auth = auth_token(opts);

    let server = match opts.flag("index") {
        Some(index_path) => {
            if !opts.positional.is_empty() {
                return Err("serve with --index takes no positional argument".into());
            }
            if !std::path::Path::new(index_path).exists() {
                // A fresh service: start from an empty durable corpus.
                CorpusStore::create(index_path, Vec::<Tree<String>>::new())
                    .map_err(|e| e.to_string())?;
                eprintln!("rted serve: created empty index {index_path}");
            }
            let recovery = if opts.has("strict") {
                rted_serve::Recovery::Strict
            } else {
                rted_serve::Recovery::Repair
            };
            let (server, report) = rted_serve::Server::open(index_path, recovery, config)
                .map_err(|e| format!("index {index_path}: {e}"))?;
            if report.bytes_dropped > 0 || report.header_rewritten {
                eprintln!(
                    "rted serve: repaired {index_path} — {}",
                    repair_summary(&report)
                );
            } else {
                eprintln!(
                    "rted serve: opened {index_path} — {} live trees, {} segment(s)",
                    report.live, report.segments_recovered
                );
            }
            server
        }
        None => {
            let [file] = &opts.positional[..] else {
                return Err("serve needs --index INDEX or a corpus FILE".into());
            };
            let trees = load_tree_file(file)?;
            eprintln!(
                "rted serve: serving {} trees from {file} (in-memory, no durability)",
                trees.len()
            );
            rted_serve::Server::in_memory(trees, config)
        }
    };

    // Bind the TCP listener before entering the accept loops so a bad
    // address fails fast, and surface the bound address through
    // `status` (`--tcp 127.0.0.1:0` picks a free port).
    let tcp = match opts.flag("tcp") {
        None => None,
        Some(addr) => {
            let listener = std::net::TcpListener::bind(addr)
                .map_err(|e| format!("cannot bind tcp {addr}: {e}"))?;
            let local = listener.local_addr().map_err(|e| e.to_string())?;
            server.set_tcp_addr(local.to_string());
            eprintln!(
                "rted serve: listening on tcp {local}{}",
                if auth.is_some() {
                    " (auth required)"
                } else {
                    ""
                }
            );
            Some((listener, local))
        }
    };

    let fronts = FrontEnds {
        stop: std::sync::atomic::AtomicBool::new(false),
        socket_path: opts.flag("socket"),
        tcp_addr: tcp.as_ref().map(|(_, local)| *local),
    };
    let result = std::thread::scope(|scope| {
        if let Some((listener, _)) = &tcp {
            let (server, fronts, auth) = (&server, &fronts, auth.as_deref());
            scope.spawn(move || serve_tcp(server, listener, slow, auth, timeout, fronts));
        }
        match opts.flag("socket") {
            Some(path) => serve_socket(&server, path, slow, &fronts),
            // TCP-only mode: the accept loop above is the front-end;
            // the scope join below blocks until a shutdown request
            // stops it.
            None if tcp.is_some() => Ok(()),
            None => serve_stdio(&server, slow, &fronts),
        }
    });
    // Graceful either way: drain whatever the front-ends accepted.
    server.shutdown();
    result
}

/// Shared stop switch for the serve front-ends: any connection's
/// `shutdown` request flips it and self-connects to every listener so
/// blocked `accept` calls observe it.
struct FrontEnds<'a> {
    stop: std::sync::atomic::AtomicBool,
    socket_path: Option<&'a str>,
    tcp_addr: Option<std::net::SocketAddr>,
}

impl FrontEnds<'_> {
    fn stopped(&self) -> bool {
        self.stop.load(std::sync::atomic::Ordering::SeqCst)
    }

    fn request_stop(&self) {
        self.stop.store(true, std::sync::atomic::Ordering::SeqCst);
        if let Some(addr) = self.tcp_addr {
            let _ = std::net::TcpStream::connect(addr);
        }
        #[cfg(unix)]
        if let Some(path) = self.socket_path {
            let _ = std::os::unix::net::UnixStream::connect(path);
        }
        #[cfg(not(unix))]
        let _ = self.socket_path;
    }
}

/// The shared secret gating TCP connections: the explicit flag wins
/// over the `RTED_AUTH_TOKEN` environment variable.
fn auth_token(opts: &Opts) -> Option<String> {
    opts.flag("auth-token").map(str::to_string).or_else(|| {
        std::env::var("RTED_AUTH_TOKEN")
            .ok()
            .filter(|t| !t.is_empty())
    })
}

/// Constant-work token comparison (no early exit on the first
/// mismatching byte).
fn token_matches(given: &str, expected: &str) -> bool {
    given.len() == expected.len()
        && given
            .bytes()
            .zip(expected.bytes())
            .fold(0u8, |acc, (a, b)| acc | (a ^ b))
            == 0
}

/// Drains one connection's request lines against its own service
/// client; returns whether a `shutdown` request was answered (the
/// caller then stops every listener). With `auth`, the first non-empty
/// line must be the shared token — on mismatch the connection gets one
/// error line and is dropped without touching the service.
fn serve_connection(
    server: &rted_serve::Server,
    client: &mut rted_serve::Client,
    reader: impl std::io::BufRead,
    writer: &mut impl std::io::Write,
    slow: Option<std::time::Duration>,
    auth: Option<&str>,
) -> bool {
    let mut authed = auth.is_none();
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        if !authed {
            if token_matches(line.trim(), auth.unwrap_or_default()) {
                authed = true;
                continue;
            }
            let denied = rted_serve::render_response(&rted_serve::Response::Error(
                "authentication failed".into(),
            ));
            let _ = writeln!(writer, "{denied}").and_then(|_| writer.flush());
            return false;
        }
        let (response, is_shutdown) = respond(server, client, slow, &line);
        if writeln!(writer, "{response}")
            .and_then(|_| writer.flush())
            .is_err()
        {
            break;
        }
        if is_shutdown {
            return true;
        }
    }
    false
}

/// TCP front-end: every accepted connection is an independent
/// (optionally authenticated) client of the shared service, with the
/// configured read/write timeouts applied before the first byte.
fn serve_tcp(
    server: &rted_serve::Server,
    listener: &std::net::TcpListener,
    slow: Option<std::time::Duration>,
    auth: Option<&str>,
    timeout: Option<std::time::Duration>,
    fronts: &FrontEnds,
) {
    use std::io::BufReader;
    std::thread::scope(|scope| {
        for stream in listener.incoming() {
            if fronts.stopped() {
                break;
            }
            let Ok(stream) = stream else { continue };
            scope.spawn(move || {
                let _ = stream.set_read_timeout(timeout);
                let _ = stream.set_write_timeout(timeout);
                let Ok(read_half) = stream.try_clone() else {
                    return;
                };
                server.note_connection_opened();
                let mut client = server.client();
                let mut writer = stream;
                let is_shutdown = serve_connection(
                    server,
                    &mut client,
                    BufReader::new(read_half),
                    &mut writer,
                    slow,
                    auth,
                );
                server.note_connection_closed();
                if is_shutdown {
                    fronts.request_stop();
                }
            });
        }
    });
}

/// Stdio front-end: one request line in, one response line out, until
/// EOF or a `shutdown` request. Counts as one connection.
fn serve_stdio(
    server: &rted_serve::Server,
    slow: Option<std::time::Duration>,
    fronts: &FrontEnds,
) -> Result<(), String> {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    server.note_connection_opened();
    let mut client = server.client();
    let mut out = stdout.lock();
    let is_shutdown = serve_connection(server, &mut client, stdin.lock(), &mut out, slow, None);
    server.note_connection_closed();
    if is_shutdown {
        fronts.request_stop();
    }
    Ok(())
}

/// The wire name of a request, for the slow-query log.
fn request_op_name(request: &rted_serve::Request) -> &'static str {
    use rted_serve::Request;
    match request {
        Request::Range { .. } => "range",
        Request::TopK { .. } => "topk",
        Request::Distance { .. } => "distance",
        Request::Diff { .. } | Request::DiffBatch { .. } => "diff",
        Request::Join { .. } => "join",
        Request::Insert { .. } => "insert",
        Request::Remove { .. } => "remove",
        Request::Status => "status",
        Request::Compact => "compact",
        Request::Metrics { .. } => "metrics",
        Request::Explain { .. } => "explain",
        Request::Shutdown => "shutdown",
    }
}

/// Parses and executes one request line; returns the rendered response
/// and whether it was a shutdown request (handled at the transport
/// level: acknowledged with `bye`, then the front-end stops). A request
/// `id`, when present, is echoed in the response — pipelined clients can
/// keep many requests in flight and correlate answers.
///
/// With a slow threshold, a request whose wall time (queue wait
/// included) crosses it is logged to stderr — op name and `id`, so the
/// offending query can be found in the client's pipeline — and counted
/// in `serve_slow_queries_total`.
fn respond(
    server: &rted_serve::Server,
    client: &mut rted_serve::Client,
    slow: Option<std::time::Duration>,
    line: &str,
) -> (String, bool) {
    use rted_serve::{parse_request_line, render_response_with, Request, RequestId, Response};
    let (id, parsed) = parse_request_line(line);
    let id = id.as_ref();
    match parsed {
        Err(e) => (render_response_with(&Response::Error(e), id), false),
        Ok(Request::Shutdown) => (render_response_with(&Response::Bye, id), true),
        Ok(request) => {
            let op = request_op_name(&request);
            let started = std::time::Instant::now();
            let response = client.call(request);
            if let Some(threshold) = slow {
                let took = started.elapsed();
                if took >= threshold {
                    server.note_slow_query();
                    let id_part = match id {
                        None => String::new(),
                        Some(RequestId::Num(n)) => format!(" id={n}"),
                        Some(RequestId::Str(s)) => format!(" id=\"{s}\""),
                    };
                    eprintln!(
                        "rted serve: slow {op} request{id_part}: {took:?} (threshold {threshold:?})"
                    );
                }
            }
            (render_response_with(&response, id), false)
        }
    }
}

/// Unix-socket front-end: every connection is an independent client of
/// the shared service; a `shutdown` request from any connection stops
/// every listener (after answering `bye`) and drains the rest.
#[cfg(unix)]
fn serve_socket(
    server: &rted_serve::Server,
    path: &str,
    slow: Option<std::time::Duration>,
    fronts: &FrontEnds,
) -> Result<(), String> {
    use std::io::BufReader;
    use std::os::unix::net::UnixListener;

    let _ = std::fs::remove_file(path); // stale socket from a previous run
    let listener = UnixListener::bind(path).map_err(|e| format!("cannot bind {path}: {e}"))?;
    eprintln!("rted serve: listening on {path}");
    std::thread::scope(|scope| {
        for stream in listener.incoming() {
            if fronts.stopped() {
                break;
            }
            let Ok(stream) = stream else { continue };
            scope.spawn(move || {
                let Ok(read_half) = stream.try_clone() else {
                    return;
                };
                server.note_connection_opened();
                let mut client = server.client();
                let mut writer = stream;
                let is_shutdown = serve_connection(
                    server,
                    &mut client,
                    BufReader::new(read_half),
                    &mut writer,
                    slow,
                    None,
                );
                server.note_connection_closed();
                if is_shutdown {
                    fronts.request_stop();
                }
            });
        }
    });
    let _ = std::fs::remove_file(path);
    Ok(())
}

#[cfg(not(unix))]
fn serve_socket(
    _server: &rted_serve::Server,
    _path: &str,
    _slow: Option<std::time::Duration>,
    _fronts: &FrontEnds,
) -> Result<(), String> {
    Err("--socket requires a Unix platform; use --tcp or the stdin/stdout mode".into())
}

/// Connects to a serve front-end: `--socket PATH` (Unix socket, no
/// auth) or `--tcp ADDR` (sending the shared-secret token line first
/// when `--auth-token` / `RTED_AUTH_TOKEN` supplies one). Returns the
/// write half and a buffered read half.
#[allow(clippy::type_complexity)]
fn connect_service(
    opts: &Opts,
    cmd: &str,
) -> Result<(Box<dyn std::io::Write>, Box<dyn std::io::BufRead>), String> {
    use std::io::{BufReader, Write};
    match (opts.flag("socket"), opts.flag("tcp")) {
        (Some(_), Some(_)) => Err(format!("{cmd}: --socket and --tcp are mutually exclusive")),
        (None, None) => Err(format!("{cmd} needs --socket PATH or --tcp ADDR")),
        (Some(path), None) => {
            #[cfg(unix)]
            {
                let stream = std::os::unix::net::UnixStream::connect(path)
                    .map_err(|e| format!("cannot connect to {path}: {e}"))?;
                let writer = stream.try_clone().map_err(|e| e.to_string())?;
                Ok((Box::new(writer), Box::new(BufReader::new(stream))))
            }
            #[cfg(not(unix))]
            {
                let _ = path;
                Err(format!(
                    "{cmd}: --socket requires a Unix platform; use --tcp"
                ))
            }
        }
        (None, Some(addr)) => {
            let stream = std::net::TcpStream::connect(addr)
                .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
            let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
            if let Some(token) = auth_token(opts) {
                // The auth line precedes the first request; the server
                // answers nothing on success.
                writeln!(writer, "{token}")
                    .and_then(|_| writer.flush())
                    .map_err(|e| format!("tcp write: {e}"))?;
            }
            Ok((Box::new(writer), Box::new(BufReader::new(stream))))
        }
    }
}

/// Sends one request line to a connected service and reads the single
/// response line (trailing newline stripped). The `query` and `metrics`
/// clients — and the one-shot `query --explain` — all speak this
/// one-in-one-out exchange.
fn exchange_line(
    writer: &mut dyn std::io::Write,
    responses: &mut dyn std::io::BufRead,
    request: &str,
) -> Result<String, String> {
    writeln!(writer, "{request}")
        .and_then(|_| writer.flush())
        .map_err(|e| format!("connection write: {e}"))?;
    let mut line = String::new();
    let n = responses
        .read_line(&mut line)
        .map_err(|e| format!("connection read: {e}"))?;
    if n == 0 {
        return Err("server closed the connection".into());
    }
    line.truncate(line.trim_end_matches('\n').len());
    Ok(line)
}

/// `rted query` — the line-pipe client for a `rted serve` service over
/// its Unix socket or TCP listener: forwards each stdin line as a
/// request, prints each response. Requests are one JSON object per line
/// with an `op` of `range`, `topk`, `distance`, `diff` (single pair or
/// batched `pairs`), `join`, `insert`, `remove`, `status`, `compact`,
/// `metrics`, `explain`, or `shutdown` (a `status` response lists the
/// same set under `ops` for feature detection).
///
/// `--explain` skips stdin entirely: it sends one `{"op":"explain"}`
/// request (with the query budget `--tau T` when given) and prints the
/// service's current plan — candidate generator, verifier cutoffs,
/// stage order, and the observed selectivity rates steering them.
fn cmd_query(opts: &Opts) -> Result<(), String> {
    use std::io::BufRead;
    opts.expect_flags("query", &["socket", "tcp", "auth-token", "explain", "tau"])?;
    if !opts.positional.is_empty() {
        return Err("query takes no positional arguments".into());
    }
    if opts.has("tau") && !opts.has("explain") {
        return Err(
            "query --tau only modifies --explain; pipe requests via stdin otherwise".into(),
        );
    }
    let (mut writer, mut responses) = connect_service(opts, "query")?;
    if opts.has("explain") {
        let request = match opts.flag("tau") {
            None => r#"{"op":"explain"}"#.to_string(),
            Some(spec) => {
                let tau: f64 = spec
                    .parse::<f64>()
                    .ok()
                    .filter(|t| !t.is_nan())
                    .ok_or(format!("bad --tau {spec}"))?;
                format!(r#"{{"op":"explain","tau":{tau}}}"#)
            }
        };
        let response = exchange_line(&mut writer, &mut responses, &request)?;
        println!("{response}");
        return Ok(());
    }
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| format!("stdin: {e}"))?;
        if line.trim().is_empty() {
            continue;
        }
        let response = exchange_line(&mut writer, &mut responses, &line)?;
        println!("{response}");
    }
    Ok(())
}

/// `rted metrics` — scrapes a running `rted serve` service over its
/// Unix socket or TCP listener. Default output is the Prometheus text
/// exposition (ready for a scrape pipeline or a human eyeball);
/// `--json` prints the raw NDJSON response line with structured values
/// instead.
fn cmd_metrics(opts: &Opts) -> Result<(), String> {
    opts.expect_flags("metrics", &["socket", "tcp", "auth-token", "json"])?;
    if !opts.positional.is_empty() {
        return Err("metrics takes no positional arguments".into());
    }
    let (mut writer, mut responses) = connect_service(opts, "metrics")?;
    let json = opts.has("json");
    let request = if json {
        r#"{"op":"metrics","format":"json"}"#
    } else {
        r#"{"op":"metrics","format":"prometheus"}"#
    };
    let line = exchange_line(&mut writer, &mut responses, request)?;
    if json {
        println!("{line}");
        return Ok(());
    }
    // Unwrap the exposition string so the output is scrape-ready text.
    let value = rted_serve::json::parse(&line).map_err(|e| format!("bad response: {e}"))?;
    match value
        .get("exposition")
        .and_then(rted_serve::json::Value::as_str)
    {
        Some(text) => print!("{text}"),
        None => Err(format!("unexpected response: {line}"))?,
    }
    Ok(())
}

/// Operator-facing one-liner for a repair outcome — shared by `rted
/// index repair` and the `rted serve` startup report (the serve
/// roundtrip CI script greps this wording, so it must not fork).
fn repair_summary(report: &rted_index::RepairReport) -> String {
    format!(
        "recovered {} segment(s) ({} live trees), dropped {} byte(s) of torn tail{}",
        report.segments_recovered,
        report.live,
        report.bytes_dropped,
        if report.header_rewritten {
            ", header recomputed"
        } else {
            ""
        }
    )
}

/// Parses comma-separated id lists from repeated `--remove` flags.
fn parse_id_lists(specs: &[&str]) -> Result<Vec<usize>, String> {
    let mut ids = Vec::new();
    for spec in specs {
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            ids.push(
                part.parse::<usize>()
                    .map_err(|_| format!("bad tree id `{part}` in --remove {spec}"))?,
            );
        }
    }
    Ok(ids)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let opts = Opts::parse(&args[1..]);
    let result = match cmd.as_str() {
        "distance" => cmd_distance(&opts),
        "compare" => cmd_compare(&opts),
        "diff" | "mapping" => cmd_diff(&opts, cmd),
        "generate" => cmd_generate(&opts),
        "join" => cmd_join(&opts),
        "search" => cmd_search(&opts),
        "topk" => cmd_topk(&opts),
        "index" => cmd_index(&opts),
        "serve" => cmd_serve(&opts),
        "query" => cmd_query(&opts),
        "metrics" => cmd_metrics(&opts),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
