//! `rted` — command-line tree edit distance.
//!
//! ```text
//! rted distance  <TREE1> <TREE2> [--xml] [--algorithm NAME] [--costs D,I,R]
//! rted compare   <TREE1> <TREE2> [--xml]
//! rted mapping   <TREE1> <TREE2> [--xml] [--costs D,I,R]
//! rted generate  <SHAPE> <N> [--seed S]
//! rted join      <FILE> [--tau T] [--algorithm NAME] [--threads N] [--no-filter]
//! rted search    <FILE> <QUERY> [--tau T] [--algorithm NAME] [--threads N] [--no-filter]
//! rted topk      <FILE> <QUERY> [--k K] [--algorithm NAME] [--threads N] [--no-filter]
//! ```
//!
//! Trees are given inline in bracket notation (`{a{b}{c}}`) or as file
//! paths; `--xml` parses the inputs as XML documents instead. `<FILE>` for
//! `join`, `search` and `topk` holds one bracket tree per line and is
//! loaded into an in-memory [`rted_index::TreeIndex`]. `<SHAPE>` is one of
//! `lb rb fb zz mx random`.

use rted_core::mapping::edit_mapping;
use rted_core::{Algorithm, CostModel, PerLabelCost, UnitCost};
use rted_datasets::xml::parse_xml;
use rted_datasets::Shape;
use rted_index::{SearchStats, TreeIndex};
use rted_tree::{parse_bracket, to_bracket, Tree};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  \
         rted distance <TREE1> <TREE2> [--xml] [--algorithm NAME] [--costs D,I,R]\n  \
         rted compare  <TREE1> <TREE2> [--xml]\n  \
         rted mapping  <TREE1> <TREE2> [--xml] [--costs D,I,R]\n  \
         rted generate <SHAPE> <N> [--seed S]\n  \
         rted join     <FILE> [--tau T] [--algorithm NAME] [--threads N] [--no-filter]\n  \
         rted search   <FILE> <QUERY> [--tau T] [--algorithm NAME] [--threads N] [--no-filter]\n  \
         rted topk     <FILE> <QUERY> [--k K] [--algorithm NAME] [--threads N] [--no-filter]\n\n\
         NAME: rted (default) | zhang-l | zhang-r | klein-h | demaine-h\n\
         SHAPE: lb | rb | fb | zz | mx | random\n\
         TREE/QUERY: inline bracket notation or a file path\n\
         FILE: one bracket tree per line (an indexed corpus)"
    );
    ExitCode::from(2)
}

struct Opts {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Opts {
    fn parse(args: &[String]) -> Opts {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut i = 0;
        while i < args.len() {
            if let Some(name) = args[i].strip_prefix("--") {
                let takes_value = matches!(
                    name,
                    "algorithm" | "costs" | "seed" | "tau" | "k" | "threads"
                );
                let value = if takes_value {
                    args.get(i + 1).cloned()
                } else {
                    None
                };
                if value.is_some() {
                    i += 1;
                }
                flags.push((name.to_string(), value));
            } else {
                positional.push(args[i].clone());
            }
            i += 1;
        }
        Opts { positional, flags }
    }

    fn flag(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }
}

fn algorithm_by_name(name: &str) -> Option<Algorithm> {
    match name.to_ascii_lowercase().as_str() {
        "rted" => Some(Algorithm::Rted),
        "zhang-l" | "zhangl" => Some(Algorithm::ZhangL),
        "zhang-r" | "zhangr" => Some(Algorithm::ZhangR),
        "klein-h" | "klein" => Some(Algorithm::KleinH),
        "demaine-h" | "demaine" => Some(Algorithm::DemaineH),
        _ => None,
    }
}

fn shape_by_name(name: &str) -> Option<Shape> {
    match name.to_ascii_lowercase().as_str() {
        "lb" => Some(Shape::LeftBranch),
        "rb" => Some(Shape::RightBranch),
        "fb" => Some(Shape::FullBinary),
        "zz" => Some(Shape::ZigZag),
        "mx" => Some(Shape::Mixed),
        "random" | "rnd" => Some(Shape::Random),
        _ => None,
    }
}

/// Loads a tree argument: inline bracket text, or a file (bracket or XML).
fn load_tree(arg: &str, xml: bool) -> Result<Tree<String>, String> {
    let content = if arg.trim_start().starts_with('{') || (xml && arg.trim_start().starts_with('<'))
    {
        arg.to_string()
    } else {
        std::fs::read_to_string(arg).map_err(|e| format!("cannot read {arg}: {e}"))?
    };
    if xml {
        parse_xml(&content).map_err(|e| e.to_string())
    } else {
        parse_bracket(content.trim()).map_err(|e| e.to_string())
    }
}

fn cost_model(opts: &Opts) -> Result<PerLabelCost, String> {
    match opts.flag("costs") {
        None => Ok(PerLabelCost::new(1.0, 1.0, 1.0)),
        Some(spec) => {
            let parts: Vec<f64> = spec
                .split(',')
                .map(|p| p.trim().parse::<f64>())
                .collect::<Result<_, _>>()
                .map_err(|e| format!("bad --costs {spec}: {e}"))?;
            if parts.len() != 3 {
                return Err(format!("--costs needs D,I,R — got {spec}"));
            }
            Ok(PerLabelCost::new(parts[0], parts[1], parts[2]))
        }
    }
}

fn cmd_distance(opts: &Opts) -> Result<(), String> {
    if opts.positional.len() != 2 {
        return Err("distance needs two trees".into());
    }
    let xml = opts.has("xml");
    let f = load_tree(&opts.positional[0], xml)?;
    let g = load_tree(&opts.positional[1], xml)?;
    let alg = match opts.flag("algorithm") {
        None => Algorithm::Rted,
        Some(name) => algorithm_by_name(name).ok_or(format!("unknown algorithm {name}"))?,
    };
    let cm = cost_model(opts)?;
    let run = alg.run(&f, &g, &cm);
    println!("{}", run.distance);
    eprintln!(
        "algorithm {} | {} + {} nodes | {} subproblems | strategy {:?} | distance {:?}",
        alg.name(),
        f.len(),
        g.len(),
        run.subproblems,
        run.strategy_time,
        run.distance_time
    );
    Ok(())
}

fn cmd_compare(opts: &Opts) -> Result<(), String> {
    if opts.positional.len() != 2 {
        return Err("compare needs two trees".into());
    }
    let xml = opts.has("xml");
    let f = load_tree(&opts.positional[0], xml)?;
    let g = load_tree(&opts.positional[1], xml)?;
    println!(
        "{:<10} {:>14} {:>12} {:>14}",
        "algorithm", "subproblems", "time", "distance"
    );
    for alg in Algorithm::ALL {
        let run = alg.run(&f, &g, &UnitCost);
        println!(
            "{:<10} {:>14} {:>12?} {:>14}",
            alg.name(),
            run.subproblems,
            run.strategy_time + run.distance_time,
            run.distance
        );
    }
    Ok(())
}

fn cmd_mapping(opts: &Opts) -> Result<(), String> {
    if opts.positional.len() != 2 {
        return Err("mapping needs two trees".into());
    }
    let xml = opts.has("xml");
    let f = load_tree(&opts.positional[0], xml)?;
    let g = load_tree(&opts.positional[1], xml)?;
    let cm = cost_model(opts)?;
    let m = edit_mapping(&f, &g, &cm);
    println!("distance {}", m.cost);
    for op in &m.ops {
        match op {
            rted_core::EditOp::Delete(v) => println!("delete {}", f.label(*v)),
            rted_core::EditOp::Insert(w) => println!("insert {}", g.label(*w)),
            rted_core::EditOp::Map(v, w) => {
                let (a, b) = (f.label(*v), g.label(*w));
                if CostModel::<String>::rename(&cm, a, b) > 0.0 {
                    println!("rename {a} -> {b}");
                } else {
                    println!("keep   {a}");
                }
            }
        }
    }
    Ok(())
}

fn cmd_generate(opts: &Opts) -> Result<(), String> {
    if opts.positional.len() != 2 {
        return Err("generate needs SHAPE and N".into());
    }
    let shape = shape_by_name(&opts.positional[0])
        .ok_or(format!("unknown shape {}", opts.positional[0]))?;
    let n: usize = opts.positional[1]
        .parse()
        .map_err(|_| format!("bad size {}", opts.positional[1]))?;
    let seed: u64 = opts.flag("seed").and_then(|s| s.parse().ok()).unwrap_or(42);
    let t = shape.generate(n.max(1), seed);
    println!("{}", to_bracket(&t.map_labels(|l| l.to_string())));
    Ok(())
}

fn cmd_join(opts: &Opts) -> Result<(), String> {
    if opts.positional.len() != 1 {
        return Err("join needs a file with one bracket tree per line".into());
    }
    let index = load_index(&opts.positional[0], opts)?;
    let tau: f64 = parsed_flag(opts, "tau", f64::INFINITY)?;
    let res = index.join(tau);
    for m in &res.matches {
        println!("{}\t{}\t{}", m.left, m.right, m.distance);
    }
    report_stats(&res.stats, "pairs");
    Ok(())
}

/// Loads an indexed corpus from a one-bracket-tree-per-line file, honoring
/// the shared `--algorithm`, `--threads` and `--no-filter` flags.
fn load_index(path: &str, opts: &Opts) -> Result<TreeIndex<String>, String> {
    let content = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let trees: Vec<Tree<String>> = content
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| parse_bracket(l.trim()).map_err(|e| e.to_string()))
        .collect::<Result<_, _>>()?;
    let alg = match opts.flag("algorithm") {
        None => Algorithm::Rted,
        Some(name) => algorithm_by_name(name).ok_or(format!("unknown algorithm {name}"))?,
    };
    let mut index = TreeIndex::build(trees).with_algorithm(alg);
    if opts.has("no-filter") {
        index = index.unfiltered();
    }
    if let Some(t) = opts.flag("threads") {
        let threads: usize = t.parse().map_err(|_| format!("bad --threads {t}"))?;
        index = index.with_threads(threads);
    }
    Ok(index)
}

/// Parses an optional numeric flag, erroring on malformed values instead
/// of silently falling back to the default.
fn parsed_flag<T: std::str::FromStr>(opts: &Opts, name: &str, default: T) -> Result<T, String> {
    match opts.flag(name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("bad --{name} {v}")),
    }
}

/// Prints query statistics, including per-filter-stage prune counters.
fn report_stats(stats: &SearchStats, what: &str) {
    let pruned: Vec<String> = stats
        .filter
        .stages
        .iter()
        .filter(|s| s.pruned > 0)
        .map(|s| format!("{} {}", s.stage, s.pruned))
        .collect();
    let pruned = if pruned.is_empty() {
        "none".to_string()
    } else {
        pruned.join(", ")
    };
    eprintln!(
        "{} {what} | {} verified exactly | pruned: {pruned} | {} subproblems | {:?}",
        stats.candidates, stats.verified, stats.subproblems, stats.time
    );
}

fn cmd_search(opts: &Opts) -> Result<(), String> {
    if opts.positional.len() != 2 {
        return Err("search needs FILE and QUERY".into());
    }
    let index = load_index(&opts.positional[0], opts)?;
    let query = load_tree(&opts.positional[1], opts.has("xml"))?;
    let tau: f64 = parsed_flag(opts, "tau", f64::INFINITY)?;
    let res = index.range(&query, tau);
    for n in &res.neighbors {
        println!("{}\t{}", n.id, n.distance);
    }
    report_stats(&res.stats, "candidates");
    Ok(())
}

fn cmd_topk(opts: &Opts) -> Result<(), String> {
    if opts.positional.len() != 2 {
        return Err("topk needs FILE and QUERY".into());
    }
    let index = load_index(&opts.positional[0], opts)?;
    let query = load_tree(&opts.positional[1], opts.has("xml"))?;
    let k: usize = parsed_flag(opts, "k", 5)?;
    let res = index.top_k(&query, k);
    for n in &res.neighbors {
        println!("{}\t{}", n.id, n.distance);
    }
    report_stats(&res.stats, "candidates");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let opts = Opts::parse(&args[1..]);
    let result = match cmd.as_str() {
        "distance" => cmd_distance(&opts),
        "compare" => cmd_compare(&opts),
        "mapping" => cmd_mapping(&opts),
        "generate" => cmd_generate(&opts),
        "join" => cmd_join(&opts),
        "search" => cmd_search(&opts),
        "topk" => cmd_topk(&opts),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
