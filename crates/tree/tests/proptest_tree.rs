//! Property-based tests of the tree arena invariants and the
//! decomposition-counting lemmas on arbitrary ordered trees.

use proptest::prelude::*;
use rted_tree::counts::DecompCounts;
use rted_tree::decompose::{
    canonical_pairs, full_decomposition, recursive_relevant_forests, relevant_forest_sequence,
};
use rted_tree::paths::{root_leaf_path, PathKind};
use rted_tree::{parse_bracket, to_bracket, NodeId, Tree};

fn tree_from_choices(labels: &[u8], choices: &[u32]) -> Tree<u8> {
    let n = labels.len();
    let mut children: Vec<Vec<u32>> = vec![Vec::new(); n];
    for i in 1..n {
        let p = choices[i - 1] % i as u32;
        children[p as usize].push(i as u32);
    }
    let mut post_of = vec![u32::MAX; n];
    let mut order = Vec::with_capacity(n);
    let mut stack: Vec<(u32, usize)> = vec![(0, 0)];
    while let Some(&mut (v, ref mut i)) = stack.last_mut() {
        if *i < children[v as usize].len() {
            let c = children[v as usize][*i];
            *i += 1;
            stack.push((c, 0));
        } else {
            post_of[v as usize] = order.len() as u32;
            order.push(v);
            stack.pop();
        }
    }
    let post_labels: Vec<u8> = order.iter().map(|&v| labels[v as usize]).collect();
    let post_children: Vec<Vec<u32>> = order
        .iter()
        .map(|&v| {
            children[v as usize]
                .iter()
                .map(|&c| post_of[c as usize])
                .collect()
        })
        .collect();
    Tree::from_postorder(post_labels, post_children)
}

fn arb_tree(max: usize) -> impl Strategy<Value = Tree<u8>> {
    (1..=max).prop_flat_map(|n| {
        (
            proptest::collection::vec(any::<u32>(), n.max(2) - 1),
            proptest::collection::vec(0u8..5, n),
        )
            .prop_map(move |(choices, labels)| tree_from_choices(&labels, &choices))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn structural_invariants(t in arb_tree(40)) {
        let n = t.len();
        // Root is the last postorder node and has maximal size.
        prop_assert_eq!(t.root(), NodeId(n as u32 - 1));
        prop_assert_eq!(t.size(t.root()) as usize, n);
        let mut total_children = 0usize;
        for v in t.nodes() {
            // Subtree ranges are consistent.
            let first = t.subtree_first(v);
            prop_assert!(first <= v);
            let sz: u32 = 1 + t.children(v).map(|c| t.size(c)).sum::<u32>();
            prop_assert_eq!(sz, t.size(v));
            // lld is the subtree's first node; rld the node before v... no:
            // rld is the last leaf, which is v-1 if v is internal? Only for
            // the rightmost path; check the defining property instead.
            prop_assert_eq!(t.lld(v), first);
            prop_assert!(t.is_leaf(t.rld(v)) && t.in_subtree(t.rld(v), v));
            // Children are ordered and inside the subtree.
            let ch: Vec<NodeId> = t.children(v).collect();
            for w in ch.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
            for c in &ch {
                prop_assert!(t.in_subtree(*c, v));
                prop_assert_eq!(t.parent(*c), Some(v));
            }
            total_children += ch.len();
        }
        prop_assert_eq!(total_children, n - 1);
    }

    #[test]
    fn mirror_is_involution(t in arb_tree(30)) {
        let mm = t.mirrored().mirrored();
        prop_assert_eq!(t.len(), mm.len());
        for v in t.nodes() {
            prop_assert_eq!(t.label(v), mm.label(v));
            prop_assert_eq!(t.degree(v), mm.degree(v));
            prop_assert_eq!(t.size(v), mm.size(v));
        }
    }

    #[test]
    fn mirror_swaps_postorders(t in arb_tree(30)) {
        let m = t.mirrored();
        // Node with mirror-postorder rank r in t is node r in m, and its
        // mirror-postorder in m is its postorder in t.
        for v in t.nodes() {
            let in_m = NodeId(t.rpost(v));
            prop_assert_eq!(m.rpost(in_m), v.0);
            prop_assert_eq!(t.label(v), m.label(in_m));
        }
    }

    #[test]
    fn bracket_roundtrip(t in arb_tree(25)) {
        let s = to_bracket(&t.map_labels(|l| l.to_string()));
        let back = parse_bracket(&s).unwrap();
        prop_assert_eq!(back.len(), t.len());
        for v in t.nodes() {
            let expect = t.label(v).to_string();
            prop_assert_eq!(back.label(v), &expect);
            prop_assert_eq!(back.degree(v), t.degree(v));
        }
    }

    #[test]
    fn lemma_counts_match_enumeration(t in arb_tree(14)) {
        let counts = DecompCounts::new(&t);
        let root = t.root();
        prop_assert_eq!(full_decomposition(&t, root).len() as u64, counts.full_of(root));
        prop_assert_eq!(
            recursive_relevant_forests(&t, root, PathKind::Left).len() as u64,
            counts.left_of(root)
        );
        prop_assert_eq!(
            recursive_relevant_forests(&t, root, PathKind::Right).len() as u64,
            counts.right_of(root)
        );
        // Lemma 2 for all three path kinds.
        for kind in PathKind::ALL {
            prop_assert_eq!(
                relevant_forest_sequence(&t, root, kind).len() as u32,
                t.size(root)
            );
        }
        // Canonical pairs biject with the full decomposition.
        prop_assert_eq!(canonical_pairs(&t, root).len() as u64, counts.full_of(root));
    }

    #[test]
    fn heavy_path_decomposition_is_smallest_average(t in arb_tree(20)) {
        // The heavy path maximizes the subtree kept on the path at each
        // step, so its relevant subtrees are never larger than n/2.
        let path = root_leaf_path(&t, t.root(), PathKind::Heavy);
        for (i, &p) in path.iter().enumerate().skip(1) {
            let parent = path[i - 1];
            for c in t.children(parent) {
                if c != p {
                    prop_assert!(t.size(c) <= t.size(p), "heavy child not maximal");
                }
            }
        }
    }

    #[test]
    fn subtree_extraction_consistent(t in arb_tree(25)) {
        for v in t.nodes() {
            if v.0 % 3 != 0 { continue; }
            let sub = t.subtree(v);
            prop_assert_eq!(sub.len() as u32, t.size(v));
            prop_assert_eq!(sub.label(sub.root()), t.label(v));
            prop_assert_eq!(sub.max_depth(), {
                t.subtree_nodes(v).map(|x| t.depth(x)).max().unwrap() - t.depth(v)
            });
        }
    }
}

#[test]
fn invalid_postorder_rejected() {
    // Node 0 attached to node 2 while node 1 is a child of node 2 as well
    // is fine; but attaching node 0 to node 3 when {1,2} form a closed
    // subtree below 2 breaks contiguity.
    let r = std::panic::catch_unwind(|| {
        Tree::from_postorder(
            vec!["a", "b", "c", "d"],
            vec![vec![], vec![], vec![1], vec![0, 2]],
        )
    });
    // children of 3 = {0, 2}, subtree(2) = {1, 2}: valid tiling => ok.
    assert!(r.is_ok());
    let r = std::panic::catch_unwind(|| {
        Tree::from_postorder(
            vec!["a", "b", "c", "d"],
            vec![vec![], vec![], vec![0], vec![1, 2]],
        )
    });
    // children of 2 = {0} but subtree(1) not nested => node 3's children
    // {1, 2} cannot tile: subtree(2) = {0, 2} skips 1.
    assert!(r.is_err());
}
