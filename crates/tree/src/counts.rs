//! Closed-form decomposition counts (Lemmas 1–3 of the paper), per subtree.
//!
//! For every node `v` of a tree `F`, the strategy cost formula (Fig. 5)
//! needs three quantities of the subtree `F_v` in O(1):
//!
//! * `|A(F_v)|` — size of the full decomposition (Lemma 1):
//!   `|F_v|(|F_v|+3)/2 − Σ_{x ∈ F_v} |F_x|`;
//! * `|F(F_v, Γ_L(F_v))|` — relevant subforests of the recursive **left**
//!   path decomposition (Lemma 3): the sum of the sizes of all subtrees in
//!   `T(F_v, Γ_L)`, which are exactly `F_v` itself plus every subtree rooted
//!   at a node that is not the leftmost child of its parent;
//! * `|F(F_v, Γ_R(F_v))|` — symmetrically with rightmost children.
//!
//! All three are computed for every subtree in a single O(n) pass.

use crate::{NodeId, Tree};

/// Per-subtree decomposition counts for one tree.
#[derive(Debug, Clone, Default)]
pub struct DecompCounts {
    /// `Σ_{x ∈ F_v} |F_x|` for each `v`.
    pub sum_sizes: Vec<u64>,
    /// `|A(F_v)|` for each `v` (Lemma 1).
    pub full: Vec<u64>,
    /// `|F(F_v, Γ_L(F_v))|` for each `v` (Lemma 3, left paths).
    pub left: Vec<u64>,
    /// `|F(F_v, Γ_R(F_v))|` for each `v` (Lemma 3, right paths).
    pub right: Vec<u64>,
}

impl DecompCounts {
    /// Computes all counts for `tree` in O(n).
    pub fn new<L>(tree: &Tree<L>) -> Self {
        let mut counts = DecompCounts::default();
        counts.rebuild(tree);
        counts
    }

    /// Recomputes all counts for `tree` in place, reusing the arrays'
    /// capacity (no allocation once the arrays are large enough).
    pub fn rebuild<L>(&mut self, tree: &Tree<L>) {
        let n = tree.len();
        self.sum_sizes.clear();
        self.sum_sizes.resize(n, 0);
        self.full.clear();
        self.full.resize(n, 0);
        self.left.clear();
        self.left.resize(n, 0);
        self.right.clear();
        self.right.resize(n, 0);

        for v in 0..n {
            let vid = NodeId(v as u32);
            let sz = tree.size(vid) as u64;
            let mut ss = sz;
            // gl = Σ over nodes x in F_v (x ≠ v) that are NOT leftmost
            // children of |F_x|; symmetric for gr. A child's own sum is
            // recovered as left[c] − size(c), so no extra arrays are kept.
            let mut gl = 0u64;
            let mut gr = 0u64;
            let degree = tree.degree(vid);
            for (i, c) in tree.children(vid).enumerate() {
                let ci = c.idx();
                let csz = tree.size(c) as u64;
                ss += self.sum_sizes[ci];
                gl += self.left[ci] - csz;
                gr += self.right[ci] - csz;
                if i != 0 {
                    gl += csz;
                }
                if i != degree - 1 {
                    gr += csz;
                }
            }
            self.sum_sizes[v] = ss;
            self.full[v] = sz * (sz + 3) / 2 - ss;
            self.left[v] = sz + gl;
            self.right[v] = sz + gr;
        }
    }

    /// `|A(F_v)|`.
    #[inline]
    pub fn full_of(&self, v: NodeId) -> u64 {
        self.full[v.idx()]
    }

    /// `|F(F_v, Γ_L)|`.
    #[inline]
    pub fn left_of(&self, v: NodeId) -> u64 {
        self.left[v.idx()]
    }

    /// `|F(F_v, Γ_R)|`.
    #[inline]
    pub fn right_of(&self, v: NodeId) -> u64 {
        self.right[v.idx()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_bracket;

    #[test]
    fn example4_values() {
        // §6.2 Example 4: F = root with two leaf children.
        // |A(F)| = |F(F,ΓL)| = |F(F,ΓR)| = 4, |F| = 3.
        let f = parse_bracket("{3{1}{2}}").unwrap();
        let c = DecompCounts::new(&f);
        let root = f.root();
        assert_eq!(c.full_of(root), 4);
        assert_eq!(c.left_of(root), 4);
        assert_eq!(c.right_of(root), 4);
        // G = 2-node chain: |A(G)| = |F(G,ΓL)| = |F(G,ΓR)| = 2.
        let g = parse_bracket("{2{1}}").unwrap();
        let cg = DecompCounts::new(&g);
        assert_eq!(cg.full_of(g.root()), 2);
        assert_eq!(cg.left_of(g.root()), 2);
        assert_eq!(cg.right_of(g.root()), 2);
    }

    #[test]
    fn chain_tree_counts() {
        // For a chain of n nodes, A(F) has exactly n elements (every forest
        // in the decomposition is a sub-chain suffix) and the left/right
        // decompositions also have n relevant subforests.
        let f = parse_bracket("{a{b{c{d{e}}}}}").unwrap();
        let c = DecompCounts::new(&f);
        assert_eq!(c.full_of(f.root()), 5);
        assert_eq!(c.left_of(f.root()), 5);
        assert_eq!(c.right_of(f.root()), 5);
    }

    #[test]
    fn figure3_full_decomposition_count() {
        // Paper Figures 3/4 use the 7-node tree A(C, B(G, E(F), D)): the
        // full decomposition has 17 non-empty subforests, the recursive left
        // path decomposition 15, right 11, heavy 10.
        let f = parse_bracket("{A{C}{B{G}{E{F}}{D}}}").unwrap();
        let c = DecompCounts::new(&f);
        assert_eq!(c.full_of(f.root()), 17);
        assert_eq!(c.left_of(f.root()), 15);
        assert_eq!(c.right_of(f.root()), 11);
    }

    #[test]
    fn per_subtree_counts() {
        let f = parse_bracket("{a{b{c}{d}}{e}}").unwrap();
        let c = DecompCounts::new(&f);
        // Subtree at b (= node 2): root with two leaf children → |A| = 4.
        assert_eq!(c.full_of(NodeId(2)), 4);
        // Leaves.
        assert_eq!(c.full_of(NodeId(0)), 1);
        assert_eq!(c.left_of(NodeId(0)), 1);
        assert_eq!(c.right_of(NodeId(0)), 1);
    }
}
