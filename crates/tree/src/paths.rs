//! Root-leaf paths and relevant subtrees (Definitions 2 and 4 of the paper).

use crate::{NodeId, Tree};

/// The three path families of an LRH strategy (§3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PathKind {
    /// `γL`: parent → leftmost child.
    Left,
    /// `γR`: parent → rightmost child.
    Right,
    /// `γH`: parent → child rooting the largest subtree.
    Heavy,
}

impl PathKind {
    /// All three kinds, in the order used throughout the crate.
    pub const ALL: [PathKind; 3] = [PathKind::Left, PathKind::Right, PathKind::Heavy];
}

impl std::fmt::Display for PathKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PathKind::Left => write!(f, "L"),
            PathKind::Right => write!(f, "R"),
            PathKind::Heavy => write!(f, "H"),
        }
    }
}

/// The next node of a `kind` path below `v`, or `None` if `v` is a leaf.
#[inline]
pub fn path_step<L>(tree: &Tree<L>, v: NodeId, kind: PathKind) -> Option<NodeId> {
    match kind {
        PathKind::Left => tree.children(v).next(),
        PathKind::Right => tree.children(v).last(),
        PathKind::Heavy => tree.heavy_child(v),
    }
}

/// The root-leaf path of `kind` starting at `v`: `v` first, leaf last.
pub fn root_leaf_path<L>(tree: &Tree<L>, v: NodeId, kind: PathKind) -> Vec<NodeId> {
    let mut path = Vec::new();
    root_leaf_path_into(tree, v, kind, &mut path);
    path
}

/// [`root_leaf_path`] writing into a caller-owned buffer (cleared first),
/// so hot loops can reuse one allocation across calls.
pub fn root_leaf_path_into<L>(tree: &Tree<L>, v: NodeId, kind: PathKind, out: &mut Vec<NodeId>) {
    out.clear();
    let mut cur = v;
    loop {
        out.push(cur);
        match path_step(tree, cur, kind) {
            Some(next) => cur = next,
            None => return,
        }
    }
}

/// The relevant subtrees `F_v − γ` (Definition 2): roots of the subtrees
/// hanging off the `kind` path of `F_v`, i.e. children of path nodes that
/// are not themselves on the path.
///
/// The returned roots are in descending postorder of their path-node parent,
/// left-to-right within each parent — the order is irrelevant to callers.
pub fn relevant_subtrees<L>(tree: &Tree<L>, v: NodeId, kind: PathKind) -> Vec<NodeId> {
    let mut out = Vec::new();
    relevant_subtrees_into(tree, v, kind, &mut out);
    out
}

/// [`relevant_subtrees`] writing into a caller-owned buffer (cleared
/// first), so hot loops can reuse one allocation across calls.
pub fn relevant_subtrees_into<L>(tree: &Tree<L>, v: NodeId, kind: PathKind, out: &mut Vec<NodeId>) {
    out.clear();
    let mut cur = v;
    loop {
        match path_step(tree, cur, kind) {
            Some(next) => {
                for c in tree.children(cur) {
                    if c != next {
                        out.push(c);
                    }
                }
                cur = next;
            }
            None => return,
        }
    }
}

/// `true` iff `x` lies on the `kind` root-leaf path of the subtree rooted at
/// `v`. O(depth) walk; used by tests and the reference implementations.
pub fn on_path<L>(tree: &Tree<L>, v: NodeId, kind: PathKind, x: NodeId) -> bool {
    let mut cur = v;
    loop {
        if cur == x {
            return true;
        }
        match path_step(tree, cur, kind) {
            Some(next) => cur = next,
            None => return false,
        }
    }
}

/// The recursive path partitioning `Γ(F_v)` for a single path kind
/// (e.g. `Γ_L` when `kind == Left`): the set of relevant subtrees
/// `T(F_v, Γ)` visited by recursively decomposing with `kind` paths.
/// Returns the subtree roots, `v` included.
pub fn recursive_relevant_subtrees<L>(tree: &Tree<L>, v: NodeId, kind: PathKind) -> Vec<NodeId> {
    let mut out = Vec::new();
    let mut stack = vec![v];
    while let Some(u) = stack.pop() {
        out.push(u);
        stack.extend(relevant_subtrees(tree, u, kind));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_bracket;

    fn t(s: &str) -> Tree<String> {
        parse_bracket(s).unwrap()
    }

    #[test]
    fn paths_on_figure4_tree() {
        // Paper Figure 3/4 tree: A(B(D,E(F)),C(G)).
        // Postorder: D=0, F=1, E=2, B=3, G=4, C=5, A=6.
        let t = t("{A{B{D}{E{F}}}{C{G}}}");
        let root = t.root();
        let left: Vec<u32> = root_leaf_path(&t, root, PathKind::Left)
            .iter()
            .map(|n| n.0)
            .collect();
        assert_eq!(left, vec![6, 3, 0]); // A, B, D
        let right: Vec<u32> = root_leaf_path(&t, root, PathKind::Right)
            .iter()
            .map(|n| n.0)
            .collect();
        assert_eq!(right, vec![6, 5, 4]); // A, C, G
        let heavy: Vec<u32> = root_leaf_path(&t, root, PathKind::Heavy)
            .iter()
            .map(|n| n.0)
            .collect();
        assert_eq!(heavy, vec![6, 3, 2, 1]); // A, B (size 4), E, F
    }

    #[test]
    fn relevant_subtrees_match_figure4() {
        let t = t("{A{B{D}{E{F}}}{C{G}}}");
        let root = t.root();
        // Left path A-B-D: hanging subtrees are C (child of A) and E (child of B).
        let mut l: Vec<u32> = relevant_subtrees(&t, root, PathKind::Left)
            .iter()
            .map(|n| n.0)
            .collect();
        l.sort();
        assert_eq!(l, vec![2, 5]);
        // Heavy path A-B-E-F: hanging are C and D.
        let mut h: Vec<u32> = relevant_subtrees(&t, root, PathKind::Heavy)
            .iter()
            .map(|n| n.0)
            .collect();
        h.sort();
        assert_eq!(h, vec![0, 5]);
    }

    #[test]
    fn paths_partition_the_tree() {
        // Path nodes plus nodes of the recursive relevant subtrees cover all
        // nodes exactly once for every path kind.
        let t = t("{a{b{c}{d{e}{f}}}{g}{h{i{j}}{k}}}");
        for kind in PathKind::ALL {
            let subs = recursive_relevant_subtrees(&t, t.root(), kind);
            let total: u32 = subs
                .iter()
                .map(|&s| root_leaf_path(&t, s, kind).len() as u32)
                .sum();
            assert_eq!(total, t.len() as u32, "kind {kind}");
        }
    }

    #[test]
    fn on_path_consistency() {
        let t = t("{a{b{c}{d}}{e}}");
        for kind in PathKind::ALL {
            let path = root_leaf_path(&t, t.root(), kind);
            for v in t.nodes() {
                assert_eq!(path.contains(&v), on_path(&t, t.root(), kind, v));
            }
        }
    }

    #[test]
    fn single_node_path() {
        let t = t("{a}");
        for kind in PathKind::ALL {
            assert_eq!(root_leaf_path(&t, t.root(), kind), vec![NodeId(0)]);
            assert!(relevant_subtrees(&t, t.root(), kind).is_empty());
        }
    }
}
