//! The arena tree type and its derived per-node structure.

use crate::NONE;

/// Identifier of a tree node: the 0-based left-to-right postorder rank.
///
/// Postorder ids give every subtree a contiguous id range, which the edit
/// distance dynamic programs exploit heavily.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a `usize` index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Error produced when flat postorder arrays do not describe a tree.
///
/// Unlike [`Tree::from_postorder`], which panics (its inputs are produced
/// by in-process builders), the flat-array constructors return this error
/// so corrupt serialized data can be rejected instead of aborting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatTreeError {
    /// Human-readable description of the structural violation.
    pub message: String,
}

impl std::fmt::Display for FlatTreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid flat postorder arrays: {}", self.message)
    }
}

impl std::error::Error for FlatTreeError {}

/// An ordered labeled tree.
///
/// All per-node arrays are indexed by postorder id ([`NodeId`]). The tree is
/// immutable after construction; every derived quantity used by the edit
/// distance algorithms is precomputed once in O(n).
#[derive(Debug, Clone)]
pub struct Tree<L> {
    labels: Vec<L>,
    parent: Vec<u32>,
    /// CSR offsets into `children`; length `n + 1`.
    children_off: Vec<u32>,
    /// Children of each node in left-to-right order, grouped per node.
    children: Vec<u32>,
    size: Vec<u32>,
    depth: Vec<u32>,
    /// Leftmost leaf descendant (`l(v)` in Zhang–Shasha).
    lld: Vec<u32>,
    /// Rightmost leaf descendant.
    rld: Vec<u32>,
    /// Mirror (right-to-left) postorder rank, 0-based.
    rpost: Vec<u32>,
    /// Inverse of `rpost`: node with mirror postorder rank `r`.
    by_rpost: Vec<u32>,
    /// Preorder rank, 0-based.
    pre: Vec<u32>,
    /// Heavy child: the child rooting the largest subtree (leftmost wins
    /// ties); `NONE` for leaves.
    heavy: Vec<u32>,
}

impl<L> Tree<L> {
    /// Builds a tree from parallel postorder arrays.
    ///
    /// `post_labels[i]` is the label of the node with postorder rank `i`, and
    /// `post_children[i]` lists its children (postorder ids, left-to-right).
    ///
    /// # Panics
    ///
    /// Panics if the arrays do not describe a single well-formed tree in
    /// postorder (children must precede parents, every non-root node must
    /// have exactly one parent, the last node must be the root).
    pub fn from_postorder(post_labels: Vec<L>, post_children: Vec<Vec<u32>>) -> Self {
        let n = post_labels.len();
        assert!(n > 0, "tree must have at least one node");
        assert_eq!(post_children.len(), n);

        let mut parent = vec![NONE; n];
        let mut children_off = Vec::with_capacity(n + 1);
        let mut children = Vec::with_capacity(n.saturating_sub(1));
        for (i, ch) in post_children.iter().enumerate() {
            children_off.push(children.len() as u32);
            for &c in ch {
                assert!(
                    (c as usize) < i,
                    "child {c} must precede parent {i} in postorder"
                );
                assert_eq!(parent[c as usize], NONE, "node {c} has two parents");
                parent[c as usize] = i as u32;
                children.push(c);
            }
        }
        children_off.push(children.len() as u32);
        assert_eq!(parent[n - 1], NONE, "last postorder node must be the root");
        let roots = parent.iter().filter(|&&p| p == NONE).count();
        assert_eq!(roots, 1, "input is a forest, not a tree");
        // Postorder validity: every subtree must occupy a contiguous id
        // range, i.e. each node's children tile the range right below it.
        let mut size = vec![0u32; n];
        for i in 0..n {
            let ch = &children[children_off[i] as usize..children_off[i + 1] as usize];
            let mut sz = 1u32;
            let mut expect_end = i as u32; // exclusive upper bound of next child
            for &c in ch.iter().rev() {
                assert_eq!(
                    c + 1,
                    expect_end,
                    "node {i}: children do not tile a contiguous postorder range"
                );
                sz += size[c as usize];
                expect_end = c + 1 - size[c as usize];
            }
            size[i] = sz;
        }

        let mut t = Tree {
            labels: post_labels,
            parent,
            children_off,
            children,
            size: vec![0; n],
            depth: vec![0; n],
            lld: vec![0; n],
            rld: vec![0; n],
            rpost: vec![0; n],
            by_rpost: vec![0; n],
            pre: vec![0; n],
            heavy: vec![NONE; n],
        };
        t.compute_derived();
        t
    }

    /// Builds a tree from the flattest possible postorder encoding: one
    /// label and one child count (degree) per node, in postorder.
    ///
    /// This is the inverse of [`postorder_degrees`](Self::postorder_degrees)
    /// and the canonical wire format for serialized trees: a node's children
    /// are the `degree` most recent complete subtrees, so the structure is
    /// recovered with a single stack pass. Unlike
    /// [`from_postorder`](Self::from_postorder) this rejects malformed input
    /// with an error instead of panicking, making it safe to feed with
    /// untrusted bytes.
    pub fn from_postorder_degrees(
        post_labels: Vec<L>,
        degrees: &[u32],
    ) -> Result<Self, FlatTreeError> {
        let n = post_labels.len();
        if n == 0 {
            return Err(FlatTreeError {
                message: "tree must have at least one node".into(),
            });
        }
        if degrees.len() != n {
            return Err(FlatTreeError {
                message: format!("{n} labels but {} degrees", degrees.len()),
            });
        }
        // Stack of completed subtree roots, left-to-right: node `i`'s
        // children are exactly the top `degrees[i]` entries, in order.
        let mut stack: Vec<u32> = Vec::new();
        let mut children: Vec<Vec<u32>> = Vec::with_capacity(n);
        for (i, &d) in degrees.iter().enumerate() {
            let d = d as usize;
            if stack.len() < d {
                return Err(FlatTreeError {
                    message: format!(
                        "node {i} claims {d} children but only {} subtrees precede it",
                        stack.len()
                    ),
                });
            }
            children.push(stack.split_off(stack.len() - d));
            stack.push(i as u32);
        }
        if stack.len() != 1 {
            return Err(FlatTreeError {
                message: format!("input is a forest of {} trees, not one tree", stack.len()),
            });
        }
        // The stack discipline guarantees every `from_postorder` invariant
        // (children precede parents, single root, contiguous subtree
        // ranges), so the panicking constructor cannot fire here.
        Ok(Tree::from_postorder(post_labels, children))
    }

    /// The degree (child count) of every node, in postorder.
    ///
    /// Together with the postorder label sequence this fully determines the
    /// tree shape — see [`from_postorder_degrees`](Self::from_postorder_degrees).
    pub fn postorder_degrees(&self) -> Vec<u32> {
        (0..self.len())
            .map(|v| self.children_off[v + 1] - self.children_off[v])
            .collect()
    }

    fn compute_derived(&mut self) {
        let n = self.len();
        // Sizes, leaf descendants, heavy child: children precede parents in
        // postorder, so a single ascending pass suffices.
        for v in 0..n {
            let ch: &[u32] =
                &self.children[self.children_off[v] as usize..self.children_off[v + 1] as usize];
            let ch = ch.to_vec();
            let ch = &ch[..];
            if ch.is_empty() {
                self.size[v] = 1;
                self.lld[v] = v as u32;
                self.rld[v] = v as u32;
            } else {
                let mut sz = 1u32;
                let mut heavy = ch[0];
                let mut heavy_sz = self.size[ch[0] as usize];
                for &c in ch {
                    sz += self.size[c as usize];
                    if self.size[c as usize] > heavy_sz {
                        heavy_sz = self.size[c as usize];
                        heavy = c;
                    }
                }
                self.size[v] = sz;
                self.lld[v] = self.lld[ch[0] as usize];
                self.rld[v] = self.rld[*ch.last().unwrap() as usize];
                self.heavy[v] = heavy;
            }
        }
        // Depth, preorder and mirror postorder via explicit DFS from the root.
        let root = (n - 1) as u32;
        let mut pre_rank = 0u32;
        let mut rpost_rank = 0u32;
        // Stack entries: (node, next child position in right-to-left order).
        let mut stack: Vec<(u32, usize)> = vec![(root, 0)];
        self.depth[root as usize] = 0;
        // Preorder with children visited left-to-right.
        let mut pstack: Vec<u32> = vec![root];
        while let Some(v) = pstack.pop() {
            self.pre[v as usize] = pre_rank;
            pre_rank += 1;
            let (lo, hi) = (
                self.children_off[v as usize] as usize,
                self.children_off[v as usize + 1] as usize,
            );
            for i in (lo..hi).rev() {
                let c = self.children[i];
                self.depth[c as usize] = self.depth[v as usize] + 1;
                pstack.push(c);
            }
        }
        // Mirror postorder: children right-to-left, node after its children.
        while let Some(&mut (v, ref mut i)) = stack.last_mut() {
            let ch = self.children_range(v as usize);
            if *i < ch.len() {
                let c = ch[ch.len() - 1 - *i];
                *i += 1;
                stack.push((c, 0));
            } else {
                self.rpost[v as usize] = rpost_rank;
                self.by_rpost[rpost_rank as usize] = v;
                rpost_rank += 1;
                stack.pop();
            }
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` iff the tree consists of a single node. Trees are never empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The root node (always the last postorder id).
    #[inline]
    pub fn root(&self) -> NodeId {
        NodeId((self.len() - 1) as u32)
    }

    /// Label of node `v`.
    #[inline]
    pub fn label(&self, v: NodeId) -> &L {
        &self.labels[v.idx()]
    }

    /// Parent of `v`, or `None` for the root.
    #[inline]
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        let p = self.parent[v.idx()];
        (p != NONE).then_some(NodeId(p))
    }

    #[inline]
    fn children_range(&self, v: usize) -> &[u32] {
        &self.children[self.children_off[v] as usize..self.children_off[v + 1] as usize]
    }

    /// Children of `v` in left-to-right order.
    #[inline]
    pub fn children(&self, v: NodeId) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        self.children_range(v.idx()).iter().map(|&c| NodeId(c))
    }

    /// Number of children of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.children_range(v.idx()).len()
    }

    /// `true` iff `v` has no children.
    #[inline]
    pub fn is_leaf(&self, v: NodeId) -> bool {
        self.degree(v) == 0
    }

    /// Size of the subtree rooted at `v`.
    #[inline]
    pub fn size(&self, v: NodeId) -> u32 {
        self.size[v.idx()]
    }

    /// Depth of `v` (root has depth 0).
    #[inline]
    pub fn depth(&self, v: NodeId) -> u32 {
        self.depth[v.idx()]
    }

    /// Leftmost leaf descendant of `v` (Zhang–Shasha's `l(v)`).
    #[inline]
    pub fn lld(&self, v: NodeId) -> NodeId {
        NodeId(self.lld[v.idx()])
    }

    /// Rightmost leaf descendant of `v`.
    #[inline]
    pub fn rld(&self, v: NodeId) -> NodeId {
        NodeId(self.rld[v.idx()])
    }

    /// Mirror (right-to-left) postorder rank of `v`, 0-based.
    #[inline]
    pub fn rpost(&self, v: NodeId) -> u32 {
        self.rpost[v.idx()]
    }

    /// Node with mirror postorder rank `r`.
    #[inline]
    pub fn by_rpost(&self, r: u32) -> NodeId {
        NodeId(self.by_rpost[r as usize])
    }

    /// Preorder rank of `v`, 0-based.
    #[inline]
    pub fn preorder(&self, v: NodeId) -> u32 {
        self.pre[v.idx()]
    }

    /// Heavy child of `v`: the child rooting the largest subtree (leftmost
    /// wins ties), or `None` for leaves.
    #[inline]
    pub fn heavy_child(&self, v: NodeId) -> Option<NodeId> {
        let h = self.heavy[v.idx()];
        (h != NONE).then_some(NodeId(h))
    }

    /// First (postorder-smallest) node of the subtree rooted at `v`.
    ///
    /// The subtree of `v` occupies the contiguous postorder id range
    /// `[subtree_first(v), v]`.
    #[inline]
    pub fn subtree_first(&self, v: NodeId) -> NodeId {
        NodeId(v.0 + 1 - self.size[v.idx()])
    }

    /// `true` iff `x` lies in the subtree rooted at `v` (including `v`).
    #[inline]
    pub fn in_subtree(&self, x: NodeId, v: NodeId) -> bool {
        self.subtree_first(v) <= x && x <= v
    }

    /// All node ids in postorder (`0..n`).
    #[inline]
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = NodeId> {
        (0..self.len() as u32).map(NodeId)
    }

    /// Nodes of the subtree rooted at `v`, in postorder.
    #[inline]
    pub fn subtree_nodes(&self, v: NodeId) -> impl ExactSizeIterator<Item = NodeId> {
        (self.subtree_first(v).0..v.0 + 1).map(NodeId)
    }

    /// Maximum node depth.
    pub fn max_depth(&self) -> u32 {
        self.depth.iter().copied().max().unwrap_or(0)
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.nodes().filter(|&v| self.is_leaf(v)).count()
    }

    /// Maximum fanout (degree) over all nodes.
    pub fn max_fanout(&self) -> usize {
        self.nodes().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Returns the mirrored tree (children reversed at every node).
    ///
    /// Node ids change: the node with mirror postorder rank `r` in `self`
    /// becomes node `r` of the result.
    pub fn mirrored(&self) -> Tree<L>
    where
        L: Clone,
    {
        let n = self.len();
        let mut labels = Vec::with_capacity(n);
        let mut ch = Vec::with_capacity(n);
        for r in 0..n as u32 {
            let v = self.by_rpost(r);
            labels.push(self.label(v).clone());
            let mut cs: Vec<u32> = self.children(v).map(|c| self.rpost(c)).collect();
            cs.reverse();
            ch.push(cs);
        }
        Tree::from_postorder(labels, ch)
    }

    /// Extracts the subtree rooted at `v` as a standalone tree.
    pub fn subtree(&self, v: NodeId) -> Tree<L>
    where
        L: Clone,
    {
        let first = self.subtree_first(v).0;
        let labels: Vec<L> = (first..=v.0)
            .map(|i| self.labels[i as usize].clone())
            .collect();
        let ch: Vec<Vec<u32>> = (first..=v.0)
            .map(|i| self.children(NodeId(i)).map(|c| c.0 - first).collect())
            .collect();
        Tree::from_postorder(labels, ch)
    }

    /// Maps labels through `f`, preserving structure.
    pub fn map_labels<M>(&self, mut f: impl FnMut(&L) -> M) -> Tree<M> {
        let labels = self.labels.iter().map(&mut f).collect();
        let ch = (0..self.len())
            .map(|i| self.children_range(i).to_vec())
            .collect();
        Tree::from_postorder(labels, ch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_bracket;

    fn t(s: &str) -> Tree<String> {
        parse_bracket(s).unwrap()
    }

    #[test]
    fn single_node() {
        let t = t("{a}");
        assert_eq!(t.len(), 1);
        assert_eq!(t.root(), NodeId(0));
        assert!(t.is_leaf(t.root()));
        assert_eq!(t.size(t.root()), 1);
        assert_eq!(t.lld(t.root()), NodeId(0));
        assert_eq!(t.rpost(NodeId(0)), 0);
    }

    #[test]
    fn paper_example_tree() {
        // Figure 1 of the paper: root a with children b, d(->c), e.
        // Postorder: b=0, c=1, d=2, e=3, a=4.
        let t = t("{a{b}{d{c}}{e}}");
        assert_eq!(t.len(), 5);
        assert_eq!(t.label(NodeId(4)), "a");
        assert_eq!(t.label(NodeId(0)), "b");
        assert_eq!(t.label(NodeId(2)), "d");
        assert_eq!(t.size(NodeId(4)), 5);
        assert_eq!(t.size(NodeId(2)), 2);
        assert_eq!(t.parent(NodeId(1)), Some(NodeId(2)));
        assert_eq!(t.parent(NodeId(4)), None);
        assert_eq!(t.lld(NodeId(4)), NodeId(0));
        assert_eq!(t.rld(NodeId(4)), NodeId(3));
        assert_eq!(t.lld(NodeId(2)), NodeId(1));
        // Heavy child of the root is d (subtree size 2).
        assert_eq!(t.heavy_child(NodeId(4)), Some(NodeId(2)));
        // Depths.
        assert_eq!(t.depth(NodeId(4)), 0);
        assert_eq!(t.depth(NodeId(1)), 2);
    }

    #[test]
    fn mirror_postorder() {
        // {a{b}{c}}: postorder b=0, c=1, a=2. Mirror postorder: c=0, b=1, a=2.
        let t = t("{a{b}{c}}");
        assert_eq!(t.rpost(NodeId(1)), 0); // c first in mirror order
        assert_eq!(t.rpost(NodeId(0)), 1);
        assert_eq!(t.rpost(NodeId(2)), 2);
        assert_eq!(t.by_rpost(0), NodeId(1));
    }

    #[test]
    fn mirrored_tree_roundtrip() {
        let t = t("{a{b{d}{e}}{c}}");
        let m = t.mirrored();
        assert_eq!(m.len(), t.len());
        // Mirror of mirror is the original structure.
        let mm = m.mirrored();
        for v in t.nodes() {
            assert_eq!(t.label(v), mm.label(v));
            assert_eq!(t.degree(v), mm.degree(v));
        }
        // Root label preserved; leftmost child of mirror is rightmost of t.
        assert_eq!(m.label(m.root()), "a");
        let first_child = m.children(m.root()).next().unwrap();
        assert_eq!(m.label(first_child), "c");
    }

    #[test]
    fn subtree_extraction() {
        let t = t("{a{b{d}{e}}{c}}");
        // Node with label b has postorder id 2 (d=0, e=1, b=2, c=3, a=4).
        let sub = t.subtree(NodeId(2));
        assert_eq!(sub.len(), 3);
        assert_eq!(sub.label(sub.root()), "b");
        assert_eq!(sub.leaf_count(), 2);
    }

    #[test]
    fn subtree_range_and_membership() {
        let t = t("{a{b{d}{e}}{c}}");
        assert_eq!(t.subtree_first(NodeId(2)), NodeId(0));
        assert!(t.in_subtree(NodeId(1), NodeId(2)));
        assert!(!t.in_subtree(NodeId(3), NodeId(2)));
    }

    #[test]
    fn preorder_ranks() {
        // {a{b{d}{e}}{c}}: preorder a,b,d,e,c ; postorder d,e,b,c,a.
        let t = t("{a{b{d}{e}}{c}}");
        assert_eq!(t.preorder(NodeId(4)), 0); // a
        assert_eq!(t.preorder(NodeId(2)), 1); // b
        assert_eq!(t.preorder(NodeId(0)), 2); // d
        assert_eq!(t.preorder(NodeId(1)), 3); // e
        assert_eq!(t.preorder(NodeId(3)), 4); // c
    }

    #[test]
    #[should_panic(expected = "forest")]
    fn rejects_forest() {
        // Two roots: node 1 is not connected.
        Tree::from_postorder(vec!["a", "b", "c"], vec![vec![], vec![], vec![0]]);
    }

    #[test]
    fn degree_roundtrip() {
        for s in ["{a}", "{a{b}{c}}", "{a{b{d}{e}}{c}}", "{a{b}{d{c}}{e}}"] {
            let t = t(s);
            let labels: Vec<String> = t.nodes().map(|v| t.label(v).clone()).collect();
            let degrees = t.postorder_degrees();
            let back = Tree::from_postorder_degrees(labels, &degrees).unwrap();
            assert_eq!(crate::parse::to_bracket(&back), s);
        }
    }

    #[test]
    fn degree_decode_rejects_malformed() {
        // Empty input.
        assert!(Tree::<u8>::from_postorder_degrees(vec![], &[]).is_err());
        // Length mismatch.
        assert!(Tree::from_postorder_degrees(vec![1u8, 2], &[0]).is_err());
        // Node 0 cannot have a child (nothing precedes it).
        assert!(Tree::from_postorder_degrees(vec![1u8, 2], &[1, 1]).is_err());
        // Forest: two completed subtrees left on the stack.
        assert!(Tree::from_postorder_degrees(vec![1u8, 2], &[0, 0]).is_err());
    }
}
