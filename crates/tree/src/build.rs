//! Incremental tree construction.

use crate::{NodeId, Tree};

/// A node under construction: a label and its ordered children.
#[derive(Debug, Clone)]
pub struct BuildNode<L> {
    /// Node label.
    pub label: L,
    /// Children in left-to-right order.
    pub children: Vec<BuildNode<L>>,
}

impl<L> BuildNode<L> {
    /// A leaf with the given label.
    pub fn leaf(label: L) -> Self {
        BuildNode {
            label,
            children: Vec::new(),
        }
    }

    /// An inner node with the given label and children.
    pub fn node(label: L, children: Vec<BuildNode<L>>) -> Self {
        BuildNode { label, children }
    }

    /// Number of nodes in this subtree.
    pub fn size(&self) -> usize {
        // Iterative to support degenerate chain-shaped trees.
        let mut count = 0usize;
        let mut stack: Vec<&BuildNode<L>> = vec![self];
        while let Some(node) = stack.pop() {
            count += 1;
            stack.extend(node.children.iter());
        }
        count
    }

    /// Finalizes this nested structure into a [`Tree`] (postorder arena).
    pub fn build(self) -> Tree<L> {
        let n = self.size();
        let mut labels: Vec<L> = Vec::with_capacity(n);
        let mut children: Vec<Vec<u32>> = Vec::with_capacity(n);
        // Iterative postorder flattening (avoids recursion-depth limits on
        // degenerate chain trees used as adversarial benchmark shapes).
        enum Item<L> {
            Visit(BuildNode<L>),
            Emit { label: L, degree: usize },
        }
        let mut stack = vec![Item::Visit(self)];
        let mut id_stack: Vec<u32> = Vec::new();
        while let Some(item) = stack.pop() {
            match item {
                Item::Visit(node) => {
                    let BuildNode {
                        label,
                        children: ch,
                    } = node;
                    stack.push(Item::Emit {
                        label,
                        degree: ch.len(),
                    });
                    for c in ch.into_iter().rev() {
                        stack.push(Item::Visit(c));
                    }
                }
                Item::Emit { label, degree } => {
                    let id = labels.len() as u32;
                    let ch = id_stack.split_off(id_stack.len() - degree);
                    labels.push(label);
                    children.push(ch);
                    id_stack.push(id);
                }
            }
        }
        Tree::from_postorder(labels, children)
    }
}

/// Stack-based builder: push nodes depth-first, closing each with
/// [`TreeBuilder::up`].
///
/// ```
/// use rted_tree::TreeBuilder;
/// let mut b = TreeBuilder::new();
/// b.open("a");
/// b.open("b");
/// b.up();
/// b.open("c");
/// b.up();
/// b.up();
/// let t = b.finish().unwrap();
/// assert_eq!(t.len(), 3);
/// assert_eq!(t.label(t.root()), &"a");
/// ```
#[derive(Debug)]
pub struct TreeBuilder<L> {
    stack: Vec<BuildNode<L>>,
    finished: Option<BuildNode<L>>,
}

impl<L> Default for TreeBuilder<L> {
    fn default() -> Self {
        Self::new()
    }
}

impl<L> TreeBuilder<L> {
    /// An empty builder.
    pub fn new() -> Self {
        TreeBuilder {
            stack: Vec::new(),
            finished: None,
        }
    }

    /// Opens a new node as the next child of the currently open node (or as
    /// the root if no node is open).
    pub fn open(&mut self, label: L) -> &mut Self {
        assert!(self.finished.is_none(), "root already closed");
        self.stack.push(BuildNode::leaf(label));
        self
    }

    /// Closes the currently open node.
    pub fn up(&mut self) -> &mut Self {
        let node = self.stack.pop().expect("no open node to close");
        match self.stack.last_mut() {
            Some(parent) => parent.children.push(node),
            None => {
                assert!(self.finished.is_none(), "multiple roots");
                self.finished = Some(node);
            }
        }
        self
    }

    /// Adds a leaf child to the currently open node.
    pub fn leaf(&mut self, label: L) -> &mut Self {
        self.open(label);
        self.up()
    }

    /// Completes the build. Returns `None` if no root was closed or nodes
    /// remain open.
    pub fn finish(&mut self) -> Option<Tree<L>> {
        if !self.stack.is_empty() {
            return None;
        }
        self.finished.take().map(BuildNode::build)
    }
}

/// Convenience: builds a tree from a parent vector given in postorder.
///
/// `parents[i]` is the postorder id of node `i`'s parent; the root (last
/// node) uses `parents[n-1] == n-1` or any value `>= n`. The vector must
/// describe a valid postorder layout (every subtree a contiguous id
/// range); [`Tree::from_postorder`] panics otherwise.
pub fn from_parent_vec<L>(labels: Vec<L>, parents: &[u32]) -> Tree<L> {
    let n = labels.len();
    assert_eq!(parents.len(), n);
    let mut children: Vec<Vec<u32>> = vec![Vec::new(); n];
    assert!(n > 0, "tree must have at least one node");
    for (i, &p) in parents.iter().enumerate().take(n - 1) {
        let p = p as usize;
        assert!(p > i && p < n, "parent of {i} must follow it in postorder");
        children[p].push(i as u32);
    }
    Tree::from_postorder(labels, children)
}

/// Relabels node `v`'s subtree root in a copied tree (testing utility).
pub fn with_label<L: Clone>(tree: &Tree<L>, v: NodeId, label: L) -> Tree<L> {
    let mut labels: Vec<L> = tree.nodes().map(|u| tree.label(u).clone()).collect();
    labels[v.idx()] = label;
    let children = tree
        .nodes()
        .map(|u| tree.children(u).map(|c| c.0).collect())
        .collect();
    Tree::from_postorder(labels, children)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_node_nested() {
        let t = BuildNode::node(
            "a",
            vec![
                BuildNode::leaf("b"),
                BuildNode::node("c", vec![BuildNode::leaf("d")]),
            ],
        )
        .build();
        // Postorder: b=0, d=1, c=2, a=3.
        assert_eq!(t.len(), 4);
        assert_eq!(t.label(NodeId(0)), &"b");
        assert_eq!(t.label(NodeId(1)), &"d");
        assert_eq!(t.label(NodeId(2)), &"c");
        assert_eq!(t.label(NodeId(3)), &"a");
    }

    #[test]
    fn builder_unbalanced_is_error() {
        let mut b = TreeBuilder::new();
        b.open(1);
        assert!(b.finish().is_none());
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        // 200k-node chain: must not recurse.
        let mut node = BuildNode::leaf(0u32);
        for i in 1..200_000u32 {
            node = BuildNode::node(i, vec![node]);
        }
        let t = node.build();
        assert_eq!(t.len(), 200_000);
        assert_eq!(t.max_depth(), 199_999);
    }

    #[test]
    fn parent_vec_roundtrip() {
        // chain a->b->c: postorder c=0,b=1,a=2; parents: c->1, b->2.
        let t = from_parent_vec(vec!["c", "b", "a"], &[1, 2, 2]);
        assert_eq!(t.label(t.root()), &"a");
        assert_eq!(t.depth(NodeId(0)), 2);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn parent_vec_rejects_empty() {
        from_parent_vec(Vec::<u8>::new(), &[]);
    }
}
