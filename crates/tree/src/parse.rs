//! Bracket notation parsing and serialization.
//!
//! The notation is the one used by the reference RTED/APTED implementations:
//! a tree is `{label c1 c2 ...}` where each `ci` is itself a bracketed tree.
//! Example: `{a{b}{c{d}}}` is a root `a` with children `b` and `c`, where `c`
//! has a single child `d`. Labels may contain any character except `{` and
//! `}`, which can be escaped as `\{`, `\}` (and `\\` for a backslash).

use crate::build::BuildNode;
use crate::Tree;

/// Error produced when parsing bracket notation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error in the input.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(position: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        position,
        message: message.into(),
    })
}

/// Parses a tree in bracket notation, e.g. `{a{b}{c}}`.
pub fn parse_bracket(input: &str) -> Result<Tree<String>, ParseError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    // Skip leading whitespace.
    while pos < bytes.len() && bytes[pos].is_ascii_whitespace() {
        pos += 1;
    }
    // Iterative parse to support very deep trees.
    let mut stack: Vec<BuildNode<String>> = Vec::new();
    loop {
        if pos >= bytes.len() {
            return err(pos, "unexpected end of input");
        }
        if bytes[pos] != b'{' {
            return err(
                pos,
                format!("expected '{{', found {:?}", bytes[pos] as char),
            );
        }
        pos += 1;
        // Read the label up to the next unescaped '{' or '}'.
        let mut label = String::new();
        while pos < bytes.len() {
            match bytes[pos] {
                b'{' | b'}' => break,
                b'\\' if pos + 1 < bytes.len() => {
                    label.push(bytes[pos + 1] as char);
                    pos += 2;
                }
                c => {
                    label.push(c as char);
                    pos += 1;
                }
            }
        }
        stack.push(BuildNode::leaf(label));
        // Close any finished nodes.
        loop {
            if pos >= bytes.len() {
                return err(pos, "unexpected end of input (unclosed '{')");
            }
            match bytes[pos] {
                b'{' => break, // next child of the top node
                b'}' => {
                    pos += 1;
                    let node = stack.pop().expect("stack invariant");
                    match stack.last_mut() {
                        Some(parent) => parent.children.push(node),
                        None => {
                            // Allow trailing whitespace only.
                            while pos < bytes.len() && bytes[pos].is_ascii_whitespace() {
                                pos += 1;
                            }
                            if pos != bytes.len() {
                                return err(pos, "trailing input after root");
                            }
                            return Ok(node.build());
                        }
                    }
                }
                c => {
                    return err(pos, format!("expected '{{' or '}}', found {:?}", c as char));
                }
            }
        }
    }
}

/// Serializes a tree to bracket notation (inverse of [`parse_bracket`]).
pub fn to_bracket<L: std::fmt::Display>(tree: &Tree<L>) -> String {
    let mut out = String::new();
    // Iterative preorder with explicit close markers.
    enum Step {
        Open(crate::NodeId),
        Close,
    }
    let mut stack = vec![Step::Open(tree.root())];
    while let Some(step) = stack.pop() {
        match step {
            Step::Open(v) => {
                out.push('{');
                let label = tree.label(v).to_string();
                for ch in label.chars() {
                    if ch == '{' || ch == '}' || ch == '\\' {
                        out.push('\\');
                    }
                    out.push(ch);
                }
                stack.push(Step::Close);
                let children: Vec<_> = tree.children(v).collect();
                for &c in children.iter().rev() {
                    stack.push(Step::Open(c));
                }
            }
            Step::Close => out.push('}'),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple() {
        for s in ["{a}", "{a{b}{c}}", "{a{b{d}{e}}{c}}", "{x{y{z{w}}}}"] {
            let t = parse_bracket(s).unwrap();
            assert_eq!(to_bracket(&t), s);
        }
    }

    #[test]
    fn labels_with_spaces_and_escapes() {
        let t = parse_bracket("{hello world{sub \\{tree\\}}}").unwrap();
        assert_eq!(t.label(t.root()), "hello world");
        assert_eq!(t.label(crate::NodeId(0)), "sub {tree}");
        let s = to_bracket(&t);
        let t2 = parse_bracket(&s).unwrap();
        assert_eq!(t2.label(crate::NodeId(0)), "sub {tree}");
    }

    #[test]
    fn empty_labels_allowed() {
        let t = parse_bracket("{{}{}}").unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.label(t.root()), "");
    }

    #[test]
    fn error_cases() {
        assert!(parse_bracket("").is_err());
        assert!(parse_bracket("a").is_err());
        assert!(parse_bracket("{a").is_err());
        assert!(parse_bracket("{a}}").is_err());
        assert!(parse_bracket("{a}{b}").is_err());
    }

    #[test]
    fn deep_parse_no_overflow() {
        let mut s = String::new();
        for _ in 0..100_000 {
            s.push_str("{x");
        }
        s.push_str(&"}".repeat(100_000));
        let t = parse_bracket(&s).unwrap();
        assert_eq!(t.len(), 100_000);
    }

    #[test]
    fn whitespace_tolerated_at_ends() {
        let t = parse_bracket("  {a{b}}\n").unwrap();
        assert_eq!(t.len(), 2);
    }
}
