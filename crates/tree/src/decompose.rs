//! Explicit enumeration of decompositions (Definitions 1–3) — the executable
//! specification against which the closed-form counts of [`crate::counts`]
//! and the canonical forest encoding used by the edit distance engine are
//! validated. These routines are O(n²)–O(n³) and intended for tests,
//! debugging and small inputs only.

use crate::paths::{root_leaf_path, PathKind};
use crate::{NodeId, Tree};
use std::collections::BTreeSet;

/// A subforest represented by its root nodes (each rooting a complete
/// subtree of the underlying tree), in left-to-right order.
///
/// Every forest reachable by the Fig.-2 recursion is of this form: removing
/// a root node replaces it by its children, which root complete subtrees.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Forest(pub Vec<u32>);

impl Forest {
    /// The forest consisting of the single subtree rooted at `v`.
    pub fn tree(v: NodeId) -> Self {
        Forest(vec![v.0])
    }

    /// `true` iff the forest has no nodes.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Number of nodes (sum of root subtree sizes).
    pub fn node_count<L>(&self, tree: &Tree<L>) -> u64 {
        self.0.iter().map(|&r| tree.size(NodeId(r)) as u64).sum()
    }

    /// Leftmost root, if any.
    pub fn leftmost(&self) -> Option<NodeId> {
        self.0.first().map(|&r| NodeId(r))
    }

    /// Rightmost root, if any.
    pub fn rightmost(&self) -> Option<NodeId> {
        self.0.last().map(|&r| NodeId(r))
    }

    /// Removes the leftmost root node, replacing it by its children.
    pub fn remove_leftmost<L>(&self, tree: &Tree<L>) -> Forest {
        let mut out = Vec::with_capacity(self.0.len() + 2);
        let first = NodeId(self.0[0]);
        out.extend(tree.children(first).map(|c| c.0));
        out.extend_from_slice(&self.0[1..]);
        Forest(out)
    }

    /// Removes the rightmost root node, replacing it by its children.
    pub fn remove_rightmost<L>(&self, tree: &Tree<L>) -> Forest {
        let mut out = Vec::with_capacity(self.0.len() + 2);
        let last = NodeId(*self.0.last().unwrap());
        out.extend_from_slice(&self.0[..self.0.len() - 1]);
        out.extend(tree.children(last).map(|c| c.0));
        Forest(out)
    }

    /// All node ids of the forest, ascending.
    pub fn all_nodes<L>(&self, tree: &Tree<L>) -> Vec<u32> {
        let mut nodes = Vec::new();
        for &r in &self.0 {
            let rid = NodeId(r);
            nodes.extend(tree.subtree_first(rid).0..=r);
        }
        nodes.sort_unstable();
        nodes
    }
}

/// Enumerates the full decomposition `A(F_v)` (Definition 1): all distinct
/// non-empty subforests reachable by repeatedly removing leftmost or
/// rightmost root nodes. Exponential-looking recursion tamed by a visited
/// set; fine for the small trees used in tests.
pub fn full_decomposition<L>(tree: &Tree<L>, v: NodeId) -> BTreeSet<Forest> {
    let mut seen: BTreeSet<Forest> = BTreeSet::new();
    let mut stack = vec![Forest::tree(v)];
    while let Some(f) = stack.pop() {
        if f.is_empty() || !seen.insert(f.clone()) {
            continue;
        }
        stack.push(f.remove_leftmost(tree));
        stack.push(f.remove_rightmost(tree));
    }
    seen
}

/// The relevant-subforest sequence `F(F_v, γ)` (Definition 3) for the `kind`
/// root-leaf path of `F_v`: `F_v` itself first, then one node removed per
/// step (rightmost root while the leftmost root is on the path, otherwise
/// leftmost), down to a single node. Empty forest not included.
pub fn relevant_forest_sequence<L>(tree: &Tree<L>, v: NodeId, kind: PathKind) -> Vec<Forest> {
    let path: BTreeSet<u32> = root_leaf_path(tree, v, kind).iter().map(|n| n.0).collect();
    let mut seq = Vec::new();
    let mut cur = Forest::tree(v);
    while !cur.is_empty() {
        seq.push(cur.clone());
        let lm = cur.leftmost().unwrap();
        cur = if path.contains(&lm.0) {
            cur.remove_rightmost(tree)
        } else {
            cur.remove_leftmost(tree)
        };
    }
    seq
}

/// The set of relevant subforests of the recursive path decomposition
/// `F(F_v, Γ)` (Equation 1) where every subtree uses its `kind` path.
pub fn recursive_relevant_forests<L>(
    tree: &Tree<L>,
    v: NodeId,
    kind: PathKind,
) -> BTreeSet<Forest> {
    let mut out = BTreeSet::new();
    let mut stack = vec![v];
    while let Some(u) = stack.pop() {
        out.extend(relevant_forest_sequence(tree, u, kind));
        stack.extend(crate::paths::relevant_subtrees(tree, u, kind));
    }
    out
}

/// The canonical pair of a forest within the subtree rooted at `v`:
/// `(a, b)` where `a` is the maximum **local** left-postorder rank and `b`
/// the maximum local mirror-postorder rank of its nodes (1-based; the empty
/// forest would be `(0, 0)`).
///
/// Every forest of the full decomposition satisfies
/// `nodes = {x : lpost(x) ≤ a ∧ rpost(x) ≤ b}`; this encoding underlies the
/// O(n²)-space heavy-path single-path function.
pub fn canonical_pair<L>(tree: &Tree<L>, v: NodeId, forest: &Forest) -> (u32, u32) {
    let first_l = tree.subtree_first(v).0;
    let first_r = tree.rpost(v) + 1 - tree.size(v);
    let mut a = 0;
    let mut b = 0;
    for x in forest.all_nodes(tree) {
        a = a.max(x - first_l + 1);
        b = b.max(tree.rpost(NodeId(x)) - first_r + 1);
    }
    (a, b)
}

/// Enumerates all canonical pairs of the subtree rooted at `v` directly from
/// the membership condition: `(a, b)` is canonical iff the node with local
/// lpost `a` has local rpost ≤ `b` and the node with local rpost `b` has
/// local lpost ≤ `a`. The count equals `|A(F_v)|`.
pub fn canonical_pairs<L>(tree: &Tree<L>, v: NodeId) -> BTreeSet<(u32, u32)> {
    let m = tree.size(v);
    let first_l = tree.subtree_first(v).0;
    let first_r = tree.rpost(v) + 1 - m;
    // rb[a] = local rpost of node with local lpost a; lb[b] = inverse.
    let mut rb = vec![0u32; m as usize + 1];
    let mut lb = vec![0u32; m as usize + 1];
    for x in tree.subtree_nodes(v) {
        let a = x.0 - first_l + 1;
        let b = tree.rpost(x) - first_r + 1;
        rb[a as usize] = b;
        lb[b as usize] = a;
    }
    let mut out = BTreeSet::new();
    for a in 1..=m {
        for b in 1..=m {
            if rb[a as usize] <= b && lb[b as usize] <= a {
                out.insert((a, b));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counts::DecompCounts;
    use crate::parse::parse_bracket;

    fn t(s: &str) -> Tree<String> {
        parse_bracket(s).unwrap()
    }

    const SAMPLES: &[&str] = &[
        "{a}",
        "{a{b}}",
        "{a{b}{c}}",
        "{a{b{c{d{e}}}}}",
        "{A{B{D}{E{F}}}{C{G}}}",
        "{a{b{c}{d}}{e{f}{g}}}",
        "{a{b}{c}{d}{e}}",
        "{a{b{c{d}}{e}}{f}{g{h}{i{j}}}}",
    ];

    #[test]
    fn lemma1_full_decomposition_size() {
        for s in SAMPLES {
            let tree = t(s);
            let counts = DecompCounts::new(&tree);
            for v in tree.nodes() {
                let enumerated = full_decomposition(&tree, v).len() as u64;
                assert_eq!(enumerated, counts.full_of(v), "tree {s}, node {v}");
            }
        }
    }

    #[test]
    fn lemma2_single_path_forest_count() {
        // |F(F, γ)| = |F| for every root-leaf path.
        for s in SAMPLES {
            let tree = t(s);
            for v in tree.nodes() {
                for kind in PathKind::ALL {
                    let seq = relevant_forest_sequence(&tree, v, kind);
                    assert_eq!(seq.len() as u32, tree.size(v), "tree {s}, node {v}, {kind}");
                    // The sequence removes exactly one node per step.
                    for (i, f) in seq.iter().enumerate() {
                        assert_eq!(f.node_count(&tree), (tree.size(v) as usize - i) as u64);
                    }
                }
            }
        }
    }

    #[test]
    fn lemma3_recursive_decomposition_count() {
        for s in SAMPLES {
            let tree = t(s);
            let counts = DecompCounts::new(&tree);
            for v in tree.nodes() {
                let l = recursive_relevant_forests(&tree, v, PathKind::Left).len() as u64;
                assert_eq!(l, counts.left_of(v), "left, tree {s}, node {v}");
                let r = recursive_relevant_forests(&tree, v, PathKind::Right).len() as u64;
                assert_eq!(r, counts.right_of(v), "right, tree {s}, node {v}");
            }
        }
    }

    #[test]
    fn relevant_forests_subset_of_full_decomposition() {
        for s in SAMPLES {
            let tree = t(s);
            let v = tree.root();
            let full = full_decomposition(&tree, v);
            for kind in PathKind::ALL {
                for f in recursive_relevant_forests(&tree, v, kind) {
                    assert!(full.contains(&f), "tree {s}, {kind}");
                }
            }
        }
    }

    #[test]
    fn canonical_pairs_biject_with_full_decomposition() {
        for s in SAMPLES {
            let tree = t(s);
            for v in tree.nodes() {
                let full = full_decomposition(&tree, v);
                let pairs: BTreeSet<(u32, u32)> =
                    full.iter().map(|f| canonical_pair(&tree, v, f)).collect();
                // Distinct forests map to distinct pairs...
                assert_eq!(pairs.len(), full.len(), "tree {s}, node {v}");
                // ...and the pairs are exactly the membership-condition pairs.
                assert_eq!(pairs, canonical_pairs(&tree, v), "tree {s}, node {v}");
            }
        }
    }

    #[test]
    fn canonical_pair_determines_membership() {
        // For each decomposition forest with canonical pair (a, b), the node
        // set is exactly {x : local lpost ≤ a and local rpost ≤ b}.
        for s in SAMPLES {
            let tree = t(s);
            let v = tree.root();
            let first_l = tree.subtree_first(v).0;
            let m = tree.size(v);
            let first_r = tree.rpost(v) + 1 - m;
            for f in full_decomposition(&tree, v) {
                let (a, b) = canonical_pair(&tree, v, &f);
                let expected: Vec<u32> = tree
                    .subtree_nodes(v)
                    .filter(|&x| x.0 - first_l < a && tree.rpost(x) - first_r < b)
                    .map(|x| x.0)
                    .collect();
                assert_eq!(f.all_nodes(&tree), expected, "tree {s}");
            }
        }
    }

    #[test]
    fn figure3_exact_forests() {
        // Paper Figures 3/4 tree: A(C, B(G, E(F), D)).
        let tree = t("{A{C}{B{G}{E{F}}{D}}}");
        let full = full_decomposition(&tree, tree.root());
        assert_eq!(full.len(), 17);
        // Figure 4 relevant-subforest counts per recursive decomposition:
        // left 15, right 11, heavy 10.
        let l = recursive_relevant_forests(&tree, tree.root(), PathKind::Left);
        assert_eq!(l.len(), 15);
        let r = recursive_relevant_forests(&tree, tree.root(), PathKind::Right);
        assert_eq!(r.len(), 11);
        let h = recursive_relevant_forests(&tree, tree.root(), PathKind::Heavy);
        assert_eq!(h.len(), 10);
    }
}
