//! Ordered labeled trees and their decomposition structure.
//!
//! This crate is the tree substrate for the RTED tree edit distance
//! reproduction (Pawlik & Augsten, VLDB 2011). It provides:
//!
//! * [`Tree`] — an arena-backed ordered labeled tree whose node identity is
//!   the left-to-right **postorder rank**, with all derived per-node data the
//!   edit distance algorithms need (subtree sizes, depths, leftmost and
//!   rightmost leaf descendants, mirror postorder, preorder, heavy child);
//! * [`build::TreeBuilder`] and [`parse`] — construction from nested builders
//!   or the bracket notation `{a{b}{c}}`;
//! * [`paths`] — root-leaf paths (left, right, heavy) and the relevant
//!   subtrees `F − γ` of a path (Definition 2 of the paper);
//! * [`decompose`] — explicit enumeration of the full decomposition `A(F)`
//!   (Definition 1) and of relevant subforests `F(F, γ)` (Definition 3),
//!   used to validate the closed-form counts;
//! * [`counts`] — O(n) closed-form decomposition counts per subtree
//!   (Lemmas 1–3): `|A(F_v)|`, `|F(F_v, Γ_L)|`, `|F(F_v, Γ_R)|`.
//!
//! # Node identity
//!
//! Nodes are identified by [`NodeId`], the 0-based left-to-right postorder
//! rank. Postorder ids make the edit distance DPs pure index arithmetic: the
//! nodes of the subtree rooted at `v` are exactly the contiguous id range
//! `[v + 1 - size(v), v]`.

pub mod build;
pub mod counts;
pub mod decompose;
pub mod parse;
pub mod paths;
mod tree;

pub use build::TreeBuilder;
pub use parse::{parse_bracket, to_bracket, ParseError};
pub use paths::PathKind;
pub use tree::{FlatTreeError, NodeId, Tree};

/// Sentinel used in parent/heavy-child arrays for "no node".
pub(crate) const NONE: u32 = u32::MAX;
