//! The long-lived query service: request queue, fixed worker pool,
//! durable mutations, and threshold-driven background compaction.
//!
//! # Architecture
//!
//! ```text
//! Client::call ──▶ queue (Mutex<VecDeque> + Condvar) ──▶ worker 0..N
//!                                                          │ owns one Workspace
//!                                                          ▼ for its lifetime
//!                              RwLock<TreeIndex> ◀── read: range/topk/distance
//!                                   │                write: insert/remove
//!                                   ▼ (always index, then log)
//!                              Mutex<Option<CorpusLog>>  ◀── maintenance thread
//! ```
//!
//! * **Queries** (`range`, `topk`, `distance`) take the index read lock
//!   and run concurrently across workers. Each worker borrows one
//!   [`Workspace`] from the shared [`WorkspacePool`] for its whole
//!   lifetime, so the id-to-id `distance` path performs **zero heap
//!   allocations** per request once warm (enforced by a
//!   counting-allocator test); `range`/`topk` allocate only for their
//!   result sets — the TED kernel underneath runs on warm pooled
//!   buffers.
//! * **Mutations** take the write lock, append to the [`CorpusLog`]
//!   **first** (fsynced segment, then header — see the store's
//!   durability model), and only then mutate the in-memory corpus: an
//!   I/O failure answers that one request with an error and leaves
//!   memory and disk consistent on the old state.
//! * **Compaction** runs on a dedicated maintenance thread, woken by
//!   mutations and a timer: when the file's tombstone backlog exceeds
//!   `compact_fraction × live` it rewrites the file while holding the
//!   index *read* lock — queries keep flowing; only mutations wait. The
//!   trigger is multiplicative (no division), keyed off the reclaimable
//!   file backlog rather than the corpus's permanent id holes, so it can
//!   neither fire on an empty store nor re-fire forever after a compact.
//! * **Shutdown** ([`Server::shutdown`], also on drop) closes the queue,
//!   lets the workers drain every already-accepted request, then joins
//!   all threads. Requests submitted after close get an error response
//!   immediately instead of hanging.
//!
//! Lock order is **index, then log** everywhere — the one rule that
//! keeps the three thread groups deadlock-free.

use crate::metrics::{ns_since, OpKind, ServeMetrics};
use crate::proto::{MetricsFormat, Request, Response, StatusReport, TreeRef};
use rted_core::{Workspace, WorkspaceStats};
use rted_index::{
    CorpusEntry, CorpusLog, CorpusStore, LogCounts, PersistError, Recovery, RepairReport,
    TreeIndex, WorkspacePool,
};
use rted_tree::Tree;
use std::collections::VecDeque;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Recovers the guard from a poisoned lock. The service treats poisoning
/// as survivable: a panicking request handler is answered with an error
/// response (see `worker_loop`) and the shared structures it held are
/// structurally valid Rust values — refusing to ever lock them again
/// would escalate one failed request into a dead service.
fn relock<T>(result: Result<T, PoisonError<T>>) -> T {
    result.unwrap_or_else(PoisonError::into_inner)
}

/// Tuning knobs for [`Server::start`].
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker threads executing requests (each owns a workspace).
    pub workers: usize,
    /// Pre-reserved request-queue slots: submissions beyond this still
    /// succeed but may grow the queue (one allocation).
    pub queue_capacity: usize,
    /// Threads *within* one query (`TreeIndex` execution policy). The
    /// default of 1 is right for a server: concurrency comes from the
    /// worker pool, not from splitting individual queries.
    pub query_threads: usize,
    /// Compact when `file_tombstones > compact_fraction × max(live, 1)`;
    /// `None` disables background compaction.
    pub compact_fraction: Option<f64>,
    /// How often the maintenance thread re-checks the trigger even
    /// without a mutation wake-up.
    pub maintenance_interval: Duration,
    /// Route `range`/`topk` queries through the index's vantage-point
    /// tree (built lazily by the first eligible query, maintained
    /// incrementally across inserts/removes). Results are identical to
    /// the linear scan; only the work per query changes. Off by default —
    /// the build spends O(n log n) exact distances, which only pays off
    /// for query-heavy, selective workloads.
    pub metric_tree: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(4),
            queue_capacity: 1024,
            query_threads: 1,
            compact_fraction: Some(0.25),
            maintenance_interval: Duration::from_millis(100),
            metric_tree: false,
        }
    }
}

/// A completion slot: the worker publishes the response here and wakes
/// the submitting client.
#[derive(Default)]
struct Gate {
    slot: Mutex<Option<Response>>,
    ready: Condvar,
}

struct Job {
    request: Request,
    gate: Arc<Gate>,
    /// When the job entered the queue — the worker that pops it records
    /// the queue wait into the telemetry histogram.
    enqueued_at: Instant,
}

struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

struct Shared {
    index: RwLock<TreeIndex<String>>,
    /// `None` = in-memory service (no durability). Always locked *after*
    /// the index lock.
    log: Mutex<Option<CorpusLog>>,
    queue: Mutex<QueueState>,
    have_jobs: Condvar,
    /// Mutation wake-up flag for the maintenance thread.
    maint_pending: Mutex<bool>,
    maint_wake: Condvar,
    /// One workspace per worker, borrowed for the worker's lifetime.
    pool: WorkspacePool,
    workers: usize,
    requests: AtomicU64,
    /// Pre-registered telemetry handles; every record is a few relaxed
    /// atomic ops, so instrumenting the hot path costs no allocation.
    metrics: ServeMetrics,
}

impl Shared {
    fn wake_maintenance(&self) {
        *relock(self.maint_pending.lock()) = true;
        self.maint_wake.notify_all();
    }
}

/// A handle for submitting requests. Each client owns one completion
/// slot, reused across calls — so a warm client issuing id-to-id
/// `distance` requests allocates nothing at all.
pub struct Client {
    shared: Arc<Shared>,
    gate: Arc<Gate>,
}

impl Client {
    /// Submits `request` and blocks for its response. Returns an error
    /// response (without blocking) if the server is shutting down.
    pub fn call(&mut self, request: Request) -> Response {
        *relock(self.gate.slot.lock()) = None;
        {
            let mut q = relock(self.shared.queue.lock());
            if q.closed {
                return Response::Error("server is shutting down".into());
            }
            q.jobs.push_back(Job {
                request,
                gate: Arc::clone(&self.gate),
                enqueued_at: Instant::now(),
            });
        }
        self.shared.metrics.queue_depth.add(1);
        self.shared.have_jobs.notify_one();
        let mut slot = relock(self.gate.slot.lock());
        while slot.is_none() {
            slot = relock(self.gate.ready.wait(slot));
        }
        slot.take().expect("loop exits only on Some")
    }
}

/// The running service: worker pool + maintenance thread over one
/// shared index and (optionally) its durable log.
pub struct Server {
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
    maintenance: Option<JoinHandle<()>>,
}

impl Server {
    /// Starts the service over a pre-built index. Pass the log half of a
    /// [`CorpusStore`] (see [`CorpusStore::into_parts`]) to make
    /// mutations durable; `None` serves purely from memory. The index is
    /// used as configured — set its verifier/pipeline/threads first.
    pub fn start(index: TreeIndex<String>, log: Option<CorpusLog>, cfg: ServerConfig) -> Server {
        let workers = cfg.workers.max(1);
        let persistent = log.is_some();
        let metrics = ServeMetrics::new();
        // Hand the WAL its latency/reclaim handles before it goes behind
        // the lock, so every durable append is timed from the start.
        let log = log.map(|mut log| {
            log.set_obs(metrics.wal_obs());
            log
        });
        let shared = Arc::new(Shared {
            index: RwLock::new(index),
            log: Mutex::new(log),
            queue: Mutex::new(QueueState {
                jobs: VecDeque::with_capacity(cfg.queue_capacity),
                closed: false,
            }),
            have_jobs: Condvar::new(),
            maint_pending: Mutex::new(false),
            maint_wake: Condvar::new(),
            pool: WorkspacePool::new(),
            workers,
            requests: AtomicU64::new(0),
            metrics,
        });
        let threads = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        let maintenance = match cfg.compact_fraction {
            Some(fraction) if persistent => {
                let shared = Arc::clone(&shared);
                let interval = cfg.maintenance_interval;
                Some(std::thread::spawn(move || {
                    maintenance_loop(&shared, fraction, interval)
                }))
            }
            _ => None,
        };
        Server {
            shared,
            threads,
            maintenance,
        }
    }

    /// Opens (and if torn, recovers) the corpus file at `path` and starts
    /// a durable service over it. With [`Recovery::Repair`] a file torn
    /// by a crash mid-update comes back with every complete segment
    /// intact — the report says what was recovered; with
    /// [`Recovery::Strict`] such a file is an error.
    pub fn open(
        path: impl AsRef<Path>,
        recovery: Recovery,
        cfg: ServerConfig,
    ) -> Result<(Server, RepairReport), PersistError> {
        let (store, report) = CorpusStore::open_with(path.as_ref(), recovery)?;
        let (corpus, log) = store.into_parts();
        let index = TreeIndex::from_corpus(corpus)
            .with_threads(cfg.query_threads.max(1))
            .with_metric_tree(cfg.metric_tree);
        Ok((Server::start(index, Some(log), cfg), report))
    }

    /// Starts a non-durable service over trees held only in memory
    /// (useful for tests and ephemeral corpora).
    pub fn in_memory(trees: impl IntoIterator<Item = Tree<String>>, cfg: ServerConfig) -> Server {
        let index = TreeIndex::build(trees)
            .with_threads(cfg.query_threads.max(1))
            .with_metric_tree(cfg.metric_tree);
        Server::start(index, None, cfg)
    }

    /// A new client handle (its completion slot is the one allocation;
    /// reuse the client to amortize it away).
    pub fn client(&self) -> Client {
        Client {
            shared: Arc::clone(&self.shared),
            gate: Arc::new(Gate::default()),
        }
    }

    /// One-shot convenience: submit through a fresh client.
    pub fn call(&self, request: Request) -> Response {
        self.client().call(request)
    }

    /// Front-end hook: a request's wall time crossed the configured
    /// slow-query threshold (bumps `serve_slow_queries_total`).
    pub fn note_slow_query(&self) {
        self.shared.metrics.slow_queries.inc();
    }

    /// Front-end hook: a connection was accepted (bumps
    /// `serve_connections_total` and the open-connections gauge).
    pub fn note_connection_opened(&self) {
        self.shared.metrics.connections_total.inc();
        self.shared.metrics.connections_open.add(1);
    }

    /// Front-end hook: a connection ended.
    pub fn note_connection_closed(&self) {
        self.shared.metrics.connections_open.add(-1);
    }

    /// Graceful shutdown: stops accepting, drains every already-queued
    /// request (their clients still get responses), then joins all
    /// threads. Dropping the server does the same.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        {
            let mut q = relock(self.shared.queue.lock());
            q.closed = true;
        }
        self.shared.have_jobs.notify_all();
        // Through the pending flag, not a bare notify: if the
        // maintenance thread is mid-compaction rather than parked, a
        // notify alone would be missed and shutdown would stall a full
        // maintenance interval.
        self.shared.wake_maintenance();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        if let Some(m) = self.maintenance.take() {
            let _ = m.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

/// The telemetry slot for one request, or `None` for the transport-level
/// `shutdown` (which only reaches a worker by mistake).
fn op_kind(request: &Request) -> Option<OpKind> {
    match request {
        Request::Range { .. } => Some(OpKind::Range),
        Request::TopK { .. } => Some(OpKind::TopK),
        Request::Distance { .. } => Some(OpKind::Distance),
        Request::Diff { .. } => Some(OpKind::Diff),
        Request::Insert { .. } => Some(OpKind::Insert),
        Request::Remove { .. } => Some(OpKind::Remove),
        Request::Status => Some(OpKind::Status),
        Request::Compact => Some(OpKind::Compact),
        Request::Metrics { .. } => Some(OpKind::Metrics),
        Request::Shutdown => None,
    }
}

fn worker_loop(shared: &Shared) {
    // This worker's scratch for its whole lifetime: every request it
    // serves reuses the same warm buffers.
    let mut ws = shared.pool.take();
    // Workspace lifetime counters published so far — the core layer
    // stays free of atomics; this worker folds the deltas upward after
    // each request.
    let mut published = WorkspaceStats::default();
    loop {
        let job = {
            let mut q = relock(shared.queue.lock());
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    break Some(job);
                }
                if q.closed {
                    break None;
                }
                q = relock(shared.have_jobs.wait(q));
            }
        };
        let Some(job) = job else { break };
        shared.metrics.queue_depth.add(-1);
        shared
            .metrics
            .queue_wait_ns
            .record(ns_since(job.enqueued_at));
        let kind = op_kind(&job.request);
        // A panicking handler must not strand its client (the gate would
        // never fill and `Client::call` would block forever) nor kill
        // this worker: catch the unwind and answer with an error. Locks
        // the handler poisoned on the way out are recovered by `relock`.
        let request = job.request;
        let started = Instant::now();
        let response = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            handle(shared, ws.get(), request)
        }))
        .unwrap_or_else(|_| Response::Error("internal error: request handler panicked".into()));
        let elapsed = ns_since(started);
        if let Some(kind) = kind {
            shared.metrics.latency_of(kind).record(elapsed);
        }
        shared.metrics.worker_busy_ns.add(elapsed);
        if matches!(response, Response::Error(_)) {
            shared.metrics.errors.inc();
        }
        let stats = ws.get().lifetime_stats();
        shared
            .metrics
            .core_ted_runs
            .add(stats.ted_runs - published.ted_runs);
        shared
            .metrics
            .core_subproblems
            .add(stats.subproblems - published.subproblems);
        shared
            .metrics
            .core_rows_peak
            .raise_to(i64::try_from(stats.strategy_rows_peak).unwrap_or(i64::MAX));
        published = stats;
        shared.requests.fetch_add(1, Ordering::Relaxed);
        *relock(job.gate.slot.lock()) = Some(response);
        job.gate.ready.notify_one();
    }
}

fn handle(shared: &Shared, ws: &mut Workspace, request: Request) -> Response {
    match request {
        Request::Range { tree, tau } => {
            let index = relock(shared.index.read());
            let res = index.range(&tree, tau);
            Response::Neighbors {
                neighbors: res.neighbors,
                candidates: res.stats.candidates,
                verified: res.stats.verified,
            }
        }
        Request::TopK { tree, k } => {
            let index = relock(shared.index.read());
            let res = index.top_k(&tree, k);
            Response::Neighbors {
                neighbors: res.neighbors,
                candidates: res.stats.candidates,
                verified: res.stats.verified,
            }
        }
        Request::Distance {
            left,
            right,
            at_most,
        } => {
            let index = relock(shared.index.read());
            let corpus = index.corpus();
            let left_tree: &Tree<String> = match &left {
                TreeRef::Inline(t) => t,
                TreeRef::Id(id) => match corpus.get(*id) {
                    Some(entry) => entry.tree(),
                    None => return Response::Error(format!("no live tree with id {id}")),
                },
            };
            let right_tree: &Tree<String> = match &right {
                TreeRef::Inline(t) => t,
                TreeRef::Id(id) => match corpus.get(*id) {
                    Some(entry) => entry.tree(),
                    None => return Response::Error(format!("no live tree with id {id}")),
                },
            };
            if at_most == f64::INFINITY {
                let run = index.distance_in(left_tree, right_tree, ws);
                Response::Distance(run.distance)
            } else {
                // Budgeted path: the bounded kernel may stop the moment
                // the budget is provably blown, answering with a
                // certified lower bound instead of the exact distance.
                let bv = index.distance_within(left_tree, right_tree, at_most, ws);
                match bv.result {
                    rted_core::BoundedResult::Exact(d) => Response::Distance(d),
                    rted_core::BoundedResult::Exceeds(lb) => Response::DistanceExceeds(lb),
                }
            }
        }
        Request::Diff { left, right } => {
            let index = relock(shared.index.read());
            let corpus = index.corpus();
            let left_tree: &Tree<String> = match &left {
                TreeRef::Inline(t) => t,
                TreeRef::Id(id) => match corpus.get(*id) {
                    Some(entry) => entry.tree(),
                    None => return Response::Error(format!("no live tree with id {id}")),
                },
            };
            let right_tree: &Tree<String> = match &right {
                TreeRef::Inline(t) => t,
                TreeRef::Id(id) => match corpus.get(*id) {
                    Some(entry) => entry.tree(),
                    None => return Response::Error(format!("no live tree with id {id}")),
                },
            };
            let mapping = index.diff_in(left_tree, right_tree, ws);
            Response::Diff(mapping.script(left_tree, right_tree))
        }
        Request::Insert { trees } => {
            if trees.is_empty() {
                return Response::Inserted(Vec::new());
            }
            // Analyze outside every lock — the expensive part.
            let entries: Vec<CorpusEntry<String>> =
                trees.into_iter().map(CorpusEntry::analyze).collect();
            let mut index = relock(shared.index.write());
            let base = index.corpus().id_bound();
            {
                let mut log = relock(shared.log.lock());
                if let Some(log) = log.as_mut() {
                    let pairs: Vec<(u64, &CorpusEntry<String>)> = entries
                        .iter()
                        .enumerate()
                        .map(|(i, entry)| ((base + i) as u64, entry))
                        .collect();
                    let old = LogCounts::of(index.corpus());
                    let new = LogCounts {
                        next_id: (base + entries.len()) as u64,
                        live: old.live + entries.len() as u64,
                    };
                    // Durable append FIRST: on failure the in-memory
                    // corpus is untouched, memory and disk still agree.
                    if let Err(e) = log.append_trees(&pairs, old, new) {
                        return Response::Error(format!(
                            "insert not applied (durable append failed): {e}"
                        ));
                    }
                }
            }
            let ids: Vec<usize> = entries
                .into_iter()
                .map(|entry| index.insert_entry(entry))
                .collect();
            drop(index);
            shared.wake_maintenance();
            Response::Inserted(ids)
        }
        Request::Remove { ids } => {
            let mut index = relock(shared.index.write());
            // Dedup against the live set, as the store does: a repeated
            // or dead id is skipped, not an error.
            let mut seen = std::collections::HashSet::new();
            let removable: Vec<u64> = ids
                .iter()
                .filter(|&&id| index.corpus().get(id).is_some() && seen.insert(id))
                .map(|&id| id as u64)
                .collect();
            if removable.is_empty() {
                return Response::Removed(0);
            }
            {
                let mut log = relock(shared.log.lock());
                if let Some(log) = log.as_mut() {
                    let old = LogCounts::of(index.corpus());
                    let new = LogCounts {
                        next_id: old.next_id,
                        live: old.live - removable.len() as u64,
                    };
                    if let Err(e) = log.append_tombstones(&removable, old, new) {
                        return Response::Error(format!(
                            "remove not applied (durable append failed): {e}"
                        ));
                    }
                }
            }
            for &id in &removable {
                index.remove(id as usize);
            }
            drop(index);
            shared.wake_maintenance();
            Response::Removed(removable.len())
        }
        Request::Status => {
            let index = relock(shared.index.read());
            let log = relock(shared.log.lock());
            let corpus = index.corpus();
            let metric = index.metric_snapshot();
            Response::Status(StatusReport {
                live: corpus.len(),
                id_bound: corpus.id_bound(),
                holes: corpus.holes(),
                persistent: log.is_some(),
                segments: log.as_ref().map_or(0, CorpusLog::segment_count),
                file_tombstones: log.as_ref().map_or(0, CorpusLog::tombstone_count),
                workers: shared.workers,
                requests: shared.requests.load(Ordering::Relaxed),
                compactions: shared.metrics.compactions.get(),
                metric_tree: metric.enabled,
                metric_built: metric.built,
                metric_pending: metric.pending,
                metric_tombstones: metric.tombstones,
                uptime_secs: shared.metrics.uptime_secs(),
                requests_by_type: shared.metrics.per_type_counts(),
            })
        }
        Request::Compact => {
            let index = relock(shared.index.read());
            let mut log = relock(shared.log.lock());
            match log.as_mut() {
                None => Response::Error("service is not persistent (nothing to compact)".into()),
                Some(log) => {
                    let reclaimable = log.tombstone_count() > 0 || log.segment_count() > 1;
                    match log.rewrite(index.corpus()) {
                        Ok(()) => {
                            shared.metrics.compactions.inc();
                            Response::Compacted(reclaimable)
                        }
                        Err(e) => Response::Error(format!("compaction failed: {e}")),
                    }
                }
            }
        }
        Request::Metrics { format } => {
            // The service registry plus the index's lifetime totals,
            // frozen together under one read lock.
            let mut snap = {
                let index = relock(shared.index.read());
                let mut snap = shared.metrics.snapshot();
                index.totals().push_metrics(&mut snap);
                snap
            };
            snap.push(
                "serve_requests_total",
                rted_obs::MetricValue::Counter(shared.requests.load(Ordering::Relaxed)),
            );
            match format {
                MetricsFormat::Json => Response::Metrics(snap),
                MetricsFormat::Prometheus => Response::MetricsText(snap.render_prometheus()),
            }
        }
        Request::Shutdown => {
            Response::Error("shutdown is handled by the connection front-end".into())
        }
    }
}

fn maintenance_loop(shared: &Shared, fraction: f64, interval: Duration) {
    loop {
        {
            // Consume the pending flag *before* deciding to park: a
            // wake-up that arrived while the last compaction pass (or
            // shutdown) was in flight is acted on immediately instead of
            // being lost to a missed notify and costing a full interval.
            let mut pending = relock(shared.maint_pending.lock());
            if !*pending {
                pending = relock(shared.maint_wake.wait_timeout(pending, interval)).0;
            }
            *pending = false;
        }
        if relock(shared.queue.lock()).closed {
            break;
        }
        maybe_compact(shared, fraction);
    }
}

/// The threshold-driven compaction pass. Holds the index **read** lock
/// for the rewrite, so queries keep running; only mutations wait. The
/// trigger compares the file's reclaimable tombstone backlog (which
/// resets on compact) against the live count in multiplicative form —
/// no division, no firing on an empty store, no perpetual re-firing on
/// the corpus's permanent id holes.
fn maybe_compact(shared: &Shared, fraction: f64) {
    let index = relock(shared.index.read());
    let mut log_guard = relock(shared.log.lock());
    let Some(log) = log_guard.as_mut() else {
        return;
    };
    let backlog = log.tombstone_count();
    if backlog == 0 || (backlog as f64) <= fraction * (index.corpus().len().max(1) as f64) {
        return;
    }
    if log.rewrite(index.corpus()).is_ok() {
        shared.metrics.compactions.inc();
    }
    // On rewrite failure: leave the backlog as is; the next pass retries.
    // Queries and updates are unaffected (the old file is still intact —
    // rewrite goes through a temp file + rename).
}
