//! The long-lived query service: request queue, fixed worker pool,
//! sharded corpus with copy-on-write snapshots, durable mutations, and
//! threshold-driven background compaction.
//!
//! # Architecture
//!
//! ```text
//! Client::call ──▶ queue (Mutex<VecDeque> + Condvar) ──▶ worker 0..W
//!                                                          │ owns one Workspace
//!                                                          ▼ for its lifetime
//!            shard 0..N: RwLock<Arc<TreeIndex>>  ◀── readers pin (Arc::clone)
//!                 │    ▲ publish = one pointer swap
//!                 ▼    │
//!            Mutex<Option<CorpusLog>> per shard  ◀── maintenance thread
//!                 ▲
//!            Mutex<()> writer — serializes mutations across shards
//! ```
//!
//! * **Snapshot isolation.** Each shard's current epoch is an
//!   `Arc<TreeIndex>` behind an `RwLock` that is only ever held for the
//!   duration of a pointer clone or swap — nanoseconds. Queries *pin* a
//!   snapshot (`Arc::clone`) and run entirely against it; writers fork
//!   the pinned snapshot (O(live) pointer copies — trees, pipeline,
//!   verifier and scratch pool are all `Arc`-shared), apply the
//!   mutation, and publish with a single swap. Compaction rewrites a
//!   pinned epoch. **No query ever waits on a mutation or a
//!   compaction** — the only contended wait left in the system is the
//!   writer mutex between two mutations.
//! * **Sharding.** The corpus is striped over N independent
//!   [`TreeIndex`] shards: global id `g` lives on shard `g % N` as
//!   local id `g / N`, so freshly assigned ids stay dense per shard and
//!   the mapping needs no routing table. `range`/`join` scatter-gather
//!   across every shard; `top_k` runs the centralized striped driver
//!   ([`TreeIndex::top_k_striped`]) over pinned snapshots of all
//!   shards, so its counters — not just its answers — are
//!   deterministic; `distance`/`diff` and mutations route to exactly
//!   the shards their ids live on. Answers are byte-identical to a
//!   1-shard server: merges re-sort into the canonical order and every
//!   per-pair filter decision is a pure function of the operands.
//! * **Queries** (`range`, `topk`, `distance`, `diff`, `join`) run
//!   concurrently across workers against pinned snapshots. Each worker
//!   borrows one [`Workspace`] from the shared [`WorkspacePool`] for
//!   its whole lifetime, so the id-to-id `distance` path performs
//!   **zero heap allocations** per request once warm (enforced by a
//!   counting-allocator test); scatter ops allocate only their merge
//!   buffers and per-leg threads.
//! * **Mutations** take the writer mutex, then every affected shard's
//!   log lock in ascending shard order, append to each [`CorpusLog`]
//!   **first** (fsynced segment, then header), and only then fork and
//!   publish the affected snapshots — the log locks are held across
//!   the swap so compaction can never rewrite an epoch that is about
//!   to be superseded. An I/O failure answers that request with an
//!   error and publishes nothing; WAL segments already appended to
//!   *other* shards in the same batch are unacknowledged residue,
//!   exactly as if the process had crashed mid-batch, and are
//!   reconciled by the next restart's recovery pass.
//! * **Compaction** runs on a dedicated maintenance thread, woken by
//!   mutations and a timer: when a shard file's tombstone backlog
//!   exceeds `compact_fraction × live` it takes that shard's log lock,
//!   pins the current epoch, and rewrites the file — queries and other
//!   shards keep flowing; only mutations touching that shard wait.
//! * **Shutdown** ([`Server::shutdown`], also on drop) closes the
//!   queue, lets the workers drain every already-accepted request,
//!   then joins all threads.
//!
//! Lock order is **writer, then shard logs ascending** for mutations;
//! compaction takes a single shard log lock and nothing else; snapshot
//! `RwLock`s nest innermost and are never held across work. That
//! ordering keeps the three thread groups deadlock-free.

use crate::metrics::{ns_since, OpKind, ServeMetrics};
use crate::proto::{MetricsFormat, Request, Response, StatusReport, TreeRef};
use rted_core::{Workspace, WorkspaceStats};
use rted_index::{
    CorpusEntry, CorpusLog, CorpusStore, JoinPair, LogCounts, Neighbor, PersistError, Recovery,
    RepairReport, TotalsSnapshot, TreeIndex, WorkspacePool,
};
use rted_tree::Tree;
use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Recovers the guard from a poisoned lock. The service treats poisoning
/// as survivable: a panicking request handler is answered with an error
/// response (see `worker_loop`) and the shared structures it held are
/// structurally valid Rust values — refusing to ever lock them again
/// would escalate one failed request into a dead service.
fn relock<T>(result: Result<T, PoisonError<T>>) -> T {
    result.unwrap_or_else(PoisonError::into_inner)
}

/// Tuning knobs for [`Server::start`].
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker threads executing requests (each owns a workspace).
    pub workers: usize,
    /// Pre-reserved request-queue slots: submissions beyond this still
    /// succeed but may grow the queue (one allocation).
    pub queue_capacity: usize,
    /// Threads *within* one query (`TreeIndex` execution policy). The
    /// default of 1 is right for a server: concurrency comes from the
    /// worker pool and the shard fan-out, not from splitting individual
    /// legs.
    pub query_threads: usize,
    /// Independent shards the corpus is striped over (clamped to ≥ 1).
    /// Used by [`Server::open`] and [`Server::in_memory`];
    /// [`Server::start`] serves the single index it is given.
    pub shards: usize,
    /// Compact a shard when its `file_tombstones >
    /// compact_fraction × max(live, 1)`; `None` disables background
    /// compaction.
    pub compact_fraction: Option<f64>,
    /// How often the maintenance thread re-checks the trigger even
    /// without a mutation wake-up.
    pub maintenance_interval: Duration,
    /// Route `range`/`topk` queries through each shard's vantage-point
    /// tree (built lazily by the first eligible query, maintained
    /// incrementally across inserts/removes). Results are identical to
    /// the linear scan; only the work per query changes. Off by default —
    /// the build spends O(n log n) exact distances, which only pays off
    /// for query-heavy, selective workloads.
    pub metric_tree: bool,
    /// Let the adaptive planner steer each query (candidate generator,
    /// per-pair verifier, filter-stage order) from the shards' lifetime
    /// counters. Answer-invariant — results are byte-identical either
    /// way — so it is on by default; turn it off to pin the fixed
    /// configuration (the CLI's `--no-planner`). Used by
    /// [`Server::open`] and [`Server::in_memory`]; [`Server::start`]
    /// serves the index it is given as configured.
    pub planner: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(4),
            queue_capacity: 1024,
            query_threads: 1,
            shards: 1,
            compact_fraction: Some(0.25),
            maintenance_interval: Duration::from_millis(100),
            metric_tree: false,
            planner: true,
        }
    }
}

/// A completion slot: the worker publishes the response here and wakes
/// the submitting client.
#[derive(Default)]
struct Gate {
    slot: Mutex<Option<Response>>,
    ready: Condvar,
}

struct Job {
    request: Request,
    gate: Arc<Gate>,
    /// When the job entered the queue — the worker that pops it records
    /// the queue wait into the telemetry histogram.
    enqueued_at: Instant,
}

struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

/// One stripe of the corpus: its current published epoch and its
/// durable log.
struct Shard {
    /// The published snapshot. The lock is held only for `Arc::clone`
    /// (readers) or the publish swap (writers) — never across work.
    snapshot: RwLock<Arc<TreeIndex<String>>>,
    /// `None` = in-memory service (no durability). Mutations hold this
    /// across WAL append *and* snapshot publish; compaction holds it
    /// across the rewrite — so a compactor can never persist an epoch
    /// a concurrent mutation is superseding.
    log: Mutex<Option<CorpusLog>>,
}

struct Shared {
    shards: Vec<Shard>,
    /// Serializes mutations (insert/remove) across all shards, so a
    /// batch spanning shards commits as one unit and `next_global`
    /// needs no CAS loop. Queries never touch it.
    writer: Mutex<()>,
    /// Next global id to assign. Only mutated under `writer`.
    next_global: AtomicU64,
    /// The TCP front-end's bound address, surfaced through `status`.
    tcp_addr: Mutex<Option<String>>,
    queue: Mutex<QueueState>,
    have_jobs: Condvar,
    /// Mutation wake-up flag for the maintenance thread.
    maint_pending: Mutex<bool>,
    maint_wake: Condvar,
    /// One workspace per worker, borrowed for the worker's lifetime.
    pool: WorkspacePool,
    workers: usize,
    requests: AtomicU64,
    /// Pre-registered telemetry handles; every record is a few relaxed
    /// atomic ops, so instrumenting the hot path costs no allocation.
    metrics: ServeMetrics,
}

impl Shared {
    fn nshards(&self) -> usize {
        self.shards.len()
    }

    /// Global id → `(shard, local id)`.
    fn route(&self, global: usize) -> (usize, usize) {
        (global % self.nshards(), global / self.nshards())
    }

    /// `(shard, local id)` → global id.
    fn global_of(&self, shard: usize, local: usize) -> usize {
        local * self.nshards() + shard
    }

    /// Pins shard `s`'s current epoch: an `Arc::clone` under a
    /// momentary read lock — no allocation, and the returned snapshot
    /// stays valid (and immutable) however many mutations or
    /// compactions run while the caller uses it.
    fn pin(&self, s: usize) -> Arc<TreeIndex<String>> {
        Arc::clone(&*relock(self.shards[s].snapshot.read()))
    }

    fn wake_maintenance(&self) {
        *relock(self.maint_pending.lock()) = true;
        self.maint_wake.notify_all();
    }
}

/// A handle for submitting requests. Each client owns one completion
/// slot, reused across calls — so a warm client issuing id-to-id
/// `distance` requests allocates nothing at all.
pub struct Client {
    shared: Arc<Shared>,
    gate: Arc<Gate>,
}

impl Client {
    /// Submits `request` and blocks for its response. Returns an error
    /// response (without blocking) if the server is shutting down.
    pub fn call(&mut self, request: Request) -> Response {
        *relock(self.gate.slot.lock()) = None;
        {
            let mut q = relock(self.shared.queue.lock());
            if q.closed {
                return Response::Error("server is shutting down".into());
            }
            q.jobs.push_back(Job {
                request,
                gate: Arc::clone(&self.gate),
                enqueued_at: Instant::now(),
            });
        }
        self.shared.metrics.queue_depth.add(1);
        self.shared.have_jobs.notify_one();
        let mut slot = relock(self.gate.slot.lock());
        while slot.is_none() {
            slot = relock(self.gate.ready.wait(slot));
        }
        slot.take().expect("loop exits only on Some")
    }
}

/// The running service: worker pool + maintenance thread over N
/// snapshot-isolated shards and (optionally) their durable logs.
pub struct Server {
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
    maintenance: Option<JoinHandle<()>>,
}

impl Server {
    /// Starts a 1-shard service over a pre-built index. Pass the log
    /// half of a [`CorpusStore`] (see [`CorpusStore::into_parts`]) to
    /// make mutations durable; `None` serves purely from memory. The
    /// index is used as configured — set its verifier/pipeline/threads
    /// first. (`cfg.shards` is ignored here: a pre-built index is one
    /// stripe by construction; use [`Server::open`] or
    /// [`Server::in_memory`] for sharded layouts.)
    pub fn start(index: TreeIndex<String>, log: Option<CorpusLog>, cfg: ServerConfig) -> Server {
        Server::start_shards(vec![(index, log)], cfg)
    }

    /// Starts the service over pre-assembled shards (index + optional
    /// log per stripe, in shard order). Shard `s` of `N` holds the
    /// trees whose global ids are `≡ s (mod N)`, as local ids
    /// `global / N`.
    pub fn start_shards(
        shards: Vec<(TreeIndex<String>, Option<CorpusLog>)>,
        cfg: ServerConfig,
    ) -> Server {
        assert!(!shards.is_empty(), "a server needs at least one shard");
        let n = shards.len();
        let workers = cfg.workers.max(1);
        let persistent = shards.iter().any(|(_, log)| log.is_some());
        let metrics = ServeMetrics::new(n);
        // Recover the global id cursor from the per-shard local bounds:
        // local bound b on shard s means global (b-1)·N + s was
        // assigned, so the cursor resumes past the max over shards —
        // crash holes in any one stripe never cause global id reuse.
        let next_global = shards
            .iter()
            .enumerate()
            .map(|(s, (index, _))| {
                let bound = index.corpus().id_bound();
                if bound == 0 {
                    0
                } else {
                    ((bound - 1) * n + s + 1) as u64
                }
            })
            .max()
            .unwrap_or(0);
        let shards = shards
            .into_iter()
            .map(|(index, log)| Shard {
                snapshot: RwLock::new(Arc::new(index)),
                // Hand each WAL its latency/reclaim handles before it
                // goes behind the lock, so every durable append is
                // timed from the start.
                log: Mutex::new(log.map(|mut log| {
                    log.set_obs(metrics.wal_obs());
                    log
                })),
            })
            .collect();
        let shared = Arc::new(Shared {
            shards,
            writer: Mutex::new(()),
            next_global: AtomicU64::new(next_global),
            tcp_addr: Mutex::new(None),
            queue: Mutex::new(QueueState {
                jobs: VecDeque::with_capacity(cfg.queue_capacity),
                closed: false,
            }),
            have_jobs: Condvar::new(),
            maint_pending: Mutex::new(false),
            maint_wake: Condvar::new(),
            pool: WorkspacePool::new(),
            workers,
            requests: AtomicU64::new(0),
            metrics,
        });
        let threads = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        let maintenance = match cfg.compact_fraction {
            Some(fraction) if persistent => {
                let shared = Arc::clone(&shared);
                let interval = cfg.maintenance_interval;
                Some(std::thread::spawn(move || {
                    maintenance_loop(&shared, fraction, interval)
                }))
            }
            _ => None,
        };
        Server {
            shared,
            threads,
            maintenance,
        }
    }

    /// Opens (and if torn, recovers) the corpus files for a
    /// `cfg.shards`-stripe layout rooted at `path` and starts a durable
    /// service over them. Shard 0 lives at `path` itself; shard `k > 0`
    /// at `path.shard{k}`, created empty when missing (so an existing
    /// 1-shard file can be widened in place). The returned report sums
    /// recovery over every stripe.
    ///
    /// Shard files store *local* ids: a file's meaning depends on the
    /// shard count it is opened under (global = local × N + shard).
    /// Reopen a layout with the same `--shards` it was written with.
    pub fn open(
        path: impl AsRef<Path>,
        recovery: Recovery,
        cfg: ServerConfig,
    ) -> Result<(Server, RepairReport), PersistError> {
        let path = path.as_ref();
        let n = cfg.shards.max(1);
        let mut shards = Vec::with_capacity(n);
        let mut merged = RepairReport {
            segments_recovered: 0,
            bytes_dropped: 0,
            header_rewritten: false,
            live: 0,
            next_id: 0,
            upgraded_from: None,
        };
        for k in 0..n {
            let shard_file = shard_path(path, k);
            let store = if k == 0 || shard_file.exists() {
                let (store, report) = CorpusStore::open_with(&shard_file, recovery)?;
                merged.segments_recovered += report.segments_recovered;
                merged.bytes_dropped += report.bytes_dropped;
                merged.header_rewritten |= report.header_rewritten;
                merged.live += report.live;
                if merged.upgraded_from.is_none() {
                    merged.upgraded_from = report.upgraded_from;
                }
                store
            } else {
                CorpusStore::create(&shard_file, std::iter::empty())?
            };
            let (corpus, log) = store.into_parts();
            let index = TreeIndex::from_corpus(corpus)
                .with_threads(cfg.query_threads.max(1))
                .with_metric_tree(cfg.metric_tree)
                .with_planner(cfg.planner);
            shards.push((index, Some(log)));
        }
        let server = Server::start_shards(shards, cfg);
        merged.next_id = server.shared.next_global.load(Ordering::Relaxed);
        Ok((server, merged))
    }

    /// Starts a non-durable service over trees held only in memory
    /// (useful for tests and ephemeral corpora), striped over
    /// `cfg.shards` stripes: tree `i` gets global id `i`, exactly as a
    /// 1-shard build would assign.
    pub fn in_memory(trees: impl IntoIterator<Item = Tree<String>>, cfg: ServerConfig) -> Server {
        let n = cfg.shards.max(1);
        let mut stripes: Vec<Vec<Tree<String>>> = (0..n).map(|_| Vec::new()).collect();
        for (i, tree) in trees.into_iter().enumerate() {
            stripes[i % n].push(tree);
        }
        let shards = stripes
            .into_iter()
            .map(|stripe| {
                let index = TreeIndex::build(stripe)
                    .with_threads(cfg.query_threads.max(1))
                    .with_metric_tree(cfg.metric_tree)
                    .with_planner(cfg.planner);
                (index, None)
            })
            .collect();
        Server::start_shards(shards, cfg)
    }

    /// A new client handle (its completion slot is the one allocation;
    /// reuse the client to amortize it away).
    pub fn client(&self) -> Client {
        Client {
            shared: Arc::clone(&self.shared),
            gate: Arc::new(Gate::default()),
        }
    }

    /// One-shot convenience: submit through a fresh client.
    pub fn call(&self, request: Request) -> Response {
        self.client().call(request)
    }

    /// The shard count this server is striped over.
    pub fn shards(&self) -> usize {
        self.shared.nshards()
    }

    /// Front-end hook: the TCP listener is up on `addr` (surfaced in
    /// `status` for capability probing).
    pub fn set_tcp_addr(&self, addr: String) {
        *relock(self.shared.tcp_addr.lock()) = Some(addr);
    }

    /// Front-end hook: a request's wall time crossed the configured
    /// slow-query threshold (bumps `serve_slow_queries_total`).
    pub fn note_slow_query(&self) {
        self.shared.metrics.slow_queries.inc();
    }

    /// Front-end hook: a connection was accepted (bumps
    /// `serve_connections_total` and the open-connections gauge).
    pub fn note_connection_opened(&self) {
        self.shared.metrics.connections_total.inc();
        self.shared.metrics.connections_open.add(1);
    }

    /// Front-end hook: a connection ended.
    pub fn note_connection_closed(&self) {
        self.shared.metrics.connections_open.add(-1);
    }

    /// Graceful shutdown: stops accepting, drains every already-queued
    /// request (their clients still get responses), then joins all
    /// threads. Dropping the server does the same.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        {
            let mut q = relock(self.shared.queue.lock());
            q.closed = true;
        }
        self.shared.have_jobs.notify_all();
        // Through the pending flag, not a bare notify: if the
        // maintenance thread is mid-compaction rather than parked, a
        // notify alone would be missed and shutdown would stall a full
        // maintenance interval.
        self.shared.wake_maintenance();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        if let Some(m) = self.maintenance.take() {
            let _ = m.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Shard `k`'s backing file under a root path: the root itself for
/// shard 0 (so 1-shard layouts are plain corpus files), `.shard{k}`
/// suffixed siblings otherwise.
fn shard_path(path: &Path, k: usize) -> PathBuf {
    if k == 0 {
        return path.to_path_buf();
    }
    let mut os = path.as_os_str().to_os_string();
    os.push(format!(".shard{k}"));
    PathBuf::from(os)
}

/// The telemetry slot for one request, or `None` for the transport-level
/// `shutdown` (which only reaches a worker by mistake). Batched diff
/// shares the `diff` slot.
fn op_kind(request: &Request) -> Option<OpKind> {
    match request {
        Request::Range { .. } => Some(OpKind::Range),
        Request::TopK { .. } => Some(OpKind::TopK),
        Request::Distance { .. } => Some(OpKind::Distance),
        Request::Diff { .. } => Some(OpKind::Diff),
        Request::DiffBatch { .. } => Some(OpKind::Diff),
        Request::Join { .. } => Some(OpKind::Join),
        Request::Insert { .. } => Some(OpKind::Insert),
        Request::Remove { .. } => Some(OpKind::Remove),
        Request::Status => Some(OpKind::Status),
        Request::Compact => Some(OpKind::Compact),
        Request::Explain { .. } => Some(OpKind::Explain),
        Request::Metrics { .. } => Some(OpKind::Metrics),
        Request::Shutdown => None,
    }
}

fn worker_loop(shared: &Shared) {
    // This worker's scratch for its whole lifetime: every request it
    // serves reuses the same warm buffers.
    let mut ws = shared.pool.take();
    // Workspace lifetime counters published so far — the core layer
    // stays free of atomics; this worker folds the deltas upward after
    // each request.
    let mut published = WorkspaceStats::default();
    loop {
        let job = {
            let mut q = relock(shared.queue.lock());
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    break Some(job);
                }
                if q.closed {
                    break None;
                }
                q = relock(shared.have_jobs.wait(q));
            }
        };
        let Some(job) = job else { break };
        shared.metrics.queue_depth.add(-1);
        shared
            .metrics
            .queue_wait_ns
            .record(ns_since(job.enqueued_at));
        let kind = op_kind(&job.request);
        // A panicking handler must not strand its client (the gate would
        // never fill and `Client::call` would block forever) nor kill
        // this worker: catch the unwind and answer with an error. Locks
        // the handler poisoned on the way out are recovered by `relock`.
        let request = job.request;
        let started = Instant::now();
        let response = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            handle(shared, ws.get(), request)
        }))
        .unwrap_or_else(|_| Response::Error("internal error: request handler panicked".into()));
        let elapsed = ns_since(started);
        if let Some(kind) = kind {
            shared.metrics.latency_of(kind).record(elapsed);
        }
        shared.metrics.worker_busy_ns.add(elapsed);
        if matches!(response, Response::Error(_)) {
            shared.metrics.errors.inc();
        }
        let stats = ws.get().lifetime_stats();
        shared
            .metrics
            .core_ted_runs
            .add(stats.ted_runs - published.ted_runs);
        shared
            .metrics
            .core_subproblems
            .add(stats.subproblems - published.subproblems);
        shared
            .metrics
            .core_rows_peak
            .raise_to(i64::try_from(stats.strategy_rows_peak).unwrap_or(i64::MAX));
        published = stats;
        shared.requests.fetch_add(1, Ordering::Relaxed);
        *relock(job.gate.slot.lock()) = Some(response);
        job.gate.ready.notify_one();
    }
}

/// Runs one scatter leg with its shard's telemetry around it.
fn timed_leg<T>(m: &crate::metrics::ShardMetrics, f: impl FnOnce() -> T) -> T {
    m.depth.add(1);
    let started = Instant::now();
    let out = f();
    m.scatter_ns.record(ns_since(started));
    m.queries.inc();
    m.depth.add(-1);
    out
}

fn handle(shared: &Shared, ws: &mut Workspace, request: Request) -> Response {
    match request {
        Request::Range { tree, tau } => {
            let n = shared.nshards();
            shared.metrics.scatter_fanout.record(n as u64);
            if n == 1 {
                let index = shared.pin(0);
                let res = index.range(&tree, tau);
                shared.metrics.shard(0).queries.inc();
                return Response::Neighbors {
                    neighbors: res.neighbors,
                    candidates: res.stats.candidates,
                    verified: res.stats.verified,
                };
            }
            let pins: Vec<Arc<TreeIndex<String>>> = (0..n).map(|s| shared.pin(s)).collect();
            let mut legs = Vec::with_capacity(n);
            std::thread::scope(|scope| {
                let tree = &tree;
                let handles: Vec<_> = pins
                    .iter()
                    .enumerate()
                    .map(|(s, pin)| {
                        let m = shared.metrics.shard(s);
                        scope.spawn(move || timed_leg(m, || pin.range(tree, tau)))
                    })
                    .collect();
                for h in handles {
                    legs.push(h.join().expect("scatter leg panicked"));
                }
            });
            let mut neighbors = Vec::new();
            let (mut candidates, mut verified) = (0, 0);
            for (s, leg) in legs.into_iter().enumerate() {
                candidates += leg.stats.candidates;
                verified += leg.stats.verified;
                neighbors.extend(leg.neighbors.into_iter().map(|nb| Neighbor {
                    id: shared.global_of(s, nb.id),
                    distance: nb.distance,
                }));
            }
            // Canonical range order (ascending id) — byte-identical to
            // the 1-shard answer.
            neighbors.sort_by_key(|nb| nb.id);
            Response::Neighbors {
                neighbors,
                candidates,
                verified,
            }
        }
        Request::TopK { tree, k } => {
            let n = shared.nshards();
            shared.metrics.scatter_fanout.record(n as u64);
            if n == 1 {
                let index = shared.pin(0);
                let res = index.top_k(&tree, k);
                shared.metrics.shard(0).queries.inc();
                return Response::Neighbors {
                    neighbors: res.neighbors,
                    candidates: res.stats.candidates,
                    verified: res.stats.verified,
                };
            }
            let pins: Vec<Arc<TreeIndex<String>>> = (0..n).map(|s| shared.pin(s)).collect();
            // One centralized driver over all pinned shards — the
            // merged best-first walk answers (and counts) exactly like
            // an unsharded index holding the union, deterministically.
            // Every shard participates in the one pass, so each still
            // gets a query-leg mark and the pass's wall time.
            for s in 0..n {
                shared.metrics.shard(s).depth.add(1);
            }
            let started = Instant::now();
            let refs: Vec<&TreeIndex<String>> = pins.iter().map(Arc::as_ref).collect();
            let res = TreeIndex::top_k_striped(&refs, &tree, k);
            let elapsed = ns_since(started);
            for s in 0..n {
                let m = shared.metrics.shard(s);
                m.scatter_ns.record(elapsed);
                m.queries.inc();
                m.depth.add(-1);
            }
            Response::Neighbors {
                neighbors: res.neighbors,
                candidates: res.stats.candidates,
                verified: res.stats.verified,
            }
        }
        Request::Join { tau } => {
            let n = shared.nshards();
            shared.metrics.scatter_fanout.record(n as u64);
            if n == 1 {
                let index = shared.pin(0);
                let out = index.join(tau);
                shared.metrics.shard(0).queries.inc();
                return Response::Matches {
                    matches: out.matches,
                    candidates: out.stats.candidates,
                    verified: out.stats.verified,
                };
            }
            let pins: Vec<Arc<TreeIndex<String>>> = (0..n).map(|s| shared.pin(s)).collect();
            let mut matches: Vec<JoinPair> = Vec::new();
            let (mut candidates, mut verified) = (0, 0);
            // N self-join legs plus N·(N-1)/2 bipartite legs cover every
            // unordered pair exactly once: Σ nₛ(nₛ-1)/2 + Σ_{s<t} nₛ·nₜ
            // = n(n-1)/2, so even the candidate count matches the
            // 1-shard answer byte for byte.
            std::thread::scope(|scope| {
                let pins = &pins;
                let self_handles: Vec<_> = (0..n)
                    .map(|s| {
                        let m = shared.metrics.shard(s);
                        scope.spawn(move || timed_leg(m, || pins[s].join(tau)))
                    })
                    .collect();
                let mut cross_handles = Vec::with_capacity(n * (n - 1) / 2);
                for s in 0..n {
                    for t in s + 1..n {
                        let m = shared.metrics.shard(s);
                        cross_handles.push((
                            s,
                            t,
                            scope.spawn(move || {
                                timed_leg(m, || pins[s].join_between(&pins[t], tau))
                            }),
                        ));
                    }
                }
                for (s, h) in self_handles.into_iter().enumerate() {
                    let out = h.join().expect("scatter leg panicked");
                    candidates += out.stats.candidates;
                    verified += out.stats.verified;
                    matches.extend(out.matches.into_iter().map(|p| JoinPair {
                        left: shared.global_of(s, p.left),
                        right: shared.global_of(s, p.right),
                        distance: p.distance,
                    }));
                }
                for (s, t, h) in cross_handles {
                    let out = h.join().expect("scatter leg panicked");
                    candidates += out.stats.candidates;
                    verified += out.stats.verified;
                    matches.extend(out.matches.into_iter().map(|p| {
                        let a = shared.global_of(s, p.left);
                        let b = shared.global_of(t, p.right);
                        JoinPair {
                            left: a.min(b),
                            right: a.max(b),
                            distance: p.distance,
                        }
                    }));
                }
            });
            matches.sort_by_key(|x| (x.left, x.right));
            Response::Matches {
                matches,
                candidates,
                verified,
            }
        }
        Request::Distance {
            left,
            right,
            at_most,
        } => {
            // Route each id operand to its shard and pin at most two
            // snapshots — `Arc::clone`s, so the warm id-to-id path
            // stays allocation-free.
            let lroute = route_ref(shared, &left);
            let rroute = route_ref(shared, &right);
            let lpin = lroute.map(|(s, _)| shared.pin(s));
            let rpin = match (rroute, &lpin, lroute) {
                (Some((s, _)), Some(pin), Some((ls, _))) if s == ls => Some(Arc::clone(pin)),
                (Some((s, _)), _, _) => Some(shared.pin(s)),
                (None, _, _) => None,
            };
            let left_tree: &Tree<String> = match (&left, &lpin, lroute) {
                (TreeRef::Inline(t), _, _) => t,
                (TreeRef::Id(id), Some(pin), Some((_, local))) => match pin.corpus().get(local) {
                    Some(entry) => entry.tree(),
                    None => return Response::Error(format!("no live tree with id {id}")),
                },
                _ => unreachable!("id operands always route"),
            };
            let right_tree: &Tree<String> = match (&right, &rpin, rroute) {
                (TreeRef::Inline(t), _, _) => t,
                (TreeRef::Id(id), Some(pin), Some((_, local))) => match pin.corpus().get(local) {
                    Some(entry) => entry.tree(),
                    None => return Response::Error(format!("no live tree with id {id}")),
                },
                _ => unreachable!("id operands always route"),
            };
            if let Some((s, _)) = lroute {
                shared.metrics.shard(s).queries.inc();
            }
            if let Some((s, _)) = rroute {
                if lroute.map_or(true, |(ls, _)| ls != s) {
                    shared.metrics.shard(s).queries.inc();
                }
            }
            let fallback;
            let recorder: &TreeIndex<String> = match lpin.as_deref().or(rpin.as_deref()) {
                Some(index) => index,
                None => {
                    fallback = shared.pin(0);
                    &fallback
                }
            };
            if at_most == f64::INFINITY {
                let run = recorder.distance_in(left_tree, right_tree, ws);
                Response::Distance(run.distance)
            } else {
                // Budgeted path: the bounded kernel may stop the moment
                // the budget is provably blown, answering with a
                // certified lower bound instead of the exact distance.
                let bv = recorder.distance_within(left_tree, right_tree, at_most, ws);
                match bv.result {
                    rted_core::BoundedResult::Exact(d) => Response::Distance(d),
                    rted_core::BoundedResult::Exceeds(lb) => Response::DistanceExceeds(lb),
                }
            }
        }
        Request::Diff { left, right } => {
            let lroute = route_ref(shared, &left);
            let rroute = route_ref(shared, &right);
            let lpin = lroute.map(|(s, _)| shared.pin(s));
            let rpin = match (rroute, &lpin, lroute) {
                (Some((s, _)), Some(pin), Some((ls, _))) if s == ls => Some(Arc::clone(pin)),
                (Some((s, _)), _, _) => Some(shared.pin(s)),
                (None, _, _) => None,
            };
            let left_tree: &Tree<String> = match (&left, &lpin, lroute) {
                (TreeRef::Inline(t), _, _) => t,
                (TreeRef::Id(id), Some(pin), Some((_, local))) => match pin.corpus().get(local) {
                    Some(entry) => entry.tree(),
                    None => return Response::Error(format!("no live tree with id {id}")),
                },
                _ => unreachable!("id operands always route"),
            };
            let right_tree: &Tree<String> = match (&right, &rpin, rroute) {
                (TreeRef::Inline(t), _, _) => t,
                (TreeRef::Id(id), Some(pin), Some((_, local))) => match pin.corpus().get(local) {
                    Some(entry) => entry.tree(),
                    None => return Response::Error(format!("no live tree with id {id}")),
                },
                _ => unreachable!("id operands always route"),
            };
            if let Some((s, _)) = lroute {
                shared.metrics.shard(s).queries.inc();
            }
            if let Some((s, _)) = rroute {
                if lroute.map_or(true, |(ls, _)| ls != s) {
                    shared.metrics.shard(s).queries.inc();
                }
            }
            let fallback;
            let recorder: &TreeIndex<String> = match lpin.as_deref().or(rpin.as_deref()) {
                Some(index) => index,
                None => {
                    fallback = shared.pin(0);
                    &fallback
                }
            };
            let mapping = recorder.diff_in(left_tree, right_tree, ws);
            Response::Diff(mapping.script(left_tree, right_tree))
        }
        Request::DiffBatch { pairs } => {
            let n = shared.nshards();
            // One pinned snapshot per touched shard, reused across the
            // whole batch; every id validated before any script is
            // extracted, so a dead id fails the batch atomically.
            let mut pins: Vec<Option<Arc<TreeIndex<String>>>> = vec![None; n];
            for &(a, b) in &pairs {
                for id in [a, b] {
                    let (s, local) = shared.route(id);
                    let pin = match &pins[s] {
                        Some(pin) => pin,
                        None => {
                            pins[s] = Some(shared.pin(s));
                            pins[s].as_ref().expect("just pinned")
                        }
                    };
                    if pin.corpus().get(local).is_none() {
                        return Response::Error(format!("no live tree with id {id}"));
                    }
                }
            }
            // This worker's one warm workspace is amortized across the
            // batch — the per-pair cost is the extraction itself.
            let mut scripts = Vec::with_capacity(pairs.len());
            for &(a, b) in &pairs {
                let (sa, la) = shared.route(a);
                let (sb, lb) = shared.route(b);
                let pa = pins[sa].as_ref().expect("validated above");
                let pb = pins[sb].as_ref().expect("validated above");
                let left = pa.corpus().get(la).expect("validated above").tree();
                let right = pb.corpus().get(lb).expect("validated above").tree();
                let mapping = pa.diff_in(left, right, ws);
                scripts.push(mapping.script(left, right));
                shared.metrics.shard(sa).queries.inc();
            }
            Response::DiffBatch(scripts)
        }
        Request::Insert { trees } => {
            if trees.is_empty() {
                return Response::Inserted(Vec::new());
            }
            // Analyze outside every lock — the expensive part.
            let entries: Vec<Arc<CorpusEntry<String>>> = trees
                .into_iter()
                .map(|tree| Arc::new(CorpusEntry::analyze(tree)))
                .collect();
            let n = shared.nshards();
            let response = {
                let _writer = relock(shared.writer.lock());
                let base = shared.next_global.load(Ordering::Relaxed) as usize;
                let count = entries.len();
                let ids: Vec<usize> = (base..base + count).collect();
                let mut stripes: Vec<Vec<(usize, Arc<CorpusEntry<String>>)>> =
                    (0..n).map(|_| Vec::new()).collect();
                for (i, entry) in entries.into_iter().enumerate() {
                    let (s, local) = shared.route(base + i);
                    stripes[s].push((local, entry));
                }
                let affected: Vec<usize> = (0..n).filter(|&s| !stripes[s].is_empty()).collect();
                // Every affected WAL locked in ascending shard order and
                // held across the snapshot publish below, so compaction
                // can never pin an epoch between append and swap.
                let mut log_guards: Vec<_> = affected
                    .iter()
                    .map(|&s| relock(shared.shards[s].log.lock()))
                    .collect();
                let pins: Vec<Arc<TreeIndex<String>>> =
                    affected.iter().map(|&s| shared.pin(s)).collect();
                // Durable appends FIRST, all shards, before any publish:
                // on failure nothing is visible in memory. Segments
                // already appended to earlier shards in the batch are
                // unacknowledged crash-like residue for restart recovery.
                let mut failed = None;
                for ((guard, &s), pin) in log_guards.iter_mut().zip(&affected).zip(&pins) {
                    if let Some(log) = guard.as_mut() {
                        let stripe = &stripes[s];
                        let pairs: Vec<(u64, &CorpusEntry<String>)> = stripe
                            .iter()
                            .map(|(local, entry)| (*local as u64, entry.as_ref()))
                            .collect();
                        let old = LogCounts::of(pin.corpus());
                        let last_local = stripe.last().expect("affected stripes are non-empty").0;
                        let new = LogCounts {
                            next_id: old.next_id.max(last_local as u64 + 1),
                            live: old.live + stripe.len() as u64,
                        };
                        if let Err(e) = log.append_trees(&pairs, old, new) {
                            failed =
                                Some(format!("insert not applied (durable append failed): {e}"));
                            break;
                        }
                    }
                }
                match failed {
                    Some(msg) => Response::Error(msg),
                    None => {
                        for (&s, pin) in affected.iter().zip(&pins) {
                            let mut next = pin.fork();
                            for (local, entry) in stripes[s].drain(..) {
                                next.insert_entry_at(local, entry);
                            }
                            *relock(shared.shards[s].snapshot.write()) = Arc::new(next);
                        }
                        shared
                            .next_global
                            .store((base + count) as u64, Ordering::Relaxed);
                        Response::Inserted(ids)
                    }
                }
            };
            if matches!(response, Response::Inserted(_)) {
                shared.wake_maintenance();
            }
            response
        }
        Request::Remove { ids } => {
            let n = shared.nshards();
            let response = {
                let _writer = relock(shared.writer.lock());
                // Pinned under the writer mutex, these snapshots are the
                // current epochs — no concurrent mutation can invalidate
                // the liveness check below.
                let pins: Vec<Arc<TreeIndex<String>>> = (0..n).map(|s| shared.pin(s)).collect();
                // Dedup against the live set, as the store does: a
                // repeated or dead id is skipped, not an error.
                let mut seen = std::collections::HashSet::new();
                let mut stripes: Vec<Vec<usize>> = (0..n).map(|_| Vec::new()).collect();
                let mut removed = 0usize;
                for &id in &ids {
                    let (s, local) = shared.route(id);
                    if pins[s].corpus().get(local).is_some() && seen.insert(id) {
                        stripes[s].push(local);
                        removed += 1;
                    }
                }
                if removed == 0 {
                    Response::Removed(0)
                } else {
                    let affected: Vec<usize> = (0..n).filter(|&s| !stripes[s].is_empty()).collect();
                    let mut log_guards: Vec<_> = affected
                        .iter()
                        .map(|&s| relock(shared.shards[s].log.lock()))
                        .collect();
                    let mut failed = None;
                    for (guard, &s) in log_guards.iter_mut().zip(&affected) {
                        if let Some(log) = guard.as_mut() {
                            let locals: Vec<u64> = stripes[s].iter().map(|&l| l as u64).collect();
                            let old = LogCounts::of(pins[s].corpus());
                            let new = LogCounts {
                                next_id: old.next_id,
                                live: old.live - locals.len() as u64,
                            };
                            if let Err(e) = log.append_tombstones(&locals, old, new) {
                                failed = Some(format!(
                                    "remove not applied (durable append failed): {e}"
                                ));
                                break;
                            }
                        }
                    }
                    match failed {
                        Some(msg) => Response::Error(msg),
                        None => {
                            for &s in &affected {
                                let mut next = pins[s].fork();
                                for &local in &stripes[s] {
                                    next.remove(local);
                                }
                                *relock(shared.shards[s].snapshot.write()) = Arc::new(next);
                            }
                            Response::Removed(removed)
                        }
                    }
                }
            };
            if matches!(response, Response::Removed(r) if r > 0) {
                shared.wake_maintenance();
            }
            response
        }
        Request::Status => {
            let n = shared.nshards();
            let pins: Vec<Arc<TreeIndex<String>>> = (0..n).map(|s| shared.pin(s)).collect();
            let shard_live: Vec<usize> = pins.iter().map(|p| p.corpus().len()).collect();
            let live: usize = shard_live.iter().sum();
            let (mut segments, mut file_tombstones, mut persistent) = (0, 0, false);
            let mut shard_tombstones = Vec::with_capacity(n);
            for shard in &shared.shards {
                let log = relock(shard.log.lock());
                persistent |= log.is_some();
                segments += log.as_ref().map_or(0, CorpusLog::segment_count);
                let tombs = log.as_ref().map_or(0, CorpusLog::tombstone_count);
                file_tombstones += tombs;
                shard_tombstones.push(tombs);
            }
            let (mut metric_built, mut metric_pending, mut metric_tombstones) = (0, 0, 0);
            let mut metric_tree = false;
            for pin in &pins {
                let metric = pin.metric_snapshot();
                metric_tree |= metric.enabled;
                metric_built += metric.built;
                metric_pending += metric.pending;
                metric_tombstones += metric.tombstones;
            }
            // Global id accounting: the stripe mapping means the global
            // id space is exactly [0, next_global), and every id not
            // live on its shard is a hole.
            let id_bound = shared.next_global.load(Ordering::Relaxed) as usize;
            Response::Status(StatusReport {
                live,
                id_bound,
                holes: id_bound - live,
                persistent,
                segments,
                file_tombstones,
                workers: shared.workers,
                shards: n,
                shard_live,
                shard_tombstones,
                tcp: relock(shared.tcp_addr.lock()).clone(),
                requests: shared.requests.load(Ordering::Relaxed),
                compactions: shared.metrics.compactions.get(),
                metric_tree,
                metric_built,
                metric_pending,
                metric_tombstones,
                uptime_secs: shared.metrics.uptime_secs(),
                requests_by_type: shared.metrics.per_type_counts(),
            })
        }
        Request::Compact => {
            let mut any_persistent = false;
            let mut reclaimable = false;
            for shard in &shared.shards {
                let mut log_guard = relock(shard.log.lock());
                let Some(log) = log_guard.as_mut() else {
                    continue;
                };
                any_persistent = true;
                // Pin under the log lock: mutations hold the log lock
                // across their publish, so this epoch is the one the
                // file must converge to.
                let pin = Arc::clone(&*relock(shard.snapshot.read()));
                reclaimable |= log.tombstone_count() > 0 || log.segment_count() > 1;
                if let Err(e) = log.rewrite(pin.corpus()) {
                    return Response::Error(format!("compaction failed: {e}"));
                }
            }
            if !any_persistent {
                return Response::Error("service is not persistent (nothing to compact)".into());
            }
            shared.metrics.compactions.inc();
            Response::Compacted(reclaimable)
        }
        Request::Metrics { format } => {
            // The service registry plus every shard's lifetime totals,
            // merged into one service-wide `index_*` family.
            let mut snap = shared.metrics.snapshot();
            let mut totals = TotalsSnapshot::default();
            for s in 0..shared.nshards() {
                totals.merge(&shared.pin(s).totals());
            }
            totals.push_metrics(&mut snap);
            snap.push(
                "serve_requests_total",
                rted_obs::MetricValue::Counter(shared.requests.load(Ordering::Relaxed)),
            );
            match format {
                MetricsFormat::Json => Response::Metrics(snap),
                MetricsFormat::Prometheus => Response::MetricsText(snap.render_prometheus()),
            }
        }
        Request::Explain { tau } => {
            // All shards share one configuration and the same planner
            // constants; shard 0 (the striped top-k driver) holds the
            // observations that steer cross-shard queries, so its
            // decision record is the service's.
            Response::Plan(shared.pin(0).explain(tau != f64::INFINITY))
        }
        Request::Shutdown => {
            Response::Error("shutdown is handled by the connection front-end".into())
        }
    }
}

/// Routes an id operand to `(shard, local id)`; inline trees don't
/// route.
fn route_ref(shared: &Shared, r: &TreeRef) -> Option<(usize, usize)> {
    match r {
        TreeRef::Id(id) => Some(shared.route(*id)),
        TreeRef::Inline(_) => None,
    }
}

fn maintenance_loop(shared: &Shared, fraction: f64, interval: Duration) {
    loop {
        {
            // Consume the pending flag *before* deciding to park: a
            // wake-up that arrived while the last compaction pass (or
            // shutdown) was in flight is acted on immediately instead of
            // being lost to a missed notify and costing a full interval.
            let mut pending = relock(shared.maint_pending.lock());
            if !*pending {
                pending = relock(shared.maint_wake.wait_timeout(pending, interval)).0;
            }
            *pending = false;
        }
        if relock(shared.queue.lock()).closed {
            break;
        }
        maybe_compact(shared, fraction);
    }
}

/// The threshold-driven compaction pass, per shard. Holds only that
/// shard's log lock for the rewrite — queries run against pinned
/// snapshots and never notice; mutations touching *other* shards flow
/// freely; only a mutation on the compacting shard waits. The trigger
/// compares the file's reclaimable tombstone backlog (which resets on
/// compact) against the shard's live count in multiplicative form —
/// no division, no firing on an empty store, no perpetual re-firing on
/// the corpus's permanent id holes.
fn maybe_compact(shared: &Shared, fraction: f64) {
    for shard in &shared.shards {
        let mut log_guard = relock(shard.log.lock());
        let Some(log) = log_guard.as_mut() else {
            continue;
        };
        let backlog = log.tombstone_count();
        // Pin under the log lock (see `Compact`): this epoch is final
        // for the file until the lock is released.
        let pin = Arc::clone(&*relock(shard.snapshot.read()));
        if backlog == 0 || (backlog as f64) <= fraction * (pin.corpus().len().max(1) as f64) {
            continue;
        }
        if log.rewrite(pin.corpus()).is_ok() {
            shared.metrics.compactions.inc();
        }
        // On rewrite failure: leave the backlog as is; the next pass
        // retries. Queries and updates are unaffected (the old file is
        // still intact — rewrite goes through a temp file + rename).
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rted_tree::parse_bracket;

    fn trees(specs: &[&str]) -> Vec<Tree<String>> {
        specs.iter().map(|s| parse_bracket(s).unwrap()).collect()
    }

    /// The snapshot-isolation guarantee, asserted at the lock level: a
    /// query completes while a writer *and* a compactor hold every
    /// mutation-side lock in the system. Under the old
    /// `RwLock<TreeIndex>` design this deadlocked (the query needed the
    /// read lock a writer held); under snapshots the query only ever
    /// takes a momentary snapshot read lock that nothing holds across
    /// work.
    #[test]
    fn queries_never_wait_on_writers_or_compaction() {
        let server = Server::in_memory(
            trees(&["{a{b}}", "{a{c}}", "{b}", "{a{b}{c}}", "{c{d}}"]),
            ServerConfig {
                workers: 2,
                shards: 2,
                ..ServerConfig::default()
            },
        );
        // Simulate an in-flight mutation (writer mutex) and an
        // in-flight compaction on every shard (log locks).
        let writer_guard = relock(server.shared.writer.lock());
        let log_guards: Vec<_> = server
            .shared
            .shards
            .iter()
            .map(|s| relock(s.log.lock()))
            .collect();
        let mut client = server.client();
        let (tx, rx) = std::sync::mpsc::channel();
        let query = std::thread::spawn(move || {
            let resp = client.call(Request::Range {
                tree: parse_bracket("{a{b}}").unwrap(),
                tau: 2.0,
            });
            let _ = tx.send(resp);
        });
        let resp = rx
            .recv_timeout(Duration::from_secs(10))
            .expect("range query blocked on writer/compaction locks");
        match resp {
            Response::Neighbors { candidates, .. } => assert_eq!(candidates, 5),
            other => panic!("unexpected response: {other:?}"),
        }
        query.join().unwrap();
        drop(log_guards);
        drop(writer_guard);
    }

    /// Striped routing: global ids assigned across shards behave
    /// exactly like 1-shard ids from the client's point of view.
    #[test]
    fn striped_ids_stay_global() {
        let server = Server::in_memory(
            trees(&["{a}", "{b}", "{c}"]),
            ServerConfig {
                workers: 1,
                shards: 3,
                ..ServerConfig::default()
            },
        );
        // Initial build: tree i has global id i.
        match server.call(Request::Distance {
            left: TreeRef::Id(0),
            right: TreeRef::Id(2),
            at_most: f64::INFINITY,
        }) {
            Response::Distance(d) => assert_eq!(d, 1.0),
            other => panic!("{other:?}"),
        }
        // Inserts keep assigning dense global ids.
        match server.call(Request::Insert {
            trees: trees(&["{d}", "{e}"]),
        }) {
            Response::Inserted(ids) => assert_eq!(ids, vec![3, 4]),
            other => panic!("{other:?}"),
        }
        match server.call(Request::Status) {
            Response::Status(s) => {
                assert_eq!(s.live, 5);
                assert_eq!(s.id_bound, 5);
                assert_eq!(s.holes, 0);
                assert_eq!(s.shards, 3);
                // 0,3 → shard 0; 1,4 → shard 1; 2 → shard 2.
                assert_eq!(s.shard_live, vec![2, 2, 1]);
            }
            other => panic!("{other:?}"),
        }
        // Remove by global id, then the hole is visible globally.
        match server.call(Request::Remove { ids: vec![1] }) {
            Response::Removed(r) => assert_eq!(r, 1),
            other => panic!("{other:?}"),
        }
        match server.call(Request::Status) {
            Response::Status(s) => {
                assert_eq!((s.live, s.id_bound, s.holes), (4, 5, 1));
                assert_eq!(s.shard_live, vec![2, 1, 1]);
            }
            other => panic!("{other:?}"),
        }
        match server.call(Request::Distance {
            left: TreeRef::Id(1),
            right: TreeRef::Id(0),
            at_most: f64::INFINITY,
        }) {
            Response::Error(e) => assert!(e.contains("no live tree with id 1"), "{e}"),
            other => panic!("{other:?}"),
        }
    }

    /// A pinned snapshot answers consistently even while mutations
    /// publish new epochs: queries in flight during an insert see
    /// either the old or the new corpus, never a torn mix.
    #[test]
    fn snapshots_isolate_queries_from_mutations() {
        let server = Server::in_memory(
            trees(&["{a}", "{b}"]),
            ServerConfig {
                workers: 2,
                shards: 2,
                ..ServerConfig::default()
            },
        );
        // Pin the current epoch of both shards directly.
        let pre: Vec<_> = (0..2).map(|s| server.shared.pin(s)).collect();
        match server.call(Request::Insert {
            trees: trees(&["{c}", "{d}", "{e}"]),
        }) {
            Response::Inserted(ids) => assert_eq!(ids, vec![2, 3, 4]),
            other => panic!("{other:?}"),
        }
        // The pinned pre-insert epochs still see exactly one tree each.
        assert_eq!(pre[0].corpus().len(), 1);
        assert_eq!(pre[1].corpus().len(), 1);
        // New queries see all five.
        match server.call(Request::Range {
            tree: parse_bracket("{a}").unwrap(),
            tau: f64::INFINITY,
        }) {
            Response::Neighbors { candidates, .. } => assert_eq!(candidates, 5),
            other => panic!("{other:?}"),
        }
    }
}
