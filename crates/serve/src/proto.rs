//! The typed request/response protocol and its newline-delimited JSON
//! encoding.
//!
//! One request per line, one response per line, in order. Trees travel in
//! bracket notation (`{a{b}{c}}`) — the repo's lingua franca — inside
//! JSON strings. Parsing is strict: unknown `op`s, unknown keys, and
//! malformed trees are rejected with a one-line error response rather
//! than guessed at, mirroring the CLI's unknown-flag policy.
//!
//! The full surface, one row per op — request fields on the left,
//! response members (beyond the leading `"ok":true`) on the right. This
//! table is the protocol reference; the enum variants below carry only
//! type-level notes.
//!
//! | op         | request fields                           | response members                                                             |
//! |------------|------------------------------------------|------------------------------------------------------------------------------|
//! | `range`    | `tree` (string), `tau` (number, omit = unbounded) | `neighbors` (array of `{id, distance}`), `candidates`, `verified`    |
//! | `topk`     | `tree` (string), `k` (number, default 5) | `neighbors` (array of `{id, distance}`), `candidates`, `verified`            |
//! | `distance` | `left`, `right` (each: id number or tree string), `at_most` (number, omit = exact) | `distance` (number); with a finite `at_most` budget the answer may instead be `exceeds` (`true`) + `lower_bound` (number) when the distance provably exceeds the budget — the bounded kernel stops early instead of finishing the computation |
//! | `diff`     | `left`, `right` (each: id number or tree string) | `distance`, `ops` (array of script steps: `{"op":"delete","node",` `"label"}`, `{"op":"insert","node","label"}`, `{"op":"rename","from","to","old","new"}`, `{"op":"keep","from","to","label"}`), `summary` (`{deletes, inserts, renames, keeps}`) |
//! | `diff` (batched) | `pairs` (array of `[left_id, right_id]` pairs; excludes `left`/`right`) | `results` (array of `{distance, ops, summary}` objects, one per pair, in order) |
//! | `join`     | `tau` (number, omit = unbounded)         | `matches` (array of `{left, right, distance}`, `left < right`), `candidates` (unordered pairs), `verified` |
//! | `insert`   | `trees` (array of tree strings)          | `ids` (assigned ids, ascending)                                              |
//! | `remove`   | `ids` (array of id numbers)              | `removed` (count actually live)                                              |
//! | `status`   | —                                        | `status` object: `uptime_secs`, `live`, `id_bound`, `holes`, `segments`, `file_tombstones`, `workers`, `shards`, `requests`, `compactions`, `metric_built`, `metric_pending`, `metric_tombstones`, `requests_by_type` (per-op counts), `ops` (supported op names, for feature detection), `shard_live` / `shard_tombstones` (per-shard arrays), `tcp` (bound TCP address, present only when the TCP front-end is up), `metric_tree`, `persistent` |
//! | `compact`  | —                                        | `compacted` (bool: anything reclaimed)                                       |
//! | `explain`  | `tau` (number, omit = unbudgeted)        | `plan` object: `candidate_gen`, `stage_order` (array), `zs_cell_cutoff`, `budgeted`, `linear_rate` / `metric_rate` (number or `null` while unsampled), `observed_queries` — the planner's decision record for a hypothetical query with this `tau` |
//! | `metrics`  | `format` (`"json"` \| `"prometheus"`)    | `metrics` object (name → value or histogram summary) / `exposition` (string) |
//! | `shutdown` | —                                        | `bye` (then the stream ends)                                                 |
//!
//! Error responses are `{"ok":false,"error":"<op>: <message>"}` for every
//! op; the connection stays usable.
//!
//! # Pipelining
//!
//! Every request additionally accepts an optional `id` member (a JSON
//! number or string), echoed verbatim as the first member of the
//! response — including error responses, whenever the line was
//! well-formed enough to recover it. Responses stay in request order per
//! connection, but with ids a client can keep many requests in flight
//! and match answers without counting lines:
//!
//! ```text
//! {"op":"distance","left":0,"right":1,"id":7}  → {"id":7,"ok":true,"distance":3}
//! {"op":"status","id":"s1"}                    → {"id":"s1","ok":true,"status":{...}}
//! ```

use crate::json::{self, write_escaped, write_number, Value};
use rted_index::Neighbor;
use rted_tree::{parse_bracket, Tree};

/// One operand of a `distance` request: a corpus tree by id, or an
/// inline tree.
///
/// The inline variant dominates the enum's size; that is deliberate —
/// boxing it would shrink the by-id variant a few words at the cost of
/// an extra allocation whenever a tree *is* inlined, and the id-only
/// fast path must construct with zero allocations either way.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum TreeRef {
    /// A live corpus id.
    Id(usize),
    /// An inline tree (parsed from bracket notation on the wire).
    Inline(Tree<String>),
}

/// A query or mutation the service executes.
///
/// Tree-carrying variants dominate the size (several `Vec` headers);
/// kept inline rather than boxed so building an id-to-id `Distance`
/// request — the allocation-free hot path — costs nothing, and queue
/// slots are pre-reserved anyway.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum Request {
    /// All corpus trees with `TED < tau` of `tree`.
    Range {
        /// The query tree.
        tree: Tree<String>,
        /// Strict threshold (`f64::INFINITY` = unbounded).
        tau: f64,
    },
    /// The `k` nearest corpus trees to `tree`.
    TopK {
        /// The query tree.
        tree: Tree<String>,
        /// Neighbour count.
        k: usize,
    },
    /// Distance between two operands. With both operands given as ids
    /// this is the service's allocation-free fast path. A finite
    /// `at_most` budget routes through the bounded early-exit kernel:
    /// the exact distance comes back whenever it is ≤ the budget, a
    /// certified lower bound otherwise.
    Distance {
        /// Left operand.
        left: TreeRef,
        /// Right operand.
        right: TreeRef,
        /// Verification budget (`f64::INFINITY` = exact, the default).
        at_most: f64,
    },
    /// Optimal edit script between two operands (unit costs); the
    /// response's `distance` equals what `distance` reports for the same
    /// pair. Runs on the same worker path as `distance`; warm workspaces
    /// allocate only the returned script.
    Diff {
        /// Left operand (the "before" tree).
        left: TreeRef,
        /// Right operand (the "after" tree).
        right: TreeRef,
    },
    /// Batched edit scripts over corpus id pairs
    /// (`{"op":"diff","pairs":[[a,b],...]}`): one workspace is amortized
    /// across the whole batch, and ids are validated up front — any dead
    /// id fails the entire request before any script is extracted.
    DiffBatch {
        /// `(left, right)` corpus id pairs, in response order.
        pairs: Vec<(usize, usize)>,
    },
    /// All corpus pairs with `TED < tau` (the similarity self-join over
    /// the whole corpus; scatter-gathered across shards).
    Join {
        /// Strict threshold (`f64::INFINITY` = unbounded).
        tau: f64,
    },
    /// Insert trees; responds with their assigned ids.
    Insert {
        /// Trees to add.
        trees: Vec<Tree<String>>,
    },
    /// Remove ids (non-live ids are skipped, as in the store API).
    Remove {
        /// Ids to remove.
        ids: Vec<usize>,
    },
    /// Service counters and corpus/store state.
    Status,
    /// The adaptive planner's decision record for a hypothetical query
    /// carrying this `tau` — what would run and the observed signals
    /// driving the choice. Answered from shard 0 (all shards share one
    /// configuration; observations differ only by routing).
    Explain {
        /// The hypothetical query's budget (`f64::INFINITY` = none).
        tau: f64,
    },
    /// Force a compaction now (persistent services only).
    Compact,
    /// The full telemetry snapshot: counters, gauges, and latency
    /// histogram summaries across serve, WAL, index, and core layers.
    Metrics {
        /// Rendering requested by the client.
        format: MetricsFormat,
    },
    /// Transport-level: drain and stop. The I/O front-end intercepts
    /// this; submitting it to a worker queue answers with an error.
    Shutdown,
}

/// How a `metrics` response is rendered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MetricsFormat {
    /// Structured values: `{"metrics":{name: value | summary, ...}}`.
    #[default]
    Json,
    /// Prometheus text exposition, carried as one JSON string member
    /// (`exposition`) so the NDJSON framing is preserved.
    Prometheus,
}

/// A client-chosen request correlator: any JSON number or string, echoed
/// verbatim as the response's first member. Transport-level — the typed
/// [`Request`]/[`Response`] API never sees it.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestId {
    /// A JSON number.
    Num(f64),
    /// A JSON string.
    Str(String),
}

impl RequestId {
    fn render(&self, out: &mut String) {
        match self {
            RequestId::Num(n) => write_number(*n, out),
            RequestId::Str(s) => write_escaped(s, out),
        }
    }
}

/// Corpus, store and service counters for a `status` request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatusReport {
    /// Live trees across all shards.
    pub live: usize,
    /// One past the largest global id ever assigned.
    pub id_bound: usize,
    /// Reserved-but-vacant global ids (never shrinks; ids are not
    /// reused).
    pub holes: usize,
    /// Whether a durable store backs the service.
    pub persistent: bool,
    /// Segments across all backing files (0 when in-memory).
    pub segments: usize,
    /// Tombstone records across all backing files — the compaction
    /// backlog (0 when in-memory).
    pub file_tombstones: usize,
    /// Worker threads.
    pub workers: usize,
    /// Independent `TreeIndex` shards the corpus is striped over.
    pub shards: usize,
    /// Live trees per shard, indexed by shard number.
    pub shard_live: Vec<usize>,
    /// File tombstones per shard (all zero when in-memory).
    pub shard_tombstones: Vec<usize>,
    /// The TCP front-end's bound address, when one is up.
    pub tcp: Option<String>,
    /// Requests served since start.
    pub requests: u64,
    /// Compactions performed since start (threshold-driven + explicit).
    pub compactions: u64,
    /// Whether metric-tree candidate generation is enabled.
    pub metric_tree: bool,
    /// Ids the current vantage-point tree was built over, summed over
    /// shards (0 = not built).
    pub metric_built: usize,
    /// Post-build inserts in the metric trees' linear overflow, summed.
    pub metric_pending: usize,
    /// Built ids tombstoned in the metric trees since their builds,
    /// summed.
    pub metric_tombstones: usize,
    /// Seconds since the server started.
    pub uptime_secs: u64,
    /// Requests served per type, in [`REQUEST_TYPE_NAMES`] order.
    pub requests_by_type: [u64; 11],
}

/// The single source of truth for worker-served op names: the order of
/// [`StatusReport::requests_by_type`], of the `requests_by_type` object
/// and `ops` list in a rendered `status` response, and of the server's
/// per-op latency histograms. `shutdown` is transport-level and is not
/// listed. New ops are appended so existing indices (and metric names
/// derived from them) never shift.
pub const REQUEST_TYPE_NAMES: [&str; 11] = [
    "range", "topk", "distance", "insert", "remove", "status", "compact", "metrics", "diff",
    "join", "explain",
];

/// The service's answer to one [`Request`].
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Matches for `range`/`topk`, plus that query's filter counters.
    Neighbors {
        /// The matched trees.
        neighbors: Vec<Neighbor>,
        /// Candidates considered.
        candidates: usize,
        /// Exact verifications performed.
        verified: usize,
    },
    /// Exact distance for `distance` (within any requested budget).
    Distance(f64),
    /// Budget-exceeded answer for `distance` with a finite `at_most`:
    /// the payload is a certified lower bound on the true distance
    /// (always ≥ the budget; the exact distance is strictly above it).
    DistanceExceeds(f64),
    /// Edit script for `diff` (its `cost` is rendered as `distance`).
    Diff(rted_core::EditScript),
    /// Edit scripts for a batched `diff`, in request-pair order.
    DiffBatch(Vec<rted_core::EditScript>),
    /// Matched pairs for `join`, plus that join's filter counters.
    Matches {
        /// Matched pairs, sorted by `(left, right)` with `left < right`.
        matches: Vec<rted_index::JoinPair>,
        /// Unordered candidate pairs considered.
        candidates: usize,
        /// Exact verifications performed.
        verified: usize,
    },
    /// Assigned ids for `insert`.
    Inserted(Vec<usize>),
    /// Count of trees actually removed for `remove`.
    Removed(usize),
    /// Answer to `status`.
    Status(StatusReport),
    /// Answer to `compact` (`false` when there was nothing to reclaim).
    Compacted(bool),
    /// Answer to `explain`: the planner's decision record.
    Plan(rted_plan::PlanReport),
    /// Answer to `metrics` with `format: "json"`: every registered
    /// metric as a structured value.
    Metrics(rted_obs::Snapshot),
    /// Answer to `metrics` with `format: "prometheus"`: the text
    /// exposition, shipped as a single JSON string member.
    MetricsText(String),
    /// Acknowledgement of `shutdown`, sent by the I/O front-end.
    Bye,
    /// Any failure. The service stays up; only this request failed.
    Error(String),
}

fn field_err(op: &str, msg: impl std::fmt::Display) -> String {
    format!("{op}: {msg}")
}

fn tree_field(v: &Value, op: &str, key: &str) -> Result<Tree<String>, String> {
    let text = v
        .get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| field_err(op, format_args!("needs a \"{key}\" tree string")))?;
    parse_bracket(text).map_err(|e| field_err(op, format_args!("bad tree in \"{key}\": {e}")))
}

fn tree_ref_field(v: &Value, op: &str, key: &str) -> Result<TreeRef, String> {
    match v.get(key) {
        Some(Value::Str(text)) => {
            Ok(TreeRef::Inline(parse_bracket(text).map_err(|e| {
                field_err(op, format_args!("bad tree in \"{key}\": {e}"))
            })?))
        }
        Some(n @ Value::Num(_)) => n.as_usize().map(TreeRef::Id).ok_or_else(|| {
            field_err(
                op,
                format_args!("\"{key}\" id must be a non-negative integer"),
            )
        }),
        _ => Err(field_err(
            op,
            format_args!("needs \"{key}\" as an id (number) or a tree (string)"),
        )),
    }
}

/// Rejects keys the operation does not understand — a typoed `"taau"`
/// must not silently run an unbounded query. `op` and the transport-level
/// `id` are accepted everywhere.
fn expect_keys(v: &Value, op: &str, allowed: &[&str]) -> Result<(), String> {
    for key in v.keys().into_iter().flatten() {
        if key != "op" && key != "id" && !allowed.contains(&key) {
            return Err(field_err(op, format_args!("unknown key \"{key}\"")));
        }
    }
    Ok(())
}

/// Parses one request line, separating the optional transport-level `id`
/// from the operation. The id comes back even when the operation itself
/// is malformed — as long as the line was valid JSON with a well-typed
/// `id` — so error responses stay correlatable for pipelined clients.
pub fn parse_request_line(line: &str) -> (Option<RequestId>, Result<Request, String>) {
    let v = match json::parse(line) {
        Ok(v) => v,
        Err(e) => return (None, Err(e)),
    };
    let id = match v.get("id") {
        None => None,
        Some(Value::Num(n)) => Some(RequestId::Num(*n)),
        Some(Value::Str(s)) => Some(RequestId::Str(s.clone())),
        Some(_) => return (None, Err("\"id\" must be a number or a string".to_string())),
    };
    (id, parse_request_value(&v))
}

/// Parses one request line, ignoring any `id` member (the id-aware entry
/// point is [`parse_request_line`]).
pub fn parse_request(line: &str) -> Result<Request, String> {
    parse_request_line(line).1
}

fn parse_request_value(v: &Value) -> Result<Request, String> {
    let op = v
        .get("op")
        .and_then(Value::as_str)
        .ok_or("request needs an \"op\" field")?;
    match op {
        "range" => {
            expect_keys(v, op, &["tree", "tau"])?;
            let tau = match v.get("tau") {
                None => f64::INFINITY,
                Some(t) => t
                    .as_f64()
                    .filter(|t| !t.is_nan())
                    .ok_or_else(|| field_err(op, "\"tau\" must be a number"))?,
            };
            Ok(Request::Range {
                tree: tree_field(v, op, "tree")?,
                tau,
            })
        }
        "topk" => {
            expect_keys(v, op, &["tree", "k"])?;
            let k = match v.get("k") {
                None => 5,
                Some(k) => k
                    .as_usize()
                    .ok_or_else(|| field_err(op, "\"k\" must be a non-negative integer"))?,
            };
            Ok(Request::TopK {
                tree: tree_field(v, op, "tree")?,
                k,
            })
        }
        "distance" => {
            expect_keys(v, op, &["left", "right", "at_most"])?;
            let at_most = match v.get("at_most") {
                None => f64::INFINITY,
                Some(t) => t
                    .as_f64()
                    .filter(|t| !t.is_nan())
                    .ok_or_else(|| field_err(op, "\"at_most\" must be a number"))?,
            };
            Ok(Request::Distance {
                left: tree_ref_field(v, op, "left")?,
                right: tree_ref_field(v, op, "right")?,
                at_most,
            })
        }
        "diff" => {
            expect_keys(v, op, &["left", "right", "pairs"])?;
            if let Some(pairs_val) = v.get("pairs") {
                if v.get("left").is_some() || v.get("right").is_some() {
                    return Err(field_err(op, "\"pairs\" excludes \"left\"/\"right\""));
                }
                let items = pairs_val
                    .as_arr()
                    .ok_or_else(|| field_err(op, "\"pairs\" must be an array of [left,right]"))?;
                let pairs = items
                    .iter()
                    .enumerate()
                    .map(|(i, item)| {
                        let pair = item.as_arr().filter(|p| p.len() == 2).ok_or_else(|| {
                            field_err(op, format_args!("\"pairs\"[{i}] is not an id pair"))
                        })?;
                        let left = pair[0].as_usize().ok_or_else(|| {
                            field_err(op, format_args!("\"pairs\"[{i}][0] is not an id"))
                        })?;
                        let right = pair[1].as_usize().ok_or_else(|| {
                            field_err(op, format_args!("\"pairs\"[{i}][1] is not an id"))
                        })?;
                        Ok((left, right))
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                return Ok(Request::DiffBatch { pairs });
            }
            Ok(Request::Diff {
                left: tree_ref_field(v, op, "left")?,
                right: tree_ref_field(v, op, "right")?,
            })
        }
        "join" => {
            expect_keys(v, op, &["tau"])?;
            let tau = match v.get("tau") {
                None => f64::INFINITY,
                Some(t) => t
                    .as_f64()
                    .filter(|t| !t.is_nan())
                    .ok_or_else(|| field_err(op, "\"tau\" must be a number"))?,
            };
            Ok(Request::Join { tau })
        }
        "insert" => {
            expect_keys(v, op, &["trees"])?;
            let items = v
                .get("trees")
                .and_then(Value::as_arr)
                .ok_or_else(|| field_err(op, "needs a \"trees\" array of tree strings"))?;
            let trees = items
                .iter()
                .enumerate()
                .map(|(i, item)| {
                    let text = item.as_str().ok_or_else(|| {
                        field_err(op, format_args!("\"trees\"[{i}] is not a string"))
                    })?;
                    parse_bracket(text)
                        .map_err(|e| field_err(op, format_args!("\"trees\"[{i}]: {e}")))
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Request::Insert { trees })
        }
        "remove" => {
            expect_keys(v, op, &["ids"])?;
            let items = v
                .get("ids")
                .and_then(Value::as_arr)
                .ok_or_else(|| field_err(op, "needs an \"ids\" array"))?;
            let ids = items
                .iter()
                .enumerate()
                .map(|(i, item)| {
                    item.as_usize()
                        .ok_or_else(|| field_err(op, format_args!("\"ids\"[{i}] is not an id")))
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Request::Remove { ids })
        }
        "status" => {
            expect_keys(v, op, &[])?;
            Ok(Request::Status)
        }
        "compact" => {
            expect_keys(v, op, &[])?;
            Ok(Request::Compact)
        }
        "metrics" => {
            expect_keys(v, op, &["format"])?;
            let format = match v.get("format") {
                None => MetricsFormat::Json,
                Some(f) => match f.as_str() {
                    Some("json") => MetricsFormat::Json,
                    Some("prometheus") => MetricsFormat::Prometheus,
                    _ => {
                        return Err(field_err(
                            op,
                            "\"format\" must be \"json\" or \"prometheus\"",
                        ))
                    }
                },
            };
            Ok(Request::Metrics { format })
        }
        "explain" => {
            expect_keys(v, op, &["tau"])?;
            let tau = match v.get("tau") {
                None => f64::INFINITY,
                Some(t) => t
                    .as_f64()
                    .filter(|t| !t.is_nan())
                    .ok_or_else(|| field_err(op, "\"tau\" must be a number"))?,
            };
            Ok(Request::Explain { tau })
        }
        "shutdown" => {
            expect_keys(v, op, &[])?;
            Ok(Request::Shutdown)
        }
        other => Err(format!(
            "unknown op \"{other}\" ({} | shutdown)",
            REQUEST_TYPE_NAMES.join(" | ")
        )),
    }
}

/// Renders one response as a single JSON line (no trailing newline),
/// without a request id — see [`render_response_with`].
pub fn render_response(response: &Response) -> String {
    render_response_with(response, None)
}

/// Renders one response as a single JSON line, echoing `id` (when given)
/// as the first member so pipelined clients can correlate answers.
pub fn render_response_with(response: &Response, id: Option<&RequestId>) -> String {
    let mut out = String::new();
    out.push('{');
    if let Some(id) = id {
        out.push_str("\"id\":");
        id.render(&mut out);
        out.push(',');
    }
    match response {
        Response::Neighbors {
            neighbors,
            candidates,
            verified,
        } => {
            out.push_str("\"ok\":true,\"neighbors\":[");
            for (i, n) in neighbors.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str("{\"id\":");
                write_number(n.id as f64, &mut out);
                out.push_str(",\"distance\":");
                write_number(n.distance, &mut out);
                out.push('}');
            }
            out.push_str("],\"candidates\":");
            write_number(*candidates as f64, &mut out);
            out.push_str(",\"verified\":");
            write_number(*verified as f64, &mut out);
            out.push('}');
        }
        Response::Distance(d) => {
            out.push_str("\"ok\":true,\"distance\":");
            write_number(*d, &mut out);
            out.push('}');
        }
        Response::DistanceExceeds(lb) => {
            out.push_str("\"ok\":true,\"exceeds\":true,\"lower_bound\":");
            write_number(*lb, &mut out);
            out.push('}');
        }
        Response::Diff(script) => {
            out.push_str("\"ok\":true,");
            render_script_body(script, &mut out);
            out.push('}');
        }
        Response::DiffBatch(scripts) => {
            out.push_str("\"ok\":true,\"results\":[");
            for (i, script) in scripts.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('{');
                render_script_body(script, &mut out);
                out.push('}');
            }
            out.push_str("]}");
        }
        Response::Matches {
            matches,
            candidates,
            verified,
        } => {
            out.push_str("\"ok\":true,\"matches\":[");
            for (i, m) in matches.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str("{\"left\":");
                write_number(m.left as f64, &mut out);
                out.push_str(",\"right\":");
                write_number(m.right as f64, &mut out);
                out.push_str(",\"distance\":");
                write_number(m.distance, &mut out);
                out.push('}');
            }
            out.push_str("],\"candidates\":");
            write_number(*candidates as f64, &mut out);
            out.push_str(",\"verified\":");
            write_number(*verified as f64, &mut out);
            out.push('}');
        }
        Response::Inserted(ids) => {
            out.push_str("\"ok\":true,\"ids\":[");
            for (i, id) in ids.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_number(*id as f64, &mut out);
            }
            out.push_str("]}");
        }
        Response::Removed(n) => {
            out.push_str("\"ok\":true,\"removed\":");
            write_number(*n as f64, &mut out);
            out.push('}');
        }
        Response::Status(s) => {
            out.push_str("\"ok\":true,\"status\":{");
            let fields: [(&str, f64); 13] = [
                ("uptime_secs", s.uptime_secs as f64),
                ("live", s.live as f64),
                ("id_bound", s.id_bound as f64),
                ("holes", s.holes as f64),
                ("segments", s.segments as f64),
                ("file_tombstones", s.file_tombstones as f64),
                ("workers", s.workers as f64),
                ("shards", s.shards as f64),
                ("requests", s.requests as f64),
                ("compactions", s.compactions as f64),
                ("metric_built", s.metric_built as f64),
                ("metric_pending", s.metric_pending as f64),
                ("metric_tombstones", s.metric_tombstones as f64),
            ];
            for (key, value) in fields {
                out.push('"');
                out.push_str(key);
                out.push_str("\":");
                write_number(value, &mut out);
                out.push(',');
            }
            out.push_str("\"requests_by_type\":{");
            for (i, (name, count)) in REQUEST_TYPE_NAMES
                .iter()
                .zip(s.requests_by_type.iter())
                .enumerate()
            {
                if i > 0 {
                    out.push(',');
                }
                out.push('"');
                out.push_str(name);
                out.push_str("\":");
                write_number(*count as f64, &mut out);
            }
            // The supported-op list, so clients can feature-detect new
            // ops (`shutdown` included: it is accepted on the wire even
            // though the transport answers it itself).
            out.push_str("},\"ops\":[");
            for (i, name) in REQUEST_TYPE_NAMES
                .iter()
                .chain(["shutdown"].iter())
                .enumerate()
            {
                if i > 0 {
                    out.push(',');
                }
                out.push('"');
                out.push_str(name);
                out.push('"');
            }
            // Per-shard breakdowns (aligned by shard number), then the
            // TCP bind address when a TCP front-end is up — clients
            // probe it the same way they probe `ops`.
            out.push_str("],\"shard_live\":[");
            for (i, n) in s.shard_live.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_number(*n as f64, &mut out);
            }
            out.push_str("],\"shard_tombstones\":[");
            for (i, n) in s.shard_tombstones.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_number(*n as f64, &mut out);
            }
            out.push(']');
            if let Some(addr) = &s.tcp {
                out.push_str(",\"tcp\":");
                write_escaped(addr, &mut out);
            }
            out.push_str(",\"metric_tree\":");
            out.push_str(if s.metric_tree { "true" } else { "false" });
            out.push_str(",\"persistent\":");
            out.push_str(if s.persistent { "true" } else { "false" });
            out.push_str("}}");
        }
        Response::Compacted(reclaimed) => {
            out.push_str("\"ok\":true,\"compacted\":");
            out.push_str(if *reclaimed { "true" } else { "false" });
            out.push('}');
        }
        Response::Plan(report) => {
            out.push_str("\"ok\":true,\"plan\":{\"candidate_gen\":");
            write_escaped(report.candidate_gen.name(), &mut out);
            out.push_str(",\"stage_order\":[");
            for (i, name) in report.stage_order.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(name, &mut out);
            }
            out.push_str("],\"zs_cell_cutoff\":");
            write_number(report.zs_cell_cutoff as f64, &mut out);
            out.push_str(",\"budgeted\":");
            out.push_str(if report.budgeted { "true" } else { "false" });
            for (key, rate) in [
                ("linear_rate", report.linear_rate),
                ("metric_rate", report.metric_rate),
            ] {
                out.push_str(",\"");
                out.push_str(key);
                out.push_str("\":");
                match rate {
                    Some(r) => write_number(r, &mut out),
                    None => out.push_str("null"),
                }
            }
            out.push_str(",\"observed_queries\":");
            write_number(report.observed_queries as f64, &mut out);
            out.push_str("}}");
        }
        Response::Metrics(snap) => {
            out.push_str("\"ok\":true,\"metrics\":{");
            for (i, (name, value)) in snap.metrics.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(name, &mut out);
                out.push(':');
                match value {
                    rted_obs::MetricValue::Counter(v) => write_number(*v as f64, &mut out),
                    rted_obs::MetricValue::Gauge(v) => write_number(*v as f64, &mut out),
                    rted_obs::MetricValue::Histogram(h) => {
                        let fields: [(&str, u64); 6] = [
                            ("count", h.count),
                            ("sum", h.sum),
                            ("p50", h.p50),
                            ("p95", h.p95),
                            ("p99", h.p99),
                            ("max", h.max),
                        ];
                        out.push('{');
                        for (j, (key, v)) in fields.iter().enumerate() {
                            if j > 0 {
                                out.push(',');
                            }
                            out.push('"');
                            out.push_str(key);
                            out.push_str("\":");
                            write_number(*v as f64, &mut out);
                        }
                        out.push('}');
                    }
                }
            }
            out.push_str("}}");
        }
        Response::MetricsText(text) => {
            out.push_str("\"ok\":true,\"exposition\":");
            write_escaped(text, &mut out);
            out.push('}');
        }
        Response::Bye => out.push_str("\"ok\":true,\"bye\":true}"),
        Response::Error(msg) => {
            out.push_str("\"ok\":false,\"error\":");
            write_escaped(msg, &mut out);
            out.push('}');
        }
    }
    out
}

/// Renders one edit script's members (`distance`, `ops`, `summary`,
/// without surrounding braces) — shared between the single `diff`
/// response and each element of a batched one, so the two shapes can
/// never drift apart.
fn render_script_body(script: &rted_core::EditScript, out: &mut String) {
    use rted_core::ScriptOp;
    out.push_str("\"distance\":");
    write_number(script.cost, out);
    out.push_str(",\"ops\":[");
    for (i, op) in script.ops.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        match op {
            ScriptOp::Delete { node, label } => {
                out.push_str("{\"op\":\"delete\",\"node\":");
                write_number(*node as f64, out);
                out.push_str(",\"label\":");
                write_escaped(label, out);
                out.push('}');
            }
            ScriptOp::Insert { node, label } => {
                out.push_str("{\"op\":\"insert\",\"node\":");
                write_number(*node as f64, out);
                out.push_str(",\"label\":");
                write_escaped(label, out);
                out.push('}');
            }
            ScriptOp::Rename { from, to, old, new } => {
                out.push_str("{\"op\":\"rename\",\"from\":");
                write_number(*from as f64, out);
                out.push_str(",\"to\":");
                write_number(*to as f64, out);
                out.push_str(",\"old\":");
                write_escaped(old, out);
                out.push_str(",\"new\":");
                write_escaped(new, out);
                out.push('}');
            }
            ScriptOp::Keep { from, to, label } => {
                out.push_str("{\"op\":\"keep\",\"from\":");
                write_number(*from as f64, out);
                out.push_str(",\"to\":");
                write_number(*to as f64, out);
                out.push_str(",\"label\":");
                write_escaped(label, out);
                out.push('}');
            }
        }
    }
    out.push_str("],\"summary\":{\"deletes\":");
    write_number(script.deletes as f64, out);
    out.push_str(",\"inserts\":");
    write_number(script.inserts as f64, out);
    out.push_str(",\"renames\":");
    write_number(script.renames as f64, out);
    out.push_str(",\"keeps\":");
    write_number(script.keeps as f64, out);
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;
    use rted_tree::to_bracket;

    #[test]
    fn requests_parse() {
        match parse_request(r#"{"op":"range","tree":"{a{b}}","tau":2}"#).unwrap() {
            Request::Range { tree, tau } => {
                assert_eq!(to_bracket(&tree), "{a{b}}");
                assert_eq!(tau, 2.0);
            }
            other => panic!("{other:?}"),
        }
        // tau omitted = unbounded.
        match parse_request(r#"{"op":"range","tree":"{a}"}"#).unwrap() {
            Request::Range { tau, .. } => assert_eq!(tau, f64::INFINITY),
            other => panic!("{other:?}"),
        }
        match parse_request(r#"{"op":"distance","left":3,"right":"{x{y}}"}"#).unwrap() {
            Request::Distance {
                left: TreeRef::Id(3),
                right: TreeRef::Inline(t),
                at_most,
            } => {
                assert_eq!(to_bracket(&t), "{x{y}}");
                // at_most omitted = exact.
                assert_eq!(at_most, f64::INFINITY);
            }
            other => panic!("{other:?}"),
        }
        match parse_request(r#"{"op":"distance","left":0,"right":1,"at_most":2.5}"#).unwrap() {
            Request::Distance { at_most, .. } => assert_eq!(at_most, 2.5),
            other => panic!("{other:?}"),
        }
        match parse_request(r#"{"op":"diff","left":"{a{b}}","right":2}"#).unwrap() {
            Request::Diff {
                left: TreeRef::Inline(t),
                right: TreeRef::Id(2),
            } => assert_eq!(to_bracket(&t), "{a{b}}"),
            other => panic!("{other:?}"),
        }
        match parse_request(r#"{"op":"diff","pairs":[[0,1],[2,0]]}"#).unwrap() {
            Request::DiffBatch { pairs } => assert_eq!(pairs, vec![(0, 1), (2, 0)]),
            other => panic!("{other:?}"),
        }
        match parse_request(r#"{"op":"join","tau":2}"#).unwrap() {
            Request::Join { tau } => assert_eq!(tau, 2.0),
            other => panic!("{other:?}"),
        }
        // tau omitted = unbounded join.
        match parse_request(r#"{"op":"join"}"#).unwrap() {
            Request::Join { tau } => assert_eq!(tau, f64::INFINITY),
            other => panic!("{other:?}"),
        }
        match parse_request(r#"{"op":"insert","trees":["{a}","{b{c}}"]}"#).unwrap() {
            Request::Insert { trees } => assert_eq!(trees.len(), 2),
            other => panic!("{other:?}"),
        }
        match parse_request(r#"{"op":"remove","ids":[4,0]}"#).unwrap() {
            Request::Remove { ids } => assert_eq!(ids, vec![4, 0]),
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            parse_request(r#"{"op":"status"}"#).unwrap(),
            Request::Status
        ));
        match parse_request(r#"{"op":"explain","tau":3}"#).unwrap() {
            Request::Explain { tau } => assert_eq!(tau, 3.0),
            other => panic!("{other:?}"),
        }
        // tau omitted = unbudgeted plan probe.
        match parse_request(r#"{"op":"explain"}"#).unwrap() {
            Request::Explain { tau } => assert_eq!(tau, f64::INFINITY),
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            parse_request(r#"{"op":"shutdown"}"#).unwrap(),
            Request::Shutdown
        ));
        // metrics: format defaults to json.
        assert!(matches!(
            parse_request(r#"{"op":"metrics"}"#).unwrap(),
            Request::Metrics {
                format: MetricsFormat::Json
            }
        ));
        assert!(matches!(
            parse_request(r#"{"op":"metrics","format":"prometheus"}"#).unwrap(),
            Request::Metrics {
                format: MetricsFormat::Prometheus
            }
        ));
    }

    #[test]
    fn request_ids_parse_and_echo() {
        // Every op accepts an optional id (number or string).
        let (id, req) = parse_request_line(r#"{"op":"status","id":7}"#);
        assert_eq!(id, Some(RequestId::Num(7.0)));
        assert!(matches!(req, Ok(Request::Status)));
        let (id, req) = parse_request_line(r#"{"id":"q-1","op":"range","tree":"{a}","tau":2}"#);
        assert_eq!(id, Some(RequestId::Str("q-1".into())));
        assert!(req.is_ok());
        // No id: nothing echoed.
        let (id, req) = parse_request_line(r#"{"op":"compact"}"#);
        assert_eq!(id, None);
        assert!(req.is_ok());
        // The id survives an op-level error, so pipelined clients can
        // correlate failures.
        let (id, req) = parse_request_line(r#"{"op":"fly","id":3}"#);
        assert_eq!(id, Some(RequestId::Num(3.0)));
        assert!(req.is_err());
        // A mistyped id is itself an error (and cannot be echoed).
        let (id, req) = parse_request_line(r#"{"op":"status","id":[1]}"#);
        assert_eq!(id, None);
        assert!(req.is_err());

        // Echo: first member, verbatim, on success and on error.
        assert_eq!(
            render_response_with(&Response::Distance(3.0), Some(&RequestId::Num(7.0))),
            r#"{"id":7,"ok":true,"distance":3}"#
        );
        assert_eq!(
            render_response_with(
                &Response::Error("bad".into()),
                Some(&RequestId::Str("q \"1\"".into()))
            ),
            r#"{"id":"q \"1\"","ok":false,"error":"bad"}"#
        );
        // Id-less rendering is unchanged.
        assert_eq!(
            render_response_with(&Response::Bye, None),
            render_response(&Response::Bye)
        );
    }

    #[test]
    fn malformed_requests_are_rejected() {
        for bad in [
            "",
            "not json",
            r#"{"tree":"{a}"}"#,                       // no op
            r#"{"op":"fly"}"#,                         // unknown op
            r#"{"op":"range","tree":"{a}","taau":2}"#, // typoed key
            r#"{"op":"range","tree":"{a"}"#,           // malformed tree
            r#"{"op":"range"}"#,                       // missing tree
            r#"{"op":"topk","tree":"{a}","k":-1}"#,    // negative k
            r#"{"op":"distance","left":true,"right":0}"#,
            r#"{"op":"distance","left":0,"right":1,"at_most":"2"}"#, // non-numeric budget
            r#"{"op":"distance","left":0,"right":1,"atmost":2}"#,    // typoed key
            r#"{"op":"diff","left":0}"#,                             // missing right
            r#"{"op":"diff","left":0,"right":1,"costs":"1,1,1"}"#,   // unknown key
            r#"{"op":"diff","pairs":[[0,1]],"left":0}"#,             // pairs excludes left
            r#"{"op":"diff","pairs":[[0,1,2]]}"#,                    // not a pair
            r#"{"op":"diff","pairs":[[0,1.5]]}"#,                    // non-id member
            r#"{"op":"diff","pairs":[0,1]}"#,                        // flat list
            r#"{"op":"join","tau":"2"}"#,                            // non-numeric tau
            r#"{"op":"join","k":3}"#,                                // unknown key
            r#"{"op":"insert","trees":"{a}"}"#,                      // not an array
            r#"{"op":"remove","ids":[1.5]}"#,
            r#"{"op":"status","x":1}"#,
            r#"{"op":"metrics","format":"xml"}"#, // unsupported format
            r#"{"op":"metrics","fmt":"json"}"#,   // typoed key
            r#"{"op":"explain","tau":"2"}"#,      // non-numeric tau
            r#"{"op":"explain","k":5}"#,          // unknown key
        ] {
            assert!(parse_request(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn responses_render_as_json_lines() {
        let line = render_response(&Response::Neighbors {
            neighbors: vec![
                Neighbor {
                    id: 0,
                    distance: 0.0,
                },
                Neighbor {
                    id: 7,
                    distance: 2.5,
                },
            ],
            candidates: 10,
            verified: 3,
        });
        assert_eq!(
            line,
            r#"{"ok":true,"neighbors":[{"id":0,"distance":0},{"id":7,"distance":2.5}],"candidates":10,"verified":3}"#
        );
        assert_eq!(
            render_response(&Response::Error("bad \"op\"".into())),
            r#"{"ok":false,"error":"bad \"op\""}"#
        );
        // The budget-exceeded answer renders byte-stably (0.0 as "0").
        assert_eq!(
            render_response(&Response::DistanceExceeds(3.0)),
            r#"{"ok":true,"exceeds":true,"lower_bound":3}"#
        );
        // Every shape is valid JSON on one line.
        for resp in [
            Response::Distance(3.0),
            Response::DistanceExceeds(2.5),
            Response::Inserted(vec![5, 6]),
            Response::Removed(2),
            Response::Compacted(true),
            Response::Bye,
            Response::Matches {
                matches: vec![rted_index::JoinPair {
                    left: 0,
                    right: 2,
                    distance: 1.0,
                }],
                candidates: 3,
                verified: 2,
            },
            Response::Status(StatusReport {
                live: 3,
                id_bound: 5,
                holes: 2,
                persistent: true,
                segments: 2,
                file_tombstones: 1,
                workers: 4,
                shards: 2,
                shard_live: vec![2, 1],
                shard_tombstones: vec![1, 0],
                tcp: Some("127.0.0.1:4433".into()),
                requests: 99,
                compactions: 1,
                metric_tree: true,
                metric_built: 3,
                metric_pending: 1,
                metric_tombstones: 0,
                uptime_secs: 12,
                requests_by_type: [40, 5, 50, 1, 1, 1, 1, 0, 2, 4, 3],
            }),
            Response::Plan(rted_plan::PlanReport {
                candidate_gen: rted_plan::CandidateGen::Linear,
                stage_order: vec!["size", "depth"],
                zs_cell_cutoff: 256,
                budgeted: true,
                linear_rate: Some(0.25),
                metric_rate: None,
                observed_queries: 8,
            }),
        ] {
            let line = render_response(&resp);
            assert!(!line.contains('\n'));
            crate::json::parse(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
    }

    #[test]
    fn status_renders_uptime_and_per_type_counts() {
        let line = render_response(&Response::Status(StatusReport {
            live: 3,
            id_bound: 5,
            holes: 2,
            persistent: false,
            segments: 0,
            file_tombstones: 0,
            workers: 1,
            shards: 3,
            shard_live: vec![1, 1, 1],
            shard_tombstones: vec![0, 0, 0],
            tcp: None,
            requests: 46,
            compactions: 0,
            metric_tree: false,
            metric_built: 0,
            metric_pending: 0,
            metric_tombstones: 0,
            uptime_secs: 7,
            requests_by_type: [40, 5, 0, 0, 0, 1, 0, 0, 3, 2, 1],
        }));
        assert!(line.contains(r#""uptime_secs":7"#), "{line}");
        assert!(line.contains(r#""shards":3"#), "{line}");
        assert!(
            line.contains(r#""requests_by_type":{"range":40,"topk":5,"distance":0,"insert":0,"remove":0,"status":1,"compact":0,"metrics":0,"diff":3,"join":2,"explain":1}"#),
            "{line}"
        );
        // Feature detection: the supported-op list is rendered verbatim
        // from REQUEST_TYPE_NAMES plus the transport-level shutdown.
        assert!(
            line.contains(r#""ops":["range","topk","distance","insert","remove","status","compact","metrics","diff","join","explain","shutdown"]"#),
            "{line}"
        );
        // Per-shard arrays render aligned by shard number; the tcp
        // member is absent without a TCP front-end...
        assert!(
            line.contains(r#""shard_live":[1,1,1],"shard_tombstones":[0,0,0],"metric_tree":"#),
            "{line}"
        );
        assert!(!line.contains(r#""tcp""#), "{line}");
        // ...and present, as a string, with one.
        let report = StatusReport {
            tcp: Some("127.0.0.1:4433".into()),
            ..render_and_reparse_seed()
        };
        let line = render_response(&Response::Status(report));
        assert!(line.contains(r#","tcp":"127.0.0.1:4433","#), "{line}");
    }

    /// A small valid report for tests that tweak one field.
    fn render_and_reparse_seed() -> StatusReport {
        StatusReport {
            live: 0,
            id_bound: 0,
            holes: 0,
            persistent: false,
            segments: 0,
            file_tombstones: 0,
            workers: 1,
            shards: 1,
            shard_live: vec![0],
            shard_tombstones: vec![0],
            tcp: None,
            requests: 0,
            compactions: 0,
            metric_tree: false,
            metric_built: 0,
            metric_pending: 0,
            metric_tombstones: 0,
            uptime_secs: 0,
            requests_by_type: [0; 11],
        }
    }

    #[test]
    fn plan_responses_render_decision_records() {
        let line = render_response(&Response::Plan(rted_plan::PlanReport {
            candidate_gen: rted_plan::CandidateGen::Metric,
            stage_order: vec!["size", "leaf", "depth"],
            zs_cell_cutoff: 256,
            budgeted: false,
            linear_rate: Some(0.5),
            metric_rate: None,
            observed_queries: 12,
        }));
        assert_eq!(
            line,
            r#"{"ok":true,"plan":{"candidate_gen":"metric","stage_order":["size","leaf","depth"],"zs_cell_cutoff":256,"budgeted":false,"linear_rate":0.5,"metric_rate":null,"observed_queries":12}}"#
        );
        crate::json::parse(&line).unwrap();
    }

    #[test]
    fn diff_responses_render_scripts() {
        use rted_core::{edit_mapping, UnitCost};
        let f = parse_bracket("{a{b}{c}}").unwrap();
        let g = parse_bracket("{a{b}{x}}").unwrap();
        let script = edit_mapping(&f, &g, &UnitCost).script(&f, &g);
        let line = render_response(&Response::Diff(script.clone()));
        assert_eq!(
            line,
            r#"{"ok":true,"distance":1,"ops":[{"op":"keep","from":0,"to":0,"label":"b"},{"op":"rename","from":1,"to":1,"old":"c","new":"x"},{"op":"keep","from":2,"to":2,"label":"a"}],"summary":{"deletes":0,"inserts":0,"renames":1,"keeps":2}}"#
        );
        crate::json::parse(&line).unwrap();

        // Batched rendering reuses the exact same script body, wrapped
        // in a results array.
        let batch = render_response(&Response::DiffBatch(vec![script.clone(), script]));
        let body = line
            .strip_prefix(r#"{"ok":true,"#)
            .and_then(|s| s.strip_suffix('}'))
            .unwrap();
        assert_eq!(
            batch,
            format!(r#"{{"ok":true,"results":[{{{body}}},{{{body}}}]}}"#)
        );
        crate::json::parse(&batch).unwrap();
    }

    #[test]
    fn metrics_responses_render_as_json_lines() {
        let mut snap = rted_obs::Snapshot::default();
        snap.push("serve_errors_total", rted_obs::MetricValue::Counter(2));
        snap.push("serve_queue_depth", rted_obs::MetricValue::Gauge(-1));
        snap.push(
            "serve_latency_distance_ns",
            rted_obs::MetricValue::Histogram(rted_obs::HistogramSnapshot {
                count: 3,
                sum: 600,
                p50: 255,
                p95: 255,
                p99: 255,
                max: 250,
            }),
        );
        let line = render_response(&Response::Metrics(snap));
        assert_eq!(
            line,
            r#"{"ok":true,"metrics":{"serve_errors_total":2,"serve_queue_depth":-1,"serve_latency_distance_ns":{"count":3,"sum":600,"p50":255,"p95":255,"p99":255,"max":250}}}"#
        );
        let text = render_response(&Response::MetricsText("a 1\nb 2\n".into()));
        assert_eq!(text, r#"{"ok":true,"exposition":"a 1\nb 2\n"}"#);
        assert!(!text.contains('\n'));
        crate::json::parse(&text).unwrap();
    }
}
