//! `rted-serve` — a crash-safe, long-lived TED query service.
//!
//! The RTED paper's robustness argument is about worst-case *memory and
//! time*; a service built on it must extend that robustness to *state*:
//! stay up across client churn, survive its own crashes without losing
//! the corpus, and keep the hot path allocation-free. This crate ties
//! the previous layers together into that service:
//!
//! * [`rted_index::TreeIndex`] answers `range` / `top_k` / `distance`
//!   queries behind the staged filter pipeline;
//! * [`rted_index::CorpusLog`] makes `insert` / `remove` durable
//!   (fsynced segment appends *before* the in-memory mutation);
//! * on startup the corpus is **recovered from disk** — including
//!   tail-scan repair of a file torn by a crash mid-update
//!   ([`rted_index::Recovery::Repair`]) — instead of rebuilt;
//! * a fixed worker pool drains a request queue, each worker owning one
//!   [`rted_core::Workspace`] for its lifetime, so the id-to-id
//!   `distance` path is zero-allocation per request once warm;
//! * a background maintenance task compacts the store off the query
//!   path when the tombstone backlog crosses a configurable fraction of
//!   the live count.
//!
//! * the corpus can be **striped over N independent shards**
//!   ([`ServerConfig::shards`]), each with its own log, epoch-based
//!   copy-on-write snapshot, and compaction; queries pin a snapshot
//!   (`Arc::clone`) and never wait on mutations or compaction, while
//!   `range`/`top_k`/`join` scatter-gather across shards with answers
//!   byte-identical to a 1-shard server.
//!
//! Two surfaces expose it: the typed library API ([`Server::start`],
//! [`Client::call`], graceful [`Server::shutdown`] draining in-flight
//! requests) and — via the `rted serve` CLI — a newline-delimited JSON
//! protocol ([`proto`]) over stdin/stdout, a Unix socket, or an
//! authenticated TCP listener, so many client processes (local or
//! remote) can share one resident corpus.
//!
//! # Example
//!
//! ```
//! use rted_serve::{Request, Response, Server, ServerConfig};
//! use rted_tree::parse_bracket;
//!
//! let server = Server::in_memory(
//!     vec![
//!         parse_bracket("{a{b}{c}}").unwrap(),
//!         parse_bracket("{a{b}{d}}").unwrap(),
//!     ],
//!     ServerConfig::default(),
//! );
//! let mut client = server.client();
//! let query = parse_bracket("{a{b}{c}}").unwrap();
//! match client.call(Request::Range { tree: query, tau: 2.0 }) {
//!     Response::Neighbors { neighbors, .. } => {
//!         assert_eq!(neighbors.len(), 2);
//!         assert_eq!(neighbors[0].distance, 0.0);
//!     }
//!     other => panic!("{other:?}"),
//! }
//! server.shutdown(); // drains in-flight requests, joins all threads
//! ```

pub mod json;
mod metrics;
pub mod proto;
mod server;

pub use proto::{
    parse_request, parse_request_line, render_response, render_response_with, MetricsFormat,
    Request, RequestId, Response, StatusReport, TreeRef, REQUEST_TYPE_NAMES,
};
pub use server::{Client, Server, ServerConfig};

// Re-exported so front-ends can name recovery modes, reports, and
// result-row types without depending on rted-index directly.
pub use rted_index::{JoinPair, Neighbor, PersistError, Recovery, RepairReport};
