//! A minimal JSON layer for the newline-delimited wire protocol.
//!
//! The build environment is offline (no `serde`), and the protocol needs
//! only a small, strict subset of JSON: one value per line, objects /
//! arrays / strings / finite numbers / booleans / null. The parser is a
//! plain recursive-descent over bytes with a depth cap (a service must
//! not stack-overflow on hostile input) and precise error positions; the
//! writer escapes strings per RFC 8259 and refuses non-finite numbers
//! (JSON has no `Infinity` — the protocol encodes "no threshold" by
//! omitting the field instead).

use std::fmt;

/// A parsed JSON value. Object members keep their textual order; lookup
/// is linear, which is right for the protocol's ≤ 4-key objects.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (always finite — the parser rejects the rest).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object as ordered `(key, value)` pairs.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object member lookup (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a finite float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a whole number that
    /// fits (ids and counts travel as JSON numbers).
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as usize)
            }
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object's keys, for strict unknown-key rejection (`None` on
    /// non-objects).
    pub fn keys(&self) -> Option<impl Iterator<Item = &str>> {
        match self {
            Value::Obj(members) => Some(members.iter().map(|(k, _)| k.as_str())),
            _ => None,
        }
    }
}

/// Parses one JSON value, requiring it to span the whole input (trailing
/// whitespace aside). Errors carry the byte offset.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after the JSON value"));
    }
    Ok(value)
}

/// Nesting depth cap: hostile `[[[[...` input must exhaust the parser's
/// patience, not the thread's stack.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {what}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, String> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, String> {
        self.eat(b'{', "'{'")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "':'")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, String> {
        self.eat(b'[', "'['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"', "'\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are trustworthy).
                    let rest = &self.bytes[self.pos..];
                    let ch_len = match rest[0] {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    out.push_str(std::str::from_utf8(&rest[..ch_len]).expect("valid UTF-8 input"));
                    self.pos += ch_len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number text");
        let n: f64 = text.parse().map_err(|_| self.err("unparseable number"))?;
        if !n.is_finite() {
            return Err(self.err("number out of range"));
        }
        Ok(Value::Num(n))
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .ok()
            .and_then(|s| u32::from_str_radix(s, 16).ok())
            .ok_or_else(|| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(hex)
    }

    fn unicode_escape(&mut self) -> Result<char, String> {
        let first = self.hex4()?;
        let code = if (0xd800..0xdc00).contains(&first) {
            // High surrogate: a low surrogate escape must follow.
            if self.peek() != Some(b'\\') || self.bytes.get(self.pos + 1) != Some(&b'u') {
                return Err(self.err("lone high surrogate"));
            }
            self.pos += 2;
            let second = self.hex4()?;
            if !(0xdc00..0xe000).contains(&second) {
                return Err(self.err("invalid low surrogate"));
            }
            0x10000 + ((first - 0xd800) << 10) + (second - 0xdc00)
        } else {
            first
        };
        char::from_u32(code).ok_or_else(|| self.err("invalid unicode escape"))
    }
}

/// Appends `s` to `out` as a quoted, escaped JSON string.
pub fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a number to `out`.
///
/// # Panics
///
/// Panics on non-finite values — the protocol never emits them (absent
/// thresholds are encoded by omitting the field).
pub fn write_number(n: f64, out: &mut String) {
    assert!(n.is_finite(), "JSON cannot represent {n}");
    use fmt::Write;
    write!(out, "{n}").expect("writing to String cannot fail");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_protocol_shapes() {
        let v = parse(r#"{"op":"range","tree":"{a{b}}","tau":2.5}"#).unwrap();
        assert_eq!(v.get("op").and_then(Value::as_str), Some("range"));
        assert_eq!(v.get("tree").and_then(Value::as_str), Some("{a{b}}"));
        assert_eq!(v.get("tau").and_then(Value::as_f64), Some(2.5));

        let v = parse(r#"{"ids":[0,3,17],"neg":-2,"flag":true,"none":null}"#).unwrap();
        let ids: Vec<usize> = v
            .get("ids")
            .and_then(Value::as_arr)
            .unwrap()
            .iter()
            .map(|x| x.as_usize().unwrap())
            .collect();
        assert_eq!(ids, vec![0, 3, 17]);
        assert_eq!(v.get("neg").and_then(Value::as_f64), Some(-2.0));
        assert_eq!(v.get("neg").and_then(Value::as_usize), None);
        assert_eq!(v.get("flag"), Some(&Value::Bool(true)));
        assert_eq!(v.get("none"), Some(&Value::Null));
    }

    #[test]
    fn string_escapes_roundtrip() {
        let v = parse(r#""a\"b\\c\ndAé😀""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA\u{e9}\u{1f600}"));

        let mut out = String::new();
        write_escaped("a\"b\\c\nd\te\u{1}", &mut out);
        assert_eq!(out, r#""a\"b\\c\nd\te\u0001""#);
        // The writer's output re-parses to the original.
        assert_eq!(parse(&out).unwrap().as_str(), Some("a\"b\\c\nd\te\u{1}"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            r#"{"a":}"#,
            r#"{"a":1}{"#,
            "tru",
            "01e",
            r#""unterminated"#,
            r#""\q""#,
            r#""\ud800x""#,
            "\u{1}",
        ] {
            assert!(parse(bad).is_err(), "accepted: {bad:?}");
        }
        // Depth bomb: rejected, not a stack overflow.
        let bomb = "[".repeat(100_000);
        assert!(parse(&bomb).is_err());
    }

    #[test]
    fn numbers() {
        assert_eq!(parse("3").unwrap().as_f64(), Some(3.0));
        assert_eq!(parse("-2.5e2").unwrap().as_f64(), Some(-250.0));
        assert_eq!(parse("7").unwrap().as_usize(), Some(7));
        assert_eq!(parse("7.5").unwrap().as_usize(), None);
        assert_eq!(parse("-1").unwrap().as_usize(), None);
        let mut out = String::new();
        write_number(3.0, &mut out);
        out.push(' ');
        write_number(2.25, &mut out);
        assert_eq!(out, "3 2.25");
    }
}
