//! The service's pre-registered metric handles.
//!
//! Everything the server records at request time lives here as typed
//! [`Arc`] handles into one [`rted_obs::Registry`], created once at
//! startup. Recording is a handful of relaxed atomic operations — no
//! locks, no allocation — so the instrumented id-to-id `distance` path
//! stays zero-allocation per request (the alloc test asserts this with
//! metrics *on*).
//!
//! Latency histograms double as per-request-type counters: a
//! histogram's `count` is exactly the number of requests of that type
//! served, so `status` derives its per-type breakdown from the same
//! atoms the latency summaries use.
//!
//! A sharded server additionally carries one [`ShardMetrics`] block per
//! shard (`serve_shard{K}_*` names) plus a `serve_scatter_fanout`
//! histogram recording how many shards each scatter-capable query
//! (`range`/`top_k`/`join`) fanned out to. The per-shard names are
//! minted once at startup (the registry wants `&'static str`, so they
//! are leaked — a few dozen bytes per shard for the process lifetime).

use rted_obs::{Counter, Gauge, Histogram, Registry, Snapshot};
use std::sync::Arc;
use std::time::Instant;

/// The request kinds the server tracks individually. `shutdown` is
/// transport-level and never reaches a worker successfully, so it has
/// no slot. Batched diff shares the `Diff` slot: it is the same
/// operation amortized, and capability probing goes through `ops`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum OpKind {
    Range,
    TopK,
    Distance,
    Insert,
    Remove,
    Status,
    Compact,
    Metrics,
    Diff,
    Join,
    Explain,
}

impl OpKind {
    fn index(self) -> usize {
        self as usize
    }
}

/// Nanoseconds since `started`, saturating into a `u64`.
pub(crate) fn ns_since(started: Instant) -> u64 {
    u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Per-shard recording handles: every query leg that touches a shard
/// (a scatter leg, or the single routed shard of `distance`/`diff`)
/// bumps that shard's counters, so an operator can see skew between
/// shards directly.
#[derive(Debug)]
pub(crate) struct ShardMetrics {
    /// Query legs answered by this shard.
    pub queries: Arc<Counter>,
    /// Wall time of scatter legs on this shard (ns).
    pub scatter_ns: Arc<Histogram>,
    /// Scatter legs currently executing on this shard.
    pub depth: Arc<Gauge>,
}

/// All service metric handles, pre-registered so request-time recording
/// never touches the registry.
#[derive(Debug)]
pub(crate) struct ServeMetrics {
    registry: Registry,
    started: Instant,
    /// Wall-clock handler latency per request type (queue wait excluded).
    pub latency: [Arc<Histogram>; 11],
    /// Time requests spent queued before a worker picked them up.
    pub queue_wait_ns: Arc<Histogram>,
    /// Requests currently queued (not yet picked up).
    pub queue_depth: Arc<Gauge>,
    /// Cumulative time workers spent inside handlers.
    pub worker_busy_ns: Arc<Counter>,
    /// WAL segment-append latency (lock-to-durable, fsyncs included).
    pub wal_append_ns: Arc<Histogram>,
    /// Individual WAL fsync latency (two per durable append).
    pub wal_fsync_ns: Arc<Histogram>,
    /// Bytes reclaimed by store rewrites (compactions).
    pub wal_bytes_reclaimed: Arc<Counter>,
    /// Compactions performed (threshold-driven + explicit).
    pub compactions: Arc<Counter>,
    /// Connections currently open on the socket front-end.
    pub connections_open: Arc<Gauge>,
    /// Connections accepted since start.
    pub connections_total: Arc<Counter>,
    /// Requests whose wall time crossed the front-end's `--slow-ms`.
    pub slow_queries: Arc<Counter>,
    /// Requests answered with an error response.
    pub errors: Arc<Counter>,
    /// Exact TED runs executed by worker workspaces.
    pub core_ted_runs: Arc<Counter>,
    /// Single-tree subproblems summed over those runs.
    pub core_subproblems: Arc<Counter>,
    /// High-water strategy-row pool size across all worker workspaces.
    pub core_rows_peak: Arc<Gauge>,
    /// Shards each scatter-capable query fanned out to (1 on an
    /// unsharded server).
    pub scatter_fanout: Arc<Histogram>,
    /// Per-shard blocks, indexed by shard number.
    shards: Vec<ShardMetrics>,
    /// Seconds since the server started (set at snapshot time).
    uptime_secs: Arc<Gauge>,
}

impl ServeMetrics {
    pub(crate) fn new(shards: usize) -> Self {
        let mut r = Registry::new();
        let latency = [
            r.histogram("serve_latency_range_ns"),
            r.histogram("serve_latency_topk_ns"),
            r.histogram("serve_latency_distance_ns"),
            r.histogram("serve_latency_insert_ns"),
            r.histogram("serve_latency_remove_ns"),
            r.histogram("serve_latency_status_ns"),
            r.histogram("serve_latency_compact_ns"),
            r.histogram("serve_latency_metrics_ns"),
            r.histogram("serve_latency_diff_ns"),
            r.histogram("serve_latency_join_ns"),
            r.histogram("serve_latency_explain_ns"),
        ];
        let shard_blocks = (0..shards.max(1))
            .map(|k| ShardMetrics {
                queries: r.counter(leak(format!("serve_shard{k}_queries_total"))),
                scatter_ns: r.histogram(leak(format!("serve_shard{k}_scatter_ns"))),
                depth: r.gauge(leak(format!("serve_shard{k}_depth"))),
            })
            .collect();
        ServeMetrics {
            latency,
            queue_wait_ns: r.histogram("serve_queue_wait_ns"),
            queue_depth: r.gauge("serve_queue_depth"),
            worker_busy_ns: r.counter("serve_worker_busy_ns_total"),
            wal_append_ns: r.histogram("wal_append_ns"),
            wal_fsync_ns: r.histogram("wal_fsync_ns"),
            wal_bytes_reclaimed: r.counter("wal_bytes_reclaimed_total"),
            compactions: r.counter("serve_compactions_total"),
            connections_open: r.gauge("serve_connections_open"),
            connections_total: r.counter("serve_connections_total"),
            slow_queries: r.counter("serve_slow_queries_total"),
            errors: r.counter("serve_errors_total"),
            core_ted_runs: r.counter("core_ted_runs_total"),
            core_subproblems: r.counter("core_subproblems_total"),
            core_rows_peak: r.gauge("core_strategy_rows_peak"),
            scatter_fanout: r.histogram("serve_scatter_fanout"),
            shards: shard_blocks,
            uptime_secs: r.gauge("serve_uptime_secs"),
            registry: r,
            started: Instant::now(),
        }
    }

    /// The latency histogram for one request kind.
    pub(crate) fn latency_of(&self, kind: OpKind) -> &Histogram {
        &self.latency[kind.index()]
    }

    /// The per-shard block for shard `k`.
    pub(crate) fn shard(&self, k: usize) -> &ShardMetrics {
        &self.shards[k]
    }

    /// Seconds since the server started.
    pub(crate) fn uptime_secs(&self) -> u64 {
        self.started.elapsed().as_secs()
    }

    /// Per-type request counts, in [`crate::proto::REQUEST_TYPE_NAMES`]
    /// order (which is [`OpKind`] discriminant order).
    pub(crate) fn per_type_counts(&self) -> [u64; 11] {
        let mut out = [0u64; 11];
        for (slot, h) in out.iter_mut().zip(self.latency.iter()) {
            *slot = h.count();
        }
        out
    }

    /// The WAL observation handles, for [`rted_index::CorpusLog::set_obs`].
    pub(crate) fn wal_obs(&self) -> rted_index::WalObs {
        rted_index::WalObs {
            append: Arc::clone(&self.wal_append_ns),
            fsync: Arc::clone(&self.wal_fsync_ns),
            bytes_reclaimed: Arc::clone(&self.wal_bytes_reclaimed),
        }
    }

    /// Freezes every metric, stamping the uptime gauge first.
    pub(crate) fn snapshot(&self) -> Snapshot {
        let uptime = i64::try_from(self.uptime_secs()).unwrap_or(i64::MAX);
        self.uptime_secs.set(uptime);
        self.registry.snapshot()
    }
}

/// Mints a `&'static str` metric name at startup (the registry holds
/// names for the process lifetime anyway; shard counts are small).
fn leak(name: String) -> &'static str {
    Box::leak(name.into_boxed_str())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_type_counts_follow_latency_histograms() {
        let m = ServeMetrics::new(1);
        assert_eq!(m.per_type_counts(), [0; 11]);
        m.latency_of(OpKind::Distance).record(100);
        m.latency_of(OpKind::Distance).record(200);
        m.latency_of(OpKind::Status).record(50);
        m.latency_of(OpKind::Join).record(75);
        let counts = m.per_type_counts();
        assert_eq!(counts[OpKind::Distance as usize], 2);
        assert_eq!(counts[OpKind::Status as usize], 1);
        assert_eq!(counts[OpKind::Join as usize], 1);
        assert_eq!(counts[OpKind::Range as usize], 0);
        // The wire names and the histogram slots stay aligned.
        assert_eq!(
            crate::proto::REQUEST_TYPE_NAMES[OpKind::Distance as usize],
            "distance"
        );
        assert_eq!(
            crate::proto::REQUEST_TYPE_NAMES[OpKind::Join as usize],
            "join"
        );
        assert_eq!(
            crate::proto::REQUEST_TYPE_NAMES[OpKind::Explain as usize],
            "explain"
        );
        assert_eq!(crate::proto::REQUEST_TYPE_NAMES.len(), m.latency.len());
    }

    #[test]
    fn snapshot_carries_registered_names() {
        let m = ServeMetrics::new(1);
        m.latency_of(OpKind::Range).record(10);
        m.errors.inc();
        let snap = m.snapshot();
        assert!(snap.get("serve_latency_range_ns").is_some());
        assert!(snap.get("serve_errors_total").is_some());
        assert!(snap.get("serve_uptime_secs").is_some());
        // Prometheus rendering of the full registry round-trips.
        assert!(snap
            .render_prometheus()
            .contains("serve_latency_range_ns_count 1"));
    }

    #[test]
    fn shard_blocks_register_labelled_names() {
        let m = ServeMetrics::new(3);
        m.shard(0).queries.inc();
        m.shard(2).scatter_ns.record(500);
        m.shard(1).depth.add(1);
        m.scatter_fanout.record(3);
        let snap = m.snapshot();
        assert!(snap.get("serve_shard0_queries_total").is_some());
        assert!(snap.get("serve_shard1_depth").is_some());
        assert!(snap.get("serve_shard2_scatter_ns").is_some());
        assert!(snap.get("serve_scatter_fanout").is_some());
        let text = snap.render_prometheus();
        assert!(text.contains("serve_shard0_queries_total 1"));
        assert!(text.contains("serve_scatter_fanout_count 1"));
    }
}
