//! End-to-end service tests: concurrent clients against a durable
//! corpus, a kill mid-update-batch with restart-and-recover, graceful
//! shutdown draining, and threshold-driven background compaction.

use rted_core::{Algorithm, UnitCost, Workspace};
use rted_datasets::Shape;
use rted_index::{CorpusStore, Recovery};
use rted_serve::{Request, Response, Server, ServerConfig, TreeRef};
use rted_tree::{parse_bracket, to_bracket, Tree};
use std::path::PathBuf;
use std::time::Duration;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rted-serve-tests-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn gen_trees(count: usize, seed0: u64) -> Vec<Tree<String>> {
    (0..count)
        .map(|i| {
            let shape = Shape::ALL[i % Shape::ALL.len()];
            shape
                .generate(6 + i % 13, seed0 + i as u64)
                .map_labels(|l| l.to_string())
        })
        .collect()
}

fn cfg(workers: usize) -> ServerConfig {
    ServerConfig {
        workers,
        compact_fraction: None,
        ..ServerConfig::default()
    }
}

/// The reference answer: brute-force RTED range query over the live
/// `(id, tree)` pairs of a freshly loaded corpus — what a restarted
/// service must agree with.
fn brute_range(
    live: &[(usize, Tree<String>)],
    query: &Tree<String>,
    tau: f64,
) -> Vec<(usize, f64)> {
    let mut ws = Workspace::new();
    live.iter()
        .map(|(id, tree)| {
            let run = Algorithm::Rted.run_in(query, tree, &UnitCost, &mut ws);
            (*id, run.distance)
        })
        .filter(|&(_, d)| d < tau)
        .collect()
}

fn live_pairs(path: &PathBuf) -> Vec<(usize, Tree<String>)> {
    CorpusStore::open(path)
        .unwrap()
        .corpus()
        .iter()
        .map(|(id, e)| (id, e.tree().clone()))
        .collect()
}

#[test]
fn concurrent_clients_agree_with_brute_force() {
    let path = scratch("concurrent.idx");
    let trees = gen_trees(24, 100);
    CorpusStore::create(&path, trees.clone()).unwrap();
    let (server, report) = Server::open(&path, Recovery::Strict, cfg(4)).unwrap();
    assert_eq!(report.bytes_dropped, 0);

    let live: Vec<(usize, Tree<String>)> = trees.iter().cloned().enumerate().collect();
    std::thread::scope(|scope| {
        for t in 0..4 {
            let server = &server;
            let live = &live;
            scope.spawn(move || {
                let mut client = server.client();
                for q in 0..6 {
                    let query = Shape::ALL[(t + q) % 6]
                        .generate(8 + q, (t * 31 + q) as u64)
                        .map_labels(|l| l.to_string());
                    let tau = 4.0 + q as f64;
                    let expected = brute_range(live, &query, tau);
                    match client.call(Request::Range { tree: query, tau }) {
                        Response::Neighbors { neighbors, .. } => {
                            let got: Vec<(usize, f64)> =
                                neighbors.iter().map(|n| (n.id, n.distance)).collect();
                            assert_eq!(got, expected, "client {t} query {q}");
                        }
                        other => panic!("client {t}: {other:?}"),
                    }
                }
                // Distance fast path agrees with a direct kernel run.
                let mut ws = Workspace::new();
                let expect = Algorithm::Rted
                    .run_in(&live[t].1, &live[t + 5].1, &UnitCost, &mut ws)
                    .distance;
                match client.call(Request::Distance {
                    left: TreeRef::Id(t),
                    right: TreeRef::Id(t + 5),
                    at_most: f64::INFINITY,
                }) {
                    Response::Distance(d) => assert_eq!(d, expect),
                    other => panic!("{other:?}"),
                }
            });
        }
    });
    server.shutdown();
}

#[test]
fn mutations_are_durable_and_queryable() {
    let path = scratch("durable.idx");
    CorpusStore::create(&path, gen_trees(8, 300)).unwrap();
    let (server, _) = Server::open(&path, Recovery::Strict, cfg(2)).unwrap();
    let mut client = server.client();

    let added = gen_trees(5, 400);
    let ids = match client.call(Request::Insert {
        trees: added.clone(),
    }) {
        Response::Inserted(ids) => ids,
        other => panic!("{other:?}"),
    };
    assert_eq!(ids, vec![8, 9, 10, 11, 12]);
    match client.call(Request::Remove {
        ids: vec![1, 3, 3, 77],
    }) {
        Response::Removed(n) => assert_eq!(n, 2),
        other => panic!("{other:?}"),
    }
    // Unknown ids in distance answer with an error, not a crash.
    match client.call(Request::Distance {
        left: TreeRef::Id(1),
        right: TreeRef::Id(0),
        at_most: f64::INFINITY,
    }) {
        Response::Error(msg) => assert!(msg.contains("id 1"), "{msg}"),
        other => panic!("{other:?}"),
    }
    match client.call(Request::Status) {
        Response::Status(s) => {
            assert_eq!(s.live, 11);
            assert_eq!(s.id_bound, 13);
            assert_eq!(s.holes, 2);
            assert!(s.persistent);
            assert_eq!(s.segments, 3);
            assert_eq!(s.file_tombstones, 2);
            assert_eq!(s.workers, 2);
        }
        other => panic!("{other:?}"),
    }
    server.shutdown();

    // Every mutation survived the restart (strict open: the file is clean).
    let reopened = live_pairs(&path);
    let ids: Vec<usize> = reopened.iter().map(|(id, _)| *id).collect();
    assert_eq!(ids, vec![0, 2, 4, 5, 6, 7, 8, 9, 10, 11, 12]);
    assert_eq!(to_bracket(&reopened[6].1), to_bracket(&added[0]));
}

/// The acceptance scenario: the service dies mid-update-batch (simulated
/// by tearing the file exactly as an interrupted append would), restarts
/// in repair mode, and answers queries identically to a brute-force pass
/// over an independently loaded corpus.
#[test]
fn kill_mid_update_restart_recovers_and_answers_identically() {
    let path = scratch("kill-restart.idx");
    CorpusStore::create(&path, gen_trees(12, 500)).unwrap();

    // A served update batch that fully commits...
    let (server, _) = Server::open(&path, Recovery::Strict, cfg(2)).unwrap();
    let mut client = server.client();
    match client.call(Request::Insert {
        trees: gen_trees(4, 600),
    }) {
        Response::Inserted(ids) => assert_eq!(ids.len(), 4),
        other => panic!("{other:?}"),
    }
    match client.call(Request::Remove { ids: vec![2, 9] }) {
        Response::Removed(n) => assert_eq!(n, 2),
        other => panic!("{other:?}"),
    }
    server.shutdown();
    let committed = std::fs::read(&path).unwrap();

    // ...then the crash: the next batch's segment is half-written (tail
    // torn mid-append, header still the committed one).
    let mut torn = committed.clone();
    torn.extend_from_slice(&committed[48..48 + 57]);
    std::fs::write(&path, &torn).unwrap();

    // Strict startup refuses; repair startup recovers the committed state.
    assert!(Server::open(&path, Recovery::Strict, cfg(2)).is_err());
    let (server, report) = Server::open(&path, Recovery::Repair, cfg(3)).unwrap();
    assert_eq!(report.bytes_dropped, 57);
    assert_eq!(report.segments_recovered, 3);

    // The recovered service answers exactly like a brute-force pass over
    // the independently (strictly) re-loaded corpus — repair made the
    // file clean again, so `live_pairs` is itself the fresh rebuild.
    let live = live_pairs(&path);
    assert_eq!(live.len(), 14); // 12 + 4 inserted − 2 removed
    let mut client = server.client();
    for (qi, seed) in [(0usize, 700u64), (1, 701), (2, 702)] {
        let query = Shape::ALL[qi]
            .generate(9 + qi, seed)
            .map_labels(|l| l.to_string());
        for tau in [3.0, 6.0, f64::INFINITY] {
            let expected = brute_range(&live, &query, tau);
            match client.call(Request::Range {
                tree: query.clone(),
                tau,
            }) {
                Response::Neighbors { neighbors, .. } => {
                    let got: Vec<(usize, f64)> =
                        neighbors.iter().map(|n| (n.id, n.distance)).collect();
                    assert_eq!(got, expected, "query {qi} tau {tau}");
                }
                other => panic!("{other:?}"),
            }
        }
    }
    // And the recovered service keeps accepting durable updates.
    match client.call(Request::Insert {
        trees: vec![parse_bracket("{after{recovery}}").unwrap()],
    }) {
        Response::Inserted(ids) => assert_eq!(ids, vec![16]),
        other => panic!("{other:?}"),
    }
    server.shutdown();
    assert_eq!(live_pairs(&path).len(), 15);
}

#[test]
fn absurd_top_k_returns_everything_instead_of_aborting() {
    // One hostile request line must not be able to kill the service: a k
    // near 2^53 passes protocol validation, and the index must clamp its
    // allocations to the corpus size rather than aborting on a
    // petabyte-sized heap reservation.
    let server = Server::in_memory(gen_trees(9, 1200), cfg(1));
    let mut client = server.client();
    match client.call(Request::TopK {
        tree: parse_bracket("{a{b}}").unwrap(),
        k: (1u64 << 53) as usize - 1,
    }) {
        Response::Neighbors { neighbors, .. } => assert_eq!(neighbors.len(), 9),
        other => panic!("{other:?}"),
    }
    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_queued_requests() {
    // One worker, several queued queries: closing the queue must not
    // drop them — every already-submitted client gets a real response.
    let server = Server::in_memory(gen_trees(16, 800), cfg(1));
    let handles: Vec<_> = (0..6)
        .map(|i| {
            let mut client = server.client();
            std::thread::spawn(move || {
                let query = Shape::ALL[i % 6]
                    .generate(10, 900 + i as u64)
                    .map_labels(|l| l.to_string());
                client.call(Request::Range {
                    tree: query,
                    tau: 8.0,
                })
            })
        })
        .collect();
    // Let the submissions land in the queue, then shut down.
    std::thread::sleep(Duration::from_millis(50));
    server.shutdown();
    for h in handles {
        match h.join().unwrap() {
            Response::Neighbors { .. } => {}
            Response::Error(msg) => assert_eq!(msg, "server is shutting down"),
            other => panic!("{other:?}"),
        }
    }
}

#[test]
fn background_compaction_fires_on_tombstone_backlog() {
    let path = scratch("autocompact.idx");
    CorpusStore::create(&path, gen_trees(10, 1000)).unwrap();
    let config = ServerConfig {
        workers: 2,
        compact_fraction: Some(0.25),
        maintenance_interval: Duration::from_millis(5),
        ..ServerConfig::default()
    };
    let (server, _) = Server::open(&path, Recovery::Strict, config).unwrap();
    let mut client = server.client();
    // 4 tombstones over 6 live = 0.67 > 0.25: the trigger must fire.
    match client.call(Request::Remove {
        ids: vec![0, 1, 2, 3],
    }) {
        Response::Removed(n) => assert_eq!(n, 4),
        other => panic!("{other:?}"),
    }
    let mut compacted = false;
    for _ in 0..400 {
        match client.call(Request::Status) {
            Response::Status(s) => {
                if s.compactions >= 1 {
                    assert_eq!(s.file_tombstones, 0, "compaction must clear the backlog");
                    assert_eq!(s.segments, 1);
                    assert_eq!(s.live, 6);
                    // The id holes survive — they are not the trigger.
                    assert_eq!(s.holes, 4);
                    compacted = true;
                    break;
                }
            }
            other => panic!("{other:?}"),
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(compacted, "background compaction never fired");
    server.shutdown();

    // The compacted file strict-opens with all ids preserved.
    let live = live_pairs(&path);
    let ids: Vec<usize> = live.iter().map(|(id, _)| *id).collect();
    assert_eq!(ids, vec![4, 5, 6, 7, 8, 9]);
}

#[test]
fn empty_store_never_triggers_compaction_or_divides_by_zero() {
    let path = scratch("empty.idx");
    CorpusStore::create(&path, Vec::<Tree<String>>::new()).unwrap();
    let config = ServerConfig {
        workers: 1,
        compact_fraction: Some(0.01),
        maintenance_interval: Duration::from_millis(2),
        ..ServerConfig::default()
    };
    let (server, _) = Server::open(&path, Recovery::Strict, config).unwrap();
    std::thread::sleep(Duration::from_millis(60));
    let mut client = server.client();
    match client.call(Request::Status) {
        Response::Status(s) => {
            assert_eq!(s.live, 0);
            assert_eq!(s.compactions, 0, "empty store must not compact");
        }
        other => panic!("{other:?}"),
    }
    // Queries on the empty corpus are well-defined.
    match client.call(Request::Range {
        tree: parse_bracket("{a}").unwrap(),
        tau: 5.0,
    }) {
        Response::Neighbors { neighbors, .. } => assert!(neighbors.is_empty()),
        other => panic!("{other:?}"),
    }
    server.shutdown();
}

#[test]
fn metrics_surface_reflects_served_traffic() {
    use rted_serve::{MetricsFormat, REQUEST_TYPE_NAMES};

    let path = scratch("metrics.idx");
    CorpusStore::create(&path, gen_trees(8, 50)).unwrap();
    let (server, _) = Server::open(&path, Recovery::Strict, cfg(2)).unwrap();
    let mut client = server.client();

    let query = gen_trees(1, 99).pop().unwrap();
    // One unbounded tau guarantees the filters pass candidates through
    // to exact verification, so verified-work counters move.
    for tau in [4.0, 4.0, f64::INFINITY] {
        match client.call(Request::Range {
            tree: query.clone(),
            tau,
        }) {
            Response::Neighbors { .. } => {}
            other => panic!("{other:?}"),
        }
    }
    match client.call(Request::Distance {
        left: TreeRef::Id(0),
        right: TreeRef::Id(1),
        at_most: f64::INFINITY,
    }) {
        Response::Distance(_) => {}
        other => panic!("{other:?}"),
    }
    match client.call(Request::Insert {
        trees: gen_trees(2, 500),
    }) {
        Response::Inserted(ids) => assert_eq!(ids.len(), 2),
        other => panic!("{other:?}"),
    }
    // One deliberate failure for the error counter.
    match client.call(Request::Distance {
        left: TreeRef::Id(9999),
        right: TreeRef::Id(0),
        at_most: f64::INFINITY,
    }) {
        Response::Error(_) => {}
        other => panic!("{other:?}"),
    }

    // Status: per-type counts derive from the same histograms as the
    // latency summaries; `requests` covers everything handled so far.
    match client.call(Request::Status) {
        Response::Status(s) => {
            let by = |name: &str| {
                s.requests_by_type[REQUEST_TYPE_NAMES.iter().position(|n| *n == name).unwrap()]
            };
            assert_eq!(by("range"), 3);
            assert_eq!(by("distance"), 2);
            assert_eq!(by("insert"), 1);
            assert_eq!(by("status"), 0, "status sees the count before itself");
            assert_eq!(s.requests, 6);
        }
        other => panic!("{other:?}"),
    }

    // The structured snapshot: serve latency histograms, WAL append and
    // fsync timings (the insert was durable), index totals, core
    // counters fed up from the worker workspaces.
    let snap = match client.call(Request::Metrics {
        format: MetricsFormat::Json,
    }) {
        Response::Metrics(snap) => snap,
        other => panic!("{other:?}"),
    };
    let hist = |name: &str| match snap.get(name) {
        Some(rted_obs::MetricValue::Histogram(h)) => *h,
        other => panic!("{name}: {other:?}"),
    };
    let counter = |name: &str| match snap.get(name) {
        Some(rted_obs::MetricValue::Counter(v)) => *v,
        other => panic!("{name}: {other:?}"),
    };
    let range = hist("serve_latency_range_ns");
    assert_eq!(range.count, 3);
    assert!(range.sum > 0 && range.max >= range.p50);
    assert_eq!(hist("serve_latency_distance_ns").count, 2);
    assert_eq!(hist("serve_queue_wait_ns").count, 8);
    assert_eq!(hist("wal_append_ns").count, 1);
    assert!(hist("wal_fsync_ns").count >= 2, "two fsyncs per append");
    assert_eq!(counter("serve_errors_total"), 1);
    assert!(counter("serve_worker_busy_ns_total") > 0);
    assert!(
        counter("core_ted_runs_total") >= 1,
        "distance ran on a worker workspace"
    );
    assert_eq!(counter("index_range_queries_total"), 3);
    assert_eq!(counter("index_distance_calls_total"), 1);
    assert!(counter("index_verified_total") > 0);
    // 7 = 3 range + 2 distance + 1 insert + 1 status; the in-flight
    // metrics request counts only after its own handler returns.
    assert_eq!(counter("serve_requests_total"), 7);

    // The Prometheus rendering of the same state is exposed verbatim.
    match client.call(Request::Metrics {
        format: MetricsFormat::Prometheus,
    }) {
        Response::MetricsText(text) => {
            assert!(
                text.contains("# TYPE serve_latency_range_ns summary"),
                "{text}"
            );
            assert!(text.contains("serve_latency_range_ns_count 3"), "{text}");
            assert!(text.contains("index_range_queries_total 3"), "{text}");
        }
        other => panic!("{other:?}"),
    }
    server.shutdown();
}

#[test]
fn diff_scripts_are_served_and_agree_with_distance() {
    use rted_serve::{MetricsFormat, REQUEST_TYPE_NAMES};

    let server = Server::in_memory(gen_trees(12, 4200), cfg(2));
    let mut client = server.client();

    // Every corpus pair in a small sample: the served script's cost must
    // equal the served distance for the same operands — the edit script
    // is a witness for the number, not a second opinion.
    for (left, right) in [(0usize, 1usize), (2, 3), (4, 4), (5, 9)] {
        let d = match client.call(Request::Distance {
            left: TreeRef::Id(left),
            right: TreeRef::Id(right),
            at_most: f64::INFINITY,
        }) {
            Response::Distance(d) => d,
            other => panic!("{other:?}"),
        };
        match client.call(Request::Diff {
            left: TreeRef::Id(left),
            right: TreeRef::Id(right),
        }) {
            Response::Diff(script) => {
                assert_eq!(script.cost, d, "pair ({left},{right})");
                // Unit costs: every non-keep op contributes exactly 1.
                assert_eq!(script.changes() as f64, d, "pair ({left},{right})");
                assert_eq!(
                    script.deletes + script.inserts + script.renames + script.keeps,
                    script.ops.len()
                );
                if left == right {
                    assert_eq!(script.changes(), 0, "self-diff must be all keeps");
                }
            }
            other => panic!("{other:?}"),
        }
    }

    // Mixed operands: one corpus id, one inline tree.
    match client.call(Request::Diff {
        left: TreeRef::Inline(parse_bracket("{a{b}{c}}").unwrap()),
        right: TreeRef::Inline(parse_bracket("{a{b}{x}}").unwrap()),
    }) {
        Response::Diff(script) => {
            assert_eq!(script.cost, 1.0);
            assert_eq!(script.renames, 1);
            assert_eq!(script.keeps, 2);
        }
        other => panic!("{other:?}"),
    }

    // Dead ids fail like distance does, without killing the service.
    match client.call(Request::Diff {
        left: TreeRef::Id(9999),
        right: TreeRef::Id(0),
    }) {
        Response::Error(msg) => assert!(msg.contains("9999"), "{msg}"),
        other => panic!("{other:?}"),
    }

    // The new op is visible on every telemetry surface: status per-type
    // counts and the latency histogram / index counter pair.
    match client.call(Request::Status) {
        Response::Status(s) => {
            let diff_slot = REQUEST_TYPE_NAMES
                .iter()
                .position(|n| *n == "diff")
                .unwrap();
            assert_eq!(
                s.requests_by_type[diff_slot], 6,
                "4 id pairs + inline + dead-id"
            );
        }
        other => panic!("{other:?}"),
    }
    match client.call(Request::Metrics {
        format: MetricsFormat::Json,
    }) {
        Response::Metrics(snap) => {
            match snap.get("serve_latency_diff_ns") {
                Some(rted_obs::MetricValue::Histogram(h)) => assert_eq!(h.count, 6),
                other => panic!("{other:?}"),
            }
            match snap.get("index_diff_calls_total") {
                Some(rted_obs::MetricValue::Counter(v)) => {
                    assert_eq!(*v, 5, "dead-id never reached the index")
                }
                other => panic!("{other:?}"),
            }
        }
        other => panic!("{other:?}"),
    }
    server.shutdown();
}

#[test]
fn bounded_distance_answers_exact_or_certified_exceeds() {
    use rted_serve::MetricsFormat;
    // Tree 0 and 1 are near-identical; tree 2 is a deep chain far from
    // both — tight budgets must reject it with a certified lower bound.
    let trees: Vec<Tree<String>> = ["{a{b}{c}}", "{a{b}{d}}", "{x{y{z{w{v{u}}}}}}"]
        .iter()
        .map(|t| parse_bracket(t).unwrap())
        .collect();
    let server = Server::in_memory(trees.clone(), cfg(1));
    let mut client = server.client();

    // Exact reference distances.
    let mut ws = Workspace::new();
    let d01 = Algorithm::Rted
        .run_in(&trees[0], &trees[1], &UnitCost, &mut ws)
        .distance;
    let d02 = Algorithm::Rted
        .run_in(&trees[0], &trees[2], &UnitCost, &mut ws)
        .distance;

    // Generous budget: the exact distance comes back, bit-identical.
    match client.call(Request::Distance {
        left: TreeRef::Id(0),
        right: TreeRef::Id(1),
        at_most: d01 + 1.0,
    }) {
        Response::Distance(d) => assert_eq!(d, d01),
        other => panic!("{other:?}"),
    }
    // A budget exactly at the distance is still within it.
    match client.call(Request::Distance {
        left: TreeRef::Id(0),
        right: TreeRef::Id(1),
        at_most: d01,
    }) {
        Response::Distance(d) => assert_eq!(d, d01),
        other => panic!("{other:?}"),
    }
    // Blown budget: a certified lower bound, never above the true
    // distance, at least the budget.
    match client.call(Request::Distance {
        left: TreeRef::Id(0),
        right: TreeRef::Id(2),
        at_most: 1.0,
    }) {
        Response::DistanceExceeds(lb) => {
            assert!(lb >= 1.0, "lower bound {lb} below budget");
            assert!(lb <= d02, "lower bound {lb} above exact distance {d02}");
        }
        other => panic!("{other:?}"),
    }
    // Inline trees work on the budgeted path too.
    match client.call(Request::Distance {
        left: TreeRef::Inline(parse_bracket("{a}").unwrap()),
        right: TreeRef::Inline(parse_bracket("{a{b{c{d}}}}").unwrap()),
        at_most: 0.5,
    }) {
        Response::DistanceExceeds(lb) => assert!(lb >= 0.5),
        other => panic!("{other:?}"),
    }

    // The early-exit and bounded-time counters surface in metrics.
    match client.call(Request::Metrics {
        format: MetricsFormat::Json,
    }) {
        Response::Metrics(snap) => {
            match snap.get("index_verify_early_exit_total") {
                Some(rted_obs::MetricValue::Counter(v)) => {
                    assert!(*v >= 1, "expected early exits, saw {v}")
                }
                other => panic!("{other:?}"),
            }
            match snap.get("index_verify_bounded_ns") {
                Some(rted_obs::MetricValue::Counter(v)) => assert!(*v > 0),
                other => panic!("{other:?}"),
            }
        }
        other => panic!("{other:?}"),
    }
    server.shutdown();
}

/// The `explain` op surfaces the planner's decision record, and planned
/// queries feed the `index_plan_*` counters — while `--no-planner`
/// (config `planner: false`) pins the fixed configuration.
#[test]
fn explain_reports_planner_decisions() {
    use rted_serve::MetricsFormat;
    let server = Server::in_memory(
        gen_trees(12, 900),
        ServerConfig {
            workers: 1,
            shards: 2,
            ..ServerConfig::default()
        },
    );
    let mut client = server.client();
    // A budgeted probe: no metric tree, so the generator is linear; the
    // default verifier is intact, so a finite tau plans the bounded arm.
    match client.call(Request::Explain { tau: 2.0 }) {
        Response::Plan(report) => {
            assert_eq!(report.candidate_gen.name(), "linear");
            assert!(report.budgeted);
            assert_eq!(report.stage_order[0], "size");
            assert_eq!(report.stage_order.len(), 6);
        }
        other => panic!("{other:?}"),
    }
    // An unbudgeted probe plans the exact arm above the ZS cutoff.
    match client.call(Request::Explain { tau: f64::INFINITY }) {
        Response::Plan(report) => assert!(!report.budgeted),
        other => panic!("{other:?}"),
    }
    // Planned queries count their decisions.
    match client.call(Request::Range {
        tree: gen_trees(1, 901).pop().unwrap(),
        tau: 2.0,
    }) {
        Response::Neighbors { .. } => {}
        other => panic!("{other:?}"),
    }
    match client.call(Request::Metrics {
        format: MetricsFormat::Json,
    }) {
        Response::Metrics(snap) => {
            let counter = |name: &str| match snap.get(name) {
                Some(rted_obs::MetricValue::Counter(v)) => *v,
                other => panic!("{name}: {other:?}"),
            };
            // Two explain probes + one range over two shards.
            assert!(counter("index_plan_linear_total") >= 3);
            assert_eq!(counter("index_plan_metric_total"), 0);
        }
        other => panic!("{other:?}"),
    }
    server.shutdown();

    // planner: false serves the historical fixed configuration and
    // reports it as such.
    let fixed = Server::in_memory(
        gen_trees(6, 910),
        ServerConfig {
            workers: 1,
            planner: false,
            ..ServerConfig::default()
        },
    );
    match fixed.call(Request::Explain { tau: 2.0 }) {
        Response::Plan(report) => {
            assert_eq!(report.candidate_gen.name(), "linear");
            assert!(!report.budgeted, "planner off never plans the bounded arm");
        }
        other => panic!("{other:?}"),
    }
    fixed.shutdown();
}
