//! The serving layer's allocation contract, enforced end-to-end: a
//! server **recovered from a torn file** answers warm id-to-id
//! `distance` requests with **zero heap allocations per request** — the
//! whole path (client submit → queue → worker pop → index read lock →
//! RTED through the worker's lifetime workspace → response publish →
//! client wake) runs on pre-allocated state.
//!
//! A counting global allocator tallies every `alloc`/`realloc` across
//! all threads; the test warms the path, snapshots the counter, issues a
//! batch of requests, and demands the counter did not move. Kept in its
//! own integration-test binary so the allocator sees only this test's
//! traffic.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOC_CALLS.load(Ordering::SeqCst)
}

use rted_index::{CorpusStore, Recovery};
use rted_serve::{Request, Response, Server, ServerConfig, TreeRef};
use rted_tree::{parse_bracket, Tree};

/// Deterministic mixed-shape tree of roughly `n` nodes.
fn mixed_tree(n: usize, salt: u64) -> Tree<String> {
    let mut s = String::from("{r");
    let mut state = salt.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let mut open = 0usize;
    let mut emitted = 1usize;
    while emitted < n {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let roll = (state >> 59) as usize;
        if roll < 5 && open > 0 {
            s.push('}');
            open -= 1;
        } else {
            s.push_str(&format!("{{l{}", roll % 3));
            open += 1;
            emitted += 1;
        }
    }
    for _ in 0..open {
        s.push('}');
    }
    s.push('}');
    parse_bracket(&s).unwrap()
}

#[test]
fn warm_distance_requests_allocate_nothing() {
    let dir = std::env::temp_dir().join(format!("rted-serve-alloc-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("alloc.idx");

    // A persistent corpus whose file gets torn, so the server under test
    // is exactly the recovery-path server of the acceptance criteria.
    let trees: Vec<Tree<String>> = (0..8).map(|i| mixed_tree(30 + 5 * i, i as u64)).collect();
    CorpusStore::create(&path, trees).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    let mut torn = bytes.clone();
    torn.extend_from_slice(&bytes[48..48 + 31]); // half-written next append
    std::fs::write(&path, &torn).unwrap();

    let config = ServerConfig {
        workers: 1, // one worker = its one workspace serves every request
        compact_fraction: None,
        ..ServerConfig::default()
    };
    let (server, report) = Server::open(&path, Recovery::Repair, config).unwrap();
    assert_eq!(report.bytes_dropped, 31);

    let mut client = server.client();
    let pairs: [(usize, usize); 4] = [(0, 1), (2, 5), (6, 3), (7, 4)];

    // Warm-up: every pair once, so the worker's workspace has grown to
    // the high-water mark of the batch (and the client's gate, the
    // queue's ring and the lazily-initialized lock/condvar state exist).
    let mut expected = Vec::new();
    for &(l, r) in &pairs {
        match client.call(Request::Distance {
            left: TreeRef::Id(l),
            right: TreeRef::Id(r),
            at_most: f64::INFINITY,
        }) {
            Response::Distance(d) => expected.push(d),
            other => panic!("{other:?}"),
        }
    }

    // Measured runs: many requests, zero new allocations, same answers.
    let before = allocations();
    for round in 0..25 {
        for (i, &(l, r)) in pairs.iter().enumerate() {
            match client.call(Request::Distance {
                left: TreeRef::Id(l),
                right: TreeRef::Id(r),
                at_most: f64::INFINITY,
            }) {
                Response::Distance(d) => assert_eq!(d, expected[i], "round {round}"),
                other => panic!("{other:?}"),
            }
        }
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "warm distance requests performed {} heap allocations over 100 requests",
        after - before
    );

    // Sanity: the server still works for allocating request kinds too.
    match client.call(Request::Status) {
        Response::Status(s) => assert_eq!(s.live, 8),
        other => panic!("{other:?}"),
    }

    // The zero-allocation batch ran with instrumentation ON, not
    // disabled: the distance latency histogram must have recorded every
    // one of those requests (warm-up + 100 measured).
    match client.call(Request::Metrics {
        format: rted_serve::MetricsFormat::Json,
    }) {
        Response::Metrics(snap) => match snap.get("serve_latency_distance_ns") {
            Some(rted_obs::MetricValue::Histogram(h)) => {
                assert_eq!(h.count, 104, "metrics were not recording during the batch");
                assert!(h.sum > 0);
            }
            other => panic!("serve_latency_distance_ns: {other:?}"),
        },
        other => panic!("{other:?}"),
    }
    server.shutdown();
}
