//! Property tests for sharded serving: a server striped over any shard
//! count must answer **byte-identically** to a 1-shard server — same
//! neighbors, same order, same candidate counters, same rendered
//! response lines — across random corpora, random insert/remove
//! scripts, and random queries.
//!
//! Why bytes and not just values: the scatter-gather merge re-sorts
//! into the canonical order and the per-pair filter decisions are pure
//! functions of the operands, so nothing about the answer may depend on
//! the stripe layout. That includes `topk`'s `verified` counter: the
//! centralized striped driver replays the single-index batch schedule
//! over the merged candidate view, so even the *work* counters are
//! deterministic — no masking, every byte must match.

use proptest::prelude::*;
use rted_datasets::shapes::Shape;
use rted_serve::{render_response, Request, Server, ServerConfig};
use rted_tree::Tree;

fn arb_tree(max: usize) -> impl Strategy<Value = Tree<String>> {
    (0..Shape::ALL.len(), 1..=max, any::<u32>()).prop_map(|(s, n, seed)| {
        Shape::ALL[s]
            .generate(n, seed as u64)
            .map_labels(|l| l.to_string())
    })
}

fn cfg(shards: usize) -> ServerConfig {
    ServerConfig {
        workers: 2,
        shards,
        ..ServerConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn sharded_answers_are_byte_identical_to_one_shard(
        initial in proptest::collection::vec(arb_tree(10), 1..=7),
        script in proptest::collection::vec((any::<bool>(), any::<u32>(), arb_tree(10)), 0..6),
        shards in 2..=4usize,
        q in arb_tree(10),
        tau_int in 0..12usize,
        k in 1..5usize,
        picks in proptest::collection::vec(any::<u32>(), 4),
    ) {
        let reference = Server::in_memory(initial.clone(), cfg(1));
        let sharded = Server::in_memory(initial.clone(), cfg(shards));
        let mut ref_client = reference.client();
        let mut sh_client = sharded.client();

        // Drive both servers through the same mutation script: both
        // assign identical global ids (the stripe mapping is invisible
        // at the protocol level), so every later id-based request means
        // the same trees on both.
        let mut id_bound = initial.len();
        for (is_remove, pick, tree) in script {
            let request = if is_remove {
                // May hit a dead id — then both servers skip it alike.
                Request::Remove { ids: vec![pick as usize % id_bound] }
            } else {
                id_bound += 1;
                Request::Insert { trees: vec![tree] }
            };
            let a = render_response(&ref_client.call(request.clone()));
            let b = render_response(&sh_client.call(request));
            prop_assert_eq!(a, b);
        }

        let tau = if tau_int == 0 { f64::INFINITY } else { tau_int as f64 / 2.0 };

        // range and join: full-line byte identity, counters included.
        for request in [Request::Range { tree: q.clone(), tau }, Request::Join { tau }] {
            let a = render_response(&ref_client.call(request.clone()));
            let b = render_response(&sh_client.call(request));
            prop_assert_eq!(a, b);
        }

        // topk: full-line byte identity too — the striped driver's
        // `verified` count replays the unsharded batch schedule exactly.
        let request = Request::TopK { tree: q.clone(), k };
        let a = render_response(&ref_client.call(request.clone()));
        let b = render_response(&sh_client.call(request));
        prop_assert_eq!(a, b);

        // Routed ops on arbitrary (possibly dead) ids: identical
        // answers *and* identical errors.
        let id = |i: usize| picks[i] as usize % id_bound;
        let request = Request::DiffBatch {
            pairs: vec![(id(0), id(1)), (id(2), id(3))],
        };
        let a = render_response(&ref_client.call(request.clone()));
        let b = render_response(&sh_client.call(request));
        prop_assert_eq!(a, b);
        let request = Request::Distance {
            left: rted_serve::TreeRef::Id(id(0)),
            right: rted_serve::TreeRef::Id(id(3)),
            at_most: tau,
        };
        let a = render_response(&ref_client.call(request.clone()));
        let b = render_response(&sh_client.call(request));
        prop_assert_eq!(a, b);

        reference.shutdown();
        sharded.shutdown();
    }
}
