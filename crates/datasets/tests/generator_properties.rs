//! Generator contract tests: exact sizes, bounds, determinism, and the
//! adversarial properties each shape is designed to have.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rted_datasets::realworld::{swissprot_like, treebank_like, treefam_like};
use rted_datasets::shapes::{profile, random_tree};
use rted_datasets::Shape;
use rted_tree::counts::DecompCounts;
use rted_tree::PathKind;

#[test]
fn lb_is_optimal_for_left_paths() {
    // On the left-branch tree the recursive left decomposition is linear
    // in n (the hanging subtrees are leaves) while the right decomposition
    // is quadratic — the asymmetry that breaks Zhang-R.
    let t = Shape::LeftBranch.generate(201, 0);
    let c = DecompCounts::new(&t);
    let root = t.root();
    assert!(c.left_of(root) < 2 * t.len() as u64);
    assert!(c.right_of(root) > (t.len() * t.len() / 8) as u64);
}

#[test]
fn zz_favors_heavy_paths() {
    // On zig-zags all decomposition sets are Θ(n²), but the heavy-path
    // cost multiplies |A| by n while Zhang multiplies the quadratic
    // left/right counts together — a full polynomial degree apart.
    let t = Shape::ZigZag.generate(401, 0);
    let c = DecompCounts::new(&t);
    let n = t.len() as u64;
    assert!(c.left_of(t.root()) > n * n / 16);
    assert!(c.right_of(t.root()) > n * n / 16);
    let zl = rted_core::Algorithm::ZhangL.predicted_subproblems(&t, &t);
    let dh = rted_core::Algorithm::DemaineH.predicted_subproblems(&t, &t);
    assert!(dh * 20 < zl, "Demaine {dh} vs Zhang {zl}");
    // A pure chain, by contrast, has a linear full decomposition.
    let c2 = {
        let mut s = String::from("{x}");
        for _ in 0..200 {
            s = format!("{{x{s}}}");
        }
        DecompCounts::new(&rted_tree::parse_bracket(&s).unwrap())
    };
    assert_eq!(c2.full[c2.full.len() - 1], 201);
}

#[test]
fn fb_decompositions_are_quasilinear() {
    // On complete binary trees the L/R decompositions are Θ(n log n).
    let t = Shape::FullBinary.generate(1023, 0);
    let c = DecompCounts::new(&t);
    let n = t.len() as u64;
    let nlogn = n * 11; // log2(1023) ≈ 10
    assert!(c.left_of(t.root()) <= nlogn);
    // The full decomposition is quadratic: Demaine pays for it.
    assert!(c.full_of(t.root()) > n * n / 8);
}

#[test]
fn random_tree_capacity_assert() {
    let mut rng = StdRng::seed_from_u64(0);
    // depth 15, fanout 6 supports far more than 5000 nodes.
    let t = random_tree(5000, 15, 6, &mut rng);
    assert_eq!(t.len(), 5000);
    let p = profile(&t);
    assert!(p.depth <= 15 && p.max_fanout <= 6);
}

#[test]
fn realworld_simulators_deterministic() {
    for f in [swissprot_like, treebank_like, treefam_like] {
        let a = f(200, 9);
        let b = f(200, 9);
        assert_eq!(
            rted_tree::to_bracket(&a.map_labels(|l| l.to_string())),
            rted_tree::to_bracket(&b.map_labels(|l| l.to_string()))
        );
    }
}

#[test]
fn treefam_is_deep_and_binary() {
    // Phylogenies: fanout ≤ 2 with long chains; heavy paths matter.
    let t = treefam_like(1000, 5);
    let p = profile(&t);
    assert!(p.max_fanout <= 2);
    assert!(p.depth >= 15, "depth {}", p.depth);
    // Heavy path decomposition beats L/R on these shapes more often than
    // not — check the optimal strategy uses heavy paths somewhere.
    let s = rted_core::optimal_strategy(&t, &t);
    let uses_heavy = t.nodes().any(|v| s.choice(v, v).kind == PathKind::Heavy);
    assert!(uses_heavy);
}

#[test]
fn shapes_cover_strategy_space() {
    // Across the six shapes, the optimal strategy must exercise all three
    // path kinds (otherwise the generators don't span the LRH space).
    let mut kinds_seen = std::collections::BTreeSet::new();
    for shape in Shape::ALL {
        let t = shape.generate(120, 3);
        let s = rted_core::optimal_strategy(&t, &t);
        for v in t.nodes() {
            kinds_seen.insert(format!("{}", s.choice(v, t.root()).kind));
        }
    }
    assert_eq!(kinds_seen.len(), 3, "saw {kinds_seen:?}");
}

#[test]
fn profiles_match_paper_targets() {
    // Averages over a small sample; generous tolerances (these are
    // simulators, not replicas).
    let sp: Vec<_> = (0..10).map(|s| profile(&swissprot_like(187, s))).collect();
    assert!(sp.iter().all(|p| p.depth <= 4));
    assert!(sp.iter().map(|p| p.max_fanout).max().unwrap() >= 20);

    let tb: Vec<_> = (0..10).map(|s| profile(&treebank_like(68, s))).collect();
    let avg_depth: f64 = tb.iter().map(|p| p.depth as f64).sum::<f64>() / 10.0;
    assert!((6.0..=35.0).contains(&avg_depth), "avg depth {avg_depth}");

    let tf: Vec<_> = (0..10).map(|s| profile(&treefam_like(95, s))).collect();
    assert!(tf.iter().all(|p| p.max_fanout <= 2));
}
