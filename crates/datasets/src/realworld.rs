//! Shape-matched simulators for the paper's three real-world datasets.
//!
//! The originals (SwissProt, TreeBank, TreeFam exports from 2011) are not
//! redistributable, so we substitute generators that match the shape
//! statistics §8 reports. The TED algorithms read labels only through
//! equality, so tree *shape* (size, depth, fanout, balance) is the entire
//! behaviourally relevant signal for subproblem counts and runtimes:
//!
//! | dataset   | paper statistics                                     |
//! |-----------|------------------------------------------------------|
//! | SwissProt | 50 000 flat XML trees: max depth 4, max fanout 346, avg size 187 |
//! | TreeBank  | 56 385 deep small syntax trees: avg depth 10.4, max 35, avg size 68 |
//! | TreeFam   | 16 138 phylogenies: avg depth 14, max 158, avg fanout 2, avg size 95, sizes up to thousands |

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rted_tree::Tree;

use crate::shapes::relabel_random;

/// A SwissProt-like tree: depth ≤ 4, wide fan-out near the root, roughly
/// `target_size` nodes. Structure: root → entries → fields → values.
pub fn swissprot_like(target_size: usize, seed: u64) -> Tree<u32> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5155_0001);
    let n = target_size.max(2);
    let mut children: Vec<Vec<u32>> = vec![Vec::new()];
    let mut depth = vec![0u32; 1];
    // Level-biased attachment: favour shallow parents heavily so the tree
    // stays flat with large fanouts, hard-capped at depth 3 below the root.
    let mut count = 1usize;
    let mut by_level: Vec<Vec<u32>> = vec![vec![0], vec![], vec![], vec![]];
    while count < n {
        // Choose a level: most mass on levels 0–2 (yields depth ≤ 4 trees
        // with the bulk of nodes at depth 2–3, like flat XML records).
        let lvl = match rng.random_range(0..100) {
            0..=4 => 0usize,
            5..=39 => 1,
            _ => 2,
        };
        let lvl = lvl.min(by_level.len() - 2);
        let parents = &by_level[lvl];
        if parents.is_empty() {
            // Fall back to the root until the level fills up.
            let id = children.len() as u32;
            children.push(Vec::new());
            children[0].push(id);
            depth.push(1);
            by_level[1].push(id);
            count += 1;
            continue;
        }
        let p = parents[rng.random_range(0..parents.len())];
        let id = children.len() as u32;
        children.push(Vec::new());
        children[p as usize].push(id);
        let d = depth[p as usize] + 1;
        depth.push(d);
        if (d as usize) < by_level.len() - 1 {
            by_level[d as usize].push(id);
        }
        count += 1;
    }
    finish(children, target_size, seed)
}

/// A TreeBank-like tree: small, deep and narrow, like natural-language
/// syntax trees (unary/binary productions dominate).
pub fn treebank_like(target_size: usize, seed: u64) -> Tree<u32> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7b7b_0002);
    let n = target_size.max(1);
    let mut children: Vec<Vec<u32>> = vec![Vec::new()];
    let mut depth = vec![0u32; 1];
    // Grammar-style growth: expand a frontier; each expansion adds 1–3
    // children with probabilities biased to 1–2, bounded by depth 35.
    let mut frontier: Vec<u32> = vec![0];
    let mut count = 1usize;
    while count < n && !frontier.is_empty() {
        let idx = rng.random_range(0..frontier.len());
        let p = frontier.swap_remove(idx);
        let d = depth[p as usize];
        if d >= 34 {
            continue;
        }
        let k = match rng.random_range(0..10) {
            0..=4 => 1usize, // unary chains make trees deep
            5..=8 => 2,
            _ => 3,
        };
        let k = k.min(n - count);
        for _ in 0..k {
            let id = children.len() as u32;
            children.push(Vec::new());
            children[p as usize].push(id);
            depth.push(d + 1);
            frontier.push(id);
            count += 1;
        }
    }
    // If the frontier died early (depth bound), pad under the root.
    while count < n {
        let id = children.len() as u32;
        children.push(Vec::new());
        children[0].push(id);
        depth.push(1);
        count += 1;
    }
    finish(children, target_size, seed)
}

/// A TreeFam-like phylogeny: an ordered binary tree over `target_size`
/// total nodes with uniformly random splits — uniform splits produce the
/// unbalanced, deep topologies (long chains) typical of gene trees.
pub fn treefam_like(target_size: usize, seed: u64) -> Tree<u32> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7f7f_0003);
    let n = target_size.max(1);
    let mut children: Vec<Vec<u32>> = vec![Vec::new()];
    // Recursive splitting, iteratively: (node, size) where size counts the
    // node itself plus its future descendants.
    let mut stack: Vec<(u32, usize)> = vec![(0, n)];
    while let Some((v, size)) = stack.pop() {
        if size <= 1 {
            continue;
        }
        if size == 2 {
            let id = children.len() as u32;
            children.push(Vec::new());
            children[v as usize].push(id);
            continue;
        }
        // Binary split of the remaining size - 1 nodes.
        let rest = size - 1;
        let left = rng.random_range(1..rest);
        let l = children.len() as u32;
        children.push(Vec::new());
        children[v as usize].push(l);
        let r = children.len() as u32;
        children.push(Vec::new());
        children[v as usize].push(r);
        stack.push((l, left));
        stack.push((r, rest - left));
    }
    finish(children, target_size, seed)
}

fn finish(children: Vec<Vec<u32>>, _target: usize, seed: u64) -> Tree<u32> {
    // Convert adjacency (root id 0) to postorder arena, then label.
    let n = children.len();
    let mut post_of = vec![u32::MAX; n];
    let mut order: Vec<u32> = Vec::with_capacity(n);
    let mut stack: Vec<(u32, usize)> = vec![(0, 0)];
    while let Some(&mut (v, ref mut i)) = stack.last_mut() {
        if *i < children[v as usize].len() {
            let c = children[v as usize][*i];
            *i += 1;
            stack.push((c, 0));
        } else {
            post_of[v as usize] = order.len() as u32;
            order.push(v);
            stack.pop();
        }
    }
    let post_children: Vec<Vec<u32>> = order
        .iter()
        .map(|&v| {
            children[v as usize]
                .iter()
                .map(|&c| post_of[c as usize])
                .collect()
        })
        .collect();
    let t = Tree::from_postorder(vec![0u32; n], post_children);
    relabel_random(&t, 64, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shapes::profile;

    #[test]
    fn swissprot_profile() {
        let mut sizes = 0usize;
        for seed in 0..20 {
            let t = swissprot_like(187, seed);
            let p = profile(&t);
            assert!(p.depth <= 4, "depth {}", p.depth);
            assert!(p.size >= 150);
            sizes += p.size;
        }
        assert!(sizes / 20 >= 150);
    }

    #[test]
    fn treebank_profile() {
        let mut depth_sum = 0f64;
        for seed in 0..30 {
            let t = treebank_like(68, seed);
            let p = profile(&t);
            assert!(p.depth <= 35);
            assert_eq!(p.size, 68);
            depth_sum += p.depth as f64;
        }
        let avg_max_depth = depth_sum / 30.0;
        // Deep for their size: paper reports avg node depth 10.4 over the
        // dataset; our max-depth average should be in that region.
        assert!(avg_max_depth > 7.0, "avg max depth {avg_max_depth}");
    }

    #[test]
    fn treefam_profile() {
        for seed in 0..10 {
            let t = treefam_like(500, seed);
            let p = profile(&t);
            assert_eq!(p.size, 500);
            assert!(p.max_fanout <= 2, "fanout {}", p.max_fanout);
            assert!(p.depth >= 10, "too balanced: depth {}", p.depth);
        }
    }

    #[test]
    fn exact_size_control_for_partitioned_sampling() {
        // Table 2 partitions TreeFam by size; generator must hit targets.
        for target in [100, 499, 750, 1500] {
            let t = treefam_like(target, 1);
            assert_eq!(t.len(), target);
        }
    }
}
