//! Synthetic tree shapes of the paper's evaluation (Fig. 7).
//!
//! The shapes are adversarial for specific decomposition strategies:
//!
//! * **left branch (LB)** — a left-leaning caterpillar: every spine node
//!   has the next spine node as its *leftmost* child and a leaf to the
//!   right. Zhang-L is optimal; Zhang-R degenerates (Theorem 2's Ω(n³)
//!   instance pairs LB with RB);
//! * **right branch (RB)** — the mirror image; Zhang-R is optimal;
//! * **full binary (FB)** — both Zhang variants are optimal, Demaine-H
//!   computes asymptotically more subproblems (its `∆I` pays for the full
//!   decomposition of the second tree);
//! * **zig-zag (ZZ)** — spine alternating sides; Demaine-H is optimal;
//! * **mixed (MX)** — quarters of all four shapes under one root: no fixed
//!   strategy is good everywhere in the tree;
//! * **random** — random attachment with the paper's bounds (max depth 15,
//!   max fanout 6).
//!
//! All generators are deterministic in `(n, seed)` and produce exactly `n`
//! nodes.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rted_tree::Tree;

/// Default label alphabet size: small enough that equal labels are common,
/// matching the paper's synthetic setup where renames are frequently free.
pub const DEFAULT_ALPHABET: u32 = 8;

/// The six synthetic shapes of Fig. 7 (plus bounded-random).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Shape {
    /// Left-leaning caterpillar (`LB`).
    LeftBranch,
    /// Right-leaning caterpillar (`RB`).
    RightBranch,
    /// Complete binary tree (`FB`).
    FullBinary,
    /// Alternating caterpillar (`ZZ`).
    ZigZag,
    /// Quarters of LB/RB/FB/ZZ under a common root (`MX`).
    Mixed,
    /// Random attachment, depth ≤ 15, fanout ≤ 6 (`Random`).
    Random,
}

impl Shape {
    /// All shapes, in the paper's order.
    pub const ALL: [Shape; 6] = [
        Shape::LeftBranch,
        Shape::RightBranch,
        Shape::FullBinary,
        Shape::ZigZag,
        Shape::Random,
        Shape::Mixed,
    ];

    /// Short name used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Shape::LeftBranch => "LB",
            Shape::RightBranch => "RB",
            Shape::FullBinary => "FB",
            Shape::ZigZag => "ZZ",
            Shape::Mixed => "MX",
            Shape::Random => "Random",
        }
    }

    /// Generates a tree with exactly `n` nodes (`n ≥ 1`); labels are drawn
    /// from [`DEFAULT_ALPHABET`] with the given `seed`.
    pub fn generate(self, n: usize, seed: u64) -> Tree<u32> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_0000);
        let t = self.generate_structure(n, &mut rng);
        relabel_random(&t, DEFAULT_ALPHABET, seed)
    }

    /// Generates only the structure (labels all zero).
    pub fn generate_structure(self, n: usize, rng: &mut StdRng) -> Tree<u32> {
        assert!(n >= 1);
        match self {
            Shape::LeftBranch => branch_tree(n, false),
            Shape::RightBranch => branch_tree(n, true),
            Shape::FullBinary => complete_binary(n),
            Shape::ZigZag => zigzag(n),
            Shape::Mixed => mixed(n),
            Shape::Random => random_tree(n, 15, 6, rng),
        }
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Flat adjacency under construction; converted to a postorder arena once.
struct Adj {
    children: Vec<Vec<u32>>,
}

impl Adj {
    fn with_root() -> Adj {
        Adj {
            children: vec![Vec::new()],
        }
    }

    fn add_child(&mut self, parent: u32) -> u32 {
        let id = self.children.len() as u32;
        self.children.push(Vec::new());
        self.children[parent as usize].push(id);
        id
    }

    /// Converts to a [`Tree`] (root = id 0), labels all zero.
    fn into_tree(self) -> Tree<u32> {
        let n = self.children.len();
        // Iterative postorder numbering.
        let mut post_of = vec![u32::MAX; n];
        let mut order: Vec<u32> = Vec::with_capacity(n);
        let mut stack: Vec<(u32, usize)> = vec![(0, 0)];
        while let Some(&mut (v, ref mut i)) = stack.last_mut() {
            if *i < self.children[v as usize].len() {
                let c = self.children[v as usize][*i];
                *i += 1;
                stack.push((c, 0));
            } else {
                post_of[v as usize] = order.len() as u32;
                order.push(v);
                stack.pop();
            }
        }
        let labels = vec![0u32; n];
        let children: Vec<Vec<u32>> = order
            .iter()
            .map(|&v| {
                self.children[v as usize]
                    .iter()
                    .map(|&c| post_of[c as usize])
                    .collect()
            })
            .collect();
        Tree::from_postorder(labels, children)
    }
}

/// Caterpillar: spine node has `[spine, leaf]` children (left branch) or
/// `[leaf, spine]` (right branch).
fn branch_tree(n: usize, right: bool) -> Tree<u32> {
    let mut adj = Adj::with_root();
    let mut remaining = n - 1;
    let mut spine = 0u32;
    while remaining > 0 {
        if remaining == 1 {
            adj.add_child(spine);
            remaining -= 1;
        } else {
            // Add spine child and leaf in shape order.
            if right {
                adj.add_child(spine);
                spine = adj.add_child(spine);
            } else {
                let next = adj.add_child(spine);
                adj.add_child(spine);
                spine = next;
            }
            remaining -= 2;
        }
    }
    adj.into_tree()
}

/// Complete binary tree in heap layout (every level full except the last,
/// filled left to right).
fn complete_binary(n: usize) -> Tree<u32> {
    let mut adj = Adj {
        children: (0..n).map(|_| Vec::new()).collect(),
    };
    for i in 0..n {
        for c in [2 * i + 1, 2 * i + 2] {
            if c < n {
                adj.children[i].push(c as u32);
            }
        }
    }
    adj.into_tree()
}

/// Alternating caterpillar: the spine child alternates between the left
/// and right position at successive depths.
fn zigzag(n: usize) -> Tree<u32> {
    let mut adj = Adj::with_root();
    let mut remaining = n - 1;
    let mut spine = 0u32;
    let mut zig = false;
    while remaining > 0 {
        if remaining == 1 {
            adj.add_child(spine);
            remaining -= 1;
        } else {
            if zig {
                adj.add_child(spine);
                spine = adj.add_child(spine);
            } else {
                let next = adj.add_child(spine);
                adj.add_child(spine);
                spine = next;
            }
            zig = !zig;
            remaining -= 2;
        }
    }
    adj.into_tree()
}

/// Quarters of LB / RB / FB / ZZ under a common root.
fn mixed(n: usize) -> Tree<u32> {
    if n <= 5 {
        return branch_tree(n, false);
    }
    let part = (n - 1) / 4;
    let sizes = [part, part, part, n - 1 - 3 * part];
    let subs = [
        branch_tree(sizes[0].max(1), false),
        branch_tree(sizes[1].max(1), true),
        complete_binary(sizes[2].max(1)),
        zigzag(sizes[3].max(1)),
    ];
    // Graft the four subtrees under a new root.
    let mut labels: Vec<u32> = Vec::with_capacity(n);
    let mut children: Vec<Vec<u32>> = Vec::with_capacity(n);
    let mut offsets = Vec::new();
    let mut off = 0u32;
    for s in &subs {
        offsets.push(off);
        for v in s.nodes() {
            labels.push(0);
            children.push(s.children(v).map(|c| c.0 + off).collect());
        }
        off += s.len() as u32;
    }
    labels.push(0);
    children.push(
        subs.iter()
            .zip(&offsets)
            .map(|(s, &o)| o + s.root().0)
            .collect(),
    );
    Tree::from_postorder(labels, children)
}

/// Random attachment tree: each new node is attached to a uniformly random
/// existing node that still has depth < `max_depth` and fanout <
/// `max_fanout` (the paper's bounds are 15 and 6).
pub fn random_tree(n: usize, max_depth: u32, max_fanout: usize, rng: &mut StdRng) -> Tree<u32> {
    let mut adj = Adj::with_root();
    let mut depth = vec![0u32; 1];
    // Open slots: node ids eligible for more children.
    let mut open: Vec<u32> = vec![0];
    for _ in 1..n {
        let slot = rng.random_range(0..open.len());
        let parent = open[slot];
        let id = adj.add_child(parent);
        depth.push(depth[parent as usize] + 1);
        if adj.children[parent as usize].len() >= max_fanout {
            open.swap_remove(slot);
        }
        if depth[id as usize] < max_depth {
            open.push(id);
        }
        assert!(
            !open.is_empty(),
            "tree capacity exhausted: raise depth/fanout bounds"
        );
    }
    adj.into_tree()
}

/// Returns a copy of `tree` with labels drawn uniformly from
/// `[0, alphabet)`, deterministic in `seed`.
pub fn relabel_random(tree: &Tree<u32>, alphabet: u32, seed: u64) -> Tree<u32> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd_1234);
    tree.map_labels(|_| rng.random_range(0..alphabet))
}

/// Applies `k` random edits (relabels) to produce a near-duplicate of
/// `tree` — used to build similarity-join inputs with known-close pairs.
pub fn perturb_labels(tree: &Tree<u32>, k: usize, alphabet: u32, seed: u64) -> Tree<u32> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9);
    let mut labels: Vec<u32> = tree.nodes().map(|v| *tree.label(v)).collect();
    for _ in 0..k {
        let i = rng.random_range(0..labels.len());
        labels[i] = rng.random_range(0..alphabet);
    }
    let children: Vec<Vec<u32>> = tree
        .nodes()
        .map(|v| tree.children(v).map(|c| c.0).collect())
        .collect();
    Tree::from_postorder(labels, children)
}

/// Structural statistics of a tree (used to validate the generators and to
/// report dataset profiles).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeProfile {
    /// Node count.
    pub size: usize,
    /// Maximum depth.
    pub depth: u32,
    /// Average node depth.
    pub avg_depth: f64,
    /// Maximum fanout.
    pub max_fanout: usize,
    /// Number of leaves.
    pub leaves: usize,
}

/// Computes the [`TreeProfile`] of a tree.
pub fn profile<L>(tree: &Tree<L>) -> TreeProfile {
    let n = tree.len();
    let total_depth: u64 = tree.nodes().map(|v| tree.depth(v) as u64).sum();
    TreeProfile {
        size: n,
        depth: tree.max_depth(),
        avg_depth: total_depth as f64 / n as f64,
        max_fanout: tree.max_fanout(),
        leaves: tree.leaf_count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_sizes() {
        for shape in Shape::ALL {
            for n in [1, 2, 3, 5, 10, 37, 100, 501] {
                let t = shape.generate(n, 42);
                assert_eq!(t.len(), n, "{shape} size {n}");
            }
        }
    }

    #[test]
    fn deterministic_in_seed() {
        for shape in Shape::ALL {
            let a = shape.generate(64, 7);
            let b = shape.generate(64, 7);
            assert_eq!(
                rted_tree::to_bracket(&a.map_labels(|l| l.to_string())),
                rted_tree::to_bracket(&b.map_labels(|l| l.to_string()))
            );
        }
    }

    #[test]
    fn left_branch_structure() {
        // Odd n: every internal node has exactly two children; leftmost
        // child continues the spine; (n+1)/2 leaves; depth (n-1)/2.
        let t = Shape::LeftBranch.generate(21, 0);
        assert_eq!(t.leaf_count(), 11);
        assert_eq!(t.max_depth(), 10);
        // Leftmost leaf is at max depth: the spine is the left path.
        assert_eq!(t.depth(t.lld(t.root())), t.max_depth());
    }

    #[test]
    fn right_branch_is_mirror_of_left() {
        let l = Shape::LeftBranch.generate(33, 0);
        let r = Shape::RightBranch.generate(33, 0);
        let lm = l.mirrored();
        for v in lm.nodes() {
            assert_eq!(lm.degree(v), r.degree(v));
            assert_eq!(lm.size(v), r.size(v));
        }
    }

    #[test]
    fn full_binary_depth() {
        let t = Shape::FullBinary.generate(127, 0);
        assert_eq!(t.max_depth(), 6);
        assert_eq!(t.leaf_count(), 64);
    }

    #[test]
    fn zigzag_alternates() {
        let t = Shape::ZigZag.generate(41, 0);
        assert_eq!(t.max_depth(), 20);
        // Each spine node has two children, one a leaf.
        let p = profile(&t);
        assert_eq!(p.max_fanout, 2);
    }

    #[test]
    fn random_respects_bounds() {
        for seed in 0..5 {
            let t = Shape::Random.generate(400, seed);
            let p = profile(&t);
            assert!(p.depth <= 15, "depth {}", p.depth);
            assert!(p.max_fanout <= 6, "fanout {}", p.max_fanout);
        }
    }

    #[test]
    fn mixed_contains_four_parts() {
        let t = Shape::Mixed.generate(101, 0);
        assert_eq!(t.degree(t.root()), 4);
    }

    #[test]
    fn perturbed_tree_same_structure() {
        let t = Shape::Random.generate(50, 3);
        let p = perturb_labels(&t, 5, DEFAULT_ALPHABET, 9);
        assert_eq!(p.len(), t.len());
        for v in t.nodes() {
            assert_eq!(t.degree(v), p.degree(v));
        }
    }
}
