//! A minimal XML element-tree parser.
//!
//! Parses just enough XML to turn documents into ordered labeled trees for
//! edit distance comparison (the paper's motivating application): element
//! nesting and tag names, with text content becoming leaf nodes. No
//! namespaces, DTDs or entities — this is a workload adapter, not an XML
//! library.

use rted_tree::build::BuildNode;
use rted_tree::Tree;

/// Error from [`parse_xml`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// Byte offset of the error.
    pub position: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for XmlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "xml error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for XmlError {}

fn err<T>(position: usize, message: impl Into<String>) -> Result<T, XmlError> {
    Err(XmlError {
        position,
        message: message.into(),
    })
}

/// Parses an XML document into a label tree: element nodes are labeled with
/// their tag name, non-whitespace text runs become leaf nodes labeled with
/// the trimmed text. Attributes are ignored.
pub fn parse_xml(input: &str) -> Result<Tree<String>, XmlError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let mut stack: Vec<BuildNode<String>> = Vec::new();
    let mut root: Option<BuildNode<String>> = None;

    let flush_text = |stack: &mut Vec<BuildNode<String>>, text: &mut String| {
        let trimmed = text.trim();
        if !trimmed.is_empty() {
            if let Some(top) = stack.last_mut() {
                top.children.push(BuildNode::leaf(trimmed.to_string()));
            }
        }
        text.clear();
    };

    let mut text = String::new();
    while pos < bytes.len() {
        if bytes[pos] == b'<' {
            // Comments / processing instructions / declarations: skip.
            if input[pos..].starts_with("<!--") {
                match input[pos..].find("-->") {
                    Some(end) => {
                        pos += end + 3;
                        continue;
                    }
                    None => return err(pos, "unterminated comment"),
                }
            }
            if input[pos..].starts_with("<?") || input[pos..].starts_with("<!") {
                match input[pos..].find('>') {
                    Some(end) => {
                        pos += end + 1;
                        continue;
                    }
                    None => return err(pos, "unterminated declaration"),
                }
            }
            flush_text(&mut stack, &mut text);
            let close = bytes.get(pos + 1) == Some(&b'/');
            let end = match input[pos..].find('>') {
                Some(e) => pos + e,
                None => return err(pos, "unterminated tag"),
            };
            let self_closing = bytes[end - 1] == b'/';
            let inner_start = pos + if close { 2 } else { 1 };
            let inner_end = if self_closing && !close { end - 1 } else { end };
            let inner = input[inner_start..inner_end].trim();
            let name = inner.split_whitespace().next().unwrap_or("");
            if name.is_empty() {
                return err(pos, "empty tag name");
            }
            if close {
                let node = match stack.pop() {
                    Some(n) => n,
                    None => return err(pos, format!("unmatched closing tag </{name}>")),
                };
                if node.label != name {
                    return err(pos, format!("expected </{}>, found </{name}>", node.label));
                }
                match stack.last_mut() {
                    Some(parent) => parent.children.push(node),
                    None => {
                        if root.is_some() {
                            return err(pos, "multiple root elements");
                        }
                        root = Some(node);
                    }
                }
            } else if self_closing {
                let node = BuildNode::leaf(name.to_string());
                match stack.last_mut() {
                    Some(parent) => parent.children.push(node),
                    None => {
                        if root.is_some() {
                            return err(pos, "multiple root elements");
                        }
                        root = Some(node);
                    }
                }
            } else {
                stack.push(BuildNode::leaf(name.to_string()));
            }
            pos = end + 1;
        } else {
            text.push(bytes[pos] as char);
            pos += 1;
        }
    }
    if !stack.is_empty() {
        return err(
            pos,
            format!("unclosed element <{}>", stack.last().unwrap().label),
        );
    }
    match root {
        Some(r) => Ok(r.build()),
        None => err(pos, "no root element"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_document() {
        let t = parse_xml("<a><b/><c>hello</c></a>").unwrap();
        assert_eq!(t.len(), 4);
        assert_eq!(t.label(t.root()), "a");
        // c's child is the text leaf.
        let c = t.children(t.root()).last().unwrap();
        assert_eq!(t.label(c), "c");
        assert_eq!(t.label(t.children(c).next().unwrap()), "hello");
    }

    #[test]
    fn attributes_ignored() {
        let t = parse_xml(r#"<a x="1"><b y="2"/></a>"#).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.label(t.root()), "a");
    }

    #[test]
    fn comments_and_decls_skipped() {
        let t = parse_xml("<?xml version=\"1.0\"?><!-- hi --><a><b/></a>").unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn mismatched_tags_error() {
        assert!(parse_xml("<a><b></a></b>").is_err());
        assert!(parse_xml("<a>").is_err());
        assert!(parse_xml("text only").is_err());
        assert!(parse_xml("<a/><b/>").is_err());
    }

    #[test]
    fn whitespace_text_dropped() {
        let t = parse_xml("<a>\n  <b/>\n</a>").unwrap();
        assert_eq!(t.len(), 2);
    }
}
