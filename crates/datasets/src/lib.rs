//! Workload generators for the RTED reproduction.
//!
//! * [`shapes`] — the six synthetic shapes of the paper's evaluation
//!   (Fig. 7): left branch, right branch, full binary, zig-zag, mixed, and
//!   bounded random trees;
//! * [`realworld`] — shape-matched simulators for the three real-world
//!   datasets (SwissProt, TreeBank, TreeFam), substituting for the
//!   originals which are not redistributable (see DESIGN.md: the
//!   algorithms are label-agnostic beyond equality, so shape statistics
//!   are the behaviourally relevant property);
//! * [`xml`] — a small XML element parser producing label trees, used by
//!   the `xml_diff` example.

pub mod realworld;
pub mod shapes;
pub mod xml;

pub use shapes::Shape;
