//! Candidate generation: the linear size-window scan versus metric
//! (vantage-point tree) traversal, across query selectivities.
//!
//! The corpus is the metric tree's target workload: clusters of
//! near-duplicates with **uniform tree size** over the small default
//! alphabet, so the size window admits everything and the label-based
//! bounds are weak. Three regimes emerge, all printed as counters next
//! to the timings:
//!
//! * **tiny τ** — the pipeline bounds already prune nearly every
//!   candidate; the linear scan verifies a handful and the metric tree's
//!   routing distances are pure overhead;
//! * **the bound-blind selective band** — τ exceeds what the cheap
//!   bounds can prove, yet only one cluster actually matches: the linear
//!   scan must verify the *whole corpus* while triangle-inequality
//!   routing settles everything with a few vantage distances. This is
//!   the regime the subsystem exists for, and the advantage (fewer exact
//!   TED computations at a τ that is still small relative to the corpus
//!   spread) is asserted so CI fails if it ever regresses;
//! * **τ beyond the spread** — everything matches and must be verified
//!   either way.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rted_datasets::shapes::{perturb_labels, Shape, DEFAULT_ALPHABET};
use rted_index::TreeIndex;
use rted_tree::Tree;
use std::hint::black_box;

/// Clusters of label-perturbed near-duplicates, all of one size: the
/// size stage is blind, histograms nearly agree, exact distances are
/// small inside a cluster and large across.
fn clustered_corpus(clusters: usize, per_cluster: usize, tree_size: usize) -> Vec<Tree<u32>> {
    let mut trees = Vec::new();
    for c in 0..clusters {
        let base = Shape::Random.generate(tree_size, c as u64);
        trees.push(base.clone());
        for j in 1..per_cluster {
            trees.push(perturb_labels(
                &base,
                1 + j % 3,
                DEFAULT_ALPHABET,
                (c * 100 + j) as u64,
            ));
        }
    }
    trees
}

fn candidate_gen(c: &mut Criterion) {
    let mut group = c.benchmark_group("candidate_gen");
    group.sample_size(10);
    let trees = clustered_corpus(8, 8, 36);
    let query = perturb_labels(&trees[0], 1, DEFAULT_ALPHABET, 999);

    let linear = TreeIndex::build(trees.iter().cloned());
    let metric = TreeIndex::build(trees.iter().cloned()).with_metric_tree(true);
    // Pay the one-time vantage-point build outside every timing loop (it
    // is amortized over the query stream in production).
    let _ = metric.range(&query, 2.0);
    let build_ted = metric.metric_snapshot().build_ted;
    eprintln!(
        "candidate_gen: corpus {} trees, vp build spent {build_ted} exact distances (one-time)",
        trees.len()
    );

    // τ = 24 is the asserted bound-blind selective point: far below the
    // inter-cluster spread (only the query's own cluster matches) yet
    // beyond the cheap bounds' reach (the linear scan verifies the whole
    // corpus).
    let asserted_tau = 24.0;
    let mut asserted_counts = None;
    for tau in [3.0, 6.0, 12.0, 24.0] {
        let lin = linear.range(&query, tau);
        let met = metric.range(&query, tau);
        assert_eq!(lin.neighbors, met.neighbors, "paths disagree at tau {tau}");
        eprintln!(
            "candidate_gen: tau={tau:<4} matches={:<3} linear_exact={:<3} metric_exact={:<3} \
             (visited {}, bound-skipped {})",
            lin.neighbors.len(),
            lin.stats.verified,
            met.stats.verified,
            met.stats.metric.nodes_visited,
            met.stats.metric.routing_skipped,
        );
        if tau == asserted_tau {
            // Still selective: most of the corpus must NOT match, or the
            // comparison would be vacuous.
            assert!(lin.neighbors.len() * 4 < trees.len());
            asserted_counts = Some((lin.stats.verified, met.stats.verified));
        }
        group.bench_with_input(BenchmarkId::new("range_linear", tau), &tau, |b, &tau| {
            b.iter(|| black_box(linear.range(&query, tau).neighbors.len()));
        });
        group.bench_with_input(BenchmarkId::new("range_metric", tau), &tau, |b, &tau| {
            b.iter(|| black_box(metric.range(&query, tau).neighbors.len()));
        });
    }
    // The bound-blind selective band is the metric tree's reason to
    // exist: it must beat the size-window path on exact computations.
    let (lin_exact, met_exact) = asserted_counts.expect("asserted tau benched");
    assert!(
        met_exact < lin_exact,
        "metric path verified {met_exact} exactly, linear {lin_exact} — \
         the VP tree no longer pays off in the selective band"
    );

    for k in [1usize, 5] {
        group.bench_with_input(BenchmarkId::new("topk_linear", k), &k, |b, &k| {
            b.iter(|| black_box(linear.top_k(&query, k).neighbors.len()));
        });
        group.bench_with_input(BenchmarkId::new("topk_metric", k), &k, |b, &k| {
            b.iter(|| black_box(metric.top_k(&query, k).neighbors.len()));
        });
    }

    // Join shows the same regime split: at tiny τ the pipeline + sorted
    // early-break already dominates and per-tree routing is overhead; in
    // the bound-blind band the metric path wins.
    for tau in [4.0, 24.0] {
        group.bench_with_input(BenchmarkId::new("join_linear", tau), &tau, |b, &tau| {
            b.iter(|| black_box(linear.join(tau).matches.len()));
        });
        group.bench_with_input(BenchmarkId::new("join_metric", tau), &tau, |b, &tau| {
            b.iter(|| black_box(metric.join(tau).matches.len()));
        });
    }

    group.finish();
}

criterion_group!(benches, candidate_gen);
criterion_main!(benches);
