//! Budget-aware verification: the band-limited `ted_at_most` kernel
//! versus the full RTED computation, per pair and end-to-end.
//!
//! Two claims are measured — and the deterministic halves of them
//! asserted, so CI fails if the kernel stops paying for itself:
//!
//! * **per pair, selective regime** — on distant same-size trees with a
//!   tight budget, the kernel certifies `exceeds` from the band frontier
//!   after a fraction of the DP cells the full computation fills (the
//!   ratio is asserted at ≥2×, the timing recorded in the JSON);
//! * **end-to-end** — a range/top-k query through the default
//!   [`TreeIndex`] (bounded verifier) returns byte-identical neighbors
//!   to the pure exact-RTED verifier while computing strictly fewer
//!   subproblems whenever the threshold leaves non-matching survivors.
//!
//! The corpus is the `candidate_gen` workload: uniform-size clusters of
//! near-duplicates, so the cheap bounds are blind and every surviving
//! candidate reaches the verifier — exactly where the budget matters.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rted_core::{ted_at_most_run, Algorithm, BoundedResult, UnitCost, Workspace};
use rted_datasets::shapes::{perturb_labels, Shape, DEFAULT_ALPHABET};
use rted_index::{AlgorithmVerifier, TreeIndex};
use rted_tree::Tree;
use std::hint::black_box;

/// Clusters of label-perturbed near-duplicates, all of one size — see
/// `candidate_gen.rs` for why this shape defeats the filter pipeline.
fn clustered_corpus(clusters: usize, per_cluster: usize, tree_size: usize) -> Vec<Tree<u32>> {
    let mut trees = Vec::new();
    for c in 0..clusters {
        let base = Shape::Random.generate(tree_size, c as u64);
        trees.push(base.clone());
        for j in 1..per_cluster {
            trees.push(perturb_labels(
                &base,
                1 + j % 3,
                DEFAULT_ALPHABET,
                (c * 100 + j) as u64,
            ));
        }
    }
    trees
}

fn bounded_verify(c: &mut Criterion) {
    let mut group = c.benchmark_group("bounded_verify");
    group.sample_size(10);
    let cm = UnitCost;
    let mut ws = Workspace::new();

    // Per-pair: independently generated random trees of equal size are
    // far apart, so τ = 2 is deeply selective and the frontier abandons
    // within the first few sheets.
    for n in [32usize, 64, 128] {
        let f = Shape::Random.generate(n, 11);
        let g = Shape::Random.generate(n, 1_000_000 + n as u64);
        let exact = Algorithm::Rted.run_in(&f, &g, &cm, &mut ws);
        let tight = ted_at_most_run(&f, &g, &cm, 2.0, &mut ws);
        assert!(
            matches!(tight.result, BoundedResult::Exceeds(_)),
            "independently random size-{n} trees must exceed tau = 2"
        );
        assert!(tight.early_exit);
        assert!(
            tight.subproblems * 2 <= exact.subproblems,
            "exceeds path must be >=2x cheaper in DP cells at n = {n}: \
             bounded {} vs exact {}",
            tight.subproblems,
            exact.subproblems
        );
        // A met budget must stay exact: the kernel is a verifier, not an
        // approximation.
        let loose = ted_at_most_run(&f, &g, &cm, exact.distance, &mut ws);
        assert_eq!(loose.result, BoundedResult::Exact(exact.distance));
        eprintln!(
            "bounded_verify: n={n:<4} exact {} cells | tau=2 exceeds after {} cells \
             | tau=d exact after {} cells",
            exact.subproblems, tight.subproblems, loose.subproblems
        );
        group.bench_with_input(BenchmarkId::new("pair_full_rted", n), &n, |b, _| {
            b.iter(|| black_box(Algorithm::Rted.run_in(&f, &g, &cm, &mut ws).distance));
        });
        group.bench_with_input(BenchmarkId::new("pair_at_most_2", n), &n, |b, _| {
            b.iter(|| black_box(ted_at_most_run(&f, &g, &cm, 2.0, &mut ws).result.value()));
        });
    }

    // End-to-end: the default (bounded) index against the pure exact
    // verifier on the filter-blind clustered corpus.
    let trees = clustered_corpus(8, 8, 36);
    let query = perturb_labels(&trees[0], 1, DEFAULT_ALPHABET, 999);
    let bounded = TreeIndex::build(trees.iter().cloned());
    let exact =
        TreeIndex::build(trees.iter().cloned()).with_verifier(Box::new(AlgorithmVerifier::rted()));
    for tau in [6.0, 24.0] {
        let a = bounded.range(&query, tau);
        let b = exact.range(&query, tau);
        assert_eq!(a.neighbors, b.neighbors, "paths disagree at tau {tau}");
        eprintln!(
            "bounded_verify: tau={tau:<4} matches={:<3} verified={:<3} \
             bounded_cells={:<8} exact_cells={:<8} early_exits={}",
            a.neighbors.len(),
            a.stats.verified,
            a.stats.subproblems,
            b.stats.subproblems,
            a.stats.early_exits
        );
        if a.stats.verified > a.neighbors.len() {
            // Non-matching survivors reached the verifier: the budget
            // must have saved work on them.
            assert!(a.stats.early_exits > 0, "no early exits at tau {tau}");
            assert!(
                a.stats.subproblems < b.stats.subproblems,
                "bounded range computed no fewer cells at tau {tau}: {} vs {}",
                a.stats.subproblems,
                b.stats.subproblems
            );
        }
        group.bench_with_input(BenchmarkId::new("range_bounded", tau), &tau, |b, &tau| {
            b.iter(|| black_box(bounded.range(&query, tau).neighbors.len()));
        });
        group.bench_with_input(BenchmarkId::new("range_exact", tau), &tau, |b, &tau| {
            b.iter(|| black_box(exact.range(&query, tau).neighbors.len()));
        });
    }

    for k in [1usize, 5] {
        assert_eq!(
            bounded.top_k(&query, k).neighbors,
            exact.top_k(&query, k).neighbors,
            "top-{k} paths disagree"
        );
        group.bench_with_input(BenchmarkId::new("topk_bounded", k), &k, |b, &k| {
            b.iter(|| black_box(bounded.top_k(&query, k).neighbors.len()));
        });
        group.bench_with_input(BenchmarkId::new("topk_exact", k), &k, |b, &k| {
            b.iter(|| black_box(exact.top_k(&query, k).neighbors.len()));
        });
    }

    group.finish();
}

criterion_group!(benches, bounded_verify);
criterion_main!(benches);
