//! Criterion microbenchmarks: cost of the strategy computation
//! (Algorithm 2) alone versus the full RTED pipeline (the microbench
//! counterpart of Fig. 10).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rted_core::{
    compute_strategy_in, optimal_strategy, Algorithm, OptimalChooser, UnitCost, Workspace,
};
use rted_datasets::Shape;
use std::hint::black_box;

fn strategy_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("strategy_overhead");
    group.sample_size(10);
    for n in [200usize, 500] {
        let f = Shape::Random.generate(n, 11);
        let g = Shape::Random.generate(n, 22);
        group.bench_with_input(BenchmarkId::new("strategy_only", n), &n, |b, _| {
            b.iter(|| black_box(optimal_strategy(&f, &g).cost));
        });
        // Row-recycled Algorithm 2 on a warm workspace: the O(n) live
        // rows and the recycled choice matrix, zero allocations.
        let mut ws = Workspace::new();
        group.bench_with_input(BenchmarkId::new("strategy_ws", n), &n, |b, _| {
            b.iter(|| {
                let s = compute_strategy_in(&f, &g, &OptimalChooser, &mut ws);
                let cost = black_box(s.cost);
                ws.recycle(s);
                cost
            });
        });
        group.bench_with_input(BenchmarkId::new("rted_total", n), &n, |b, _| {
            b.iter(|| black_box(Algorithm::Rted.run(&f, &g, &UnitCost).distance));
        });
    }
    group.finish();
}

criterion_group!(benches, strategy_overhead);
criterion_main!(benches);
