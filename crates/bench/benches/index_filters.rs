//! Criterion microbenchmarks: filter effectiveness of the rted-index
//! engine — the same similarity join and range queries with the staged
//! lower-bound pipeline on versus brute force, over a mixed-shape corpus.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rted_datasets::shapes::{perturb_labels, Shape, DEFAULT_ALPHABET};
use rted_index::{FilterPipeline, TreeIndex};
use rted_tree::Tree;
use std::hint::black_box;

/// A mixed-shape corpus with planted near-duplicate pairs.
fn corpus(n_trees: usize, tree_size: usize) -> Vec<Tree<u32>> {
    let mut trees = Vec::with_capacity(n_trees);
    for i in 0..n_trees {
        let shape = Shape::ALL[i % Shape::ALL.len()];
        let base = shape.generate(tree_size + (i * 5) % 20, i as u64);
        if i % 3 == 0 {
            trees.push(perturb_labels(&base, 2, DEFAULT_ALPHABET, 1000 + i as u64));
        }
        trees.push(base);
    }
    trees.truncate(n_trees);
    trees
}

fn index_filters(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_filters");
    group.sample_size(10);
    let trees = corpus(40, 60);
    let tau = 8.0;

    for (label, pipeline) in [
        ("join_filtered", FilterPipeline::standard()),
        ("join_size_only", FilterPipeline::size_only()),
        ("join_brute", FilterPipeline::none()),
    ] {
        let index = TreeIndex::build(trees.iter().cloned()).with_pipeline(pipeline);
        group.bench_with_input(BenchmarkId::new(label, trees.len()), &tau, |b, &tau| {
            b.iter(|| black_box(index.join(tau).matches.len()));
        });
    }

    let query = perturb_labels(&trees[0], 1, DEFAULT_ALPHABET, 77);
    for (label, pipeline) in [
        ("range_filtered", FilterPipeline::standard()),
        ("range_brute", FilterPipeline::none()),
    ] {
        let index = TreeIndex::build(trees.iter().cloned()).with_pipeline(pipeline);
        group.bench_with_input(BenchmarkId::new(label, trees.len()), &tau, |b, &tau| {
            b.iter(|| black_box(index.range(&query, tau).neighbors.len()));
        });
    }

    for (label, pipeline) in [
        ("topk_filtered", FilterPipeline::standard()),
        ("topk_brute", FilterPipeline::none()),
    ] {
        let index = TreeIndex::build(trees.iter().cloned()).with_pipeline(pipeline);
        group.bench_with_input(BenchmarkId::new(label, trees.len()), &5usize, |b, &k| {
            b.iter(|| black_box(index.top_k(&query, k).neighbors.len()));
        });
    }

    group.finish();
}

criterion_group!(benches, index_filters);
criterion_main!(benches);
