//! Criterion microbenchmarks: distance computation runtime per algorithm
//! and shape (the microbench counterpart of Fig. 9; run the `fig9` binary
//! for the full-size sweeps).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rted_core::{Algorithm, UnitCost, Workspace};
use rted_datasets::Shape;
use std::hint::black_box;

fn ted_runtime(c: &mut Criterion) {
    let mut group = c.benchmark_group("ted_runtime");
    group.sample_size(10);
    for shape in [
        Shape::FullBinary,
        Shape::ZigZag,
        Shape::Mixed,
        Shape::Random,
    ] {
        for n in [100usize, 300] {
            let f = shape.generate(n, 7);
            let g = shape.generate(n, 8);
            for alg in Algorithm::ALL {
                group.bench_with_input(
                    BenchmarkId::new(format!("{}/{}", shape.name(), alg.name()), n),
                    &n,
                    |b, _| {
                        b.iter(|| black_box(alg.run(&f, &g, &UnitCost).distance));
                    },
                );
            }
            // The amortized path: one warm workspace serves every
            // iteration, so this measures the pure DP with zero
            // allocations per distance.
            let mut ws = Workspace::new();
            group.bench_with_input(
                BenchmarkId::new(format!("{}/RTED+ws", shape.name()), n),
                &n,
                |b, _| {
                    b.iter(|| {
                        black_box(Algorithm::Rted.run_in(&f, &g, &UnitCost, &mut ws).distance)
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, ted_runtime);
criterion_main!(benches);
