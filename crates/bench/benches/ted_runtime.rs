//! Criterion microbenchmarks: distance computation runtime per algorithm
//! and shape (the microbench counterpart of Fig. 9; run the `fig9` binary
//! for the full-size sweeps).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rted_core::{Algorithm, UnitCost, Workspace};
use rted_datasets::Shape;
use std::hint::black_box;

fn ted_runtime(c: &mut Criterion) {
    let mut group = c.benchmark_group("ted_runtime");
    group.sample_size(10);
    for shape in [
        Shape::FullBinary,
        Shape::ZigZag,
        Shape::Mixed,
        Shape::Random,
    ] {
        for n in [100usize, 300] {
            let f = shape.generate(n, 7);
            let g = shape.generate(n, 8);
            for alg in Algorithm::ALL {
                group.bench_with_input(
                    BenchmarkId::new(format!("{}/{}", shape.name(), alg.name()), n),
                    &n,
                    |b, _| {
                        b.iter(|| black_box(alg.run(&f, &g, &UnitCost).distance));
                    },
                );
            }
            // The amortized path: one warm workspace serves every
            // iteration, so this measures the pure DP with zero
            // allocations per distance.
            let mut ws = Workspace::new();
            group.bench_with_input(
                BenchmarkId::new(format!("{}/RTED+ws", shape.name()), n),
                &n,
                |b, _| {
                    b.iter(|| {
                        black_box(Algorithm::Rted.run_in(&f, &g, &UnitCost, &mut ws).distance)
                    });
                },
            );
            // The same amortized path with serve-style instrumentation
            // around every run: a latency record (3 relaxed RMWs) plus a
            // subproblem counter. `bench_diff --suffix-gate "+obs"`
            // compares this against `RTED+ws` and fails CI if the
            // overhead exceeds the observability budget.
            let mut ws = Workspace::new();
            let latency = rted_obs::Histogram::new();
            let subproblems = rted_obs::Counter::new();
            group.bench_with_input(
                BenchmarkId::new(format!("{}/RTED+ws+obs", shape.name()), n),
                &n,
                |b, _| {
                    b.iter(|| {
                        let started = std::time::Instant::now();
                        let run = Algorithm::Rted.run_in(&f, &g, &UnitCost, &mut ws);
                        subproblems.add(run.subproblems);
                        latency.record(
                            u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
                        );
                        black_box(run.distance)
                    });
                },
            );
            black_box((latency.count(), subproblems.get()));
        }
    }
    group.finish();
}

criterion_group!(benches, ted_runtime);
criterion_main!(benches);
