//! The adaptive query planner versus the fixed configurations it
//! chooses between, across the three candidate-generation regimes of
//! `candidate_gen.rs` (same clustered corpus, same thresholds):
//!
//! * **tiny τ** — the pipeline bounds prune nearly everything; the
//!   linear scan is the best fixed plan and metric routing is overhead;
//! * **the bound-blind selective band** (τ = 24) — the linear scan must
//!   verify the whole corpus while triangle-inequality routing settles
//!   it with a few vantage distances; metric is the best fixed plan;
//! * **τ beyond the spread** — everything matches and must be verified
//!   either way; linear wins back on constants.
//!
//! Per regime two benchmarks are emitted: `<regime>` runs the *measured
//! best* fixed configuration, `<regime>+plan` runs a warmed
//! planner-steered index. CI gates their geometric-mean ratio with
//! `bench_diff --suffix-gate "+plan"`: an adaptive planner that cannot
//! keep up with the best fixed plan it is supposed to find is a
//! regression. The counter assertions below additionally require the
//! planner to *strictly beat the worst* fixed plan (in exact TED
//! computations) in at least one regime — adapting has to pay somewhere
//! — and, as everywhere, every regime's answers must be byte-identical
//! across all three indexes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rted_datasets::shapes::{perturb_labels, Shape, DEFAULT_ALPHABET};
use rted_index::TreeIndex;
use rted_tree::Tree;
use std::hint::black_box;
use std::time::Instant;

/// The `candidate_gen.rs` workload: clusters of label-perturbed
/// near-duplicates of one size, so the size stage is blind and the
/// regimes are governed by τ alone.
fn clustered_corpus(clusters: usize, per_cluster: usize, tree_size: usize) -> Vec<Tree<u32>> {
    let mut trees = Vec::new();
    for c in 0..clusters {
        let base = Shape::Random.generate(tree_size, c as u64);
        trees.push(base.clone());
        for j in 1..per_cluster {
            trees.push(perturb_labels(
                &base,
                1 + j % 3,
                DEFAULT_ALPHABET,
                (c * 100 + j) as u64,
            ));
        }
    }
    trees
}

fn planner(c: &mut Criterion) {
    let mut group = c.benchmark_group("planner");
    group.sample_size(10);
    let trees = clustered_corpus(8, 8, 36);
    let query = perturb_labels(&trees[0], 1, DEFAULT_ALPHABET, 999);

    let linear = TreeIndex::build(trees.iter().cloned());
    let metric = TreeIndex::build(trees.iter().cloned()).with_metric_tree(true);
    // Pay the one-time vantage-point build outside every timing loop.
    let _ = metric.range(&query, 2.0);

    let mut beats_worst_somewhere = false;
    for (regime, tau) in [("tiny", 3.0), ("band", 24.0), ("spread", 100.0)] {
        // A fresh planner per regime: each regime models a steady
        // workload at its τ, and the warm-up queries walk the crossover
        // through cold start (configured generator), baseline probe,
        // and exploitation — the steering below is from real samples.
        let planned = TreeIndex::build(trees.iter().cloned())
            .with_metric_tree(true)
            .with_planner(true);
        for _ in 0..6 {
            let _ = planned.range(&query, tau);
        }

        let lin = linear.range(&query, tau);
        let met = metric.range(&query, tau);
        let pl = planned.range(&query, tau);
        assert_eq!(
            lin.neighbors, met.neighbors,
            "fixed paths disagree at tau {tau}"
        );
        assert_eq!(
            lin.neighbors, pl.neighbors,
            "planner changed answers at tau {tau}"
        );

        // Exact TED computations are the regimes' dominant cost and are
        // deterministic, unlike shared-runner wall time: the planner
        // must never do more than the worst fixed plan, and must do
        // strictly less in at least one regime.
        let worst = lin.stats.verified.max(met.stats.verified);
        assert!(
            pl.stats.verified <= worst,
            "{regime}: planner verified {} exactly, worst fixed plan {worst}",
            pl.stats.verified
        );
        beats_worst_somewhere |= pl.stats.verified < worst;
        eprintln!(
            "planner: {regime:<7} tau={tau:<4} exact TEDs — linear {:<3} metric {:<3} planned {:<3} ({})",
            lin.stats.verified,
            met.stats.verified,
            pl.stats.verified,
            planned.explain(true).summary_lines()[0],
        );

        // The regime's best *fixed* configuration, picked by a quick
        // wall-clock measurement on this machine (the planner's job is
        // to find it, so hard-coding the answer here would let both
        // drift wrong together).
        let clock = |index: &TreeIndex<u32>| {
            let started = Instant::now();
            for _ in 0..3 {
                black_box(index.range(&query, tau).neighbors.len());
            }
            started.elapsed()
        };
        let fixed = if clock(&metric) < clock(&linear) {
            &metric
        } else {
            &linear
        };
        group.bench_with_input(BenchmarkId::new(regime, tau), &tau, |b, &tau| {
            b.iter(|| black_box(fixed.range(&query, tau).neighbors.len()));
        });
        let suffixed = format!("{regime}+plan");
        group.bench_with_input(BenchmarkId::new(suffixed, tau), &tau, |b, &tau| {
            b.iter(|| black_box(planned.range(&query, tau).neighbors.len()));
        });
    }
    assert!(
        beats_worst_somewhere,
        "the planner never beat the worst fixed configuration in any regime — adapting buys nothing"
    );
    group.finish();
}

criterion_group!(benches, planner);
criterion_main!(benches);
