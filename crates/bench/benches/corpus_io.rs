//! Criterion microbenchmarks: persistence of the rted-index corpus —
//! cold-loading a saved corpus file versus rebuilding it from bracket
//! text, plus the encode (save) path and the zero-copy borrow path.
//!
//! The point of the on-disk format is that a restart pays decode cost, not
//! re-analysis cost: `cold_load` must beat `rebuild` or persistence is not
//! pulling its weight.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rted_datasets::shapes::{perturb_labels, Shape, DEFAULT_ALPHABET};
use rted_index::{encode_corpus, CorpusFile, CorpusStore, TreeCorpus};
use rted_tree::{parse_bracket, to_bracket, Tree};
use std::hint::black_box;

/// A mixed-shape corpus with string labels (the CLI's label type).
fn corpus_trees(n_trees: usize, tree_size: usize) -> Vec<Tree<String>> {
    let mut trees = Vec::with_capacity(n_trees);
    for i in 0..n_trees {
        let shape = Shape::ALL[i % Shape::ALL.len()];
        let base = shape.generate(tree_size + (i * 7) % 25, i as u64);
        let t = if i % 3 == 0 {
            perturb_labels(&base, 2, DEFAULT_ALPHABET, 1000 + i as u64)
        } else {
            base
        };
        trees.push(t.map_labels(|l| format!("label{l}")));
    }
    trees
}

fn corpus_io(c: &mut Criterion) {
    let mut group = c.benchmark_group("corpus_io");
    group.sample_size(10);

    let n_trees = 150;
    let trees = corpus_trees(n_trees, 40);

    let dir = std::env::temp_dir().join(format!("rted-corpus-io-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create bench scratch dir");
    let flat_path = dir.join("corpus.trees");
    let idx_path = dir.join("corpus.idx");

    let flat: String = trees.iter().map(|t| to_bracket(t) + "\n").collect();
    std::fs::write(&flat_path, &flat).expect("write flat corpus");
    CorpusStore::create(&idx_path, trees.clone()).expect("write corpus index");

    // The baseline a restart pays without persistence: parse every bracket
    // line and re-run the per-tree analysis.
    group.bench_with_input(
        BenchmarkId::new("rebuild", n_trees),
        &flat_path,
        |b, path| {
            b.iter(|| {
                let text = std::fs::read_to_string(path).unwrap();
                let trees: Vec<Tree<String>> =
                    text.lines().map(|l| parse_bracket(l).unwrap()).collect();
                black_box(TreeCorpus::build(trees).len())
            });
        },
    );

    // Cold load: read + decode the binary image, sketches included.
    group.bench_with_input(
        BenchmarkId::new("cold_load_owned", n_trees),
        &idx_path,
        |b, path| {
            b.iter(|| {
                let file = CorpusFile::read(path).unwrap();
                black_box(file.corpus_owned().unwrap().len())
            });
        },
    );

    // Zero-copy cold load: labels borrow from the file buffer.
    group.bench_with_input(
        BenchmarkId::new("cold_load_zero_copy", n_trees),
        &idx_path,
        |b, path| {
            b.iter(|| {
                let file = CorpusFile::read(path).unwrap();
                black_box(file.corpus().unwrap().len())
            });
        },
    );

    // Save path: canonical encode of an in-memory corpus.
    let built = TreeCorpus::build(trees);
    group.bench_with_input(BenchmarkId::new("encode", n_trees), &built, |b, corpus| {
        b.iter(|| black_box(encode_corpus(corpus).len()));
    });

    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, corpus_io);
criterion_main!(benches);
