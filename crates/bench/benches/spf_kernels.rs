//! Criterion microbenchmarks: the three single-path function kernels, via
//! strategies that exercise them exclusively — classic Zhang–Shasha (∆L on
//! every keyroot pair), its mirror (∆R), and Klein's all-heavy strategy
//! (∆I on every pair).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rted_core::{Algorithm, UnitCost};
use rted_datasets::Shape;
use std::hint::black_box;

fn spf_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("spf_kernels");
    group.sample_size(10);
    for n in [200usize] {
        let f = Shape::Random.generate(n, 3);
        let g = Shape::Random.generate(n, 4);
        for alg in [Algorithm::ZhangL, Algorithm::ZhangR, Algorithm::KleinH] {
            group.bench_with_input(BenchmarkId::new(alg.name(), n), &n, |b, _| {
                b.iter(|| black_box(alg.run(&f, &g, &UnitCost).distance));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, spf_kernels);
criterion_main!(benches);
