//! Ablation study (beyond the paper's tables, motivated by its §3/§7
//! discussion): how much does each ingredient of the LRH class contribute?
//!
//! Compares the optimal strategy restricted to sub-classes:
//! * `L-only`  — left paths in either tree (adaptive Zhang);
//! * `LR-only` — left/right paths, no heavy machinery;
//! * `H-only`  — heavy paths in either tree (per-pair-adaptive Demaine);
//! * `F-side`  — single-tree strategies (Dulucq & Touzet's class);
//! * `LRH`     — the full class (= RTED).
//!
//! ```text
//! cargo run --release -p rted-bench --bin ablation -- [--size 500]
//! ```

use rted_bench::{human_count, print_table, Args};
use rted_core::strategy::{compute_strategy, SubsetChooser};
use rted_core::OptimalChooser;
use rted_datasets::Shape;

fn main() {
    let args = Args::capture();
    let size = args.get("size", 500usize);

    println!("# Ablation: optimal subproblem count within strategy sub-classes, identical pairs of {size}-node trees");
    let header: Vec<String> = [
        "shape",
        "L-only",
        "LR-only",
        "H-only",
        "F-side",
        "LRH (RTED)",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    for shape in Shape::ALL {
        let t = shape.generate(size, 21);
        let l = compute_strategy(&t, &t, &SubsetChooser::left_only()).cost;
        let lr = compute_strategy(&t, &t, &SubsetChooser::lr_only()).cost;
        let h = compute_strategy(&t, &t, &SubsetChooser::heavy_only()).cost;
        let fs = compute_strategy(&t, &t, &SubsetChooser::f_side_only()).cost;
        let full = compute_strategy(&t, &t, &OptimalChooser).cost;
        assert!(full <= l && full <= lr && full <= h && full <= fs);
        rows.push(vec![
            shape.name().to_string(),
            human_count(l),
            human_count(lr),
            human_count(h),
            human_count(fs),
            human_count(full),
        ]);
    }
    print_table(&header, &rows);

    println!("\n# Same, on cross-shape pairs (the join's hard cases)");
    let pairs = [
        (Shape::LeftBranch, Shape::RightBranch),
        (Shape::ZigZag, Shape::FullBinary),
        (Shape::Mixed, Shape::Random),
    ];
    let mut rows = Vec::new();
    for (sf, sg) in pairs {
        let f = sf.generate(size, 5);
        let g = sg.generate(size, 6);
        let l = compute_strategy(&f, &g, &SubsetChooser::left_only()).cost;
        let lr = compute_strategy(&f, &g, &SubsetChooser::lr_only()).cost;
        let h = compute_strategy(&f, &g, &SubsetChooser::heavy_only()).cost;
        let fs = compute_strategy(&f, &g, &SubsetChooser::f_side_only()).cost;
        let full = compute_strategy(&f, &g, &OptimalChooser).cost;
        rows.push(vec![
            format!("{sf}×{sg}"),
            human_count(l),
            human_count(lr),
            human_count(h),
            human_count(fs),
            human_count(full),
        ]);
    }
    let header: Vec<String> = [
        "pair",
        "L-only",
        "LR-only",
        "H-only",
        "F-side",
        "LRH (RTED)",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    print_table(&header, &rows);
}
