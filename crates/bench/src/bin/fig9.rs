//! Figure 9 reproduction: runtime of Zhang-L, Demaine-H and RTED on full
//! binary (FB), zig-zag (ZZ) and mixed (MX) trees of growing size.
//!
//! ```text
//! cargo run --release -p rted-bench --bin fig9 -- [--max-size 1000] [--step 200] [--reps 3]
//! ```

use rted_bench::{print_table, size_series, Args};
use rted_core::{Algorithm, UnitCost};
use rted_datasets::Shape;

fn main() {
    let args = Args::capture();
    let max = args.get("max-size", 1000usize);
    let step = args.get("step", 200usize);
    let reps = args.get("reps", 3usize);
    let algos = [Algorithm::ZhangL, Algorithm::DemaineH, Algorithm::Rted];

    for shape in [Shape::FullBinary, Shape::ZigZag, Shape::Mixed] {
        println!("\n# Figure 9: runtime on shape {shape} (seconds, best of {reps})");
        let header: Vec<String> = std::iter::once("size".to_string())
            .chain(algos.iter().map(|a| a.name().to_string()))
            .collect();
        let mut rows = Vec::new();
        for n in size_series(max, step) {
            let f = shape.generate(n, 7);
            let g = shape.generate(n, 8);
            let mut row = vec![n.to_string()];
            for alg in algos {
                let mut best = f64::INFINITY;
                let mut dist = 0.0;
                for _ in 0..reps {
                    let run = alg.run(&f, &g, &UnitCost);
                    let total = (run.strategy_time + run.distance_time).as_secs_f64();
                    best = best.min(total);
                    dist = run.distance;
                }
                let _ = dist;
                row.push(format!("{best:.4}"));
            }
            rows.push(row);
        }
        print_table(&header, &rows);
    }
}
