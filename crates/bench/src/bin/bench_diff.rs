//! `bench_diff` — compares two directories of `BENCH_*.json` files (as
//! written by the criterion shim via `RTED_BENCH_JSON_DIR`) and flags
//! relative regressions, turning CI's per-run bench artifacts into a trend
//! gate instead of an archive.
//!
//! ```text
//! bench_diff <BASELINE_DIR> <CURRENT_DIR> [--threshold R] [--metric min|mean]
//! bench_diff --suffix-gate SUF <DIR> [--threshold R] [--metric min|mean]
//! ```
//!
//! Every benchmark present in both sets is compared by the chosen metric
//! (default `min`, the steadier estimator on noisy shared runners): a
//! current value above `baseline × R` (default 2.0) is a regression.
//! Benchmarks present on only one side are listed but never fail the run.
//! Exit code: 0 = no regressions, 1 = regressions found, 2 = usage or I/O
//! error.
//!
//! `--suffix-gate` compares *within one run* instead of across two: every
//! benchmark whose name contains `SUF` (e.g. `+obs`) is paired with the
//! same name minus the suffix, and fails the gate if it is more than
//! `threshold ×` slower — the CI check that instrumentation overhead
//! stays inside its budget.

use std::collections::BTreeMap;
use std::path::Path;
use std::process::ExitCode;

/// One parsed benchmark record.
#[derive(Debug, Clone)]
struct Record {
    mean_ns: u128,
    min_ns: u128,
}

/// Extracts `"key": "value"` from one JSON object line of the shim's
/// fixed-format report.
fn field_str(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\": \"");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    // The shim escapes embedded quotes, so scan for the first unescaped one.
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => out.push(chars.next()?),
            c => out.push(c),
        }
    }
    None
}

/// Extracts `"key": 123` from one JSON object line.
fn field_num(line: &str, key: &str) -> Option<u128> {
    let tag = format!("\"{key}\": ");
    let start = line.find(&tag)? + tag.len();
    let digits: String = line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// Loads every `BENCH_*.json` in `dir` into `(file/group/bench) → Record`.
fn load_dir(dir: &Path) -> Result<BTreeMap<String, Record>, String> {
    let mut out = BTreeMap::new();
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if !(name.starts_with("BENCH_") && name.ends_with(".json")) {
            continue;
        }
        let text = std::fs::read_to_string(entry.path())
            .map_err(|e| format!("cannot read {name}: {e}"))?;
        for line in text.lines() {
            let (Some(group), Some(bench)) = (field_str(line, "group"), field_str(line, "bench"))
            else {
                continue;
            };
            let (Some(mean_ns), Some(min_ns)) =
                (field_num(line, "mean_ns"), field_num(line, "min_ns"))
            else {
                continue;
            };
            out.insert(
                format!("{name}::{group}/{bench}"),
                Record { mean_ns, min_ns },
            );
        }
    }
    Ok(out)
}

fn human(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// The within-run overhead gate: every benchmark whose key contains
/// `suffix` is compared against the same key with the suffix removed,
/// and the run fails if the **geometric mean** of the ratios exceeds
/// `threshold`. Per-pair ratios are printed for diagnostics but do not
/// fail the gate individually — single-pair minima scatter by a few
/// percent on shared runners, while a systematic overhead shifts every
/// pair and therefore the mean. A suffixed benchmark without its base
/// partner is an error — a renamed base must not silently disable the
/// gate.
fn suffix_gate_run(dir: &Path, suffix: &str, threshold: f64, metric: &str) -> Result<bool, String> {
    let records = load_dir(dir)?;
    let pick = |r: &Record| if metric == "min" { r.min_ns } else { r.mean_ns };
    let mut compared = 0usize;
    let mut log_sum = 0.0f64;
    println!(
        "{:<58} {:>10} {:>10} {:>8}",
        format!("benchmark (vs -{suffix})"),
        "base",
        "instr",
        "ratio"
    );
    for (key, instrumented) in &records {
        if !key.contains(suffix) {
            continue;
        }
        let base_key = key.replacen(suffix, "", 1);
        let Some(base) = records.get(&base_key) else {
            return Err(format!("{key}: no base benchmark {base_key} in this run"));
        };
        compared += 1;
        let (old, new) = (pick(base).max(1) as f64, pick(instrumented).max(1) as f64);
        let ratio = new / old;
        log_sum += ratio.ln();
        println!(
            "{key:<58} {:>10} {:>10} {:>7.3}x",
            human(pick(base)),
            human(pick(instrumented)),
            ratio
        );
    }
    if compared == 0 {
        return Err(format!(
            "no benchmarks containing `{suffix}` in {}",
            dir.display()
        ));
    }
    let geomean = (log_sum / compared as f64).exp();
    let ok = geomean <= threshold;
    println!(
        "\n{compared} pairs compared ({metric}): geometric-mean overhead {geomean:.4}x, budget {threshold}x — {}",
        if ok { "within budget" } else { "OVER BUDGET" }
    );
    Ok(ok)
}

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut dirs: Vec<String> = Vec::new();
    let mut threshold = 2.0f64;
    let mut metric = "min".to_string();
    let mut suffix_gate: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--suffix-gate" => {
                i += 1;
                let suf = args.get(i).ok_or("--suffix-gate needs a value")?.clone();
                if suf.is_empty() {
                    return Err("--suffix-gate must not be empty".into());
                }
                suffix_gate = Some(suf);
            }
            "--threshold" => {
                i += 1;
                threshold = args
                    .get(i)
                    .ok_or("--threshold needs a value")?
                    .parse()
                    .map_err(|_| "--threshold must be a number".to_string())?;
                if threshold < 1.0 {
                    return Err("--threshold must be ≥ 1.0 (a slowdown ratio)".into());
                }
            }
            "--metric" => {
                i += 1;
                metric = args.get(i).ok_or("--metric needs a value")?.clone();
                if metric != "min" && metric != "mean" {
                    return Err(format!("unknown metric {metric} (use min or mean)"));
                }
            }
            a if a.starts_with("--") => return Err(format!("unknown flag {a}")),
            a => dirs.push(a.to_string()),
        }
        i += 1;
    }
    if let Some(suffix) = suffix_gate {
        let [dir] = dirs.as_slice() else {
            return Err(
                "usage: bench_diff --suffix-gate SUF <DIR> [--threshold R] [--metric min|mean]"
                    .into(),
            );
        };
        return suffix_gate_run(Path::new(dir), &suffix, threshold, &metric);
    }
    if dirs.len() != 2 {
        return Err(
            "usage: bench_diff <BASELINE_DIR> <CURRENT_DIR> [--threshold R] [--metric min|mean]"
                .into(),
        );
    }

    let base = load_dir(Path::new(&dirs[0]))?;
    let cur = load_dir(Path::new(&dirs[1]))?;
    let pick = |r: &Record| if metric == "min" { r.min_ns } else { r.mean_ns };

    let mut regressions = 0usize;
    let mut improved = 0usize;
    let mut compared = 0usize;
    println!(
        "{:<58} {:>10} {:>10} {:>8}",
        "benchmark", "baseline", "current", "ratio"
    );
    for (key, c) in &cur {
        let Some(b) = base.get(key) else {
            println!("{key:<58} {:>10} {:>10} {:>8}", "-", human(pick(c)), "new");
            continue;
        };
        compared += 1;
        let (old, new) = (pick(b).max(1) as f64, pick(c).max(1) as f64);
        let ratio = new / old;
        let verdict = if ratio > threshold {
            regressions += 1;
            "REGRESS"
        } else if ratio < 1.0 / threshold {
            improved += 1;
            "faster"
        } else {
            ""
        };
        println!(
            "{key:<58} {:>10} {:>10} {:>7.2}x {verdict}",
            human(pick(b)),
            human(pick(c)),
            ratio
        );
    }
    for key in base.keys() {
        if !cur.contains_key(key) {
            println!("{key:<58} (dropped from current run)");
        }
    }
    println!(
        "\n{compared} compared ({metric}): {regressions} regressions over {threshold}x, {improved} improved beyond {:.2}x",
        1.0 / threshold
    );
    Ok(regressions == 0)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
