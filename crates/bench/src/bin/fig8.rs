//! Figure 8 reproduction: number of relevant subproblems computed by each
//! algorithm on pairs of identical trees, for the six synthetic shapes.
//!
//! The counts are exact, obtained from the Fig.-5 cost formula evaluated
//! with each algorithm's strategy (the test suite proves they equal the
//! instrumented execution counts).
//!
//! ```text
//! cargo run --release -p rted-bench --bin fig8 -- [--max-size 2000] [--step 200]
//! ```

use rted_bench::{human_count, print_table, size_series, Args};
use rted_core::Algorithm;
use rted_datasets::Shape;

fn main() {
    let args = Args::capture();
    let max = args.get("max-size", 2000usize);
    let step = args.get("step", 200usize);
    let raw = args.has("raw");

    for shape in Shape::ALL {
        println!("\n# Figure 8: shape {shape} (pairs of identical trees)");
        let header: Vec<String> = std::iter::once("size".to_string())
            .chain(Algorithm::ALL.iter().map(|a| a.name().to_string()))
            .collect();
        let mut rows = Vec::new();
        for n in size_series(max, step) {
            let t = shape.generate(n, 42);
            let mut row = vec![n.to_string()];
            for alg in Algorithm::ALL {
                let count = alg.predicted_subproblems(&t, &t);
                row.push(if raw {
                    count.to_string()
                } else {
                    human_count(count)
                });
            }
            rows.push(row);
        }
        print_table(&header, &rows);
    }
}
