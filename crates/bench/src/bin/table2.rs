//! Table 2 reproduction: ratio of relevant subproblems computed by RTED
//! w.r.t. the best and the worst competitor, on TreeFam-like phylogenies
//! partitioned by size (<500, 500–1000, >1000 nodes).
//!
//! ```text
//! cargo run --release -p rted-bench --bin table2 -- [--samples 20] [--pairs 40]
//! ```

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rted_bench::{print_table, Args};
use rted_core::Algorithm;
use rted_datasets::realworld::treefam_like;
use rted_tree::Tree;

fn main() {
    let args = Args::capture();
    let samples = args.get("samples", 20usize);
    let pairs = args.get("pairs", 40usize);
    let mut rng = StdRng::seed_from_u64(7);

    // Sample trees per size partition.
    let partitions: [(&str, usize, usize); 3] = [
        ("<500", 50, 499),
        ("500-1000", 500, 1000),
        (">1000", 1001, 2000),
    ];
    let mut sampled: Vec<Vec<Tree<u32>>> = Vec::new();
    for (i, &(_, lo, hi)) in partitions.iter().enumerate() {
        let trees = (0..samples)
            .map(|k| {
                let n = rng.random_range(lo..=hi);
                treefam_like(n, (i * 1000 + k) as u64)
            })
            .collect();
        sampled.push(trees);
    }

    let competitors = [
        Algorithm::ZhangL,
        Algorithm::ZhangR,
        Algorithm::KleinH,
        Algorithm::DemaineH,
    ];

    let mut best_rows = Vec::new();
    let mut worst_rows = Vec::new();
    for (i, &(pname, _, _)) in partitions.iter().enumerate() {
        let mut best_row = vec![pname.to_string()];
        let mut worst_row = vec![pname.to_string()];
        for (j, _) in partitions.iter().enumerate() {
            // Random tree pairs across the two partitions.
            let mut rted_total = 0u64;
            let mut best_total = 0u64;
            let mut worst_total = 0u64;
            for _ in 0..pairs {
                let f = &sampled[i][rng.random_range(0..samples)];
                let g = &sampled[j][rng.random_range(0..samples)];
                let rted = Algorithm::Rted.predicted_subproblems(f, g);
                let counts: Vec<u64> = competitors
                    .iter()
                    .map(|a| a.predicted_subproblems(f, g))
                    .collect();
                rted_total += rted;
                best_total += counts.iter().copied().min().unwrap();
                worst_total += counts.iter().copied().max().unwrap();
            }
            best_row.push(format!(
                "{:.1}%",
                100.0 * rted_total as f64 / best_total as f64
            ));
            worst_row.push(format!(
                "{:.1}%",
                100.0 * rted_total as f64 / worst_total as f64
            ));
        }
        best_rows.push(best_row);
        worst_rows.push(worst_row);
    }

    let header: Vec<String> = std::iter::once("sizes".to_string())
        .chain(partitions.iter().map(|&(p, _, _)| p.to_string()))
        .collect();
    println!("# Table 2(a): RTED subproblems w.r.t. the BEST competitor ({pairs} pairs/cell)");
    print_table(&header, &best_rows);
    println!("\n# Table 2(b): RTED subproblems w.r.t. the WORST competitor");
    print_table(&header, &worst_rows);
}
