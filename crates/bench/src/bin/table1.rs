//! Table 1 reproduction: similarity self-join over one tree of each shape
//! {LB, RB, FB, ZZ, Random}, reporting per-algorithm total runtime and
//! total number of relevant subproblems.
//!
//! The join computes all 10 cross-shape pairs; fixed-strategy algorithms
//! degenerate on mismatched shape pairs (e.g. Zhang-L on LB×RB) while RTED
//! adapts per pair.
//!
//! ```text
//! cargo run --release -p rted-bench --bin table1 -- [--size 500] [--tau 1e18]
//! ```
//! The paper uses ~1000-node trees; `--size 1000` reproduces that scale.

use rted_bench::{human_count, print_table, Args};
use rted_core::{Algorithm, UnitCost};
use rted_datasets::Shape;
use rted_join::{self_join, JoinConfig};

fn main() {
    let args = Args::capture();
    let size = args.get("size", 500usize);
    let tau = args.get("tau", f64::INFINITY);

    let shapes = [
        Shape::LeftBranch,
        Shape::RightBranch,
        Shape::FullBinary,
        Shape::ZigZag,
        Shape::Random,
    ];
    let trees: Vec<_> = shapes
        .iter()
        .enumerate()
        .map(|(i, s)| s.generate(size, 100 + i as u64))
        .collect();

    println!("# Table 1: self-join on {{LB, RB, FB, ZZ, Random}}, {size} nodes each, tau = {tau}");
    let header: Vec<String> = ["Algorithm", "Time [s]", "#Rel. subproblems", "Matches"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rows = Vec::new();
    for alg in Algorithm::ALL {
        let cfg = JoinConfig {
            tau,
            algorithm: alg,
            size_prune: false,
        };
        let res = self_join(&trees, &UnitCost, &cfg);
        rows.push(vec![
            alg.name().to_string(),
            format!("{:.2}", res.time.as_secs_f64()),
            human_count(res.subproblems),
            res.matches.len().to_string(),
        ]);
    }
    print_table(&header, &rows);
}
