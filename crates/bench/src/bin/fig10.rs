//! Figure 10 reproduction: overhead of the strategy computation within the
//! overall RTED runtime, on TreeBank-like, SwissProt-like and random trees.
//!
//! ```text
//! cargo run --release -p rted-bench --bin fig10 -- [--reps 3]
//!     [--treebank-max 300] [--swissprot-max 2000] [--random-max 3000]
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use rted_bench::{print_table, size_series, Args};
use rted_core::{Algorithm, UnitCost};
use rted_datasets::realworld::{swissprot_like, treebank_like};
use rted_datasets::shapes::random_tree;
use rted_tree::Tree;

fn run_dataset(name: &str, sizes: &[usize], reps: usize, gen: impl Fn(usize, u64) -> Tree<u32>) {
    println!("\n# Figure 10: {name} — strategy time vs overall RTED time (seconds)");
    let header: Vec<String> = ["size", "strategy", "overall", "strategy %"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rows = Vec::new();
    for &n in sizes {
        let f = gen(n, 11);
        let g = gen(n, 22);
        let mut best_total = f64::INFINITY;
        let mut best_strategy = f64::INFINITY;
        for _ in 0..reps {
            let run = Algorithm::Rted.run(&f, &g, &UnitCost);
            let strat = run.strategy_time.as_secs_f64();
            let total = strat + run.distance_time.as_secs_f64();
            if total < best_total {
                best_total = total;
                best_strategy = strat;
            }
        }
        rows.push(vec![
            n.to_string(),
            format!("{best_strategy:.4}"),
            format!("{best_total:.4}"),
            format!("{:.1}%", 100.0 * best_strategy / best_total),
        ]);
    }
    print_table(&header, &rows);
}

fn main() {
    let args = Args::capture();
    let reps = args.get("reps", 3usize);
    let tb_max = args.get("treebank-max", 300usize);
    let sp_max = args.get("swissprot-max", 2000usize);
    let rnd_max = args.get("random-max", 3000usize);

    run_dataset(
        "TreeBank-like",
        &size_series(tb_max, tb_max / 6),
        reps,
        treebank_like,
    );
    run_dataset(
        "SwissProt-like",
        &size_series(sp_max, sp_max / 5),
        reps,
        swissprot_like,
    );
    run_dataset(
        "synthetic random",
        &size_series(rnd_max, rnd_max / 5),
        reps,
        |n, seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            random_tree(n, 15, 6, &mut rng)
        },
    );
}
