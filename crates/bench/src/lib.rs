//! Shared harness for the figure/table reproduction binaries.
//!
//! Each binary in `src/bin/` regenerates one figure or table of the paper's
//! evaluation (§8). This library holds the shared pieces: a tiny CLI
//! argument reader, aligned table printing, and workload construction
//! helpers. See EXPERIMENTS.md at the workspace root for recorded outputs.

use std::time::{Duration, Instant};

/// Reads `--key value` style options from `std::env::args`, with defaults.
pub struct Args {
    raw: Vec<String>,
}

impl Args {
    /// Captures the process arguments.
    pub fn capture() -> Args {
        Args {
            raw: std::env::args().skip(1).collect(),
        }
    }

    /// The value following `--name`, parsed, or `default`.
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        let flag = format!("--{name}");
        self.raw
            .iter()
            .position(|a| a == &flag)
            .and_then(|i| self.raw.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Whether the bare flag `--name` is present.
    pub fn has(&self, name: &str) -> bool {
        let flag = format!("--{name}");
        self.raw.iter().any(|a| a == &flag)
    }
}

/// Times a closure once.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Formats a subproblem count the way the paper's plots label axes
/// (`12.3M`, `4.5G`).
pub fn human_count(n: u64) -> String {
    let nf = n as f64;
    if nf >= 1e9 {
        format!("{:.2}G", nf / 1e9)
    } else if nf >= 1e6 {
        format!("{:.2}M", nf / 1e6)
    } else if nf >= 1e3 {
        format!("{:.1}k", nf / 1e3)
    } else {
        format!("{n}")
    }
}

/// Prints an aligned table: a header row then data rows.
pub fn print_table(header: &[String], rows: &[Vec<String>]) {
    let cols = header.len();
    let mut width = vec![0usize; cols];
    for (i, h) in header.iter().enumerate() {
        width[i] = h.len();
    }
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            width[i] = width[i].max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                s.push_str("  ");
            }
            s.push_str(&format!("{:>w$}", cell, w = width[i]));
        }
        println!("{s}");
    };
    line(header);
    println!(
        "{}",
        "-".repeat(width.iter().sum::<usize>() + 2 * (cols - 1))
    );
    for row in rows {
        line(row);
    }
}

/// Evenly spaced sizes `step, 2·step, …, ≤ max`.
pub fn size_series(max: usize, step: usize) -> Vec<usize> {
    (1..).map(|i| i * step).take_while(|&s| s <= max).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_count_formats() {
        assert_eq!(human_count(950), "950");
        assert_eq!(human_count(12_300), "12.3k");
        assert_eq!(human_count(12_300_000), "12.30M");
        assert_eq!(human_count(4_500_000_000), "4.50G");
    }

    #[test]
    fn size_series_bounds() {
        assert_eq!(size_series(1000, 250), vec![250, 500, 750, 1000]);
        assert_eq!(size_series(100, 40), vec![40, 80]);
    }
}
