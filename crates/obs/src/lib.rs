//! Lock-free metrics for the RTED service stack.
//!
//! The serving layer's contract is that warm `distance` requests perform
//! **zero heap allocations** end to end, and instrumentation must not
//! break that: every metric here is pre-registered at startup, and the
//! record-time operations — [`Counter::add`], [`Gauge::set`],
//! [`Histogram::record`] — are a handful of `Relaxed` atomic RMWs on
//! pre-allocated state. No locks, no formatting, no allocation, no
//! syscalls on the hot path; all cost is paid at registration and
//! snapshot time.
//!
//! * [`Counter`] — monotone `u64` (`fetch_add`).
//! * [`Gauge`] — instantaneous `i64` level (`store`/`fetch_add`), e.g.
//!   queue depth or open connections.
//! * [`Histogram`] — log₂-bucketed distribution of `u64` samples
//!   (typically nanoseconds). A record touches exactly three atomics:
//!   bucket count, total sum, and a `fetch_max` for the exact maximum.
//!   Snapshots derive `count`/`sum`/`p50`/`p95`/`p99`/`max`; quantiles
//!   are bucket upper bounds, so they carry at most 2× relative error —
//!   plenty for tail-latency monitoring, and the price of a fixed-size
//!   allocation-free layout.
//! * [`Registry`] — owns the name → metric table and produces
//!   [`Snapshot`]s that render either as structured values (the caller
//!   serializes them; this crate is serialization-agnostic) or as
//!   Prometheus-style text exposition via [`Snapshot::render_prometheus`].
//!
//! Concurrency model: recording is wait-free and safe from any number of
//! threads. A snapshot taken *during* concurrent recording is a relaxed
//! read of each atomic — it never blocks recorders, never panics, and
//! every observed value is monotone w.r.t. earlier snapshots, but a
//! histogram's `sum` may momentarily run ahead of its bucket counts (a
//! recorder between its two `fetch_add`s). Totals are exact once
//! recorders quiesce; the concurrent proptest in `tests/` pins both
//! properties down.
//!
//! Hand-rolled, dependency-free, MSRV 1.78.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// Number of log₂ buckets: bucket `b` holds samples with exactly `b`
/// significant bits, so `[0]`, `[1,1]`, `[2,3]`, `[4,7]`, … and bucket 64
/// holds samples with the top bit set. Covers the whole `u64` range.
const BUCKETS: usize = 65;

/// A monotonically increasing counter.
///
/// Record-time cost: one `Relaxed` `fetch_add`.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter starting at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current total.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// An instantaneous signed level (queue depth, open connections, …).
///
/// Record-time cost: one `Relaxed` atomic op.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A gauge starting at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the level.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Moves the level by `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Raises the level to `v` if it is below (`fetch_max`); for
    /// high-water marks published from several threads.
    #[inline]
    pub fn raise_to(&self, v: i64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// The current level.
    #[inline]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A log₂-bucketed histogram of `u64` samples.
///
/// Record-time cost: three `Relaxed` RMWs (bucket `fetch_add`, sum
/// `fetch_add`, max `fetch_max`) on a fixed-size array — no allocation
/// ever, no locks ever.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// The bucket index of a sample: its number of significant bits.
#[inline]
fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// The largest value a bucket can hold (its reported quantile bound).
#[inline]
fn bucket_upper(b: usize) -> u64 {
    if b == 0 {
        0
    } else if b >= 64 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// A point-in-time summary. Safe during concurrent recording (see the
    /// crate docs for the consistency model).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: [u64; BUCKETS] =
            std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed));
        let count: u64 = counts.iter().sum();
        let quantile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            // Rank of the sample that answers the quantile (1-based,
            // clamped into range so q=1.0 lands on the last sample).
            let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
            let mut seen = 0u64;
            for (b, &c) in counts.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    return bucket_upper(b);
                }
            }
            bucket_upper(BUCKETS - 1)
        };
        let max = self.max.load(Ordering::Relaxed);
        let p50 = quantile(0.50).min(max);
        let p95 = quantile(0.95).min(max);
        let p99 = quantile(0.99).min(max);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            p50,
            p95,
            p99,
            max,
        }
    }
}

/// Point-in-time summary of a [`Histogram`].
///
/// Quantiles are log₂-bucket upper bounds clamped to the exact observed
/// `max`, so `p50 ≤ p95 ≤ p99 ≤ max` always holds and each quantile
/// overestimates its true sample by less than 2×.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Number of recorded samples.
    pub count: u64,
    /// Exact sum of all samples.
    pub sum: u64,
    /// Median (bucket upper bound).
    pub p50: u64,
    /// 95th percentile (bucket upper bound).
    pub p95: u64,
    /// 99th percentile (bucket upper bound).
    pub p99: u64,
    /// Exact maximum sample.
    pub max: u64,
}

/// One named metric in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotone counter total.
    Counter(u64),
    /// Instantaneous level.
    Gauge(i64),
    /// Distribution summary.
    Histogram(HistogramSnapshot),
}

/// A point-in-time copy of every metric: `(name, value)` pairs in
/// registration order (registry metrics first, then any pushed extras).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// The metrics, in a stable order.
    pub metrics: Vec<(String, MetricValue)>,
}

impl Snapshot {
    /// An empty snapshot (for callers that assemble one by hand).
    pub fn new() -> Snapshot {
        Snapshot::default()
    }

    /// Appends a metric produced outside the registry (e.g. totals folded
    /// from another subsystem).
    pub fn push(&mut self, name: impl Into<String>, value: MetricValue) {
        self.metrics.push((name.into(), value));
    }

    /// Looks a metric up by exact name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.metrics.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Renders Prometheus-style text exposition.
    ///
    /// Counters and gauges become single samples with a `# TYPE` line;
    /// histograms are exported in summary form: `<name>{quantile="0.5"}`
    /// etc., plus `<name>_sum`, `<name>_count`, and `<name>_max`. Values
    /// keep the unit the metric was recorded in (this stack records
    /// nanoseconds and says so in metric names).
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.metrics {
            match value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!(
                        "# TYPE {name} summary\n\
                         {name}{{quantile=\"0.5\"}} {}\n\
                         {name}{{quantile=\"0.95\"}} {}\n\
                         {name}{{quantile=\"0.99\"}} {}\n\
                         {name}_max {}\n\
                         {name}_sum {}\n\
                         {name}_count {}\n",
                        h.p50, h.p95, h.p99, h.max, h.sum, h.count
                    ));
                }
            }
        }
        out
    }
}

/// Which kind a registered metric is (internal tag).
#[derive(Debug)]
enum Registered {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// Owns the name → metric table.
///
/// All registration happens at startup (registration allocates); the
/// returned `Arc` handles are what hot paths record through. Snapshots
/// iterate the table in registration order.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Vec<(&'static str, Registered)>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn check_name(&self, name: &'static str) {
        debug_assert!(
            !self.metrics.iter().any(|(n, _)| *n == name),
            "metric {name:?} registered twice"
        );
    }

    /// Registers a counter and returns its recording handle.
    pub fn counter(&mut self, name: &'static str) -> Arc<Counter> {
        self.check_name(name);
        let c = Arc::new(Counter::new());
        self.metrics.push((name, Registered::Counter(c.clone())));
        c
    }

    /// Registers a gauge and returns its recording handle.
    pub fn gauge(&mut self, name: &'static str) -> Arc<Gauge> {
        self.check_name(name);
        let g = Arc::new(Gauge::new());
        self.metrics.push((name, Registered::Gauge(g.clone())));
        g
    }

    /// Registers a histogram and returns its recording handle.
    pub fn histogram(&mut self, name: &'static str) -> Arc<Histogram> {
        self.check_name(name);
        let h = Arc::new(Histogram::new());
        self.metrics.push((name, Registered::Histogram(h.clone())));
        h
    }

    /// Snapshots every registered metric.
    pub fn snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::new();
        for (name, metric) in &self.metrics {
            let value = match metric {
                Registered::Counter(c) => MetricValue::Counter(c.get()),
                Registered::Gauge(g) => MetricValue::Gauge(g.get()),
                Registered::Histogram(h) => MetricValue::Histogram(h.snapshot()),
            };
            snap.push(*name, value);
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
        // Every value lands in a bucket whose upper bound is >= it and
        // within 2x of it.
        for shift in 0..64 {
            let v = 1u64 << shift;
            let up = bucket_upper(bucket_of(v));
            assert!(up >= v);
            assert!(up / 2 < v.max(1));
        }
    }

    #[test]
    fn counter_and_gauge() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let g = Gauge::new();
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
        g.raise_to(2);
        assert_eq!(g.get(), 4);
        g.raise_to(9);
        assert_eq!(g.get(), 9);
    }

    #[test]
    fn histogram_summary() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1106);
        assert_eq!(s.max, 1000);
        // Median sample is 3 -> bucket [2,3] -> upper bound 3.
        assert_eq!(s.p50, 3);
        // p95/p99 land on the largest sample's bucket, clamped to max.
        assert_eq!(s.p95, 1000);
        assert_eq!(s.p99, 1000);
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
    }

    #[test]
    fn empty_histogram_snapshot_is_zeroed() {
        assert_eq!(Histogram::new().snapshot(), HistogramSnapshot::default());
    }

    #[test]
    fn quantiles_overestimate_by_less_than_2x() {
        let h = Histogram::new();
        let mut samples: Vec<u64> = (0..1000).map(|i| (i * i) % 50_000).collect();
        for &v in &samples {
            h.record(v);
        }
        samples.sort_unstable();
        let s = h.snapshot();
        for (q, got) in [(0.50, s.p50), (0.95, s.p95), (0.99, s.p99)] {
            let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
            let exact = samples[rank - 1];
            assert!(got >= exact, "q{q}: {got} < exact {exact}");
            assert!(
                got <= exact.saturating_mul(2).max(1),
                "q{q}: {got} > 2x {exact}"
            );
        }
        assert_eq!(s.max, *samples.last().unwrap());
    }

    #[test]
    fn registry_snapshot_and_exposition() {
        let mut reg = Registry::new();
        let c = reg.counter("rted_requests_total");
        let g = reg.gauge("rted_queue_depth");
        let h = reg.histogram("rted_latency_ns");
        c.add(3);
        g.set(2);
        h.record(1500);
        let mut snap = reg.snapshot();
        snap.push("extra_total", MetricValue::Counter(9));
        assert_eq!(
            snap.get("rted_requests_total"),
            Some(&MetricValue::Counter(3))
        );
        assert_eq!(snap.get("rted_queue_depth"), Some(&MetricValue::Gauge(2)));
        let Some(MetricValue::Histogram(hs)) = snap.get("rted_latency_ns") else {
            panic!("histogram missing");
        };
        assert_eq!(hs.count, 1);
        assert_eq!(hs.sum, 1500);
        assert_eq!(hs.max, 1500);

        let text = snap.render_prometheus();
        assert!(text.contains("# TYPE rted_requests_total counter\nrted_requests_total 3\n"));
        assert!(text.contains("# TYPE rted_queue_depth gauge\nrted_queue_depth 2\n"));
        assert!(text.contains("# TYPE rted_latency_ns summary\n"));
        assert!(text.contains("rted_latency_ns{quantile=\"0.5\"} "));
        assert!(text.contains("rted_latency_ns_sum 1500\n"));
        assert!(text.contains("rted_latency_ns_count 1\n"));
        assert!(text.contains("rted_latency_ns_max 1500\n"));
        assert!(text.contains("extra_total 9\n"));
    }

    #[test]
    fn snapshot_order_is_registration_order() {
        let mut reg = Registry::new();
        reg.counter("b");
        reg.counter("a");
        reg.histogram("c");
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.metrics.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["b", "a", "c"]);
    }
}
