//! The concurrency contract of the metrics layer, as properties: any
//! number of threads hammering one shared histogram + counter set must
//! (a) leave totals exactly equal to the sum of what each thread
//! recorded, and (b) never make a snapshot taken *during* recording
//! panic or tear (quantiles stay ordered, observed counts stay within
//! the number of records issued).

use proptest::prelude::*;
use rted_obs::{Counter, Gauge, Histogram, MetricValue, Registry};
use std::sync::atomic::{AtomicBool, Ordering};

/// Per-thread work item: `threads` × `per_thread` samples, derived
/// deterministically from a seed so each thread knows its own total.
fn samples_for(seed: u64, thread: usize, per_thread: usize) -> Vec<u64> {
    let mut state = seed ^ ((thread as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    (0..per_thread)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // Spread across many buckets: shift by a pseudo-random 0..48.
            (state >> 16) >> (state % 48)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Totals after a concurrent hammering equal the sum of per-thread
    /// contributions exactly — no lost updates.
    #[test]
    fn concurrent_totals_are_exact(seed in any::<u64>(), threads in 2usize..6, per_thread in 1usize..400) {
        let hist = Histogram::new();
        let counter = Counter::new();
        let gauge = Gauge::new();
        let plans: Vec<Vec<u64>> = (0..threads)
            .map(|t| samples_for(seed, t, per_thread))
            .collect();
        let (hist_ref, counter_ref, gauge_ref) = (&hist, &counter, &gauge);
        std::thread::scope(|scope| {
            for plan in &plans {
                scope.spawn(move || {
                    for &v in plan {
                        hist_ref.record(v);
                        counter_ref.add(v % 7 + 1);
                        gauge_ref.add(1);
                        gauge_ref.add(-1);
                    }
                });
            }
        });
        let expected_count = (threads * per_thread) as u64;
        let expected_sum: u64 = plans.iter().flatten().sum();
        let expected_counter: u64 = plans.iter().flatten().map(|v| v % 7 + 1).sum();
        let expected_max: u64 = plans.iter().flatten().copied().max().unwrap_or(0);
        let s = hist.snapshot();
        prop_assert_eq!(s.count, expected_count);
        prop_assert_eq!(s.sum, expected_sum);
        prop_assert_eq!(s.max, expected_max);
        prop_assert_eq!(hist.count(), expected_count);
        prop_assert_eq!(counter.get(), expected_counter);
        prop_assert_eq!(gauge.get(), 0);
    }

    /// Snapshots taken while recorders are mid-flight never panic and
    /// never produce torn nonsense: counts/sums are bounded by what has
    /// been issued, quantiles stay ordered, and successive snapshots of
    /// a monotone metric never go backwards.
    #[test]
    fn snapshot_during_record_never_tears(seed in any::<u64>(), threads in 2usize..5) {
        let mut reg = Registry::new();
        let hist = reg.histogram("t_ns");
        let counter = reg.counter("t_total");
        let per_thread = 600usize;
        let plans: Vec<Vec<u64>> = (0..threads)
            .map(|t| samples_for(seed, t, per_thread))
            .collect();
        let total_sum: u64 = plans.iter().flatten().sum();
        let total_count = (threads * per_thread) as u64;
        let done = AtomicBool::new(false);

        let (hist_ref, counter_ref) = (&hist, &counter);
        std::thread::scope(|scope| {
            for plan in &plans {
                scope.spawn(move || {
                    for &v in plan {
                        hist_ref.record(v);
                        counter_ref.inc();
                    }
                });
            }
            // The snapshotting thread races the recorders on purpose.
            let reg = &reg;
            let done = &done;
            scope.spawn(move || {
                let mut last_count = 0u64;
                while !done.load(Ordering::Relaxed) {
                    let snap = reg.snapshot();
                    let Some(MetricValue::Histogram(h)) = snap.get("t_ns") else {
                        panic!("histogram vanished from snapshot");
                    };
                    let Some(&MetricValue::Counter(c)) = snap.get("t_total") else {
                        panic!("counter vanished from snapshot");
                    };
                    assert!(h.count <= total_count, "count tore: {} > {total_count}", h.count);
                    assert!(c <= total_count);
                    assert!(h.sum <= total_sum, "sum tore: {} > {total_sum}", h.sum);
                    assert!(h.p50 <= h.p95 && h.p95 <= h.p99 && h.p99 <= h.max);
                    assert!(h.count >= last_count, "count went backwards");
                    last_count = h.count;
                    // Exercise the text path under racing too.
                    let text = snap.render_prometheus();
                    assert!(text.contains("t_ns_count"));
                }
            });
            // Scoped recorders finish, then release the snapshotter. The
            // flag is set by the scope's main thread after recorder joins
            // happen implicitly at scope end -- so instead join manually:
            // recorders are the first `threads` spawns; simplest correct
            // form is to wait for the counter to reach the total.
            while counter.get() < total_count {
                std::hint::spin_loop();
            }
            done.store(true, Ordering::Relaxed);
        });

        let s = hist.snapshot();
        prop_assert_eq!(s.count, total_count);
        prop_assert_eq!(s.sum, total_sum);
    }
}
