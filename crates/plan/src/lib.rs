//! `rted-plan` — the adaptive query planner's decision core.
//!
//! RTED's central idea is *dynamic strategy selection*: compute, per
//! input, the decomposition strategy with the fewest subproblems instead
//! of committing to one algorithm shape (Pawlik & Augsten, PVLDB 2011,
//! §5). This crate lifts the same idea from one distance computation to
//! the whole query pipeline. A query has three analogous degrees of
//! freedom, all of which the index historically fixed at construction
//! time:
//!
//! 1. **Candidate generation** — linear size-window scan vs.
//!    metric-tree (vantage-point) routing;
//! 2. **Verification** — Zhang–Shasha for pairs small enough that
//!    RTED's strategy-computation overhead dominates, the bounded-τ
//!    early-exit kernel when the query supplies a budget, full RTED
//!    otherwise;
//! 3. **Filter-stage order** — cheapest-first is only optimal when every
//!    stage prunes equally; the measured ranking is
//!    selectivity-per-cost.
//!
//! Every choice is *answer-invariant* by construction: all verifier
//! arms compute the same exact distance, both candidate generators
//! return the same neighbour set, and reordering keep-all-stages
//! pipelines only changes which stage gets prune *credit* (a pair is
//! pruned iff **any** stage bound reaches the threshold — a property of
//! the set of stages, not their order). The planner can therefore never
//! change a result, only the work done to produce it; `rted-index`
//! proptests byte-equality against both fixed configurations.
//!
//! This crate is dependency-free and holds the pure decision logic plus
//! the lock-free observation accumulators; `rted-index` owns the
//! integration (verifier dispatch, pipeline reordering, counters).

use std::sync::atomic::{AtomicU64, Ordering};

/// Which candidate generator a plan selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CandidateGen {
    /// The sorted-size linear scan (window + staged filters).
    Linear,
    /// Vantage-point-tree routing.
    Metric,
}

impl CandidateGen {
    /// Stable lowercase name, used in metrics and wire reports.
    pub fn name(self) -> &'static str {
        match self {
            CandidateGen::Linear => "linear",
            CandidateGen::Metric => "metric",
        }
    }
}

/// Planner tuning. Defaults are deliberately conservative: they only
/// move work between *provably equivalent* plans, so the worst case of
/// a bad constant is lost speed, never a wrong answer.
#[derive(Debug, Clone, Copy)]
pub struct PlannerConfig {
    /// A pair is verified with Zhang–Shasha instead of RTED when the
    /// product of its tree sizes (an upper-estimate of the DP cells a
    /// single left-path decomposition computes) is at or below this —
    /// below it, RTED's strategy computation costs more than any
    /// subproblem count it could save.
    pub zs_cell_cutoff: u64,
    /// Observed queries required on an arm before its rate is trusted
    /// for the stage-reorder decision (hysteresis against thrash).
    pub reorder_after: u64,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            zs_cell_cutoff: 256,
            reorder_after: 8,
        }
    }
}

/// Lock-free accumulators for one candidate-generation arm.
#[derive(Debug, Default)]
pub struct ArmStats {
    queries: AtomicU64,
    candidates: AtomicU64,
    verified: AtomicU64,
}

impl ArmStats {
    /// Folds one completed query in (relaxed atomics; recording races
    /// only ever blur the cost estimate, never an answer).
    pub fn observe(&self, candidates: u64, verified: u64) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.candidates.fetch_add(candidates, Ordering::Relaxed);
        self.verified.fetch_add(verified, Ordering::Relaxed);
    }

    /// Queries observed on this arm.
    pub fn queries(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// Exact TED computations per candidate — the arm's dominant cost,
    /// `None` until the arm has been sampled. On the metric arm this
    /// includes routing distances, so the two arms are compared on the
    /// same unit: exact distance computations bought per candidate.
    pub fn rate(&self) -> Option<f64> {
        let q = self.queries();
        let c = self.candidates.load(Ordering::Relaxed);
        if q == 0 || c == 0 {
            return None;
        }
        Some(self.verified.load(Ordering::Relaxed) as f64 / c as f64)
    }
}

/// What the planner has seen: one [`ArmStats`] per candidate generator,
/// fed by every query regardless of which component chose the arm — so
/// the crossover estimate keeps learning even while the planner is
/// disabled or overridden.
#[derive(Debug, Default)]
pub struct Observations {
    /// Linear-scan arm.
    pub linear: ArmStats,
    /// Metric-tree arm.
    pub metric: ArmStats,
}

impl Observations {
    /// Chooses the candidate generator for the next query.
    ///
    /// `metric_eligible` is whether the metric path is even available
    /// for this query (metric trees enabled, a finite positive budget
    /// or `k > 0`, non-empty corpus). The rule is deterministic for a
    /// serial query sequence:
    ///
    /// 1. metric ineligible → **linear** (the only sound plan);
    /// 2. metric unsampled → **metric** (the cold start honours the
    ///    *configured* generator — a caller who enabled metric trees
    ///    asked for routing, and the run doubles as the arm's first
    ///    sample, so one-shot processes behave exactly as configured);
    /// 3. linear unsampled → **linear** (one baseline probe);
    /// 4. otherwise → the arm with fewer exact TED computations per
    ///    candidate; ties go **linear** (cheaper constants, and its
    ///    verification parallelizes).
    pub fn choose(&self, metric_eligible: bool) -> CandidateGen {
        if !metric_eligible {
            return CandidateGen::Linear;
        }
        match (self.linear.rate(), self.metric.rate()) {
            (_, None) => CandidateGen::Metric,
            (None, Some(_)) => CandidateGen::Linear,
            (Some(lin), Some(met)) => {
                if met < lin {
                    CandidateGen::Metric
                } else {
                    CandidateGen::Linear
                }
            }
        }
    }
}

/// Static per-stage evaluation cost, in rough "sketch-comparison units"
/// (size compare = 1). Only the *ratios* matter: they weight observed
/// prune counts into selectivity-per-cost. Unknown stages are priced
/// like the most expensive known one, so a custom stage is never
/// promoted ahead of measured cheap ones by default.
pub fn stage_cost(name: &str) -> u64 {
    match name {
        "size" => 1,
        "depth" => 1,
        "leaf" => 1,
        "degree" => 4,
        "histogram" => 16,
        "pqgram" => 64,
        _ => 64,
    }
}

/// Orders filter stages by measured selectivity-per-cost, descending —
/// the keep-all-stages reorder. Two sound constraints:
///
/// * **every stage stays** — the surviving-candidate set is determined
///   by the set of stages, so answers cannot change;
/// * **`size` stays first** when present — the sorted-size
///   window/early-break optimization is only a faithful stand-in for
///   the stage when nothing precedes it.
///
/// The sort is stable, so unmeasured stages (all-zero prune counts)
/// keep their cheapest-first construction order.
pub fn order_stages(observed: &[(&'static str, u64)]) -> Vec<&'static str> {
    let mut rest: Vec<(&'static str, u64)> = Vec::new();
    let mut out: Vec<&'static str> = Vec::new();
    for &(name, pruned) in observed {
        if name == "size" && out.is_empty() {
            out.push(name);
        } else {
            rest.push((name, pruned));
        }
    }
    // Selectivity-per-cost as a cross-multiplied integer comparison:
    // pruned_a / cost_a > pruned_b / cost_b  ⇔  pruned_a·cost_b > pruned_b·cost_a.
    rest.sort_by(|a, b| {
        let lhs = (a.1 as u128) * stage_cost(b.0) as u128;
        let rhs = (b.1 as u128) * stage_cost(a.0) as u128;
        rhs.cmp(&lhs)
    });
    out.extend(rest.into_iter().map(|(name, _)| name));
    out
}

/// The decision record for one query (or one `explain` probe): what ran
/// (or would run) and the signals that drove it.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanReport {
    /// Chosen candidate generator.
    pub candidate_gen: CandidateGen,
    /// Filter stages in execution order.
    pub stage_order: Vec<&'static str>,
    /// Pairs at or below this size product verify via Zhang–Shasha.
    pub zs_cell_cutoff: u64,
    /// Whether verification runs the bounded-τ early-exit kernel
    /// (a finite budget exists) above the Zhang–Shasha cutoff.
    pub budgeted: bool,
    /// Observed linear-arm cost (exact TEDs per candidate), if sampled.
    pub linear_rate: Option<f64>,
    /// Observed metric-arm cost (exact TEDs per candidate), if sampled.
    pub metric_rate: Option<f64>,
    /// Queries observed across both arms.
    pub observed_queries: u64,
}

impl PlanReport {
    /// One human-readable line per decision, for CLI reports.
    pub fn summary_lines(&self) -> Vec<String> {
        let rate = |r: Option<f64>| match r {
            None => "unsampled".to_string(),
            Some(v) => format!("{v:.4} ted/candidate"),
        };
        vec![
            format!(
                "candidate_gen {} (linear {}, metric {}, {} queries observed)",
                self.candidate_gen.name(),
                rate(self.linear_rate),
                rate(self.metric_rate),
                self.observed_queries,
            ),
            format!(
                "verifier zhang-shasha <= {} cells, then {}",
                self.zs_cell_cutoff,
                if self.budgeted {
                    "bounded-tau kernel"
                } else {
                    "full rted"
                },
            ),
            format!("stage_order {}", self.stage_order.join(",")),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn choose_honours_config_cold_then_probes_then_exploits() {
        let obs = Observations::default();
        // Ineligible queries are always linear, sampled or not.
        assert_eq!(obs.choose(false), CandidateGen::Linear);
        // Cold start on an eligible query: the configured (metric)
        // generator, which doubles as the metric arm's first sample.
        assert_eq!(obs.choose(true), CandidateGen::Metric);
        obs.metric.observe(100, 10);
        // Metric sampled, linear untried: one baseline probe.
        assert_eq!(obs.choose(true), CandidateGen::Linear);
        obs.linear.observe(100, 40);
        // Metric measured cheaper: exploit it (but never when ineligible).
        assert_eq!(obs.choose(true), CandidateGen::Metric);
        assert_eq!(obs.choose(false), CandidateGen::Linear);
        // Flood the metric arm with bad samples: the crossover flips back.
        obs.metric.observe(100, 95);
        obs.metric.observe(100, 95);
        assert_eq!(obs.choose(true), CandidateGen::Linear);
    }

    #[test]
    fn rate_is_none_until_observed() {
        let arm = ArmStats::default();
        assert_eq!(arm.rate(), None);
        arm.observe(200, 50);
        assert_eq!(arm.rate(), Some(0.25));
        assert_eq!(arm.queries(), 1);
    }

    #[test]
    fn ties_go_linear() {
        let obs = Observations::default();
        obs.linear.observe(100, 30);
        obs.metric.observe(100, 30);
        assert_eq!(obs.choose(true), CandidateGen::Linear);
    }

    #[test]
    fn order_pins_size_first_and_ranks_by_selectivity_per_cost() {
        let observed = [
            ("size", 5u64),
            ("depth", 0),
            ("leaf", 40),
            ("degree", 40),
            ("histogram", 600),
            ("pqgram", 10),
        ];
        let order = order_stages(&observed);
        assert_eq!(order[0], "size");
        // leaf (40/1) beats histogram (600/16 = 37.5) beats degree (40/4)
        // beats depth (0) — and pqgram's 10/64 lands between.
        assert_eq!(
            order,
            vec!["size", "leaf", "histogram", "degree", "pqgram", "depth"]
        );
    }

    #[test]
    fn order_without_observations_is_construction_order() {
        let observed = [
            ("size", 0u64),
            ("depth", 0),
            ("leaf", 0),
            ("degree", 0),
            ("histogram", 0),
            ("pqgram", 0),
        ];
        assert_eq!(
            order_stages(&observed),
            vec!["size", "depth", "leaf", "degree", "histogram", "pqgram"]
        );
    }

    #[test]
    fn summary_lines_name_every_decision() {
        let report = PlanReport {
            candidate_gen: CandidateGen::Metric,
            stage_order: vec!["size", "leaf"],
            zs_cell_cutoff: 256,
            budgeted: true,
            linear_rate: Some(0.5),
            metric_rate: Some(0.125),
            observed_queries: 12,
        };
        let lines = report.summary_lines();
        assert!(lines[0].contains("candidate_gen metric"));
        assert!(lines[1].contains("256 cells"));
        assert!(lines[1].contains("bounded-tau"));
        assert!(lines[2].contains("size,leaf"));
    }
}
