//! Property tests for the candidate-generation subsystem: the metric
//! (vantage-point) tree must return **byte-identical** `range`/`top_k`/
//! `join` results to the linear scan on any corpus — before and after
//! insert/remove churn, across the tombstone and overflow machinery and
//! threshold rebuilds — and the pq-gram stage must be a sound lower
//! bound against exact RTED.

use proptest::prelude::*;
use rted_core::bounds::{LowerBound, PqGramBound, TreeSketch};
use rted_core::ted;
use rted_datasets::shapes::{perturb_labels, Shape, DEFAULT_ALPHABET};
use rted_index::{MetricConfig, TreeIndex};
use rted_tree::Tree;

fn arb_shape_tree(max: usize) -> impl Strategy<Value = Tree<u32>> {
    (0..Shape::ALL.len(), 1..=max, any::<u32>())
        .prop_map(|(s, n, seed)| Shape::ALL[s].generate(n, seed as u64))
}

/// A corpus with a planted near-duplicate so queries have close pairs.
fn arb_corpus(max_trees: usize, max_nodes: usize) -> impl Strategy<Value = Vec<Tree<u32>>> {
    proptest::collection::vec(arb_shape_tree(max_nodes), 2..=max_trees).prop_map(|mut trees| {
        let dup = perturb_labels(&trees[0], 1, DEFAULT_ALPHABET, 99);
        trees.push(dup);
        trees
    })
}

/// An insert/remove script applied identically to both indexes.
type Churn = Vec<(bool, u32, Tree<u32>)>;

fn arb_churn(max_ops: usize, max_nodes: usize) -> impl Strategy<Value = Churn> {
    proptest::collection::vec(
        (any::<bool>(), any::<u32>(), arb_shape_tree(max_nodes)),
        0..=max_ops,
    )
}

/// Applies the same mutation script to an index, returning the live ids
/// it ended with.
fn apply_churn(index: &mut TreeIndex<u32>, ops: &Churn) {
    for (is_remove, pick, tree) in ops {
        if *is_remove && index.corpus().len() > 1 {
            let live: Vec<usize> = index.corpus().iter().map(|(id, _)| id).collect();
            index.remove(live[*pick as usize % live.len()]);
        } else {
            index.insert(tree.clone());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Metric-tree range ≡ linear range, for any tau, including after
    /// churn (tombstones, pending overflow, threshold rebuilds).
    #[test]
    fn metric_range_identical_to_linear(
        corpus in arb_corpus(7, 18),
        ops in arb_churn(8, 14),
        q in arb_shape_tree(18),
        tau_int in 0..25usize,
    ) {
        let tau = tau_int as f64;
        let mut linear = TreeIndex::build(corpus.iter().cloned());
        let mut metric = TreeIndex::build(corpus.iter().cloned()).with_metric_tree(true);
        // Force a build *before* the churn so tombstones and the pending
        // overflow (not just a fresh build) are exercised.
        let _ = metric.range(&q, 3.0);
        apply_churn(&mut linear, &ops);
        apply_churn(&mut metric, &ops);

        let a = linear.range(&q, tau);
        let b = metric.range(&q, tau);
        prop_assert_eq!(&a.neighbors, &b.neighbors, "tau {}", tau);
        prop_assert_eq!(a.stats.candidates, b.stats.candidates);
        // The metric path reports its own counters.
        if tau > 0.0 {
            prop_assert!(
                b.stats.metric.nodes_visited + b.stats.metric.pending_scanned > 0
            );
        }
        prop_assert_eq!(a.stats.metric, rted_index::MetricStats::default());
    }

    /// Metric-tree top-k ≡ linear top-k (exact (distance, id) ordering,
    /// tie-breaks included), for any k, including after churn.
    #[test]
    fn metric_top_k_identical_to_linear(
        corpus in arb_corpus(7, 18),
        ops in arb_churn(8, 14),
        q in arb_shape_tree(18),
        k in 1..10usize,
    ) {
        let mut linear = TreeIndex::build(corpus.iter().cloned());
        let mut metric = TreeIndex::build(corpus.iter().cloned()).with_metric_tree(true);
        let _ = metric.top_k(&q, 2);
        apply_churn(&mut linear, &ops);
        apply_churn(&mut metric, &ops);

        let a = linear.top_k(&q, k);
        let b = metric.top_k(&q, k);
        prop_assert_eq!(&a.neighbors, &b.neighbors, "k {}", k);
        prop_assert_eq!(a.neighbors.len(), k.min(linear.corpus().len()));
    }

    /// Metric-tree join ≡ linear join: same pairs, same distances, same
    /// order.
    #[test]
    fn metric_join_identical_to_linear(
        corpus in arb_corpus(7, 16),
        ops in arb_churn(6, 12),
        tau_int in 1..20usize,
    ) {
        let tau = tau_int as f64;
        let mut linear = TreeIndex::build(corpus.iter().cloned());
        let mut metric = TreeIndex::build(corpus.iter().cloned()).with_metric_tree(true);
        let _ = metric.join(2.0);
        apply_churn(&mut linear, &ops);
        apply_churn(&mut metric, &ops);

        let a = linear.join(tau);
        let b = metric.join(tau);
        prop_assert_eq!(&a.matches, &b.matches, "tau {}", tau);
        prop_assert_eq!(a.stats.candidates, b.stats.candidates);
    }

    /// An aggressive churn threshold (rebuild after every mutation) and a
    /// degenerate leaf size must not change any answer.
    #[test]
    fn metric_config_extremes_are_invisible(
        corpus in arb_corpus(6, 14),
        ops in arb_churn(5, 10),
        q in arb_shape_tree(14),
        tau_int in 1..15usize,
    ) {
        let tau = tau_int as f64;
        let mut linear = TreeIndex::build(corpus.iter().cloned());
        let mut eager = TreeIndex::build(corpus.iter().cloned())
            .with_metric_tree(true)
            .with_metric_config(MetricConfig { leaf_size: 1, rebuild_fraction: 0.0 });
        let _ = eager.range(&q, tau);
        apply_churn(&mut linear, &ops);
        apply_churn(&mut eager, &ops);
        prop_assert_eq!(&linear.range(&q, tau).neighbors, &eager.range(&q, tau).neighbors);
        prop_assert_eq!(&linear.top_k(&q, 4).neighbors, &eager.top_k(&q, 4).neighbors);
    }

    /// The pq-gram stage never exceeds exact RTED (dedicated, beyond the
    /// all-stages sweep in bound_soundness.rs: adversarially *similar*
    /// pairs, where an unsound bound would actually drop matches).
    #[test]
    fn pqgram_bound_is_sound_on_near_duplicates(
        base in arb_shape_tree(30),
        edits in 1..5usize,
        seed in any::<u32>(),
    ) {
        let near = perturb_labels(&base, edits, DEFAULT_ALPHABET, seed as u64);
        let d = ted(&base, &near);
        let (sf, sg) = (TreeSketch::new(&base), TreeSketch::new(&near));
        let lb = LowerBound::<u32>::bound(&PqGramBound, &sf, &sg);
        prop_assert!(lb <= d, "pqgram lb {lb} > exact ted {d}");
    }
}

/// Unbounded queries fall back to the linear scan (no pruning is possible
/// at tau = ∞, and n full traversals would be strictly worse), and
/// tau ≤ 0 stays empty.
#[test]
fn metric_edge_cases_match_linear() {
    let trees: Vec<Tree<u32>> = (0..8)
        .map(|i| Shape::ALL[i % Shape::ALL.len()].generate(10 + i, i as u64))
        .collect();
    let linear = TreeIndex::build(trees.iter().cloned());
    let metric = TreeIndex::build(trees.iter().cloned()).with_metric_tree(true);
    let q = Shape::Mixed.generate(12, 99);

    let (a, b) = (
        linear.range(&q, f64::INFINITY),
        metric.range(&q, f64::INFINITY),
    );
    assert_eq!(a.neighbors, b.neighbors);
    assert_eq!(b.stats.metric, rted_index::MetricStats::default());

    for tau in [0.0, -2.0] {
        assert!(metric.range(&q, tau).neighbors.is_empty());
    }
    assert!(metric.top_k(&q, 0).neighbors.is_empty());
    // Unbounded join also falls back (and agrees).
    let (ja, jb) = (linear.join(f64::INFINITY), metric.join(f64::INFINITY));
    assert_eq!(ja.matches, jb.matches);
    assert_eq!(jb.stats.metric, rted_index::MetricStats::default());

    // Empty corpus: no build, no panic.
    let empty = TreeIndex::build(Vec::<Tree<u32>>::new()).with_metric_tree(true);
    assert!(empty.range(&q, 5.0).neighbors.is_empty());
    assert!(empty.top_k(&q, 3).neighbors.is_empty());
    assert_eq!(empty.metric_snapshot().built, 0);
}

/// A forest of identical trees — every pairwise distance 0, the
/// worst case for value-based vantage splits — must neither degenerate
/// into an O(n)-deep spine (O(n²) build distances) nor change answers.
#[test]
fn equidistant_corpus_does_not_degenerate() {
    let base = Shape::Random.generate(12, 5);
    let trees: Vec<Tree<u32>> = (0..64).map(|_| base.clone()).collect();
    let linear = TreeIndex::build(trees.iter().cloned());
    let metric = TreeIndex::build(trees.iter().cloned()).with_metric_tree(true);
    let a = linear.range(&base, 1.0);
    let b = metric.range(&base, 1.0);
    assert_eq!(a.neighbors, b.neighbors);
    assert_eq!(b.neighbors.len(), 64);
    // Balanced (index-median) splits: ~n·log n build distances, not n²/2.
    let build = metric.metric_snapshot().build_ted;
    assert!(
        build < 64 * 10,
        "build spent {build} exact distances — vantage split degenerated"
    );
    assert_eq!(
        linear.top_k(&base, 7).neighbors,
        metric.top_k(&base, 7).neighbors
    );
}

/// Swapping the verifier invalidates a built metric tree: routing must
/// never compare fresh distances against radii recorded under another
/// verifier's geometry.
#[test]
fn verifier_swap_rebuilds_the_metric_tree() {
    use rted_core::Algorithm;
    let trees: Vec<Tree<u32>> = (0..12)
        .map(|i| Shape::ALL[i % Shape::ALL.len()].generate(8 + i, i as u64))
        .collect();
    let q = Shape::Mixed.generate(10, 3);
    let metric = TreeIndex::build(trees.iter().cloned()).with_metric_tree(true);
    let _ = metric.range(&q, 5.0); // build under the default verifier
    assert!(metric.metric_snapshot().built > 0);
    let metric = metric.with_algorithm(Algorithm::ZhangL);
    assert_eq!(
        metric.metric_snapshot().built,
        0,
        "with_verifier must drop the stale tree"
    );
    let linear = TreeIndex::build(trees.iter().cloned()).with_algorithm(Algorithm::ZhangL);
    assert_eq!(
        linear.range(&q, 5.0).neighbors,
        metric.range(&q, 5.0).neighbors
    );
}

/// The snapshot reflects build, overflow, tombstones, and churn-triggered
/// drops.
#[test]
fn metric_snapshot_tracks_lifecycle() {
    let trees: Vec<Tree<u32>> = (0..10)
        .map(|i| Shape::ALL[i % Shape::ALL.len()].generate(8 + i, i as u64))
        .collect();
    let mut index = TreeIndex::build(trees.iter().cloned())
        .with_metric_tree(true)
        .with_metric_config(MetricConfig {
            leaf_size: 2,
            rebuild_fraction: 0.5,
        });
    let snap = index.metric_snapshot();
    assert!(snap.enabled);
    assert_eq!(snap.built, 0, "tree is built lazily");

    let q = Shape::Mixed.generate(10, 7);
    let res = index.range(&q, 4.0);
    assert!(res.stats.metric.nodes_visited > 0);
    let snap = index.metric_snapshot();
    assert_eq!(snap.built, 10);
    assert!(snap.build_ted > 0);

    // One insert + one remove: absorbed incrementally (churn 2 ≤ 0.5×10).
    let id = index.insert(Shape::Random.generate(9, 42));
    assert!(index.remove(0));
    let snap = index.metric_snapshot();
    assert_eq!(snap.built, 10);
    assert_eq!(snap.pending, 1);
    assert_eq!(snap.tombstones, 1);

    // Queries still answer correctly mid-churn (the inserted tree is
    // reachable via the overflow, the removed one is gone).
    let hit = index.range(index.corpus().tree(id), 1.0);
    assert!(hit.neighbors.iter().any(|n| n.id == id));
    assert!(!index.range(&q, 1e9).neighbors.iter().any(|n| n.id == 0));

    // Push churn past the threshold: the tree drops, then lazily rebuilds
    // over the current live set.
    for i in 0..5 {
        index.insert(Shape::Random.generate(7 + i, 100 + i as u64));
    }
    let snap = index.metric_snapshot();
    assert_eq!(snap.built, 0, "churn threshold must drop the tree");
    let _ = index.top_k(&q, 3);
    let snap = index.metric_snapshot();
    assert_eq!(snap.built, index.corpus().len());
    assert_eq!(snap.pending, 0);
    assert_eq!(snap.tombstones, 0);
}
