//! Crash-injection coverage for torn-tail repair: a store file truncated
//! at **every** byte boundary must reopen (via salvage) with exactly the
//! longest valid segment prefix — never a corrupt tree, never data from
//! the torn tail, never a rejected file when the header is intact.
//!
//! The file under test is built through the real [`CorpusStore`] API
//! (create + insert batch + removals + insert batch = four segments), and
//! the expected recovered state for each truncation point comes from an
//! independent model: the per-segment snapshots of live `(id, bracket)`
//! pairs recorded during construction.

use rted_index::persist::HEADER_LEN;
use rted_index::{salvage_corpus, CorpusStore, PersistError};
use rted_tree::{parse_bracket, to_bracket, Tree};
use std::path::PathBuf;

fn t(s: &str) -> Tree<String> {
    parse_bracket(s).unwrap()
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rted-repair-tests-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Live `(id, bracket)` pairs of a corpus, ascending by id.
fn live_view(corpus: &rted_index::TreeCorpus<String>) -> Vec<(usize, String)> {
    corpus
        .iter()
        .map(|(id, e)| (id, to_bracket(e.tree())))
        .collect()
}

/// Segment end offsets (exclusive), derived by walking the segment
/// headers: `bounds[k]` is the file length that holds exactly `k`
/// complete segments.
fn segment_bounds(buf: &[u8]) -> Vec<usize> {
    let mut bounds = vec![HEADER_LEN];
    let mut pos = HEADER_LEN;
    while pos + 20 <= buf.len() {
        let len = u64::from_le_bytes(buf[pos + 4..pos + 12].try_into().unwrap()) as usize;
        pos += 20 + len;
        assert!(pos <= buf.len(), "segment walk overran the file");
        bounds.push(pos);
    }
    assert_eq!(*bounds.last().unwrap(), buf.len());
    bounds
}

/// Builds the four-segment store file and the model snapshot after each
/// segment: `snapshots[k]` is the live view once `k` segments replayed.
fn build_fixture(path: &PathBuf) -> (Vec<u8>, Vec<Vec<(usize, String)>>) {
    let initial: Vec<String> = (0..6)
        .map(|i| format!("{{root{i}{{a{i}}}{{b{{c{i}}}}}}}"))
        .collect();
    let batch1: Vec<String> = (0..4).map(|i| format!("{{x{i}{{y{i}{{z}}}}}}")).collect();
    let removed = [1usize, 3, 8];
    let batch2: Vec<String> = (0..3).map(|i| format!("{{w{i}}}")).collect();

    let mut snapshots: Vec<Vec<(usize, String)>> = vec![Vec::new()];
    let mut model: Vec<Option<String>> = Vec::new();
    let snap = |model: &Vec<Option<String>>| -> Vec<(usize, String)> {
        model
            .iter()
            .enumerate()
            .filter_map(|(id, s)| s.as_ref().map(|s| (id, s.clone())))
            .collect()
    };

    let mut store = CorpusStore::create(path, initial.iter().map(|s| t(s))).unwrap();
    model.extend(initial.iter().cloned().map(Some));
    snapshots.push(snap(&model));

    store.insert_all(batch1.iter().map(|s| t(s))).unwrap();
    model.extend(batch1.iter().cloned().map(Some));
    snapshots.push(snap(&model));

    store.remove_all(&removed).unwrap();
    for &id in &removed {
        model[id] = None;
    }
    snapshots.push(snap(&model));

    store.insert_all(batch2.iter().map(|s| t(s))).unwrap();
    model.extend(batch2.iter().cloned().map(Some));
    snapshots.push(snap(&model));

    (std::fs::read(path).unwrap(), snapshots)
}

#[test]
fn every_truncation_point_recovers_the_longest_valid_prefix() {
    let path = scratch("every-cut.idx");
    let (bytes, snapshots) = build_fixture(&path);
    let bounds = segment_bounds(&bytes);
    assert_eq!(bounds.len() - 1, 4, "fixture should have four segments");
    let final_next_id = 13; // 6 initial + 4 batch1 + 3 batch2

    for cut in 0..=bytes.len() {
        let torn = &bytes[..cut];
        if cut < HEADER_LEN {
            // No usable header — nothing to salvage; must error, not panic.
            assert!(
                salvage_corpus(torn).is_err(),
                "cut {cut}: headerless file accepted"
            );
            continue;
        }
        let salvage = salvage_corpus(torn)
            .unwrap_or_else(|e| panic!("cut {cut}: salvage failed on intact header: {e}"));
        // Longest valid prefix: the last segment boundary at or below the cut.
        let k = bounds.iter().rposition(|&b| b <= cut).unwrap();
        assert_eq!(
            salvage.keep_len, bounds[k],
            "cut {cut}: keep_len is not the segment boundary"
        );
        assert_eq!(salvage.report.segments_recovered, k, "cut {cut}");
        assert_eq!(
            salvage.report.bytes_dropped,
            (cut - bounds[k]) as u64,
            "cut {cut}"
        );
        assert_eq!(
            live_view(&salvage.corpus),
            snapshots[k],
            "cut {cut}: recovered corpus is not the {k}-segment snapshot"
        );
        // The stored header's next_id (the final one) is always honored,
        // so recovered stores never reissue ids the torn tail assigned.
        assert_eq!(salvage.corpus.id_bound(), final_next_id, "cut {cut}");
        // Every recovered tree is structurally sound (re-parses to itself).
        for (_, bracket) in live_view(&salvage.corpus) {
            assert_eq!(to_bracket(&t(&bracket)), bracket);
        }
    }
}

#[test]
fn truncated_store_reopens_and_stays_usable() {
    let base = scratch("reopen-src.idx");
    let (bytes, snapshots) = build_fixture(&base);
    let bounds = segment_bounds(&bytes);

    // A representative cut inside each segment (and one mid-segment-header).
    let cuts: Vec<usize> = (0..bounds.len() - 1)
        .map(|k| (bounds[k] + bounds[k + 1]) / 2)
        .chain(std::iter::once(bytes.len() - 1))
        .collect();
    for (case, cut) in cuts.into_iter().enumerate() {
        let path = scratch(&format!("reopen-{case}.idx"));
        std::fs::write(&path, &bytes[..cut]).unwrap();

        // Strict open must reject the torn file...
        match CorpusStore::open(&path).err() {
            Some(
                PersistError::Truncated { .. }
                | PersistError::ChecksumMismatch { .. }
                | PersistError::Corrupt(_),
            ) => {}
            other => panic!("cut {cut}: strict open returned {other:?}"),
        }
        // ...repair open recovers the prefix and makes it durable.
        let (mut store, report) = CorpusStore::open_repair(&path).unwrap();
        let k = bounds.iter().rposition(|&b| b <= cut).unwrap();
        assert_eq!(report.segments_recovered, k);
        assert_eq!(live_view(store.corpus()), snapshots[k]);

        // The repaired store accepts updates and strict-reopens cleanly.
        let new_ids = store.insert_all(vec![t("{post{repair}}")]).unwrap();
        assert_eq!(new_ids, vec![store.corpus().id_bound() - 1]);
        let reopened = CorpusStore::open(&path).unwrap();
        assert_eq!(live_view(reopened.corpus()), live_view(store.corpus()));
    }
}

#[test]
fn byte_flips_truncate_at_the_damaged_segment() {
    let path = scratch("flips.idx");
    let (bytes, snapshots) = build_fixture(&path);
    let bounds = segment_bounds(&bytes);

    // Sample positions across the whole file (step 3 keeps the test fast
    // while hitting every segment's header, payload and checksum region).
    for pos in (0..bytes.len()).step_by(3) {
        let mut flipped = bytes.clone();
        flipped[pos] ^= 0xff;
        if pos < HEADER_LEN {
            assert!(
                salvage_corpus(&flipped).is_err(),
                "pos {pos}: corrupt header accepted"
            );
            continue;
        }
        let salvage = salvage_corpus(&flipped).unwrap();
        // Salvage keeps exactly the segments before the damaged one: it
        // is a prefix operation, never a skip-over-corruption one.
        let k = bounds.iter().rposition(|&b| b <= pos).unwrap();
        assert_eq!(
            salvage.report.segments_recovered, k,
            "pos {pos}: flip inside segment {k} not detected there"
        );
        assert_eq!(live_view(&salvage.corpus), snapshots[k], "pos {pos}");
    }
}
