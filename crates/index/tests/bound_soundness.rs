//! Property tests: every filter stage is a sound lower bound, and the
//! engine returns identical results with filters on and off.
//!
//! Trees come from the paper's `Shape` generators (crates/datasets), so
//! the properties cover the adversarial shapes (caterpillars, full binary,
//! zig-zag, mixed, bounded-random), not just uniform random attachment.

use proptest::prelude::*;
use rted_core::bounds::{lower_bound, standard_bounds, upper_bound, TreeSketch};
use rted_core::ted;
use rted_datasets::shapes::{perturb_labels, Shape, DEFAULT_ALPHABET};
use rted_index::{ExecPolicy, FilterPipeline, TreeIndex};
use rted_tree::Tree;

/// An arbitrary shape-generated tree with 1..=max nodes.
fn arb_shape_tree(max: usize) -> impl Strategy<Value = Tree<u32>> {
    (0..Shape::ALL.len(), 1..=max, any::<u32>())
        .prop_map(|(s, n, seed)| Shape::ALL[s].generate(n, seed as u64))
}

/// A small corpus: shape trees plus a perturbed near-duplicate of the
/// first one (so joins and queries have close pairs to find).
fn arb_corpus(max_trees: usize, max_nodes: usize) -> impl Strategy<Value = Vec<Tree<u32>>> {
    proptest::collection::vec(arb_shape_tree(max_nodes), 2..=max_trees).prop_map(|mut trees| {
        let dup = perturb_labels(&trees[0], 1, DEFAULT_ALPHABET, 99);
        trees.push(dup);
        trees
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_stage_is_a_sound_lower_bound(
        f in arb_shape_tree(30),
        g in arb_shape_tree(30),
    ) {
        let d = ted(&f, &g);
        let (sf, sg) = (TreeSketch::new(&f), TreeSketch::new(&g));
        for stage in standard_bounds::<u32>() {
            let lb = stage.bound(&sf, &sg);
            prop_assert!(
                lb <= d,
                "stage {} claims lb {lb} > exact ted {d}",
                stage.name()
            );
        }
        prop_assert!(lower_bound(&f, &g) <= d);
        prop_assert!(d <= upper_bound(&f, &g));
    }

    #[test]
    fn range_identical_with_filters_on_and_off(
        corpus in arb_corpus(6, 20),
        q in arb_shape_tree(20),
        tau_int in 0..25usize,
    ) {
        let tau = tau_int as f64;
        let filtered = TreeIndex::build(corpus.iter().cloned());
        let brute = TreeIndex::build(corpus.iter().cloned()).unfiltered();
        let a = filtered.range(&q, tau);
        let b = brute.range(&q, tau);
        prop_assert_eq!(&a.neighbors, &b.neighbors);
        // Brute force verifies every candidate exactly.
        prop_assert_eq!(b.stats.verified, corpus.len());
    }

    #[test]
    fn top_k_identical_with_filters_on_and_off(
        corpus in arb_corpus(6, 20),
        q in arb_shape_tree(20),
        k in 1..8usize,
    ) {
        let filtered = TreeIndex::build(corpus.iter().cloned());
        let brute = TreeIndex::build(corpus.iter().cloned()).unfiltered();
        let a = filtered.top_k(&q, k);
        let b = brute.top_k(&q, k);
        prop_assert_eq!(&a.neighbors, &b.neighbors);
        prop_assert_eq!(a.neighbors.len(), k.min(corpus.len()));
    }

    #[test]
    fn join_identical_with_filters_on_and_off(
        corpus in arb_corpus(6, 18),
        tau_int in 1..20usize,
    ) {
        let tau = tau_int as f64;
        let filtered = TreeIndex::build(corpus.iter().cloned());
        let brute = TreeIndex::build(corpus.iter().cloned()).unfiltered();
        let a = filtered.join(tau);
        let b = brute.join(tau);
        prop_assert_eq!(&a.matches, &b.matches);
        // Brute force verifies all pairs; the filtered engine never
        // verifies more.
        let n = corpus.len();
        prop_assert_eq!(b.stats.verified, n * (n - 1) / 2);
        prop_assert!(a.stats.verified <= b.stats.verified);
    }

    #[test]
    fn parallel_and_serial_agree(
        corpus in arb_corpus(6, 18),
        q in arb_shape_tree(18),
        tau_int in 1..20usize,
    ) {
        let tau = tau_int as f64;
        let serial = TreeIndex::build(corpus.iter().cloned())
            .with_policy(ExecPolicy { threads: 1, chunk: 2 });
        let parallel = TreeIndex::build(corpus.iter().cloned())
            .with_policy(ExecPolicy { threads: 4, chunk: 2 });
        let (rs, rp) = (serial.range(&q, tau), parallel.range(&q, tau));
        prop_assert_eq!(&rs.neighbors, &rp.neighbors);
        prop_assert_eq!(&rs.stats.filter, &rp.stats.filter);
        let (ks, kp) = (serial.top_k(&q, 3), parallel.top_k(&q, 3));
        prop_assert_eq!(&ks.neighbors, &kp.neighbors);
        prop_assert_eq!(&ks.stats.filter, &kp.stats.filter);
        let (js, jp) = (serial.join(tau), parallel.join(tau));
        prop_assert_eq!(&js.matches, &jp.matches);
        prop_assert_eq!(&js.stats.filter, &jp.stats.filter);
        prop_assert_eq!(js.stats.subproblems, jp.stats.subproblems);
    }

    #[test]
    fn size_only_pipeline_identical_matches(
        corpus in arb_corpus(6, 18),
        tau_int in 1..15usize,
    ) {
        let tau = tau_int as f64;
        let size_only = TreeIndex::build(corpus.iter().cloned())
            .with_pipeline(FilterPipeline::size_only());
        let brute = TreeIndex::build(corpus.iter().cloned()).unfiltered();
        prop_assert_eq!(&size_only.join(tau).matches, &brute.join(tau).matches);
    }
}
