//! Property tests for incremental corpus updates: a corpus mutated by any
//! interleaving of `insert`/`remove` must answer every query exactly like
//! a corpus freshly built from its final live trees — the size-sorted
//! view maintained in place is indistinguishable from one rebuilt from
//! scratch.
//!
//! Ids differ between the two (the mutated corpus has stable sparse ids,
//! the fresh build dense ones), but the map between them is monotone
//! (live-id rank), so ordered results and tie-breaks must correspond
//! exactly under that map.

use proptest::prelude::*;
use rted_datasets::shapes::Shape;
use rted_index::{TreeCorpus, TreeIndex};
use rted_tree::{to_bracket, Tree};

fn arb_shape_tree(max: usize) -> impl Strategy<Value = Tree<u32>> {
    (0..Shape::ALL.len(), 1..=max, any::<u32>())
        .prop_map(|(s, n, seed)| Shape::ALL[s].generate(n, seed as u64))
}

/// A corpus plus the insert/remove script applied to it.
fn arb_mutated(max_trees: usize, max_nodes: usize) -> impl Strategy<Value = TreeCorpus<u32>> {
    (
        proptest::collection::vec(arb_shape_tree(max_nodes), 1..=max_trees),
        proptest::collection::vec(
            (any::<bool>(), any::<u32>(), arb_shape_tree(max_nodes)),
            0..10,
        ),
    )
        .prop_map(|(initial, ops)| {
            let mut corpus = TreeCorpus::build(initial);
            for (is_remove, pick, tree) in ops {
                if is_remove && corpus.len() > 1 {
                    let live: Vec<usize> = corpus.iter().map(|(id, _)| id).collect();
                    corpus.remove(live[pick as usize % live.len()]);
                } else {
                    corpus.insert(tree);
                }
            }
            corpus
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn mutated_equals_fresh_build(
        corpus in arb_mutated(6, 16),
        q in arb_shape_tree(16),
        tau_int in 1..20usize,
        k in 1..6usize,
    ) {
        let tau = tau_int as f64;
        // live_ids[dense] = sparse: the monotone id map.
        let live_ids: Vec<usize> = corpus.iter().map(|(id, _)| id).collect();
        let fresh = TreeCorpus::build(corpus.iter().map(|(_, e)| e.tree().clone()));
        let mutated = TreeIndex::from_corpus(corpus);
        let fresh = TreeIndex::from_corpus(fresh);

        let (rm, rf) = (mutated.range(&q, tau), fresh.range(&q, tau));
        let rf_mapped: Vec<(usize, f64)> = rf
            .neighbors
            .iter()
            .map(|n| (live_ids[n.id], n.distance))
            .collect();
        let rm_pairs: Vec<(usize, f64)> =
            rm.neighbors.iter().map(|n| (n.id, n.distance)).collect();
        prop_assert_eq!(rm_pairs, rf_mapped);
        prop_assert_eq!(&rm.stats.filter, &rf.stats.filter);
        prop_assert_eq!(rm.stats.verified, rf.stats.verified);

        let (km, kf) = (mutated.top_k(&q, k), fresh.top_k(&q, k));
        let kf_mapped: Vec<(usize, f64)> = kf
            .neighbors
            .iter()
            .map(|n| (live_ids[n.id], n.distance))
            .collect();
        let km_pairs: Vec<(usize, f64)> =
            km.neighbors.iter().map(|n| (n.id, n.distance)).collect();
        prop_assert_eq!(km_pairs, kf_mapped);

        let (jm, jf) = (mutated.join(tau), fresh.join(tau));
        let jf_mapped: Vec<(usize, usize, f64)> = jf
            .matches
            .iter()
            .map(|m| (live_ids[m.left], live_ids[m.right], m.distance))
            .collect();
        let jm_triples: Vec<(usize, usize, f64)> =
            jm.matches.iter().map(|m| (m.left, m.right, m.distance)).collect();
        prop_assert_eq!(jm_triples, jf_mapped);
    }

    /// Removing everything and re-inserting rebuilds a working corpus;
    /// ids never recycle.
    #[test]
    fn drain_and_refill(trees in proptest::collection::vec(arb_shape_tree(12), 1..5)) {
        let n = trees.len();
        let mut corpus = TreeCorpus::build(trees.iter().cloned());
        for id in 0..n {
            prop_assert!(corpus.remove(id).is_some());
        }
        prop_assert!(corpus.is_empty());
        prop_assert_eq!(corpus.by_size().len(), 0);
        let new_ids: Vec<usize> = trees.iter().map(|t| corpus.insert(t.clone())).collect();
        prop_assert_eq!(new_ids, (n..2 * n).collect::<Vec<_>>());
        prop_assert_eq!(corpus.len(), n);
        for (i, t) in trees.iter().enumerate() {
            prop_assert_eq!(to_bracket(corpus.tree(n + i)), to_bracket(t));
        }
    }
}
