//! Integration tests of the search engine on the paper's mixed-shape
//! workload: filter effectiveness, verifier pluggability, and the exact
//! acceptance semantics of each query API.

use rted_core::{Algorithm, UnitCost};
use rted_datasets::shapes::{perturb_labels, Shape, DEFAULT_ALPHABET};
use rted_index::{AlgorithmVerifier, ExecPolicy, FilterPipeline, TreeIndex, Verifier};
use rted_tree::Tree;

/// The acceptance corpus: all six shapes at mixed sizes plus perturbed
/// near-duplicates — trees of different shapes and sizes, so every filter
/// stage has something to prune.
fn shapes_mixed_corpus() -> Vec<Tree<u32>> {
    let mut trees = Vec::new();
    for (i, shape) in Shape::ALL.iter().enumerate() {
        for (j, n) in [30usize, 45, 60].into_iter().enumerate() {
            let base = shape.generate(n, (10 * i + j) as u64);
            trees.push(perturb_labels(
                &base,
                2,
                DEFAULT_ALPHABET,
                (i + 7 * j) as u64,
            ));
            trees.push(base);
        }
    }
    trees
}

#[test]
fn filtered_and_brute_force_join_byte_identical() {
    let corpus = shapes_mixed_corpus();
    for tau in [3.0, 8.0, 20.0] {
        let filtered = TreeIndex::build(corpus.iter().cloned());
        let brute = TreeIndex::build(corpus.iter().cloned()).unfiltered();
        let a = filtered.join(tau);
        let b = brute.join(tau);
        assert_eq!(a.matches, b.matches, "tau {tau}");
        assert!(a.stats.filter.total_pruned() > 0, "no pruning at tau {tau}");
        assert_eq!(
            a.stats.verified as u64 + a.stats.filter.total_pruned(),
            a.stats.candidates as u64,
            "counters must partition the pair set at tau {tau}"
        );
        assert_eq!(b.stats.filter.total_pruned(), 0);
    }
}

#[test]
fn filtered_and_brute_force_range_byte_identical() {
    let corpus = shapes_mixed_corpus();
    let query = perturb_labels(&corpus[1], 1, DEFAULT_ALPHABET, 123);
    for tau in [2.0, 6.0, 15.0] {
        let filtered = TreeIndex::build(corpus.iter().cloned());
        let brute = TreeIndex::build(corpus.iter().cloned()).unfiltered();
        let a = filtered.range(&query, tau);
        let b = brute.range(&query, tau);
        assert_eq!(a.neighbors, b.neighbors, "tau {tau}");
        assert!(a.stats.filter.total_pruned() > 0, "no pruning at tau {tau}");
        assert!(a.stats.verified < corpus.len());
        assert_eq!(b.stats.verified, corpus.len());
    }
}

#[test]
fn top_k_finds_planted_duplicates_first() {
    let corpus = shapes_mixed_corpus();
    // Tree 1 is the base whose perturbed copy is tree 0.
    let query = corpus[1].clone();
    let index = TreeIndex::build(corpus.iter().cloned());
    let res = index.top_k(&query, 2);
    assert_eq!(res.neighbors.len(), 2);
    // The base itself is the exact match; its duplicate is close.
    assert_eq!(res.neighbors[0].id, 1);
    assert_eq!(res.neighbors[0].distance, 0.0);
    assert_eq!(res.neighbors[1].id, 0);
    assert!(res.neighbors[1].distance <= 2.0);
    // The shrinking radius must have pruned most of the corpus.
    assert!(res.stats.filter.total_pruned() > 0);
    assert!(res.stats.verified < corpus.len());
}

#[test]
fn top_k_is_sorted_and_matches_brute_force_ranking() {
    let corpus = shapes_mixed_corpus();
    let query = Shape::Random.generate(40, 999);
    let index = TreeIndex::build(corpus.iter().cloned());
    let brute = TreeIndex::build(corpus.iter().cloned()).unfiltered();
    for k in [1, 4, corpus.len(), corpus.len() + 5] {
        let a = index.top_k(&query, k);
        let b = brute.top_k(&query, k);
        assert_eq!(a.neighbors, b.neighbors, "k {k}");
        assert_eq!(a.neighbors.len(), k.min(corpus.len()));
        for w in a.neighbors.windows(2) {
            assert!(
                (w[0].distance, w[0].id) < (w[1].distance, w[1].id),
                "top-k not sorted by (distance, id)"
            );
        }
    }
}

#[test]
fn every_algorithm_verifier_agrees() {
    let corpus = shapes_mixed_corpus();
    let base = TreeIndex::build(corpus.iter().cloned()).join(6.0);
    for alg in Algorithm::ALL {
        let index = TreeIndex::build(corpus.iter().cloned()).with_algorithm(alg);
        let res = index.join(6.0);
        assert_eq!(res.matches, base.matches, "{alg}");
    }
}

#[test]
fn borrowed_cost_model_verifier() {
    // The `*_with` APIs accept verifiers borrowing a caller's cost model.
    let corpus = shapes_mixed_corpus();
    let cm = UnitCost;
    let verifier = AlgorithmVerifier {
        algorithm: Algorithm::Rted,
        cost_model: &cm,
    };
    let index = TreeIndex::build(corpus.iter().cloned());
    let a = index.join_with(6.0, &verifier);
    let b = index.join(6.0);
    assert_eq!(a.matches, b.matches);
    assert_eq!(Verifier::<u32>::name(&verifier), "RTED");
}

#[test]
fn thread_counts_do_not_change_results() {
    let corpus = shapes_mixed_corpus();
    let query = perturb_labels(&corpus[5], 3, DEFAULT_ALPHABET, 31);
    let serial = TreeIndex::build(corpus.iter().cloned()).with_policy(ExecPolicy {
        threads: 1,
        chunk: 4,
    });
    let threaded = TreeIndex::build(corpus.iter().cloned()).with_policy(ExecPolicy {
        threads: 3,
        chunk: 4,
    });
    assert_eq!(
        serial.range(&query, 9.0).neighbors,
        threaded.range(&query, 9.0).neighbors
    );
    assert_eq!(
        serial.top_k(&query, 5).neighbors,
        threaded.top_k(&query, 5).neighbors
    );
    let (a, b) = (serial.join(7.0), threaded.join(7.0));
    assert_eq!(a.matches, b.matches);
    assert_eq!(a.stats.filter, b.stats.filter);
    assert_eq!(a.stats.subproblems, b.stats.subproblems);
}

#[test]
fn stage_counters_name_the_stages() {
    let corpus = shapes_mixed_corpus();
    let index = TreeIndex::build(corpus.iter().cloned());
    let res = index.join(5.0);
    let names: Vec<&str> = res.stats.filter.stages.iter().map(|s| s.stage).collect();
    assert_eq!(
        names,
        ["size", "depth", "leaf", "degree", "histogram", "pqgram"]
    );
    // The size stage dominates on a size-mixed corpus.
    assert!(res.stats.filter.stages[0].pruned > 0);
}

#[test]
fn counters_follow_documented_stage_order_when_size_is_not_first() {
    use rted_core::bounds::{DepthBound, SizeBound};
    // With `size` second, the depth stage (first) must claim every pair
    // it can prune — the sorted-size shortcut only replaces the size
    // stage when it is the pipeline's first stage.
    let corpus = shapes_mixed_corpus();
    let pipeline = FilterPipeline::from_stages(vec![Box::new(DepthBound), Box::new(SizeBound)]);
    let index = TreeIndex::build(corpus.iter().cloned()).with_pipeline(pipeline);
    let brute = TreeIndex::build(corpus.iter().cloned()).unfiltered();
    let res = index.join(5.0);
    assert_eq!(res.matches, brute.join(5.0).matches);
    // Depth differences abound on this corpus (caterpillars vs full
    // binary), so the first-listed stage must get credit.
    let names: Vec<&str> = res.stats.filter.stages.iter().map(|s| s.stage).collect();
    assert_eq!(names, ["depth", "size"]);
    assert!(res.stats.filter.stages[0].pruned > 0);
    // The query side honors the same ordering.
    let query = Shape::LeftBranch.generate(40, 5);
    let qres = index.range(&query, 5.0);
    assert_eq!(qres.neighbors, brute.range(&query, 5.0).neighbors);
    assert!(qres.stats.filter.stages[0].pruned > 0);
}

#[test]
fn zero_and_negative_tau_return_empty_without_panicking() {
    // Regression: tau <= 0 used to make the size-window cuts cross and
    // panic on a backwards slice when a corpus tree matched the query's
    // size exactly.
    let corpus = shapes_mixed_corpus();
    let query = corpus[1].clone(); // exact duplicate of a corpus tree
    let index = TreeIndex::build(corpus.iter().cloned());
    for tau in [0.0, -3.0] {
        let res = index.range(&query, tau);
        assert!(res.neighbors.is_empty(), "tau {tau}");
        assert_eq!(res.stats.verified, 0, "tau {tau}");
        assert!(index.join(tau).matches.is_empty(), "tau {tau}");
    }
}

#[test]
fn empty_and_degenerate_inputs() {
    let empty: Vec<Tree<u32>> = Vec::new();
    let index = TreeIndex::build(empty);
    let query = Shape::FullBinary.generate(7, 1);
    assert!(index.range(&query, 5.0).neighbors.is_empty());
    assert!(index.top_k(&query, 3).neighbors.is_empty());
    assert!(index.join(5.0).matches.is_empty());

    let single = TreeIndex::build(vec![Shape::FullBinary.generate(7, 1)]);
    assert!(single.join(100.0).matches.is_empty());
    let res = single.range(&query, 100.0);
    assert_eq!(res.neighbors.len(), 1);
    assert_eq!(res.neighbors[0].distance, 0.0);
    assert!(single.top_k(&query, 0).neighbors.is_empty());
}

#[test]
fn custom_pipeline_from_stages() {
    use rted_core::bounds::{DepthBound, HistogramBound};
    let corpus = shapes_mixed_corpus();
    let pipeline =
        FilterPipeline::from_stages(vec![Box::new(DepthBound), Box::new(HistogramBound)]);
    let index = TreeIndex::build(corpus.iter().cloned()).with_pipeline(pipeline);
    let brute = TreeIndex::build(corpus.iter().cloned()).unfiltered();
    // No size stage: the index must not use the size window, and results
    // still match brute force.
    assert!(index.pipeline().stage_index("size").is_none());
    let (a, b) = (index.join(6.0), brute.join(6.0));
    assert_eq!(a.matches, b.matches);
    assert!(a.stats.filter.total_pruned() > 0);
}
