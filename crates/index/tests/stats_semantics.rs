//! Asserts the documented [`SearchStats`] counter semantics per query
//! type (see the struct docs): on the linear paths the counters
//! partition the candidate set exactly — `pruned + verified ==
//! candidates` — while the metric join legitimately books *directed*
//! examinations (work counters may exceed the unordered-pair candidate
//! count) without ever double-reporting a match. Also checks that
//! lifetime totals fold per-query stats faithfully.

use rted_datasets::shapes::Shape;
use rted_index::{QueryResult, SearchStats, TreeIndex};
use rted_tree::Tree;

fn corpus(n: usize) -> Vec<Tree<u32>> {
    (0..n)
        .map(|i| Shape::ALL[i % Shape::ALL.len()].generate(6 + i % 9, i as u64))
        .collect()
}

/// `pruned + verified == candidates`: the linear-path partition.
fn assert_partition(stats: &SearchStats, what: &str) {
    assert_eq!(
        stats.filter.total_pruned() + stats.verified as u64,
        stats.candidates as u64,
        "{what}: pruned + verified must partition the candidates"
    );
}

#[test]
fn linear_range_partitions_candidates() {
    let index = TreeIndex::build(corpus(24));
    let query = Shape::Mixed.generate(9, 999);
    for tau in [1.0, 4.0, 10.0] {
        let res = index.range(&query, tau);
        assert_eq!(res.stats.candidates, 24);
        assert_partition(&res.stats, "range");
    }
}

#[test]
fn linear_top_k_partitions_candidates() {
    let index = TreeIndex::build(corpus(24));
    let query = Shape::Random.generate(8, 123);
    for k in [1, 3, 24, 100] {
        let res: QueryResult = index.top_k(&query, k);
        assert_eq!(res.stats.candidates, 24);
        assert_partition(&res.stats, "top_k");
    }
}

#[test]
fn linear_join_partitions_unordered_pairs() {
    let n = 18;
    let index = TreeIndex::build(corpus(n));
    for tau in [2.0, 5.0] {
        let out = index.join(tau);
        assert_eq!(out.stats.candidates, n * (n - 1) / 2);
        assert_partition(&out.stats, "join");
    }
}

/// The documented divergence: the metric join examines *directed* pairs
/// (one metric range query per corpus tree, reporting restricted to
/// larger ids), so its work counters are not a partition of
/// `candidates` — but its *matches* are identical to the linear join's.
#[test]
fn metric_join_double_books_work_not_matches() {
    let n = 18;
    let trees = corpus(n);
    let linear = TreeIndex::build(trees.clone());
    let metric = TreeIndex::build(trees).with_metric_tree(true);
    let tau = 4.0;
    let lin = linear.join(tau);
    let met = metric.join(tau);
    assert_eq!(lin.matches, met.matches, "matches must agree across paths");
    assert_eq!(met.stats.candidates, n * (n - 1) / 2);
    // Directed examinations: every unordered pair can be pruned/verified
    // from both sides, plus routing work — bounded by twice the directed
    // pair count plus the routing TED spent on vantage points.
    let booked = met.stats.filter.total_pruned() + met.stats.verified as u64;
    let directed_pairs = (n * (n - 1)) as u64;
    assert!(
        booked <= directed_pairs + met.stats.metric.routing_ted as u64,
        "metric join booked {booked} > directed bound"
    );
}

/// Per-query stats fold into lifetime totals exactly.
#[test]
fn totals_fold_per_query_stats() {
    let index = TreeIndex::build(corpus(20));
    let query = Shape::Mixed.generate(9, 7);

    let r1 = index.range(&query, 3.0);
    let r2 = index.range(&query, 6.0);
    let k1 = index.top_k(&query, 4);
    let j1 = index.join(3.0);

    let t = index.totals();
    assert_eq!(t.range_queries, 2);
    assert_eq!(t.topk_queries, 1);
    assert_eq!(t.join_queries, 1);
    assert_eq!(t.distance_calls, 0);

    let all = [&r1.stats, &r2.stats, &k1.stats, &j1.stats];
    let verified: u64 = all.iter().map(|s| s.verified as u64).sum();
    let subproblems: u64 = all.iter().map(|s| s.subproblems).sum();
    let candidates: u64 = all.iter().map(|s| s.candidates as u64).sum();
    assert_eq!(t.verified, verified);
    assert_eq!(t.subproblems, subproblems);
    assert_eq!(t.candidates, candidates);

    // Per-stage totals line up with the pipeline's stage order and sum
    // the per-query counters.
    assert_eq!(t.stages.len(), index.pipeline().stages().len());
    for (i, stage) in t.stages.iter().enumerate() {
        assert_eq!(stage.stage, index.pipeline().stages()[i].name());
        let expected: u64 = all.iter().map(|s| s.filter.stages[i].pruned).sum();
        assert_eq!(stage.pruned, expected, "stage {}", stage.stage);
    }

    // Verification took measurable exact-TED time, and the totals carry
    // it (ted_ns counts strategy + distance phases).
    assert!(verified > 0);
    assert!(t.ted_ns > 0);
    assert!(all.iter().any(|s| s.ted_time.as_nanos() > 0));

    // distance_in records the distance-call counter, not `verified`.
    let f = Shape::Mixed.generate(8, 1);
    let g = Shape::Random.generate(8, 2);
    let mut ws = rted_core::Workspace::new();
    index.distance_in(&f, &g, &mut ws);
    let t2 = index.totals();
    assert_eq!(t2.distance_calls, 1);
    assert_eq!(t2.verified, t.verified);
    assert!(t2.subproblems > t.subproblems);
}
