//! Property tests for the on-disk corpus format: encode/decode is a
//! lossless, canonical bijection on corpus states; loaded corpora answer
//! queries identically to freshly built ones; damaged files are rejected,
//! never mis-read.
//!
//! Trees come from the paper's `Shape` generators with string labels (the
//! CLI's label type), and corpora are exercised *after* random incremental
//! insert/remove sequences, so the properties cover the id-stable holes
//! the append-only store produces.

use proptest::prelude::*;
use rted_datasets::shapes::Shape;
use rted_index::{encode_corpus, CorpusFile, TreeCorpus, TreeIndex};
use rted_tree::{to_bracket, Tree};

fn arb_shape_tree(max: usize) -> impl Strategy<Value = Tree<String>> {
    (0..Shape::ALL.len(), 1..=max, any::<u32>()).prop_map(|(s, n, seed)| {
        Shape::ALL[s]
            .generate(n, seed as u64)
            .map_labels(|l| format!("L{l}"))
    })
}

/// A corpus that has lived: built, then hit with interleaved inserts and
/// removes (biased 2:1 towards inserts so it stays non-trivial).
fn arb_mutated_corpus(
    max_trees: usize,
    max_nodes: usize,
) -> impl Strategy<Value = TreeCorpus<String>> {
    (
        proptest::collection::vec(arb_shape_tree(max_nodes), 1..=max_trees),
        proptest::collection::vec(
            (any::<bool>(), any::<u32>(), arb_shape_tree(max_nodes)),
            0..8,
        ),
    )
        .prop_map(|(initial, ops)| {
            let mut corpus = TreeCorpus::build(initial);
            for (is_remove, pick, tree) in ops {
                if is_remove && corpus.len() > 1 {
                    // Remove some live id (deterministic pick).
                    let live: Vec<usize> = corpus.iter().map(|(id, _)| id).collect();
                    corpus.remove(live[pick as usize % live.len()]);
                } else {
                    corpus.insert(tree);
                }
            }
            corpus
        })
}

/// Structural equality of two corpora: same ids, same trees, same sketch
/// values.
fn assert_corpus_eq(a: &TreeCorpus<String>, b: &TreeCorpus<String>) {
    assert_eq!(a.len(), b.len());
    assert_eq!(a.id_bound(), b.id_bound());
    assert_eq!(a.by_size(), b.by_size());
    for (id, ea) in a.iter() {
        let eb = b.get(id).expect("id live in both");
        assert_eq!(to_bracket(ea.tree()), to_bracket(eb.tree()), "tree {id}");
        assert_eq!(ea.sketch().size, eb.sketch().size);
        assert_eq!(ea.sketch().max_depth, eb.sketch().max_depth);
        assert_eq!(ea.sketch().leaves, eb.sketch().leaves);
        assert_eq!(ea.sketch().internal, eb.sketch().internal);
        assert_eq!(
            ea.sketch().histogram.lower_bound(&eb.sketch().histogram),
            0.0,
            "histograms of tree {id} differ"
        );
        assert_eq!(
            ea.sketch().pq,
            eb.sketch().pq,
            "pq-gram profiles of tree {id} differ"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// encode ∘ decode ∘ encode = encode: saving a loaded corpus
    /// reproduces the file byte for byte (canonical encoding).
    #[test]
    fn save_load_save_is_byte_identical(corpus in arb_mutated_corpus(6, 16)) {
        let bytes = encode_corpus(&corpus);
        let loaded = CorpusFile::from_bytes(bytes.clone())
            .expect("header")
            .corpus_owned()
            .expect("decode");
        assert_corpus_eq(&corpus, &loaded);
        let again = encode_corpus(&loaded);
        prop_assert_eq!(bytes, again);
    }

    /// The borrowed (zero-copy) and owned decoders agree.
    #[test]
    fn zero_copy_load_matches_owned(corpus in arb_mutated_corpus(5, 14)) {
        let bytes = encode_corpus(&corpus);
        let file = CorpusFile::from_bytes(bytes).expect("header");
        let borrowed = file.corpus().expect("borrowed decode");
        let owned = file.corpus_owned().expect("owned decode");
        prop_assert_eq!(borrowed.len(), owned.len());
        prop_assert_eq!(borrowed.by_size(), owned.by_size());
        for (id, e) in borrowed.iter() {
            prop_assert_eq!(
                to_bracket(e.tree()),
                to_bracket(owned.get(id).unwrap().tree())
            );
        }
    }

    /// A loaded corpus answers range, top-k and join queries identically
    /// to the in-memory corpus it was saved from — including the sketches
    /// the filter stages read, and the prune counters they produce.
    #[test]
    fn loaded_corpus_answers_identically(
        corpus in arb_mutated_corpus(6, 16),
        q in arb_shape_tree(16),
        tau_int in 1..20usize,
        k in 1..6usize,
    ) {
        let tau = tau_int as f64;
        let loaded = CorpusFile::from_bytes(encode_corpus(&corpus))
            .expect("header")
            .corpus_owned()
            .expect("decode");
        let mem = TreeIndex::from_corpus(corpus);
        let disk = TreeIndex::from_corpus(loaded);

        let (rm, rd) = (mem.range(&q, tau), disk.range(&q, tau));
        prop_assert_eq!(&rm.neighbors, &rd.neighbors);
        prop_assert_eq!(&rm.stats.filter, &rd.stats.filter);

        let (km, kd) = (mem.top_k(&q, k), disk.top_k(&q, k));
        prop_assert_eq!(&km.neighbors, &kd.neighbors);

        let (jm, jd) = (mem.join(tau), disk.join(tau));
        prop_assert_eq!(&jm.matches, &jd.matches);
        prop_assert_eq!(&jm.stats.filter, &jd.stats.filter);
    }

    /// Every strict prefix of a file image is rejected with an error —
    /// truncation can never yield an `Ok` corpus (or a panic).
    #[test]
    fn truncated_files_are_rejected(
        corpus in arb_mutated_corpus(4, 10),
        frac in 0..1000usize,
    ) {
        // The generator keeps at least one live tree, so every strict
        // prefix (even the empty one) must fail to decode.
        assert!(!corpus.is_empty());
        let bytes = encode_corpus(&corpus);
        // frac = 999 reaches len − 1 for any len ≥ 1, so the maximal
        // strict prefix (just the final byte dropped) is covered too.
        let cut = (frac * bytes.len() / 1000).min(bytes.len() - 1);
        let result = CorpusFile::from_bytes(bytes[..cut].to_vec())
            .and_then(|f| f.corpus_owned().map(|c| c.len()));
        prop_assert!(result.is_err(), "accepted a {cut}-byte prefix of {} bytes", bytes.len());
    }

    /// A version-1 image (the PR 2-era layout, no stored profiles) decodes
    /// to the same corpus — profiles recomputed on load — and re-encoding
    /// it produces exactly the canonical version-2 bytes of the original.
    /// v1 → v2 is a lossless upgrade, byte-for-byte.
    #[test]
    fn v1_files_open_and_upgrade_byte_identically(corpus in arb_mutated_corpus(6, 16)) {
        let v1 = rted_index::persist::encode_corpus_v1(&corpus);
        let v2 = encode_corpus(&corpus);
        prop_assert_ne!(&v1, &v2, "v1 and v2 encodings must differ");
        let file = CorpusFile::from_bytes(v1).expect("v1 header");
        prop_assert_eq!(file.header().version, 1);
        prop_assert!(!file.header().has_pq_profiles());
        let loaded = file.corpus_owned().expect("v1 decode");
        assert_corpus_eq(&corpus, &loaded);
        prop_assert_eq!(encode_corpus(&loaded), v2);
    }

    /// v1 truncation/corruption rejection: the legacy read path is held to
    /// the same no-silent-misread bar as the current one.
    #[test]
    fn damaged_v1_files_are_rejected(
        corpus in arb_mutated_corpus(4, 10),
        pos_seed in any::<u32>(),
        delta in 1..255u8,
    ) {
        let mut bytes = rted_index::persist::encode_corpus_v1(&corpus);
        let pos = pos_seed as usize % bytes.len();
        bytes[pos] ^= delta;
        let result = CorpusFile::from_bytes(bytes)
            .and_then(|f| f.corpus_owned().map(|c| c.len()));
        prop_assert!(result.is_err(), "accepted a v1 flip of byte {pos}");
    }

    /// Every single-byte corruption is rejected: each FNV-1a step is
    /// bijective, so one flipped byte always changes a digest, and every
    /// byte of the file is covered by the header or a segment checksum.
    #[test]
    fn corrupted_files_are_rejected(
        corpus in arb_mutated_corpus(4, 10),
        pos_seed in any::<u32>(),
        delta in 1..255u8,
    ) {
        let mut bytes = encode_corpus(&corpus);
        let pos = pos_seed as usize % bytes.len();
        bytes[pos] ^= delta;
        let result = CorpusFile::from_bytes(bytes)
            .and_then(|f| f.corpus_owned().map(|c| c.len()));
        prop_assert!(result.is_err(), "accepted a flip of byte {pos}");
    }
}

/// The empty corpus (and the all-removed corpus) roundtrip too.
#[test]
fn empty_and_emptied_corpora_roundtrip() {
    let empty: TreeCorpus<String> = TreeCorpus::build(Vec::new());
    let loaded = CorpusFile::from_bytes(encode_corpus(&empty))
        .unwrap()
        .corpus_owned()
        .unwrap();
    assert_eq!(loaded.len(), 0);
    assert_eq!(loaded.id_bound(), 0);

    let mut emptied = TreeCorpus::build(vec![rted_tree::parse_bracket("{a{b}}")
        .unwrap()
        .map_labels(|l| l.to_string())]);
    emptied.remove(0);
    let bytes = encode_corpus(&emptied);
    let loaded = CorpusFile::from_bytes(bytes.clone())
        .unwrap()
        .corpus_owned()
        .unwrap();
    assert_eq!(loaded.len(), 0);
    // The removed id stays reserved across the roundtrip.
    assert_eq!(loaded.id_bound(), 1);
    assert_eq!(encode_corpus(&loaded), bytes);
}

/// A crafted header with an absurd id count is rejected with an error —
/// not an attempted multi-terabyte allocation.
#[test]
fn hostile_next_id_is_rejected() {
    let corpus: TreeCorpus<String> = TreeCorpus::build(vec![rted_tree::parse_bracket("{a}")
        .unwrap()
        .map_labels(|l| l.to_string())]);
    let mut bytes = encode_corpus(&corpus);
    // next_id sits at header bytes 16..24; forge it past the u32 id space
    // and re-stamp the header checksum so only the decoder's own sanity
    // check can catch it.
    bytes[16..24].copy_from_slice(&(u64::from(u32::MAX) + 5).to_le_bytes());
    let checksum = rted_index::persist::fnv1a(&bytes[..40]);
    bytes[40..48].copy_from_slice(&checksum.to_le_bytes());
    match CorpusFile::from_bytes(bytes).unwrap().corpus_owned().err() {
        Some(rted_index::PersistError::Corrupt(msg)) => {
            assert!(msg.contains("id space"), "unexpected message: {msg}")
        }
        other => panic!("expected Corrupt, got {other:?}"),
    }
}

/// Wrong-version files are reported as such, not as garbage.
#[test]
fn future_version_is_rejected_with_version_error() {
    let corpus: TreeCorpus<String> = TreeCorpus::build(vec![rted_tree::parse_bracket("{a}")
        .unwrap()
        .map_labels(|l| l.to_string())]);
    let mut bytes = encode_corpus(&corpus);
    // Bump the version field past this build and fix up the checksum.
    bytes[8] = 3;
    let checksum = rted_index::persist::fnv1a(&bytes[..40]);
    bytes[40..48].copy_from_slice(&checksum.to_le_bytes());
    match CorpusFile::from_bytes(bytes).err() {
        Some(rted_index::PersistError::UnsupportedVersion { found, supported }) => {
            assert_eq!(found, 3);
            assert_eq!(supported, 2);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

/// Unknown feature-flag bits are rejected with a clear error — a file
/// whose records carry layout extensions this build cannot frame must
/// never be guessed at.
#[test]
fn unknown_flag_bits_are_rejected() {
    let corpus: TreeCorpus<String> = TreeCorpus::build(vec![rted_tree::parse_bracket("{a{b}}")
        .unwrap()
        .map_labels(|l| l.to_string())]);
    let mut bytes = encode_corpus(&corpus);
    // Set an undefined flag bit (flags live at header bytes 12..16) and
    // re-stamp the checksum so only the flag validation can reject it.
    bytes[12] |= 0x04;
    let checksum = rted_index::persist::fnv1a(&bytes[..40]);
    bytes[40..48].copy_from_slice(&checksum.to_le_bytes());
    match CorpusFile::from_bytes(bytes).err() {
        Some(rted_index::PersistError::Corrupt(msg)) => {
            assert!(msg.contains("feature flag"), "unexpected message: {msg}")
        }
        other => panic!("expected Corrupt (unknown flags), got {other:?}"),
    }
    // A version-1 file may carry no flags at all.
    let mut v1 = rted_index::persist::encode_corpus_v1(&corpus);
    v1[12] |= 0x01;
    let checksum = rted_index::persist::fnv1a(&v1[..40]);
    v1[40..48].copy_from_slice(&checksum.to_le_bytes());
    assert!(CorpusFile::from_bytes(v1).is_err());
}
