//! The budget-aware default verifier must be invisible in results: every
//! query answered through [`BoundedVerifier`] (the `TreeIndex` default,
//! which hands the query threshold to the band-limited early-exit kernel)
//! is **byte-identical** to the same query through the pure exact-RTED
//! verifier — on any corpus, any threshold, any k, linear and metric
//! paths alike. Only the counters may differ: the bounded path may report
//! early exits and bounded time, never different neighbors.

use proptest::prelude::*;
use rted_datasets::shapes::{perturb_labels, Shape, DEFAULT_ALPHABET};
use rted_index::{AlgorithmVerifier, TreeIndex};
use rted_tree::Tree;

fn arb_shape_tree(max: usize) -> impl Strategy<Value = Tree<u32>> {
    (0..Shape::ALL.len(), 1..=max, any::<u32>())
        .prop_map(|(s, n, seed)| Shape::ALL[s].generate(n, seed as u64))
}

/// A corpus with a planted near-duplicate so queries have close pairs.
fn arb_corpus(max_trees: usize, max_nodes: usize) -> impl Strategy<Value = Vec<Tree<u32>>> {
    proptest::collection::vec(arb_shape_tree(max_nodes), 2..=max_trees).prop_map(|mut trees| {
        let dup = perturb_labels(&trees[0], 1, DEFAULT_ALPHABET, 99);
        trees.push(dup);
        trees
    })
}

/// An index forced onto the pure exact path: `with_algorithm` installs a
/// plain [`AlgorithmVerifier`], whose `verify_within` always completes
/// the full computation.
fn exact_index(trees: &[Tree<u32>]) -> TreeIndex<u32> {
    TreeIndex::build(trees.iter().cloned()).with_verifier(Box::new(AlgorithmVerifier::rted()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// range: identical neighbors *and* identical partition counters —
    /// an early-exited verification still counts as verified, so the
    /// pruned + verified = candidates invariant is unchanged.
    #[test]
    fn bounded_range_identical_to_exact(
        corpus in arb_corpus(7, 18),
        q in arb_shape_tree(18),
        tau_int in 0..25usize,
    ) {
        let tau = tau_int as f64;
        let bounded = TreeIndex::build(corpus.iter().cloned());
        let exact = exact_index(&corpus);
        let a = bounded.range(&q, tau);
        let b = exact.range(&q, tau);
        prop_assert_eq!(&a.neighbors, &b.neighbors, "tau {}", tau);
        prop_assert_eq!(a.stats.candidates, b.stats.candidates);
        prop_assert_eq!(a.stats.verified, b.stats.verified);
        prop_assert_eq!(&a.stats.filter, &b.stats.filter);
        prop_assert_eq!(b.stats.early_exits, 0, "exact path never early-exits");
    }

    /// top_k: the shrinking radius becomes the verification budget batch
    /// by batch; the (distance, id) ordering and tie-breaks must come out
    /// bit-for-bit identical.
    #[test]
    fn bounded_top_k_identical_to_exact(
        corpus in arb_corpus(7, 18),
        q in arb_shape_tree(18),
        k in 1..10usize,
    ) {
        let bounded = TreeIndex::build(corpus.iter().cloned());
        let exact = exact_index(&corpus);
        let a = bounded.top_k(&q, k);
        let b = exact.top_k(&q, k);
        prop_assert_eq!(&a.neighbors, &b.neighbors, "k {}", k);
        prop_assert_eq!(a.stats.verified, b.stats.verified);
    }

    /// join: same pairs, same distances, same order, same partition.
    #[test]
    fn bounded_join_identical_to_exact(
        corpus in arb_corpus(7, 16),
        tau_int in 1..20usize,
    ) {
        let tau = tau_int as f64;
        let bounded = TreeIndex::build(corpus.iter().cloned());
        let exact = exact_index(&corpus);
        let a = bounded.join(tau);
        let b = exact.join(tau);
        prop_assert_eq!(&a.matches, &b.matches, "tau {}", tau);
        prop_assert_eq!(a.stats.verified, b.stats.verified);
        prop_assert_eq!(&a.stats.filter, &b.stats.filter);
    }

    /// Metric-tree routing under the bounded default: leaf buckets and
    /// the pending overflow verify within the budget, vantage routing
    /// stays exact — answers still match the linear exact scan.
    #[test]
    fn bounded_metric_range_identical_to_exact_linear(
        corpus in arb_corpus(7, 16),
        q in arb_shape_tree(16),
        tau_int in 1..15usize,
    ) {
        let tau = tau_int as f64;
        let metric = TreeIndex::build(corpus.iter().cloned()).with_metric_tree(true);
        let exact = exact_index(&corpus);
        prop_assert_eq!(&metric.range(&q, tau).neighbors, &exact.range(&q, tau).neighbors);
        prop_assert_eq!(&metric.top_k(&q, 4).neighbors, &exact.top_k(&q, 4).neighbors);
    }
}

/// In a selective regime (tight threshold, far-apart trees that survive
/// the sketch filters) the bounded kernel actually exits early, the new
/// counters move, and the work saved is visible in `subproblems`.
#[test]
fn selective_range_reports_early_exits_and_less_work() {
    // Same-size trees with disjoint label sets: the size stage cannot
    // prune them, but their distance is far above tau = 1.
    let trees: Vec<Tree<u32>> = (0..12)
        .map(|i| Shape::Random.generate(40, 1000 + i as u64))
        .collect();
    let q = Shape::Random.generate(40, 7777);
    let bounded = TreeIndex::build(trees.iter().cloned()).unfiltered();
    let exact = TreeIndex::build(trees.iter().cloned())
        .unfiltered()
        .with_verifier(Box::new(AlgorithmVerifier::rted()));

    let a = bounded.range(&q, 1.0);
    let b = exact.range(&q, 1.0);
    assert_eq!(a.neighbors, b.neighbors);
    assert_eq!(a.stats.verified, b.stats.verified);
    assert!(
        a.stats.early_exits > 0,
        "tight budget on distant pairs must trigger early exits"
    );
    assert!(a.stats.bounded_time > std::time::Duration::ZERO);
    assert!(
        a.stats.subproblems < b.stats.subproblems,
        "bounded verification must compute fewer DP cells \
         ({} vs {})",
        a.stats.subproblems,
        b.stats.subproblems
    );
    assert_eq!(b.stats.early_exits, 0);

    // The lifetime totals surface the same signals.
    let t = bounded.totals();
    assert_eq!(t.verify_early_exits, a.stats.early_exits as u64);
    assert!(t.verify_bounded_ns > 0);
    assert!(t.verify_bounded_ns <= t.ted_ns);
}
