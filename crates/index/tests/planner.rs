//! The adaptive query planner's contract: **plans never change
//! answers**. A planner-steered index must return byte-identical
//! `range`/`top_k`/`join` results to both fixed configurations
//! (all-linear and all-metric candidate generation), across corpora,
//! churn, thresholds, and warm-up histories; the planner's verifier
//! dispatch must partition the work counters exactly; and the striped
//! top-k driver must replay the union index's schedule counter-for-
//! counter.

use proptest::prelude::*;
use rted_datasets::shapes::Shape;
use rted_index::TreeIndex;
use rted_plan::CandidateGen;
use rted_tree::Tree;

fn arb_shape_tree(max: usize) -> impl Strategy<Value = Tree<u32>> {
    (0..Shape::ALL.len(), 1..=max, any::<u32>())
        .prop_map(|(s, n, seed)| Shape::ALL[s].generate(n, seed as u64))
}

/// An insert/remove script applied identically to every index under
/// comparison.
type Churn = Vec<(bool, u32, Tree<u32>)>;

fn apply_churn(index: &mut TreeIndex<u32>, ops: &Churn) {
    for (is_remove, pick, tree) in ops {
        if *is_remove && index.corpus().len() > 1 {
            let live: Vec<usize> = index.corpus().iter().map(|(id, _)| id).collect();
            index.remove(live[*pick as usize % live.len()]);
        } else {
            index.insert(tree.clone());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Planner-on answers ≡ all-linear answers ≡ all-metric answers,
    /// for range, top-k and join, after a warm-up history long enough to
    /// cross the cold-start, baseline-probe and exploit phases of the
    /// generator crossover (and the stage-reorder threshold), and after
    /// churn on top.
    #[test]
    fn planned_queries_identical_to_both_fixed_configs(
        corpus in proptest::collection::vec(arb_shape_tree(16), 2..=8),
        ops in proptest::collection::vec((any::<bool>(), any::<u32>(), arb_shape_tree(14)), 0..6),
        q in arb_shape_tree(16),
        tau_int in 0..20usize,
        k in 1..6usize,
    ) {
        let tau = if tau_int == 0 { f64::INFINITY } else { tau_int as f64 };
        let mut linear = TreeIndex::build(corpus.iter().cloned());
        let mut metric = TreeIndex::build(corpus.iter().cloned()).with_metric_tree(true);
        let mut planned = TreeIndex::build(corpus.iter().cloned())
            .with_metric_tree(true)
            .with_planner(true);

        // Warm the planner past its decision thresholds: both arms get
        // sampled and the reorder hysteresis (8 observed queries) is
        // crossed, so the comparison below exercises *steered* plans,
        // not the cold-start passthrough.
        for (i, (_, entry)) in planned.corpus().iter().take(9).enumerate().collect::<Vec<_>>() {
            let probe = entry.tree().clone();
            let _ = planned.range(&probe, 2.0 + i as f64);
        }
        let _ = metric.range(&q, 3.0);
        apply_churn(&mut linear, &ops);
        apply_churn(&mut metric, &ops);
        apply_churn(&mut planned, &ops);

        let p = planned.range(&q, tau);
        prop_assert_eq!(&p.neighbors, &linear.range(&q, tau).neighbors);
        prop_assert_eq!(&p.neighbors, &metric.range(&q, tau).neighbors);

        let p = planned.top_k(&q, k);
        prop_assert_eq!(&p.neighbors, &linear.top_k(&q, k).neighbors);
        prop_assert_eq!(&p.neighbors, &metric.top_k(&q, k).neighbors);

        let p = planned.join(tau);
        prop_assert_eq!(&p.matches, &linear.join(tau).matches);
        prop_assert_eq!(&p.matches, &metric.join(tau).matches);
    }
}

/// One budgeted query over a corpus mixing tiny trees (size product at
/// or below the Zhang–Shasha cutoff) with large ones must split its
/// verifications across dispatch arms — and every counter family must
/// partition exactly: candidates into per-stage prunes plus verified,
/// verified into the three `plan_*_pairs` arms, early exits within the
/// bounded arm, bounded wall time within total TED time.
#[test]
fn mixed_verifier_dispatch_partitions_the_totals() {
    let mut trees: Vec<Tree<u32>> = Vec::new();
    for i in 0..6u64 {
        // 4·16 = 64 cells → Zhang–Shasha; 26·16 = 416 → bounded kernel
        // under a finite budget, full RTED without one.
        trees.push(Shape::ALL[i as usize % Shape::ALL.len()].generate(4, i));
        trees.push(Shape::ALL[i as usize % Shape::ALL.len()].generate(26, 100 + i));
    }
    let index = TreeIndex::build(trees.iter().cloned()).with_planner(true);
    let q = Shape::Mixed.generate(16, 9);

    // τ wide enough that the size stage keeps both size groups in play,
    // finite so verification above the cutoff is budget-aware.
    let res = index.range(&q, 40.0);
    let t = index.totals();
    assert!(t.plan_zs_pairs > 0, "no pair took the Zhang–Shasha arm");
    assert!(t.plan_bounded_pairs > 0, "no pair took the bounded arm");
    assert_eq!(
        t.verified,
        t.plan_zs_pairs + t.plan_bounded_pairs + t.plan_rted_pairs,
        "verified pairs must partition across the dispatch arms"
    );
    let pruned: u64 = t.stages.iter().map(|s| s.pruned).sum();
    assert_eq!(t.candidates, pruned + t.verified);
    assert!(t.verify_early_exits <= t.plan_bounded_pairs);
    assert!(t.verify_bounded_ns <= t.ted_ns);
    assert!(t.verify_bounded_ns > 0);
    assert_eq!(res.stats.verified as u64, t.verified);

    // A tight budget makes the bounded arm abandon over-budget pairs:
    // early exits appear, and stay bounded by the arm's pair count.
    let _ = index.range(&q, 12.0);
    let t = index.totals();
    assert!(
        t.verify_early_exits > 0,
        "tight budget produced no early exit"
    );
    assert!(t.verify_early_exits <= t.plan_bounded_pairs);

    // An unbudgeted query sends the same large pairs to full RTED
    // instead; the bounded-arm counter must not move.
    let bounded_before = t.plan_bounded_pairs;
    let _ = index.range(&q, f64::INFINITY);
    let t = index.totals();
    assert!(
        t.plan_rted_pairs > 0,
        "unbudgeted large pairs must take full RTED"
    );
    assert_eq!(t.plan_bounded_pairs, bounded_before);
    assert_eq!(
        t.verified,
        t.plan_zs_pairs + t.plan_bounded_pairs + t.plan_rted_pairs
    );
}

/// `explain` is gated exactly like a real query: with the planner off it
/// reports the fixed plan and records nothing; with it on it records a
/// decision, honours the configured generator on cold start, and only
/// reports a budgeted verifier plan when the budget would actually be
/// exploited.
#[test]
fn explain_reports_and_records_like_a_query() {
    let trees: Vec<Tree<u32>> = (0..10)
        .map(|i| Shape::ALL[i % Shape::ALL.len()].generate(6 + i, i as u64))
        .collect();

    let fixed = TreeIndex::build(trees.iter().cloned());
    let report = fixed.explain(true);
    assert!(
        !report.budgeted,
        "planner off: no bounded dispatch to report"
    );
    assert_eq!(report.stage_order.first().copied(), Some("size"));
    let t = fixed.totals();
    assert_eq!(
        t.plan_linear + t.plan_metric,
        0,
        "explain must not record while off"
    );

    let planned = TreeIndex::build(trees.iter().cloned()).with_planner(true);
    let report = planned.explain(true);
    assert!(report.budgeted);
    // Metric trees disabled → the metric arm is ineligible.
    assert_eq!(report.candidate_gen, CandidateGen::Linear);
    assert_eq!(planned.totals().plan_linear, 1);
    assert_eq!(report.observed_queries, 0);

    // Cold start honours the configured generator (metric enabled,
    // unsampled → metric), but only for budgeted queries: τ = ∞ cannot
    // route.
    let metric = TreeIndex::build(trees.iter().cloned())
        .with_metric_tree(true)
        .with_planner(true);
    assert_eq!(metric.explain(true).candidate_gen, CandidateGen::Metric);
    assert_eq!(metric.explain(false).candidate_gen, CandidateGen::Linear);
    let t = metric.totals();
    assert_eq!((t.plan_metric, t.plan_linear), (1, 1));
}

/// Enough observed queries with a lopsided prune profile reorder the
/// stages by measured selectivity-per-cost — and the reorder is
/// answer-invariant against the fixed construction order.
#[test]
fn stage_reorder_triggers_and_preserves_answers() {
    let trees: Vec<Tree<u32>> = (0..12)
        .map(|i| Shape::Mixed.generate(10 + i, i as u64))
        .collect();
    let fixed = TreeIndex::build(trees.iter().cloned());
    let planned = TreeIndex::build(trees.iter().cloned()).with_planner(true);

    // Mixed-shape trees at a tight threshold give the non-trivial
    // stages real prune counts; past the hysteresis the measured
    // ranking replaces the construction order.
    for (i, (_, entry)) in fixed.corpus().iter().enumerate().collect::<Vec<_>>() {
        let probe = entry.tree().clone();
        for tau in [2.0, 8.0] {
            assert_eq!(
                planned.range(&probe, tau).neighbors,
                fixed.range(&probe, tau).neighbors,
                "probe {i} diverged at tau {tau}"
            );
        }
    }
    let t = planned.totals();
    assert!(
        t.plan_reorders >= 1,
        "24 lopsided queries must trigger a reorder"
    );
    let report = planned.explain(true);
    assert_eq!(
        report.stage_order.first().copied(),
        Some("size"),
        "size stays pinned"
    );
    assert_eq!(report.stage_order.len(), 6, "reorder keeps every stage");
    // The reordered pipeline still answers identically.
    let q = Shape::Random.generate(14, 99);
    assert_eq!(
        planned.range(&q, 6.0).neighbors,
        fixed.range(&q, 6.0).neighbors
    );
}

/// The striped top-k driver is counter-identical to one index holding
/// the union corpus under global ids — the neighbour set *and* the work
/// counters (`verified`, `early_exits`, `subproblems`) replay the same
/// batch schedule, and the query is recorded once, into the driver
/// shard.
#[test]
fn striped_top_k_replays_the_union_schedule() {
    let n = 3;
    let trees: Vec<Tree<u32>> = (0..13)
        .map(|g| Shape::ALL[g % Shape::ALL.len()].generate(5 + g, g as u64))
        .collect();
    let union = TreeIndex::build(trees.iter().cloned());
    // Global id g lives on shard g % n as local id g / n.
    let mut shard_trees: Vec<Vec<Tree<u32>>> = vec![Vec::new(); n];
    for (g, t) in trees.iter().enumerate() {
        shard_trees[g % n].push(t.clone());
    }
    let shards: Vec<TreeIndex<u32>> = shard_trees.into_iter().map(TreeIndex::build).collect();
    let refs: Vec<&TreeIndex<u32>> = shards.iter().collect();
    let q = Shape::Mixed.generate(9, 77);

    for k in [1, 4, 13, 20] {
        let a = union.top_k(&q, k);
        let b = TreeIndex::top_k_striped(&refs, &q, k);
        assert_eq!(a.neighbors, b.neighbors, "k {k}");
        assert_eq!(a.stats.candidates, b.stats.candidates, "k {k}");
        assert_eq!(a.stats.verified, b.stats.verified, "k {k}");
        assert_eq!(a.stats.early_exits, b.stats.early_exits, "k {k}");
        assert_eq!(a.stats.subproblems, b.stats.subproblems, "k {k}");
    }
    assert_eq!(
        shards[0].totals().topk_queries,
        4,
        "driver records each query once"
    );
    assert_eq!(shards[1].totals().topk_queries, 0);
    assert_eq!(shards[2].totals().topk_queries, 0);

    // With every shard planner-steered the answers still match a
    // planner-steered union index.
    let union_p = TreeIndex::build(trees.iter().cloned()).with_planner(true);
    let shards_p: Vec<TreeIndex<u32>> = shards.into_iter().map(|s| s.with_planner(true)).collect();
    let refs_p: Vec<&TreeIndex<u32>> = shards_p.iter().collect();
    let a = union_p.top_k(&q, 5);
    let b = TreeIndex::top_k_striped(&refs_p, &q, 5);
    assert_eq!(a.neighbors, b.neighbors);
    assert_eq!(a.stats.verified, b.stats.verified);
}
