//! The pre-analyzed tree corpus.
//!
//! Every tree is analyzed exactly once when it enters the corpus: its
//! [`TreeSketch`] (size, depth, leaf/internal counts, label histogram) is
//! computed at insert time, and the corpus keeps a size-sorted view so
//! queries can restrict themselves to a contiguous size window instead of
//! scanning all entries.
//!
//! # Identity and mutation
//!
//! Entry ids are assigned sequentially at insert time and are **stable
//! forever**: [`TreeCorpus::remove`] leaves a hole rather than renumbering,
//! and ids are never reused — so query results, on-disk segments
//! ([`crate::store`]) and application-side references all agree on what an
//! id means across arbitrarily many updates and compactions. The only
//! structure maintained under mutation is the size-sorted view, updated in
//! place in O(log n) search + O(n) shift per operation — no re-analysis of
//! any other tree.
//!
//! Queries borrow the corpus concurrently from many threads; mutation
//! requires `&mut` (single-writer, as usual in Rust).

use rted_core::bounds::TreeSketch;
use rted_core::pqgram::{PqGramProfile, PqParams, PqScratch};
use rted_tree::Tree;
use std::sync::Arc;

/// One corpus entry: the tree plus its insert-time analysis.
#[derive(Debug, Clone)]
pub struct CorpusEntry<L> {
    tree: Tree<L>,
    sketch: TreeSketch<L>,
}

impl<L> CorpusEntry<L> {
    /// Reassembles an entry from previously computed parts (used by the
    /// persistence layer to skip re-analysis on load).
    pub(crate) fn from_parts(tree: Tree<L>, sketch: TreeSketch<L>) -> Self {
        CorpusEntry { tree, sketch }
    }

    /// Analyzes a tree into an entry — the insert-time analysis, runnable
    /// before the entry has a corpus slot. Callers that must serialize or
    /// hand off an entry *before* committing the in-memory insert (the
    /// durable store, the serving layer's insert path) build entries here
    /// and pass them to [`TreeCorpus::insert_entry`], so each tree is
    /// analyzed exactly once.
    pub fn analyze(tree: Tree<L>) -> Self
    where
        L: Eq + std::hash::Hash + Clone,
    {
        let sketch = TreeSketch::new(&tree);
        CorpusEntry { tree, sketch }
    }

    /// The stored tree.
    #[inline]
    pub fn tree(&self) -> &Tree<L> {
        &self.tree
    }

    /// The precomputed per-tree summary.
    #[inline]
    pub fn sketch(&self) -> &TreeSketch<L> {
        &self.sketch
    }
}

/// A collection of pre-analyzed trees with stable ids.
///
/// Ids are the 0-based insertion positions; removed ids stay reserved (see
/// the module docs). All query results refer to trees by these ids.
#[derive(Debug, Clone)]
pub struct TreeCorpus<L> {
    /// Slot per ever-assigned id; `None` marks a removed tree. Entries are
    /// `Arc`-shared so cloning the corpus (copy-on-write snapshot forks in
    /// the serving layer) is O(n) pointer copies, not a deep re-analysis.
    entries: Vec<Option<Arc<CorpusEntry<L>>>>,
    /// Number of live (non-removed) entries.
    live: usize,
    /// Live entry ids sorted by (subtree size, id) — the size-window
    /// accelerator.
    by_size: Vec<u32>,
}

impl<L: Eq + std::hash::Hash + Clone> TreeCorpus<L> {
    /// Builds a corpus, analyzing every tree once (profile scratch is
    /// shared across the whole build — one arena, not one per tree).
    pub fn build(trees: impl IntoIterator<Item = Tree<L>>) -> Self {
        let mut scratch = PqScratch::default();
        let entries: Vec<Option<CorpusEntry<L>>> = trees
            .into_iter()
            .map(|tree| {
                let sketch = TreeSketch::with_pq(&tree, PqParams::default(), &mut scratch);
                Some(CorpusEntry { tree, sketch })
            })
            .collect();
        Self::from_raw_parts(entries)
    }

    /// Recomputes every live entry's pq-gram profile under `params` (one
    /// shared scratch arena). The profiles stored in a persistent corpus
    /// are fixed at build time; callers that want different gram lengths —
    /// e.g. the CLI's `--pq P,Q` — re-profile the loaded corpus in memory.
    /// All profiles in a corpus must share params, or the pq-gram stage
    /// degrades to a zero bound on mixed pairs.
    pub fn recompute_profiles(&mut self, params: PqParams) {
        let mut scratch = PqScratch::default();
        for slot in self.entries.iter_mut().flatten() {
            // Entries may be shared with snapshot forks; re-profile a
            // private copy so concurrent readers keep a consistent view.
            let entry = Arc::make_mut(slot);
            entry.sketch.pq = PqGramProfile::compute_in(&entry.tree, params, &mut scratch);
        }
    }

    /// Rebuilds a corpus from per-id slots (`None` = removed id), deriving
    /// the live count and size-sorted view. Used by the persistence layer.
    pub(crate) fn from_raw_parts(entries: Vec<Option<CorpusEntry<L>>>) -> Self {
        let entries: Vec<Option<Arc<CorpusEntry<L>>>> =
            entries.into_iter().map(|slot| slot.map(Arc::new)).collect();
        let mut by_size: Vec<u32> = (0..entries.len() as u32)
            .filter(|&id| entries[id as usize].is_some())
            .collect();
        let live = by_size.len();
        by_size.sort_by_key(|&id| (Self::slot(&entries, id).sketch.size, id));
        TreeCorpus {
            entries,
            live,
            by_size,
        }
    }

    /// Inserts a tree, analyzing it once; returns its newly assigned id.
    ///
    /// O(log n) to locate + O(n) to shift the size-sorted view; no other
    /// entry is touched.
    pub fn insert(&mut self, tree: Tree<L>) -> usize {
        self.insert_entry(CorpusEntry::analyze(tree))
    }

    /// Inserts an already-analyzed entry (avoids re-analysis when the
    /// caller had to build the entry up front, e.g. to serialize it before
    /// committing the in-memory mutation).
    ///
    /// Profiles under different gram lengths are incomparable (zero
    /// bound), so if the corpus was re-profiled
    /// ([`recompute_profiles`](Self::recompute_profiles)) and the entry
    /// arrives with other params — `CorpusEntry::analyze` uses the
    /// defaults — its profile is recomputed to match before insertion,
    /// keeping the corpus-wide uniformity invariant.
    pub fn insert_entry(&mut self, entry: CorpusEntry<L>) -> usize {
        let id = self.entries.len();
        self.insert_arc_at(id, Arc::new(entry));
        id
    }

    /// Inserts an already-analyzed, shared entry at an **explicit id**,
    /// padding the id space with vacant slots when `id` skips past the
    /// current bound. Sharded serving needs this: global ids are striped
    /// across shards, and a crash between per-shard WAL appends can leave
    /// one shard's local id sequence with a permanent hole (recovery
    /// derives the next global id from the surviving maximum, so the lost
    /// local id is skipped forever — exactly like a removed id).
    ///
    /// # Panics
    ///
    /// Panics if `id` names a live entry (ids are never reused).
    pub fn insert_arc_at(&mut self, id: usize, mut entry: Arc<CorpusEntry<L>>) {
        if let Some((_, first)) = self.iter().next() {
            let params = first.sketch.pq.params();
            if entry.sketch.pq.params() != params {
                let owned = Arc::make_mut(&mut entry);
                owned.sketch.pq =
                    PqGramProfile::compute_in(&owned.tree, params, &mut PqScratch::default());
            }
        }
        assert!(id < u32::MAX as usize, "corpus id space exhausted");
        assert!(
            id >= self.entries.len() || self.entries[id].is_none(),
            "corpus id {id} already live (ids are never reused)"
        );
        while self.entries.len() < id {
            self.entries.push(None);
        }
        let key = (entry.sketch.size, id as u32);
        let pos = self
            .by_size
            .partition_point(|&e| (Self::slot(&self.entries, e).sketch.size, e) < key);
        self.by_size.insert(pos, id as u32);
        if id == self.entries.len() {
            self.entries.push(Some(entry));
        } else {
            self.entries[id] = Some(entry);
        }
        self.live += 1;
    }

    /// Removes the tree with id `id`, returning its entry, or `None` if the
    /// id was never assigned or already removed. The id stays reserved.
    pub fn remove(&mut self, id: usize) -> Option<Arc<CorpusEntry<L>>> {
        // Locate the id in the size-sorted view *before* vacating its slot:
        // the binary search probes neighbouring ids through their (still
        // live) entries, and may probe `id` itself.
        let key = (self.entries.get(id)?.as_ref()?.sketch.size, id as u32);
        let pos = self
            .by_size
            .partition_point(|&e| (Self::slot(&self.entries, e).sketch.size, e) < key);
        debug_assert_eq!(self.by_size.get(pos), Some(&(id as u32)));
        self.by_size.remove(pos);
        self.live -= 1;
        self.entries[id].take()
    }
}

impl<L> TreeCorpus<L> {
    #[inline]
    fn slot(entries: &[Option<Arc<CorpusEntry<L>>>], id: u32) -> &CorpusEntry<L> {
        entries[id as usize]
            .as_deref()
            .expect("by_size holds only live ids")
    }

    /// Number of live trees.
    #[inline]
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` iff the corpus holds no live trees.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// One past the largest id ever assigned (the next id
    /// [`insert`](Self::insert) will hand out). `len() < id_bound()`
    /// whenever trees have been removed.
    #[inline]
    pub fn id_bound(&self) -> usize {
        self.entries.len()
    }

    /// Number of reserved-but-vacant ids (`id_bound() − len()`). Note for
    /// compaction triggers: holes are *permanent* — ids are never reused,
    /// so this count survives [`crate::CorpusStore::compact`] — whereas
    /// the file's reclaimable tombstone backlog
    /// ([`crate::CorpusStore::file_tombstones`]) resets to zero. Keying a
    /// compaction threshold off `holes()` would re-fire forever on an
    /// already-compact store; key it off the file backlog instead.
    #[inline]
    pub fn holes(&self) -> usize {
        self.entries.len() - self.live
    }

    /// The entry with id `id`, or `None` if it was removed or never
    /// assigned.
    #[inline]
    pub fn get(&self, id: usize) -> Option<&CorpusEntry<L>> {
        self.entries.get(id).and_then(|slot| slot.as_deref())
    }

    /// The shared handle to entry `id`, or `None` if it was removed or
    /// never assigned. Lets callers pin an entry beyond the corpus borrow
    /// (e.g. serving a tree out of a snapshot that may be superseded).
    #[inline]
    pub fn get_arc(&self, id: usize) -> Option<&Arc<CorpusEntry<L>>> {
        self.entries.get(id).and_then(|slot| slot.as_ref())
    }

    /// The entry with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not name a live tree.
    #[inline]
    pub fn entry(&self, id: usize) -> &CorpusEntry<L> {
        self.get(id)
            .unwrap_or_else(|| panic!("no live corpus tree with id {id}"))
    }

    /// The tree with id `id` (panics like [`entry`](Self::entry)).
    #[inline]
    pub fn tree(&self, id: usize) -> &Tree<L> {
        &self.entry(id).tree
    }

    /// The sketch of tree `id` (panics like [`entry`](Self::entry)).
    #[inline]
    pub fn sketch(&self, id: usize) -> &TreeSketch<L> {
        &self.entry(id).sketch
    }

    /// All live `(id, entry)` pairs in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &CorpusEntry<L>)> {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(id, slot)| slot.as_deref().map(|e| (id, e)))
    }

    /// Live entry ids sorted by (size, id).
    #[inline]
    pub fn by_size(&self) -> &[u32] {
        &self.by_size
    }

    /// The contiguous slice of [`by_size`](Self::by_size) whose tree sizes
    /// lie strictly within `tau` of `center`: candidates a size lower
    /// bound of `tau` cannot prune. With `tau = ∞` this is every entry.
    pub fn size_window(&self, center: usize, tau: f64) -> &[u32] {
        let lo = self.by_size.partition_point(|&id| {
            (Self::slot(&self.entries, id).sketch.size as f64) <= center as f64 - tau
        });
        let hi = self.by_size.partition_point(|&id| {
            (Self::slot(&self.entries, id).sketch.size as f64) < center as f64 + tau
        });
        // With tau <= 0 nothing can match and the two cuts cross (`lo`
        // skips past sizes == center, `hi` stops before them): clamp to
        // an empty window instead of slicing backwards.
        &self.by_size[lo..hi.max(lo)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rted_tree::parse_bracket;

    fn t(s: &str) -> Tree<String> {
        parse_bracket(s).unwrap()
    }

    fn sizes_in_view(c: &TreeCorpus<String>) -> Vec<(usize, u32)> {
        c.by_size()
            .iter()
            .map(|&id| (c.sketch(id as usize).size, id))
            .collect()
    }

    #[test]
    fn insert_maintains_sorted_view() {
        let mut c = TreeCorpus::build(vec![t("{a{b}{c}}"), t("{x}")]);
        assert_eq!(c.len(), 2);
        let id = c.insert(t("{p{q}}"));
        assert_eq!(id, 2);
        assert_eq!(c.len(), 3);
        let sizes = sizes_in_view(&c);
        let mut sorted = sizes.clone();
        sorted.sort();
        assert_eq!(sizes, sorted);
        assert_eq!(sizes, vec![(1, 1), (2, 2), (3, 0)]);
    }

    #[test]
    fn remove_leaves_stable_ids() {
        let mut c = TreeCorpus::build(vec![t("{a}"), t("{b{c}}"), t("{d{e}{f}}")]);
        assert!(c.remove(1).is_some());
        assert!(c.remove(1).is_none(), "double remove");
        assert_eq!(c.len(), 2);
        assert_eq!(c.id_bound(), 3);
        assert!(c.get(1).is_none());
        assert_eq!(c.tree(2).len(), 3);
        // Ids are never reused.
        assert_eq!(c.insert(t("{z}")), 3);
        assert_eq!(sizes_in_view(&c), vec![(1, 0), (1, 3), (3, 2)]);
    }

    #[test]
    fn insert_arc_at_pads_crash_holes() {
        let mut c = TreeCorpus::build(vec![t("{a}")]);
        c.insert_arc_at(3, Arc::new(CorpusEntry::analyze(t("{b{c}}"))));
        assert_eq!(c.len(), 2);
        assert_eq!(c.id_bound(), 4);
        assert_eq!(c.holes(), 2);
        assert!(c.get(1).is_none());
        assert!(c.get(2).is_none());
        assert_eq!(c.tree(3).len(), 2);
        // Padded ids stay permanently vacant; plain inserts append after.
        assert_eq!(c.insert(t("{z}")), 4);
        assert_eq!(sizes_in_view(&c), vec![(1, 0), (1, 4), (2, 3)]);
    }

    #[test]
    fn iter_skips_holes() {
        let mut c = TreeCorpus::build(vec![t("{a}"), t("{b}"), t("{c}")]);
        c.remove(0);
        let ids: Vec<usize> = c.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "no live corpus tree with id 0")]
    fn entry_panics_on_removed_id() {
        let mut c = TreeCorpus::build(vec![t("{a}")]);
        c.remove(0);
        c.entry(0);
    }

    #[test]
    fn size_window_ignores_removed() {
        let mut c = TreeCorpus::build(vec![t("{a{b}{c}}"), t("{x{y}{z}}"), t("{q}")]);
        c.remove(0);
        let w: Vec<u32> = c.size_window(3, 1.0).to_vec();
        assert_eq!(w, vec![1]);
    }
}
