//! The immutable, pre-analyzed tree corpus.
//!
//! Every tree is analyzed exactly once when the corpus is built: its
//! [`TreeSketch`] (size, depth, leaf/internal counts, label histogram) is
//! computed at insert time, and the corpus keeps a size-sorted view so
//! queries can restrict themselves to a contiguous size window instead of
//! scanning all entries. After construction the corpus never changes —
//! queries borrow it concurrently from many threads.

use rted_core::bounds::TreeSketch;
use rted_tree::Tree;

/// One corpus entry: the tree plus its insert-time analysis.
#[derive(Debug, Clone)]
pub struct CorpusEntry<L> {
    tree: Tree<L>,
    sketch: TreeSketch<L>,
}

impl<L> CorpusEntry<L> {
    /// The stored tree.
    #[inline]
    pub fn tree(&self) -> &Tree<L> {
        &self.tree
    }

    /// The precomputed per-tree summary.
    #[inline]
    pub fn sketch(&self) -> &TreeSketch<L> {
        &self.sketch
    }
}

/// An immutable collection of pre-analyzed trees, ordered by insertion.
///
/// Entry ids are the 0-based insertion positions; all query results refer
/// to trees by these ids.
#[derive(Debug, Clone)]
pub struct TreeCorpus<L> {
    entries: Vec<CorpusEntry<L>>,
    /// Entry ids sorted by (subtree size, id) — the size-window accelerator.
    by_size: Vec<u32>,
}

impl<L: Eq + std::hash::Hash + Clone> TreeCorpus<L> {
    /// Builds a corpus, analyzing every tree once.
    pub fn build(trees: impl IntoIterator<Item = Tree<L>>) -> Self {
        let entries: Vec<CorpusEntry<L>> = trees
            .into_iter()
            .map(|tree| {
                let sketch = TreeSketch::new(&tree);
                CorpusEntry { tree, sketch }
            })
            .collect();
        let mut by_size: Vec<u32> = (0..entries.len() as u32).collect();
        by_size.sort_by_key(|&id| (entries[id as usize].sketch.size, id));
        TreeCorpus { entries, by_size }
    }

    /// Number of trees.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` iff the corpus holds no trees.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entry with id `id`.
    #[inline]
    pub fn entry(&self, id: usize) -> &CorpusEntry<L> {
        &self.entries[id]
    }

    /// The tree with id `id`.
    #[inline]
    pub fn tree(&self, id: usize) -> &Tree<L> {
        &self.entries[id].tree
    }

    /// The sketch of tree `id`.
    #[inline]
    pub fn sketch(&self, id: usize) -> &TreeSketch<L> {
        &self.entries[id].sketch
    }

    /// All entries in insertion order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &CorpusEntry<L>> {
        self.entries.iter()
    }

    /// Entry ids sorted by (size, id).
    #[inline]
    pub fn by_size(&self) -> &[u32] {
        &self.by_size
    }

    /// The contiguous slice of [`by_size`](Self::by_size) whose tree sizes
    /// lie strictly within `tau` of `center`: candidates a size lower
    /// bound of `tau` cannot prune. With `tau = ∞` this is every entry.
    pub fn size_window(&self, center: usize, tau: f64) -> &[u32] {
        let lo = self.by_size.partition_point(|&id| {
            (self.entries[id as usize].sketch.size as f64) <= center as f64 - tau
        });
        let hi = self.by_size.partition_point(|&id| {
            (self.entries[id as usize].sketch.size as f64) < center as f64 + tau
        });
        // With tau <= 0 nothing can match and the two cuts cross (`lo`
        // skips past sizes == center, `hi` stops before them): clamp to
        // an empty window instead of slicing backwards.
        &self.by_size[lo..hi.max(lo)]
    }
}
