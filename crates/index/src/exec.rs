//! The chunked parallel executor.
//!
//! Queries split their candidate lists into fixed-size chunks and map a
//! worker function over them with `std::thread::scope` — no extra
//! dependencies, no thread pool to manage. Chunk boundaries depend only on
//! the chunk size, and results are re-assembled in chunk order, so the
//! output is identical for any thread count (including 1, which bypasses
//! the threads entirely).
//!
//! Workers that verify candidates need scratch memory: [`map_chunks_with`]
//! gives every worker thread one state value for its whole lifetime, and a
//! [`WorkspacePool`] recycles [`Workspace`]s across those workers — and
//! across queries — so candidate verification stops allocating once the
//! pool is warm.
//!
//! The executor itself is threshold-agnostic: the verification budget a
//! query carries (range/join `tau`, the top-k batch radius) is threaded
//! through the per-chunk closures in `lib.rs`, which hand it to the
//! verifier's `verify_within` alongside a pooled workspace.

use rted_core::Workspace;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How a query distributes work across threads.
#[derive(Debug, Clone, Copy)]
pub struct ExecPolicy {
    /// Worker threads (1 = run everything on the calling thread).
    pub threads: usize,
    /// Candidates per chunk; smaller chunks balance better, larger chunks
    /// amortize dispatch.
    pub chunk: usize,
}

impl ExecPolicy {
    /// A serial policy.
    pub fn serial() -> Self {
        ExecPolicy {
            threads: 1,
            chunk: 64,
        }
    }

    /// A policy with `threads` workers.
    pub fn with_threads(threads: usize) -> Self {
        ExecPolicy {
            threads: threads.max(1),
            chunk: 64,
        }
    }
}

impl Default for ExecPolicy {
    fn default() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8);
        ExecPolicy { threads, chunk: 64 }
    }
}

/// Maps `f` over fixed-size chunks of `items`, in parallel when the policy
/// allows, returning per-chunk results in chunk order. `f` receives the
/// chunk's start offset within `items` and the chunk slice.
pub fn map_chunks<T, R, F>(items: &[T], policy: &ExecPolicy, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    map_chunks_with(items, policy, || (), |(), start, chunk| f(start, chunk))
}

/// [`map_chunks`] with per-worker state: `init` runs once per worker
/// thread (once total in the serial path), and the state is passed by
/// `&mut` to every chunk that worker processes, then dropped when the
/// worker finishes. Chunk boundaries and result order are identical to
/// [`map_chunks`] for any thread count — the state only carries scratch
/// (e.g. a [`Workspace`]), never data that influences results.
pub fn map_chunks_with<T, R, S, I, F>(items: &[T], policy: &ExecPolicy, init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &[T]) -> R + Sync,
{
    let chunk = policy.chunk.max(1);
    let n_chunks = items.len().div_ceil(chunk);
    let threads = policy.threads.clamp(1, n_chunks.max(1));
    if threads <= 1 {
        let mut state = init();
        return (0..n_chunks)
            .map(|c| {
                let start = c * chunk;
                let end = (start + chunk).min(items.len());
                f(&mut state, start, &items[start..end])
            })
            .collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n_chunks));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut state = init();
                loop {
                    let c = next.fetch_add(1, Ordering::Relaxed);
                    if c >= n_chunks {
                        break;
                    }
                    let start = c * chunk;
                    let end = (start + chunk).min(items.len());
                    let r = f(&mut state, start, &items[start..end]);
                    slots.lock().unwrap().push((c, r));
                }
            });
        }
    });
    let mut collected = slots.into_inner().unwrap();
    collected.sort_by_key(|&(c, _)| c);
    collected.into_iter().map(|(_, r)| r).collect()
}

/// A lock-protected stash of [`Workspace`]s shared by all queries of an
/// index: workers borrow one for their lifetime and return it on drop, so
/// verification scratch is allocated once per concurrency level and then
/// reused for every candidate of every subsequent query.
#[derive(Debug, Default)]
pub struct WorkspacePool {
    pool: Mutex<Vec<Workspace>>,
}

impl WorkspacePool {
    /// An empty pool.
    pub fn new() -> Self {
        WorkspacePool::default()
    }

    /// Borrows a workspace (recycled if available, fresh otherwise); it
    /// returns to the pool when the guard drops.
    pub fn take(&self) -> PooledWorkspace<'_> {
        let ws = self.pool.lock().unwrap().pop().unwrap_or_default();
        PooledWorkspace {
            ws: Some(ws),
            pool: self,
        }
    }
}

/// RAII guard of a pooled [`Workspace`].
#[derive(Debug)]
pub struct PooledWorkspace<'p> {
    ws: Option<Workspace>,
    pool: &'p WorkspacePool,
}

impl PooledWorkspace<'_> {
    /// The borrowed workspace.
    pub fn get(&mut self) -> &mut Workspace {
        self.ws.as_mut().expect("workspace present until drop")
    }
}

impl Drop for PooledWorkspace<'_> {
    fn drop(&mut self) {
        if let Some(ws) = self.ws.take() {
            self.pool.pool.lock().unwrap().push(ws);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_pool_recycles() {
        let pool = WorkspacePool::new();
        {
            let mut guard = pool.take();
            let _ = guard.get();
        }
        assert_eq!(pool.pool.lock().unwrap().len(), 1);
        {
            let _a = pool.take();
            let _b = pool.take(); // concurrent takes get distinct workspaces
            assert_eq!(pool.pool.lock().unwrap().len(), 0);
        }
        assert_eq!(pool.pool.lock().unwrap().len(), 2);
    }

    #[test]
    fn map_chunks_with_state_per_worker() {
        // The per-worker state must not affect results: sum with a scratch
        // accumulator reset per chunk.
        let items: Vec<u64> = (0..500).collect();
        let stateful = map_chunks_with(
            &items,
            &ExecPolicy {
                threads: 4,
                chunk: 9,
            },
            Vec::<u64>::new,
            |buf, start, chunk| {
                buf.clear();
                buf.extend_from_slice(chunk);
                (start, buf.iter().sum::<u64>())
            },
        );
        let plain = map_chunks(
            &items,
            &ExecPolicy {
                threads: 1,
                chunk: 9,
            },
            |start, chunk| (start, chunk.iter().sum::<u64>()),
        );
        assert_eq!(stateful, plain);
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..1000).collect();
        let serial = map_chunks(&items, &ExecPolicy::serial(), |start, chunk| {
            (start, chunk.iter().sum::<u64>())
        });
        let parallel = map_chunks(
            &items,
            &ExecPolicy {
                threads: 4,
                chunk: 7,
            },
            |start, chunk| (start, chunk.iter().sum::<u64>()),
        );
        let serial_small = map_chunks(
            &items,
            &ExecPolicy {
                threads: 1,
                chunk: 7,
            },
            |start, chunk| (start, chunk.iter().sum::<u64>()),
        );
        assert_eq!(parallel, serial_small);
        let total: u64 = serial.iter().map(|&(_, s)| s).sum();
        assert_eq!(total, 1000 * 999 / 2);
    }

    #[test]
    fn empty_input() {
        let items: Vec<u32> = Vec::new();
        let out = map_chunks(&items, &ExecPolicy::default(), |_, c| c.len());
        assert!(out.is_empty());
    }

    #[test]
    fn covers_every_item_once() {
        let items: Vec<usize> = (0..503).collect();
        let chunks = map_chunks(
            &items,
            &ExecPolicy {
                threads: 3,
                chunk: 10,
            },
            |start, c| (start, c.to_vec()),
        );
        let mut flat = Vec::new();
        for (start, c) in chunks {
            assert_eq!(start, flat.len());
            flat.extend(c);
        }
        assert_eq!(flat, items);
    }
}
