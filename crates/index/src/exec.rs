//! The chunked parallel executor.
//!
//! Queries split their candidate lists into fixed-size chunks and map a
//! worker function over them with `std::thread::scope` — no extra
//! dependencies, no thread pool to manage. Chunk boundaries depend only on
//! the chunk size, and results are re-assembled in chunk order, so the
//! output is identical for any thread count (including 1, which bypasses
//! the threads entirely).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How a query distributes work across threads.
#[derive(Debug, Clone, Copy)]
pub struct ExecPolicy {
    /// Worker threads (1 = run everything on the calling thread).
    pub threads: usize,
    /// Candidates per chunk; smaller chunks balance better, larger chunks
    /// amortize dispatch.
    pub chunk: usize,
}

impl ExecPolicy {
    /// A serial policy.
    pub fn serial() -> Self {
        ExecPolicy {
            threads: 1,
            chunk: 64,
        }
    }

    /// A policy with `threads` workers.
    pub fn with_threads(threads: usize) -> Self {
        ExecPolicy {
            threads: threads.max(1),
            chunk: 64,
        }
    }
}

impl Default for ExecPolicy {
    fn default() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8);
        ExecPolicy { threads, chunk: 64 }
    }
}

/// Maps `f` over fixed-size chunks of `items`, in parallel when the policy
/// allows, returning per-chunk results in chunk order. `f` receives the
/// chunk's start offset within `items` and the chunk slice.
pub fn map_chunks<T, R, F>(items: &[T], policy: &ExecPolicy, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    let chunk = policy.chunk.max(1);
    let n_chunks = items.len().div_ceil(chunk);
    let threads = policy.threads.clamp(1, n_chunks.max(1));
    if threads <= 1 {
        return (0..n_chunks)
            .map(|c| {
                let start = c * chunk;
                let end = (start + chunk).min(items.len());
                f(start, &items[start..end])
            })
            .collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n_chunks));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let c = next.fetch_add(1, Ordering::Relaxed);
                if c >= n_chunks {
                    break;
                }
                let start = c * chunk;
                let end = (start + chunk).min(items.len());
                let r = f(start, &items[start..end]);
                slots.lock().unwrap().push((c, r));
            });
        }
    });
    let mut collected = slots.into_inner().unwrap();
    collected.sort_by_key(|&(c, _)| c);
    collected.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..1000).collect();
        let serial = map_chunks(&items, &ExecPolicy::serial(), |start, chunk| {
            (start, chunk.iter().sum::<u64>())
        });
        let parallel = map_chunks(
            &items,
            &ExecPolicy {
                threads: 4,
                chunk: 7,
            },
            |start, chunk| (start, chunk.iter().sum::<u64>()),
        );
        let serial_small = map_chunks(
            &items,
            &ExecPolicy {
                threads: 1,
                chunk: 7,
            },
            |start, chunk| (start, chunk.iter().sum::<u64>()),
        );
        assert_eq!(parallel, serial_small);
        let total: u64 = serial.iter().map(|&(_, s)| s).sum();
        assert_eq!(total, 1000 * 999 / 2);
    }

    #[test]
    fn empty_input() {
        let items: Vec<u32> = Vec::new();
        let out = map_chunks(&items, &ExecPolicy::default(), |_, c| c.len());
        assert!(out.is_empty());
    }

    #[test]
    fn covers_every_item_once() {
        let items: Vec<usize> = (0..503).collect();
        let chunks = map_chunks(
            &items,
            &ExecPolicy {
                threads: 3,
                chunk: 10,
            },
            |start, c| (start, c.to_vec()),
        );
        let mut flat = Vec::new();
        for (start, c) in chunks {
            assert_eq!(start, flat.len());
            flat.extend(c);
        }
        assert_eq!(flat, items);
    }
}
