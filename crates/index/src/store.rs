//! The durable corpus store: an on-disk [`TreeCorpus`] with incremental
//! updates.
//!
//! A [`CorpusStore`] pairs an in-memory corpus with its file image in the
//! [`crate::persist`] format. Mutations are **append-only**: inserting
//! trees appends one trees segment, removing trees appends one tombstones
//! segment, and only the fixed-size header is rewritten in place (to bump
//! the live count / next id) — the cost of an update is proportional to
//! the update, not to the corpus. [`compact`](CorpusStore::compact)
//! rewrites the file as a single canonical segment when the tombstone /
//! segment backlog is worth reclaiming, preserving every live id.
//!
//! Durability model: segments are appended **before** the header is
//! updated, so a crash between the two leaves a file whose header
//! disagrees with its segments — which the loader rejects as corrupt
//! rather than serving a half-applied update. Compaction goes through a
//! temporary file and an atomic rename. The store assumes a single writer;
//! concurrent writers can interleave appends and produce a file the loader
//! rejects, but never a file it silently mis-reads.

use crate::corpus::{CorpusEntry, TreeCorpus};
use crate::persist::{
    encode_corpus, tombstones_segment, trees_segment, CorpusFile, Header, PersistError,
    FORMAT_VERSION,
};
use rted_tree::Tree;
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// A [`TreeCorpus`] backed by an on-disk segment file.
pub struct CorpusStore {
    path: PathBuf,
    corpus: TreeCorpus<String>,
    /// Segments in the backing file — tracked in memory (the store is the
    /// file's single writer) so status queries never re-read the file.
    segments: usize,
}

impl CorpusStore {
    /// Builds a corpus from `trees` (analyzing each once) and writes it to
    /// `path`, replacing any existing file.
    pub fn create(
        path: impl Into<PathBuf>,
        trees: impl IntoIterator<Item = Tree<String>>,
    ) -> Result<Self, PersistError> {
        Self::create_from(path, TreeCorpus::build(trees))
    }

    /// Writes an existing corpus to `path`, replacing any existing file.
    pub fn create_from(
        path: impl Into<PathBuf>,
        corpus: TreeCorpus<String>,
    ) -> Result<Self, PersistError> {
        let path = path.into();
        write_atomic(&path, &encode_corpus(&corpus))?;
        let segments = usize::from(!corpus.is_empty());
        Ok(CorpusStore {
            path,
            corpus,
            segments,
        })
    }

    /// Opens an existing corpus file, replaying its segments. No per-tree
    /// analysis runs — sketches come from the file.
    pub fn open(path: impl Into<PathBuf>) -> Result<Self, PersistError> {
        let path = path.into();
        let file = CorpusFile::read(&path)?;
        let corpus = file.corpus_owned()?;
        Ok(CorpusStore {
            path,
            corpus,
            segments: file.segment_count(),
        })
    }

    /// The live in-memory corpus (always consistent with the file).
    pub fn corpus(&self) -> &TreeCorpus<String> {
        &self.corpus
    }

    /// Consumes the store, yielding the corpus (e.g. to build a
    /// [`crate::TreeIndex`]).
    pub fn into_corpus(self) -> TreeCorpus<String> {
        self.corpus
    }

    /// The backing file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Inserts trees, analyzing each once and appending a single trees
    /// segment; returns the assigned ids (ascending).
    ///
    /// The segment is written (and fsynced) **before** the in-memory
    /// corpus is touched, so an I/O failure leaves the store exactly as it
    /// was — a retry re-assigns the same ids instead of silently diverging
    /// from the file.
    pub fn insert_all(
        &mut self,
        trees: impl IntoIterator<Item = Tree<String>>,
    ) -> Result<Vec<usize>, PersistError> {
        let new: Vec<CorpusEntry<String>> = trees.into_iter().map(CorpusEntry::analyze).collect();
        if new.is_empty() {
            return Ok(Vec::new());
        }
        let base = self.corpus.id_bound();
        let pairs: Vec<_> = new
            .iter()
            .enumerate()
            .map(|(i, entry)| ((base + i) as u64, entry))
            .collect();
        let segment = trees_segment(&pairs);
        self.append(
            &segment,
            (base + new.len()) as u64,
            self.corpus.len() + new.len(),
        )?;
        Ok(new
            .into_iter()
            .map(|entry| self.corpus.insert_entry(entry))
            .collect())
    }

    /// Removes the given ids, appending a single tombstones segment.
    /// Ids that are not live (never assigned, already removed, or repeated
    /// in `ids`) are skipped; returns how many trees were actually
    /// removed. Like [`insert_all`](Self::insert_all), the disk write
    /// happens first — on error nothing was removed.
    pub fn remove_all(&mut self, ids: &[usize]) -> Result<usize, PersistError> {
        // Validate and dedup against the live set without mutating it yet:
        // a duplicated id must not produce a double tombstone (the loader
        // rejects tombstones for non-live ids).
        let mut seen = std::collections::HashSet::new();
        let removed: Vec<u64> = ids
            .iter()
            .filter(|&&id| self.corpus.get(id).is_some() && seen.insert(id))
            .map(|&id| id as u64)
            .collect();
        if removed.is_empty() {
            return Ok(0);
        }
        self.append(
            &tombstones_segment(&removed),
            self.corpus.id_bound() as u64,
            self.corpus.len() - removed.len(),
        )?;
        for &id in &removed {
            self.corpus.remove(id as usize);
        }
        Ok(removed.len())
    }

    /// Rewrites the file as a single canonical trees segment, dropping
    /// tombstones and superseded records. Ids are preserved — compaction
    /// is invisible to queries and to previously handed-out ids. Atomic:
    /// goes through a temporary file and rename.
    pub fn compact(&mut self) -> Result<(), PersistError> {
        write_atomic(&self.path, &encode_corpus(&self.corpus))?;
        self.segments = usize::from(!self.corpus.is_empty());
        Ok(())
    }

    /// Number of segments currently in the backing file (tracked in
    /// memory; no I/O).
    pub fn segment_count(&self) -> usize {
        self.segments
    }

    /// Appends one segment, then rewrites the header in place with the
    /// post-mutation `next_id` / `live` counts. See the module docs for
    /// the crash-consistency argument behind this order. On any failure
    /// the file is rolled back — truncated to its previous length *and*
    /// the pre-append header restored (a failed sync can leave the new
    /// header in place even though the segment was dropped) — so a
    /// retried update neither stacks a duplicate segment onto an orphan
    /// nor strands a readable corpus behind a mismatched header.
    fn append(&mut self, segment: &[u8], next_id: u64, live: usize) -> Result<(), PersistError> {
        let io = |e: std::io::Error| {
            PersistError::Io(format!("cannot update {}: {e}", self.path.display()))
        };
        let mut file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(&self.path)
            .map_err(io)?;
        let old_len = file.seek(SeekFrom::End(0)).map_err(io)?;
        let result = (|| {
            file.write_all(segment)?;
            let header = Header {
                version: FORMAT_VERSION,
                flags: 0,
                next_id,
                live: live as u64,
            };
            file.seek(SeekFrom::Start(0))?;
            file.write_all(&header.encode())?;
            file.sync_all()
        })();
        if result.is_err() {
            // Best-effort rollback to the exact pre-append file image:
            // drop the appended bytes and restore the old header (the
            // corpus is not yet mutated, so its counts ARE the old
            // header). If even this fails, the loader still rejects the
            // inconsistent file, so nothing is silently wrong.
            let old_header = Header {
                version: FORMAT_VERSION,
                flags: 0,
                next_id: self.corpus.id_bound() as u64,
                live: self.corpus.len() as u64,
            };
            let _ = file.set_len(old_len);
            let _ = file
                .seek(SeekFrom::Start(0))
                .and_then(|_| file.write_all(&old_header.encode()));
            let _ = file.sync_all();
        } else {
            self.segments += 1;
        }
        result.map_err(io)
    }
}

/// Writes `bytes` to `path` via a sibling temporary file and an atomic
/// rename, so readers never observe a half-written file. The temporary
/// name extends the full file name (`corpus.idx` → `corpus.idx.tmp`), so
/// stores on distinct files never collide on their temp file.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), PersistError> {
    let io = |e: std::io::Error| PersistError::Io(format!("cannot write {}: {e}", path.display()));
    let mut tmp_name = path
        .file_name()
        .ok_or_else(|| PersistError::Io(format!("invalid corpus path {}", path.display())))?
        .to_os_string();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    {
        let mut file = std::fs::File::create(&tmp).map_err(io)?;
        file.write_all(bytes).map_err(io)?;
        file.sync_all().map_err(io)?;
    }
    std::fs::rename(&tmp, path).map_err(io)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rted_tree::parse_bracket;

    fn t(s: &str) -> Tree<String> {
        parse_bracket(s).unwrap()
    }

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rted-store-tests-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn create_open_roundtrip() {
        let path = scratch("roundtrip.idx");
        let store = CorpusStore::create(&path, vec![t("{a{b}{c}}"), t("{x{y}}")]).unwrap();
        assert_eq!(store.corpus().len(), 2);
        let reopened = CorpusStore::open(&path).unwrap();
        assert_eq!(reopened.corpus().len(), 2);
        assert_eq!(reopened.corpus().tree(0).len(), 3);
        assert_eq!(rted_tree::to_bracket(reopened.corpus().tree(1)), "{x{y}}");
    }

    #[test]
    fn updates_append_segments_and_survive_reopen() {
        let path = scratch("updates.idx");
        let mut store = CorpusStore::create(&path, vec![t("{a}"), t("{b{c}}")]).unwrap();
        assert_eq!(store.segment_count(), 1);

        let ids = store.insert_all(vec![t("{d{e}{f}}"), t("{g}")]).unwrap();
        assert_eq!(ids, vec![2, 3]);
        assert_eq!(store.segment_count(), 2);

        assert_eq!(store.remove_all(&[1, 1, 99]).unwrap(), 1);
        assert_eq!(store.segment_count(), 3);

        let reopened = CorpusStore::open(&path).unwrap();
        assert_eq!(reopened.corpus().len(), 3);
        assert!(reopened.corpus().get(1).is_none());
        assert_eq!(reopened.corpus().id_bound(), 4);

        // No-op updates append nothing.
        let mut store = reopened;
        assert_eq!(store.insert_all(Vec::new()).unwrap(), Vec::<usize>::new());
        assert_eq!(store.remove_all(&[1]).unwrap(), 0);
        assert_eq!(store.segment_count(), 3);
    }

    #[test]
    fn compaction_preserves_ids_and_shrinks() {
        let path = scratch("compact.idx");
        let mut store =
            CorpusStore::create(&path, (0..8).map(|i| t(&format!("{{n{i}{{x}}}}")))).unwrap();
        store.remove_all(&[0, 2, 4]).unwrap();
        store.insert_all(vec![t("{fresh{leaf}}")]).unwrap();
        let before = std::fs::metadata(&path).unwrap().len();
        let live_before: Vec<usize> = store.corpus().iter().map(|(id, _)| id).collect();

        store.compact().unwrap();
        assert_eq!(store.segment_count(), 1);
        assert!(std::fs::metadata(&path).unwrap().len() < before);

        let reopened = CorpusStore::open(&path).unwrap();
        let live_after: Vec<usize> = reopened.corpus().iter().map(|(id, _)| id).collect();
        assert_eq!(live_before, live_after);
        // Ids keep advancing past the compacted holes.
        let mut store = reopened;
        assert_eq!(store.insert_all(vec![t("{later}")]).unwrap(), vec![9]);
    }
}
