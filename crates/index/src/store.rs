//! The durable corpus store: an on-disk [`TreeCorpus`] with incremental
//! updates.
//!
//! Two layers live here:
//!
//! * [`CorpusLog`] — the file half alone: it tracks the backing file and
//!   appends segments / rewrites it, but does **not** own a corpus. A
//!   long-lived service that already owns the corpus (inside its query
//!   index) uses the log directly, so the trees exist in memory exactly
//!   once — see the `rted-serve` crate.
//! * [`CorpusStore`] — the convenient pairing of a log with its own
//!   in-memory corpus, for batch tools (the `rted index` CLI) and tests.
//!
//! Mutations are **append-only**: inserting trees appends one trees
//! segment, removing trees appends one tombstones segment, and only the
//! fixed-size header is rewritten in place (to bump the live count / next
//! id) — the cost of an update is proportional to the update, not to the
//! corpus. [`compact`](CorpusStore::compact) rewrites the file as a single
//! canonical segment when the tombstone / segment backlog is worth
//! reclaiming, preserving every live id.
//!
//! # Durability model
//!
//! Appends are ordered *segment bytes → fsync → header → fsync*: the
//! segment must be durable **before** the header acknowledges it,
//! otherwise a reordered write-back could persist a header whose counts
//! point past data that never hit the disk. With that ordering a crash
//! leaves one of exactly three states: the old file (append not started /
//! segment not yet durable — the torn segment bytes, if any, fail their
//! checksum), the old header with a complete durable segment behind it,
//! or the fully committed update. The first is clean after tail
//! truncation; the second is recovered *with* the update by
//! [`CorpusStore::open_repair`]; the strict [`CorpusStore::open`] rejects
//! both rather than serve a half-applied update silently. Compaction and
//! creation go through a temporary file, an atomic rename, and a
//! directory fsync (so the rename itself is durable). The store assumes a
//! single writer; concurrent writers can interleave appends and produce a
//! file the loader rejects, but never a file it silently mis-reads.

use crate::corpus::{CorpusEntry, TreeCorpus};
use crate::persist::{
    encode_corpus, salvage_corpus, tombstones_segment, trees_segment, CorpusFile, Header,
    PersistError, RepairReport, FLAG_PQ_PROFILES, FORMAT_VERSION, HEADER_LEN,
};
use rted_tree::Tree;
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// Observability hooks for the log's write path, installed by a serving
/// layer via [`CorpusLog::set_obs`]. All handles are pre-registered
/// lock-free metrics ([`rted_obs`]); recording adds a few relaxed atomic
/// RMWs to each (already fsync-dominated) durable write and never
/// allocates.
#[derive(Debug, Clone)]
pub struct WalObs {
    /// Latency of whole committed appends (segment write + both fsyncs +
    /// header rewrite), in nanoseconds.
    pub append: Arc<rted_obs::Histogram>,
    /// Latency of each individual `fsync` (`File::sync_all`), in
    /// nanoseconds — two per append.
    pub fsync: Arc<rted_obs::Histogram>,
    /// Bytes reclaimed by compaction rewrites (old file length minus
    /// rewritten length, when positive).
    pub bytes_reclaimed: Arc<rted_obs::Counter>,
}

/// Saturating nanoseconds since `start`.
#[inline]
fn ns_since(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// How [`CorpusStore::open_with`] treats a file that strict validation
/// rejects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recovery {
    /// Reject anything but a fully consistent file (the historical
    /// behavior — right for tools that must never mask corruption).
    Strict,
    /// Tail-scan salvage: recover the longest prefix of complete, valid
    /// segments, truncate the torn tail, and rewrite the header to match
    /// — the right mode for a service that must come back up after a
    /// crash mid-update instead of abandoning the whole corpus.
    Repair,
}

/// The `(next_id, live)` pair a corpus file header records. Appends carry
/// the pre- and post-mutation counts so the log can both commit the new
/// header and roll back to the old one on failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogCounts {
    /// The id the next inserted tree will receive.
    pub next_id: u64,
    /// Live tree count.
    pub live: u64,
}

impl LogCounts {
    /// The counts describing `corpus` right now.
    pub fn of<L>(corpus: &TreeCorpus<L>) -> Self {
        LogCounts {
            next_id: corpus.id_bound() as u64,
            live: corpus.len() as u64,
        }
    }

    fn header(self) -> Header {
        // Appends always run against a current-version file (old formats
        // are upgraded when the store opens), whose records carry pq-gram
        // profiles.
        Header {
            version: FORMAT_VERSION,
            flags: FLAG_PQ_PROFILES,
            next_id: self.next_id,
            live: self.live,
        }
    }
}

/// The file half of a durable corpus: append-only segment writes and
/// atomic rewrites against one backing path, with no corpus of its own.
///
/// The caller owns the corpus and keeps it consistent with the log by
/// appending **before** applying the same mutation in memory (so an I/O
/// failure leaves both sides on the old state). [`CorpusStore`] packages
/// that discipline; `rted-serve` drives the log directly under its index
/// lock.
#[derive(Debug)]
pub struct CorpusLog {
    path: PathBuf,
    /// Segments in the backing file — tracked in memory (the log is the
    /// file's single writer) so status queries never re-read the file.
    segments: usize,
    /// Tombstone records in the backing file: the compaction backlog.
    /// Unlike the corpus's *hole* count (which survives compaction — ids
    /// are never reused), this resets to zero on rewrite, so it is the
    /// correct trigger for threshold-driven compaction.
    tombstones: usize,
    /// Optional write-path metrics (`None` = unobserved, the batch-tool
    /// default).
    obs: Option<WalObs>,
}

impl CorpusLog {
    /// Writes `corpus` to `path` (replacing any existing file) and returns
    /// the log for it.
    pub fn create(
        path: impl Into<PathBuf>,
        corpus: &TreeCorpus<String>,
    ) -> Result<Self, PersistError> {
        let path = path.into();
        write_atomic(&path, &encode_corpus(corpus))?;
        Ok(CorpusLog {
            path,
            segments: usize::from(!corpus.is_empty()),
            tombstones: 0,
            obs: None,
        })
    }

    /// Installs write-path metrics hooks (see [`WalObs`]).
    pub fn set_obs(&mut self, obs: WalObs) {
        self.obs = Some(obs);
    }

    /// The backing file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of segments currently in the backing file (no I/O).
    pub fn segment_count(&self) -> usize {
        self.segments
    }

    /// Tombstone records currently in the backing file (no I/O). This is
    /// the backlog [`rewrite`](Self::rewrite) reclaims — the quantity a
    /// threshold-driven compactor should compare against the live count.
    pub fn tombstone_count(&self) -> usize {
        self.tombstones
    }

    /// Appends one trees segment for `entries` (which carry their assigned
    /// ids), committing the `new` counts. On failure the file is rolled
    /// back to `old` and nothing is durable.
    pub fn append_trees(
        &mut self,
        entries: &[(u64, &CorpusEntry<String>)],
        old: LogCounts,
        new: LogCounts,
    ) -> Result<(), PersistError> {
        self.append(&trees_segment(entries), old, new)
    }

    /// Appends one tombstones segment for `ids` (which must all be live),
    /// committing the `new` counts. On failure the file is rolled back to
    /// `old` and nothing is durable.
    pub fn append_tombstones(
        &mut self,
        ids: &[u64],
        old: LogCounts,
        new: LogCounts,
    ) -> Result<(), PersistError> {
        self.append(&tombstones_segment(ids), old, new)?;
        self.tombstones += ids.len();
        Ok(())
    }

    /// Rewrites the file as a single canonical trees segment for `corpus`,
    /// dropping tombstones and superseded records — compaction. Ids are
    /// preserved. Atomic: goes through a temporary file and rename.
    pub fn rewrite(&mut self, corpus: &TreeCorpus<String>) -> Result<(), PersistError> {
        let bytes = encode_corpus(corpus);
        let old_len = self
            .obs
            .as_ref()
            .and_then(|_| std::fs::metadata(&self.path).ok())
            .map(|m| m.len());
        write_atomic(&self.path, &bytes)?;
        if let (Some(obs), Some(old_len)) = (&self.obs, old_len) {
            obs.bytes_reclaimed
                .add(old_len.saturating_sub(bytes.len() as u64));
        }
        self.segments = usize::from(!corpus.is_empty());
        self.tombstones = 0;
        Ok(())
    }

    /// Appends one segment, then rewrites the header in place with the
    /// post-mutation counts. See the module docs for the crash-consistency
    /// argument behind the write/fsync order. On any failure the file is
    /// rolled back — truncated to its previous length *and* the
    /// pre-append header restored (a failed sync can leave the new header
    /// in place even though the segment was dropped) — so a retried
    /// update neither stacks a duplicate segment onto an orphan nor
    /// strands a readable corpus behind a mismatched header.
    fn append(
        &mut self,
        segment: &[u8],
        old: LogCounts,
        new: LogCounts,
    ) -> Result<(), PersistError> {
        let io = |e: std::io::Error| {
            PersistError::Io(format!("cannot update {}: {e}", self.path.display()))
        };
        let started = Instant::now();
        let obs = self.obs.as_ref();
        let timed_sync = |file: &std::fs::File| {
            let t0 = Instant::now();
            let result = file.sync_all();
            if let Some(obs) = obs {
                obs.fsync.record(ns_since(t0));
            }
            result
        };
        let mut file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(&self.path)
            .map_err(io)?;
        let old_len = file.seek(SeekFrom::End(0)).map_err(io)?;
        let result = (|| {
            file.write_all(segment)?;
            // Write-ordering barrier: the segment must be durable BEFORE
            // the header acknowledges it. Without this intermediate fsync
            // the kernel may write back the (small, page-0) header update
            // first; a crash in that window persists a header whose
            // counts point past data that never reached the disk — a file
            // even tail-repair can only recover by dropping the update.
            // With it, a crash leaves either the old header (torn or
            // complete segment behind it — both repairable) or the fully
            // committed update.
            timed_sync(&file)?;
            file.seek(SeekFrom::Start(0))?;
            file.write_all(&new.header().encode())?;
            timed_sync(&file)
        })();
        if result.is_err() {
            // Best-effort rollback to the exact pre-append file image:
            // drop the appended bytes and restore the old header. If even
            // this fails, the strict loader still rejects the
            // inconsistent file (and repair-open recovers it), so nothing
            // is silently wrong.
            let _ = file.set_len(old_len);
            let _ = file
                .seek(SeekFrom::Start(0))
                .and_then(|_| file.write_all(&old.header().encode()));
            let _ = file.sync_all();
        } else {
            self.segments += 1;
            if let Some(obs) = obs {
                obs.append.record(ns_since(started));
            }
        }
        result.map_err(io)
    }
}

/// A [`TreeCorpus`] backed by an on-disk segment file.
pub struct CorpusStore {
    log: CorpusLog,
    corpus: TreeCorpus<String>,
}

impl CorpusStore {
    /// Builds a corpus from `trees` (analyzing each once) and writes it to
    /// `path`, replacing any existing file.
    pub fn create(
        path: impl Into<PathBuf>,
        trees: impl IntoIterator<Item = Tree<String>>,
    ) -> Result<Self, PersistError> {
        Self::create_from(path, TreeCorpus::build(trees))
    }

    /// Writes an existing corpus to `path`, replacing any existing file.
    pub fn create_from(
        path: impl Into<PathBuf>,
        corpus: TreeCorpus<String>,
    ) -> Result<Self, PersistError> {
        let log = CorpusLog::create(path, &corpus)?;
        Ok(CorpusStore { log, corpus })
    }

    /// Opens an existing corpus file, replaying its segments (strict
    /// validation — see [`Recovery::Strict`]). No per-tree analysis runs —
    /// sketches come from the file.
    pub fn open(path: impl Into<PathBuf>) -> Result<Self, PersistError> {
        Self::open_with(path, Recovery::Strict).map(|(store, _)| store)
    }

    /// [`open`](Self::open) with tail-scan salvage: a file torn by a crash
    /// mid-update reopens with every complete segment intact instead of
    /// being rejected wholesale. Returns the repair report alongside the
    /// store; `report.bytes_dropped == 0 && !report.header_rewritten`
    /// means the file was already clean.
    pub fn open_repair(path: impl Into<PathBuf>) -> Result<(Self, RepairReport), PersistError> {
        Self::open_with(path, Recovery::Repair)
    }

    /// Opens an existing corpus file under the given [`Recovery`] mode.
    /// In `Strict` mode the report is the trivial clean report.
    ///
    /// A readable file in an older format version is **upgraded in
    /// place**: the store rewrites it atomically in the current
    /// [`FORMAT_VERSION`] (recomputed pq-gram profiles included) before
    /// returning, because appends always write current-version segments
    /// and mixing record layouts within one file would be unreadable.
    /// `report.upgraded_from` records the original version. Read-only
    /// consumers that must not touch the file (`rted index info`/`dump`,
    /// CLI queries) load through [`CorpusFile`] instead.
    pub fn open_with(
        path: impl Into<PathBuf>,
        recovery: Recovery,
    ) -> Result<(Self, RepairReport), PersistError> {
        let path = path.into();
        let file = CorpusFile::read(&path)?;
        let stored_version = file.header().version;
        let mut opened = match file.corpus_owned_with_stats() {
            Ok((corpus, stats)) => {
                let report = RepairReport {
                    segments_recovered: stats.segments,
                    bytes_dropped: 0,
                    header_rewritten: false,
                    live: corpus.len() as u64,
                    next_id: corpus.id_bound() as u64,
                    upgraded_from: None,
                };
                (
                    CorpusStore {
                        log: CorpusLog {
                            path,
                            segments: stats.segments,
                            tombstones: stats.tombstones,
                            obs: None,
                        },
                        corpus,
                    },
                    report,
                )
            }
            Err(err) if recovery == Recovery::Strict => return Err(err),
            Err(_) => {
                let salvage = salvage_corpus(file.bytes())?;
                // Make the recovery durable: truncate the torn tail and
                // stamp the recomputed header, so the next strict open
                // (and every subsequent append) starts from a clean file.
                repair_file(&path, salvage.keep_len, &salvage.header)?;
                (
                    CorpusStore {
                        log: CorpusLog {
                            path,
                            segments: salvage.report.segments_recovered,
                            tombstones: salvage.tombstones,
                            obs: None,
                        },
                        corpus: salvage.corpus,
                    },
                    salvage.report,
                )
            }
        };
        if stored_version < FORMAT_VERSION {
            // The atomic rewrite doubles as a compaction; failure leaves
            // the old file intact and fails the open — a store must never
            // proceed to append current-version segments onto an
            // old-format file.
            opened.0.log.rewrite(&opened.0.corpus)?;
            opened.1.upgraded_from = Some(stored_version);
        }
        Ok(opened)
    }

    /// The live in-memory corpus (always consistent with the file).
    pub fn corpus(&self) -> &TreeCorpus<String> {
        &self.corpus
    }

    /// Consumes the store, yielding the corpus (e.g. to build a
    /// [`crate::TreeIndex`]).
    pub fn into_corpus(self) -> TreeCorpus<String> {
        self.corpus
    }

    /// Consumes the store, yielding the corpus and the file log
    /// separately — for a service that hands the corpus to its query
    /// index and keeps only the log for durability (one corpus in memory,
    /// not two).
    pub fn into_parts(self) -> (TreeCorpus<String>, CorpusLog) {
        (self.corpus, self.log)
    }

    /// The backing file path.
    pub fn path(&self) -> &Path {
        self.log.path()
    }

    /// Inserts trees, analyzing each once and appending a single trees
    /// segment; returns the assigned ids (ascending).
    ///
    /// The segment is written (and fsynced) **before** the in-memory
    /// corpus is touched, so an I/O failure leaves the store exactly as it
    /// was — a retry re-assigns the same ids instead of silently diverging
    /// from the file.
    pub fn insert_all(
        &mut self,
        trees: impl IntoIterator<Item = Tree<String>>,
    ) -> Result<Vec<usize>, PersistError> {
        let new: Vec<CorpusEntry<String>> = trees.into_iter().map(CorpusEntry::analyze).collect();
        if new.is_empty() {
            return Ok(Vec::new());
        }
        let base = self.corpus.id_bound();
        let pairs: Vec<_> = new
            .iter()
            .enumerate()
            .map(|(i, entry)| ((base + i) as u64, entry))
            .collect();
        let old = LogCounts::of(&self.corpus);
        self.log.append_trees(
            &pairs,
            old,
            LogCounts {
                next_id: (base + new.len()) as u64,
                live: old.live + new.len() as u64,
            },
        )?;
        Ok(new
            .into_iter()
            .map(|entry| self.corpus.insert_entry(entry))
            .collect())
    }

    /// Removes the given ids, appending a single tombstones segment.
    /// Ids that are not live (never assigned, already removed, or repeated
    /// in `ids`) are skipped; returns how many trees were actually
    /// removed. Like [`insert_all`](Self::insert_all), the disk write
    /// happens first — on error nothing was removed.
    pub fn remove_all(&mut self, ids: &[usize]) -> Result<usize, PersistError> {
        // Validate and dedup against the live set without mutating it yet:
        // a duplicated id must not produce a double tombstone (the loader
        // rejects tombstones for non-live ids).
        let mut seen = std::collections::HashSet::new();
        let removed: Vec<u64> = ids
            .iter()
            .filter(|&&id| self.corpus.get(id).is_some() && seen.insert(id))
            .map(|&id| id as u64)
            .collect();
        if removed.is_empty() {
            return Ok(0);
        }
        let old = LogCounts::of(&self.corpus);
        self.log.append_tombstones(
            &removed,
            old,
            LogCounts {
                next_id: old.next_id,
                live: old.live - removed.len() as u64,
            },
        )?;
        for &id in &removed {
            self.corpus.remove(id as usize);
        }
        Ok(removed.len())
    }

    /// Rewrites the file as a single canonical trees segment, dropping
    /// tombstones and superseded records. Ids are preserved — compaction
    /// is invisible to queries and to previously handed-out ids. Atomic:
    /// goes through a temporary file and rename.
    pub fn compact(&mut self) -> Result<(), PersistError> {
        self.log.rewrite(&self.corpus)
    }

    /// Number of segments currently in the backing file (tracked in
    /// memory; no I/O).
    pub fn segment_count(&self) -> usize {
        self.log.segment_count()
    }

    /// Tombstone records currently in the backing file — the compaction
    /// backlog (resets on [`compact`](Self::compact); contrast with
    /// [`TreeCorpus::holes`], which never shrinks).
    pub fn file_tombstones(&self) -> usize {
        self.log.tombstone_count()
    }
}

/// Truncates `path` to `keep_len` and stamps `header` — the durable half
/// of a tail salvage.
fn repair_file(path: &Path, keep_len: usize, header: &Header) -> Result<(), PersistError> {
    let io = |e: std::io::Error| PersistError::Io(format!("cannot repair {}: {e}", path.display()));
    debug_assert!(keep_len >= HEADER_LEN);
    let mut file = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .open(path)
        .map_err(io)?;
    file.set_len(keep_len as u64).map_err(io)?;
    file.seek(SeekFrom::Start(0)).map_err(io)?;
    file.write_all(&header.encode()).map_err(io)?;
    file.sync_all().map_err(io)
}

/// Writes `bytes` to `path` via a sibling temporary file and an atomic
/// rename, so readers never observe a half-written file; the containing
/// directory is then fsynced so the rename itself survives a crash. The
/// temporary name extends the full file name (`corpus.idx` →
/// `corpus.idx.tmp`), so stores on distinct files never collide on their
/// temp file.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), PersistError> {
    let io = |e: std::io::Error| PersistError::Io(format!("cannot write {}: {e}", path.display()));
    let mut tmp_name = path
        .file_name()
        .ok_or_else(|| PersistError::Io(format!("invalid corpus path {}", path.display())))?
        .to_os_string();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    {
        let mut file = std::fs::File::create(&tmp).map_err(io)?;
        file.write_all(bytes).map_err(io)?;
        file.sync_all().map_err(io)?;
    }
    std::fs::rename(&tmp, path).map_err(io)?;
    sync_parent_dir(path).map_err(io)
}

/// Fsyncs the directory containing `path` (the rename's durability). On
/// non-Unix platforms directory handles cannot be fsynced; the rename is
/// still atomic, just not crash-durable, matching platform convention.
fn sync_parent_dir(path: &Path) -> std::io::Result<()> {
    #[cfg(unix)]
    {
        let parent = match path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p,
            _ => Path::new("."),
        };
        std::fs::File::open(parent)?.sync_all()?;
    }
    #[cfg(not(unix))]
    let _ = path;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rted_tree::parse_bracket;

    fn t(s: &str) -> Tree<String> {
        parse_bracket(s).unwrap()
    }

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rted-store-tests-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn create_open_roundtrip() {
        let path = scratch("roundtrip.idx");
        let store = CorpusStore::create(&path, vec![t("{a{b}{c}}"), t("{x{y}}")]).unwrap();
        assert_eq!(store.corpus().len(), 2);
        let reopened = CorpusStore::open(&path).unwrap();
        assert_eq!(reopened.corpus().len(), 2);
        assert_eq!(reopened.corpus().tree(0).len(), 3);
        assert_eq!(rted_tree::to_bracket(reopened.corpus().tree(1)), "{x{y}}");
    }

    #[test]
    fn updates_append_segments_and_survive_reopen() {
        let path = scratch("updates.idx");
        let mut store = CorpusStore::create(&path, vec![t("{a}"), t("{b{c}}")]).unwrap();
        assert_eq!(store.segment_count(), 1);

        let ids = store.insert_all(vec![t("{d{e}{f}}"), t("{g}")]).unwrap();
        assert_eq!(ids, vec![2, 3]);
        assert_eq!(store.segment_count(), 2);

        assert_eq!(store.remove_all(&[1, 1, 99]).unwrap(), 1);
        assert_eq!(store.segment_count(), 3);
        assert_eq!(store.file_tombstones(), 1);

        let reopened = CorpusStore::open(&path).unwrap();
        assert_eq!(reopened.corpus().len(), 3);
        assert!(reopened.corpus().get(1).is_none());
        assert_eq!(reopened.corpus().id_bound(), 4);
        // Reopen recovers the tombstone backlog from the file.
        assert_eq!(reopened.file_tombstones(), 1);

        // No-op updates append nothing.
        let mut store = reopened;
        assert_eq!(store.insert_all(Vec::new()).unwrap(), Vec::<usize>::new());
        assert_eq!(store.remove_all(&[1]).unwrap(), 0);
        assert_eq!(store.segment_count(), 3);
    }

    #[test]
    fn compaction_preserves_ids_and_shrinks() {
        let path = scratch("compact.idx");
        let mut store =
            CorpusStore::create(&path, (0..8).map(|i| t(&format!("{{n{i}{{x}}}}")))).unwrap();
        store.remove_all(&[0, 2, 4]).unwrap();
        store.insert_all(vec![t("{fresh{leaf}}")]).unwrap();
        let before = std::fs::metadata(&path).unwrap().len();
        let live_before: Vec<usize> = store.corpus().iter().map(|(id, _)| id).collect();
        assert_eq!(store.file_tombstones(), 3);

        store.compact().unwrap();
        assert_eq!(store.segment_count(), 1);
        // The backlog is reclaimed; the corpus's id holes remain.
        assert_eq!(store.file_tombstones(), 0);
        assert_eq!(store.corpus().holes(), 3);
        assert!(std::fs::metadata(&path).unwrap().len() < before);

        let reopened = CorpusStore::open(&path).unwrap();
        let live_after: Vec<usize> = reopened.corpus().iter().map(|(id, _)| id).collect();
        assert_eq!(live_before, live_after);
        // Ids keep advancing past the compacted holes.
        let mut store = reopened;
        assert_eq!(store.insert_all(vec![t("{later}")]).unwrap(), vec![9]);
    }

    #[test]
    fn torn_tail_reopens_via_repair() {
        let path = scratch("torn.idx");
        let mut store = CorpusStore::create(&path, vec![t("{a{b}}"), t("{c}")]).unwrap();
        store.insert_all(vec![t("{d{e}{f}}")]).unwrap();
        let committed = std::fs::read(&path).unwrap();

        // Crash mid-append: a partial segment beyond the committed image.
        let mut torn = committed.clone();
        torn.extend_from_slice(&committed[HEADER_LEN..HEADER_LEN + 11]);
        std::fs::write(&path, &torn).unwrap();

        // Strict open rejects; repair recovers every committed segment.
        assert!(CorpusStore::open(&path).is_err());
        let (store, report) = CorpusStore::open_repair(&path).unwrap();
        assert_eq!(report.segments_recovered, 2);
        assert_eq!(report.bytes_dropped, 11);
        assert_eq!(store.corpus().len(), 3);
        // The repair is durable: the next strict open succeeds.
        let clean = CorpusStore::open(&path).unwrap();
        assert_eq!(clean.corpus().len(), 3);
        assert_eq!(std::fs::read(&path).unwrap(), committed);
    }

    #[test]
    fn stale_header_with_complete_segment_recovers_the_update() {
        let path = scratch("stale-header.idx");
        let mut store = CorpusStore::create(&path, vec![t("{a{b}}")]).unwrap();
        let old_image = std::fs::read(&path).unwrap();
        store.insert_all(vec![t("{x{y}{z}}")]).unwrap();
        let new_image = std::fs::read(&path).unwrap();

        // Crash between the segment fsync and the header write: the new
        // segment is fully durable but the header still carries the old
        // counts.
        let mut torn = new_image.clone();
        torn[..HEADER_LEN].copy_from_slice(&old_image[..HEADER_LEN]);
        std::fs::write(&path, &torn).unwrap();

        assert!(CorpusStore::open(&path).is_err());
        let (store, report) = CorpusStore::open_repair(&path).unwrap();
        // The complete segment is salvaged — the update survives even
        // though the header never acknowledged it.
        assert_eq!(report.segments_recovered, 2);
        assert_eq!(report.bytes_dropped, 0);
        assert!(report.header_rewritten);
        assert_eq!(store.corpus().len(), 2);
        assert_eq!(rted_tree::to_bracket(store.corpus().tree(1)), "{x{y}{z}}");
        assert_eq!(std::fs::read(&path).unwrap(), new_image);
    }

    #[test]
    fn v1_file_upgrades_on_open_and_keeps_appending() {
        let path = scratch("upgrade.idx");
        let trees = vec![t("{a{b}{c}}"), t("{x{y}}"), t("{z}")];
        let mut corpus = TreeCorpus::build(trees);
        corpus.remove(1);
        std::fs::write(&path, crate::persist::encode_corpus_v1(&corpus)).unwrap();

        let (mut store, report) = CorpusStore::open_with(&path, Recovery::Strict).unwrap();
        assert_eq!(report.upgraded_from, Some(1));
        assert_eq!(store.corpus().len(), 2);
        assert_eq!(store.corpus().id_bound(), 3);
        // The file on disk is now canonical v2: strict reopen, current
        // version, profile flag set, byte-identical to a fresh encode.
        let file = CorpusFile::read(&path).unwrap();
        assert_eq!(file.header().version, FORMAT_VERSION);
        assert!(file.header().has_pq_profiles());
        assert_eq!(file.bytes(), encode_corpus(store.corpus()).as_slice());

        // Appends land on the upgraded file and reopen cleanly.
        assert_eq!(store.insert_all(vec![t("{w{v}}")]).unwrap(), vec![3]);
        let (reopened, report) = CorpusStore::open_with(&path, Recovery::Strict).unwrap();
        assert_eq!(report.upgraded_from, None);
        assert_eq!(reopened.corpus().len(), 3);
        assert_eq!(rted_tree::to_bracket(reopened.corpus().tree(3)), "{w{v}}");
    }

    #[test]
    fn torn_v1_file_repairs_in_v1_then_upgrades() {
        let path = scratch("upgrade-torn.idx");
        let corpus = TreeCorpus::build(vec![t("{a{b}}"), t("{c{d}{e}}")]);
        let mut image = crate::persist::encode_corpus_v1(&corpus);
        let tail: Vec<u8> = image[HEADER_LEN..HEADER_LEN + 9].to_vec();
        image.extend_from_slice(&tail); // torn partial segment
        std::fs::write(&path, &image).unwrap();

        assert!(CorpusStore::open(&path).is_err());
        let (store, report) = CorpusStore::open_repair(&path).unwrap();
        assert_eq!(report.bytes_dropped, 9);
        assert_eq!(report.upgraded_from, Some(1));
        assert_eq!(store.corpus().len(), 2);
        // Salvage + upgrade are both durable: strict open sees clean v2.
        let clean = CorpusStore::open(&path).unwrap();
        assert_eq!(clean.corpus().len(), 2);
        assert_eq!(
            CorpusFile::read(&path).unwrap().header().version,
            FORMAT_VERSION
        );
    }

    #[test]
    fn repair_on_clean_file_is_a_no_op() {
        let path = scratch("clean.idx");
        let mut store = CorpusStore::create(&path, vec![t("{a}"), t("{b{c}}")]).unwrap();
        store.remove_all(&[0]).unwrap();
        let image = std::fs::read(&path).unwrap();
        let (store, report) = CorpusStore::open_repair(&path).unwrap();
        assert_eq!(report.bytes_dropped, 0);
        assert!(!report.header_rewritten);
        assert_eq!(report.segments_recovered, 2);
        assert_eq!(store.corpus().len(), 1);
        assert_eq!(store.file_tombstones(), 1);
        assert_eq!(std::fs::read(&path).unwrap(), image);
    }
}
