//! Lifetime query totals: per-query [`SearchStats`](crate::SearchStats)
//! folded into cumulative atomic counters on the index.
//!
//! Every query already produces exact per-run counters; operating the
//! engine (and the adaptive planner the roadmap wants) needs the same
//! signals *aggregated across the index's lifetime* — per-stage prune
//! selectivity, verification counts, exact-TED time — without any query
//! holding a lock or allocating to report them. [`IndexTotals`] is a
//! fixed set of [`rted_obs::Counter`]s recorded into at the end of each
//! query (a handful of relaxed `fetch_add`s) and snapshotted on demand
//! by the serving layer's `metrics` request and `rted index info
//! --stats`.

use crate::filter::{FilterPipeline, StagePrune};
use crate::SearchStats;
use rted_obs::Counter;
use std::time::Duration;

/// Which query API a recorded run came through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// [`TreeIndex::range`](crate::TreeIndex::range) (either path).
    Range,
    /// [`TreeIndex::top_k`](crate::TreeIndex::top_k) (either path).
    TopK,
    /// [`TreeIndex::join`](crate::TreeIndex::join) (either path).
    Join,
}

/// Cumulative counters across every query an index has answered.
///
/// All fields are lock-free atomics: recording happens inside query
/// methods taking `&self`, concurrently with other queries, and costs a
/// few relaxed `fetch_add`s — no allocation, so the serving layer's
/// zero-allocation distance path stays intact with recording on.
#[derive(Debug)]
pub struct IndexTotals {
    range_queries: Counter,
    topk_queries: Counter,
    join_queries: Counter,
    /// Point-to-point `distance_in` calls (the serving layer's `distance`
    /// request path), not part of any query's `verified` count.
    distance_calls: Counter,
    /// Point-to-point `diff_in` calls (the serving layer's `diff` request
    /// path); their DP cells land in `subproblems` like distance calls.
    diff_calls: Counter,
    /// Wall-clock time of whole queries, summed (ns).
    query_ns: Counter,
    /// Candidates considered, summed (corpus size per `range`/`top_k`
    /// query, unordered pairs per `join`).
    candidates: Counter,
    /// Per-stage prune totals, aligned with the pipeline's stage order.
    stage_names: Vec<&'static str>,
    stage_prunes: Vec<Counter>,
    /// Exact TED computations (verification + metric routing), summed.
    verified: Counter,
    /// Relevant subproblems computed by the verifier, summed.
    subproblems: Counter,
    /// Time inside exact TED (strategy + distance phases), summed (ns).
    ted_ns: Counter,
    /// Budget-aware verifications that stopped early because the budget
    /// was provably blown (a subset of `verified` + `distance_calls`).
    verify_early_exits: Counter,
    /// Wall time inside budget-aware verifications, summed (ns) — a
    /// subset of `ted_ns`.
    verify_bounded_ns: Counter,
    /// Metric-tree nodes visited, summed.
    metric_nodes_visited: Counter,
    /// Metric-tree routing TED computations, summed (included in
    /// `verified`).
    metric_routing_ted: Counter,
    /// Planner decisions that selected the linear candidate generator.
    plan_linear: Counter,
    /// Planner decisions that selected the metric-tree generator.
    plan_metric: Counter,
    /// Times the planner changed the filter-stage execution order.
    plan_reorders: Counter,
    /// Pairs the planned verifier dispatched to Zhang–Shasha.
    plan_zs_pairs: Counter,
    /// Pairs the planned verifier dispatched to the bounded-τ kernel.
    plan_bounded_pairs: Counter,
    /// Pairs the planned verifier dispatched to full RTED.
    plan_rted_pairs: Counter,
}

impl IndexTotals {
    /// Zeroed totals whose stage counters mirror `pipeline`'s stages.
    pub fn for_pipeline<L>(pipeline: &FilterPipeline<L>) -> Self {
        let stage_names: Vec<&'static str> = pipeline.stages().iter().map(|s| s.name()).collect();
        IndexTotals {
            range_queries: Counter::new(),
            topk_queries: Counter::new(),
            join_queries: Counter::new(),
            distance_calls: Counter::new(),
            diff_calls: Counter::new(),
            query_ns: Counter::new(),
            candidates: Counter::new(),
            stage_prunes: stage_names.iter().map(|_| Counter::new()).collect(),
            stage_names,
            verified: Counter::new(),
            subproblems: Counter::new(),
            ted_ns: Counter::new(),
            verify_early_exits: Counter::new(),
            verify_bounded_ns: Counter::new(),
            metric_nodes_visited: Counter::new(),
            metric_routing_ted: Counter::new(),
            plan_linear: Counter::new(),
            plan_metric: Counter::new(),
            plan_reorders: Counter::new(),
            plan_zs_pairs: Counter::new(),
            plan_bounded_pairs: Counter::new(),
            plan_rted_pairs: Counter::new(),
        }
    }

    /// Folds one completed query's counters in.
    pub fn record_query(&self, kind: QueryKind, stats: &SearchStats) {
        match kind {
            QueryKind::Range => self.range_queries.inc(),
            QueryKind::TopK => self.topk_queries.inc(),
            QueryKind::Join => self.join_queries.inc(),
        }
        self.query_ns.add(duration_ns(stats.time));
        self.candidates.add(stats.candidates as u64);
        // Stage credit is matched by *name*, not position: a planned query
        // may have run a reordered pipeline, and its per-stage counters
        // must land on the lifetime counter of the same stage. The common
        // aligned case short-circuits on the first comparison.
        for (pos, stage) in stats.filter.stages.iter().enumerate() {
            let slot = if self.stage_names.get(pos) == Some(&stage.stage) {
                Some(pos)
            } else {
                self.stage_names.iter().position(|n| *n == stage.stage)
            };
            if let Some(i) = slot {
                self.stage_prunes[i].add(stage.pruned);
            }
        }
        self.verified.add(stats.verified as u64);
        self.subproblems.add(stats.subproblems);
        self.ted_ns.add(duration_ns(stats.ted_time));
        self.verify_early_exits.add(stats.early_exits as u64);
        self.verify_bounded_ns.add(duration_ns(stats.bounded_time));
        self.metric_nodes_visited
            .add(stats.metric.nodes_visited as u64);
        self.metric_routing_ted.add(stats.metric.routing_ted as u64);
    }

    /// Folds one point-to-point distance computation in (the serving
    /// layer's `distance` request). `ted_time` is the run's
    /// strategy + distance time.
    #[inline]
    pub fn record_distance(&self, subproblems: u64, ted_time: Duration) {
        self.distance_calls.inc();
        self.subproblems.add(subproblems);
        self.ted_ns.add(duration_ns(ted_time));
    }

    /// Folds one edit-script extraction in (the serving layer's `diff`
    /// request). `subproblems` counts the Zhang–Shasha DP plus the
    /// backtrace's re-run forest sheets; `ted_time` is wall time inside
    /// the extraction.
    #[inline]
    pub fn record_diff(&self, subproblems: u64, ted_time: Duration) {
        self.diff_calls.inc();
        self.subproblems.add(subproblems);
        self.ted_ns.add(duration_ns(ted_time));
    }

    /// Folds one budget-aware point-to-point distance computation in (the
    /// serving layer's `distance … at_most` request). `spent` is wall
    /// time inside the verification; it counts toward both `ted_ns` and
    /// `bounded_ns`.
    #[inline]
    pub fn record_bounded_distance(&self, subproblems: u64, spent: Duration, early_exit: bool) {
        self.distance_calls.inc();
        self.subproblems.add(subproblems);
        let ns = duration_ns(spent);
        self.ted_ns.add(ns);
        self.verify_bounded_ns.add(ns);
        if early_exit {
            self.verify_early_exits.inc();
        }
    }

    /// Folds one planner candidate-generation decision in (a planned
    /// query's chosen arm, or an `explain` probe's recommendation).
    #[inline]
    pub fn record_plan(&self, gen: rted_plan::CandidateGen) {
        match gen {
            rted_plan::CandidateGen::Linear => self.plan_linear.inc(),
            rted_plan::CandidateGen::Metric => self.plan_metric.inc(),
        }
    }

    /// Notes one applied filter-stage reorder.
    #[inline]
    pub fn record_plan_reorder(&self) {
        self.plan_reorders.inc();
    }

    /// Notes one pair dispatched by the planned verifier. Lock-free and
    /// allocation-free: called from verification worker threads.
    #[inline]
    pub(crate) fn record_plan_pair(&self, arm: PlanPair) {
        match arm {
            PlanPair::ZhangShasha => self.plan_zs_pairs.inc(),
            PlanPair::Bounded => self.plan_bounded_pairs.inc(),
            PlanPair::Rted => self.plan_rted_pairs.inc(),
        }
    }

    /// Per-stage lifetime prune counts in construction order — the
    /// planner's stage-reorder signal.
    pub(crate) fn stage_prune_counts(&self) -> Vec<(&'static str, u64)> {
        self.stage_names
            .iter()
            .zip(&self.stage_prunes)
            .map(|(&name, counter)| (name, counter.get()))
            .collect()
    }

    /// A point-in-time copy of every total.
    pub fn snapshot(&self) -> TotalsSnapshot {
        TotalsSnapshot {
            range_queries: self.range_queries.get(),
            topk_queries: self.topk_queries.get(),
            join_queries: self.join_queries.get(),
            distance_calls: self.distance_calls.get(),
            diff_calls: self.diff_calls.get(),
            query_ns: self.query_ns.get(),
            candidates: self.candidates.get(),
            stages: self
                .stage_names
                .iter()
                .zip(&self.stage_prunes)
                .map(|(&stage, c)| StagePrune {
                    stage,
                    pruned: c.get(),
                })
                .collect(),
            verified: self.verified.get(),
            subproblems: self.subproblems.get(),
            ted_ns: self.ted_ns.get(),
            verify_early_exits: self.verify_early_exits.get(),
            verify_bounded_ns: self.verify_bounded_ns.get(),
            metric_nodes_visited: self.metric_nodes_visited.get(),
            metric_routing_ted: self.metric_routing_ted.get(),
            plan_linear: self.plan_linear.get(),
            plan_metric: self.plan_metric.get(),
            plan_reorders: self.plan_reorders.get(),
            plan_zs_pairs: self.plan_zs_pairs.get(),
            plan_bounded_pairs: self.plan_bounded_pairs.get(),
            plan_rted_pairs: self.plan_rted_pairs.get(),
        }
    }
}

/// Which verifier arm the planned dispatch sent a pair to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PlanPair {
    /// Zhang–Shasha (small pair, strategy overhead dominates).
    ZhangShasha,
    /// The bounded-τ early-exit kernel (a finite budget exists).
    Bounded,
    /// Full RTED.
    Rted,
}

/// Saturating nanoseconds of a duration (u64 holds ~584 years).
#[inline]
fn duration_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Point-in-time copy of an index's [`IndexTotals`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TotalsSnapshot {
    /// `range` queries answered.
    pub range_queries: u64,
    /// `top_k` queries answered.
    pub topk_queries: u64,
    /// `join` queries answered.
    pub join_queries: u64,
    /// Point-to-point `distance_in` calls.
    pub distance_calls: u64,
    /// Point-to-point `diff_in` (edit-script) calls.
    pub diff_calls: u64,
    /// Total query wall-clock time (ns).
    pub query_ns: u64,
    /// Candidates considered, summed over queries.
    pub candidates: u64,
    /// Cumulative per-stage prune counts, in pipeline stage order.
    pub stages: Vec<StagePrune>,
    /// Exact TED computations spent verifying (and metric routing).
    pub verified: u64,
    /// Relevant subproblems computed, summed.
    pub subproblems: u64,
    /// Time inside exact TED (ns), over queries *and* distance calls.
    pub ted_ns: u64,
    /// Budget-aware verifications that stopped early (budget provably
    /// blown), over queries *and* `distance … at_most` calls.
    pub verify_early_exits: u64,
    /// Wall time inside budget-aware verifications (ns) — a subset of
    /// `ted_ns`.
    pub verify_bounded_ns: u64,
    /// Metric-tree nodes visited, summed.
    pub metric_nodes_visited: u64,
    /// Metric-tree routing TED computations, summed.
    pub metric_routing_ted: u64,
    /// Planner decisions for the linear candidate generator.
    pub plan_linear: u64,
    /// Planner decisions for the metric-tree generator.
    pub plan_metric: u64,
    /// Filter-stage reorders the planner applied.
    pub plan_reorders: u64,
    /// Pairs the planned verifier sent to Zhang–Shasha.
    pub plan_zs_pairs: u64,
    /// Pairs the planned verifier sent to the bounded-τ kernel.
    pub plan_bounded_pairs: u64,
    /// Pairs the planned verifier sent to full RTED.
    pub plan_rted_pairs: u64,
}

impl TotalsSnapshot {
    /// Sums another snapshot in — the scatter-gather aggregation for a
    /// sharded index, whose `metrics` surface reports one service-wide
    /// `index_*` family over all shards. Stage counters align by position
    /// when both sides carry stages (shards share one pipeline
    /// configuration); a default (stage-less) accumulator adopts the
    /// other side's stages, so folding starts from
    /// `TotalsSnapshot::default()`.
    pub fn merge(&mut self, other: &TotalsSnapshot) {
        self.range_queries += other.range_queries;
        self.topk_queries += other.topk_queries;
        self.join_queries += other.join_queries;
        self.distance_calls += other.distance_calls;
        self.diff_calls += other.diff_calls;
        self.query_ns += other.query_ns;
        self.candidates += other.candidates;
        if self.stages.is_empty() {
            self.stages = other.stages.clone();
        } else {
            debug_assert_eq!(self.stages.len(), other.stages.len());
            for (mine, theirs) in self.stages.iter_mut().zip(&other.stages) {
                mine.pruned += theirs.pruned;
            }
        }
        self.verified += other.verified;
        self.subproblems += other.subproblems;
        self.ted_ns += other.ted_ns;
        self.verify_early_exits += other.verify_early_exits;
        self.verify_bounded_ns += other.verify_bounded_ns;
        self.metric_nodes_visited += other.metric_nodes_visited;
        self.metric_routing_ted += other.metric_routing_ted;
        self.plan_linear += other.plan_linear;
        self.plan_metric += other.plan_metric;
        self.plan_reorders += other.plan_reorders;
        self.plan_zs_pairs += other.plan_zs_pairs;
        self.plan_bounded_pairs += other.plan_bounded_pairs;
        self.plan_rted_pairs += other.plan_rted_pairs;
    }

    /// Appends every total to an observability snapshot under stable
    /// `index_*` metric names (per-stage prunes as
    /// `index_prune_<stage>_total`).
    pub fn push_metrics(&self, snap: &mut rted_obs::Snapshot) {
        use rted_obs::MetricValue::Counter as C;
        snap.push("index_range_queries_total", C(self.range_queries));
        snap.push("index_topk_queries_total", C(self.topk_queries));
        snap.push("index_join_queries_total", C(self.join_queries));
        snap.push("index_distance_calls_total", C(self.distance_calls));
        snap.push("index_diff_calls_total", C(self.diff_calls));
        snap.push("index_query_ns_total", C(self.query_ns));
        snap.push("index_candidates_total", C(self.candidates));
        for stage in &self.stages {
            snap.push(
                format!("index_prune_{}_total", stage.stage),
                C(stage.pruned),
            );
        }
        snap.push("index_verified_total", C(self.verified));
        snap.push("index_subproblems_total", C(self.subproblems));
        snap.push("index_ted_ns_total", C(self.ted_ns));
        snap.push("index_verify_early_exit_total", C(self.verify_early_exits));
        snap.push("index_verify_bounded_ns", C(self.verify_bounded_ns));
        snap.push(
            "index_metric_nodes_visited_total",
            C(self.metric_nodes_visited),
        );
        snap.push("index_metric_routing_ted_total", C(self.metric_routing_ted));
        snap.push("index_plan_linear_total", C(self.plan_linear));
        snap.push("index_plan_metric_total", C(self.plan_metric));
        snap.push("index_plan_reorders_total", C(self.plan_reorders));
        snap.push("index_plan_zs_pairs_total", C(self.plan_zs_pairs));
        snap.push("index_plan_bounded_pairs_total", C(self.plan_bounded_pairs));
        snap.push("index_plan_rted_pairs_total", C(self.plan_rted_pairs));
    }
}
