//! Exact verification of surviving candidate pairs.
//!
//! Filters only ever prune pairs that provably cannot match; every
//! survivor is handed to a [`Verifier`] for an exact distance. The default
//! verifier runs RTED under unit costs, but any [`Algorithm`] and any
//! [`CostModel`] plug in — including borrowed cost models, since
//! `CostModel` is implemented for references.

use rted_core::{Algorithm, CostModel, RunStats, UnitCost, Workspace};
use rted_tree::Tree;

/// Computes exact tree edit distances for candidate pairs.
///
/// Implementations must be thread-safe: the parallel executor calls
/// `verify` concurrently from worker threads (each worker passes its own
/// [`Workspace`] to [`Verifier::verify_in`]).
pub trait Verifier<L>: Send + Sync {
    /// The exact distance computation for one pair, with run statistics.
    fn verify(&self, f: &Tree<L>, g: &Tree<L>) -> RunStats;

    /// [`Verifier::verify`] drawing scratch memory from a caller-provided
    /// [`Workspace`] so batch verification stops allocating once the
    /// workspace is warm. The default implementation ignores the
    /// workspace and delegates to `verify`, so existing custom verifiers
    /// keep working unchanged; results must be identical either way.
    fn verify_in(&self, f: &Tree<L>, g: &Tree<L>, ws: &mut Workspace) -> RunStats {
        let _ = ws;
        self.verify(f, g)
    }

    /// Human-readable name for reports.
    fn name(&self) -> &'static str {
        "custom"
    }
}

/// A verifier running one of the paper's five algorithms under a cost
/// model (RTED + unit costs by default).
#[derive(Debug, Clone, Copy)]
pub struct AlgorithmVerifier<C = UnitCost> {
    /// The exact algorithm to run.
    pub algorithm: Algorithm,
    /// The cost model (owned or borrowed — `CostModel` is implemented for
    /// references).
    pub cost_model: C,
}

impl AlgorithmVerifier<UnitCost> {
    /// RTED under unit costs.
    pub fn rted() -> Self {
        AlgorithmVerifier {
            algorithm: Algorithm::Rted,
            cost_model: UnitCost,
        }
    }

    /// Any algorithm under unit costs.
    pub fn unit(algorithm: Algorithm) -> Self {
        AlgorithmVerifier {
            algorithm,
            cost_model: UnitCost,
        }
    }
}

impl Default for AlgorithmVerifier<UnitCost> {
    fn default() -> Self {
        Self::rted()
    }
}

impl<L, C: CostModel<L> + Send + Sync> Verifier<L> for AlgorithmVerifier<C> {
    fn verify(&self, f: &Tree<L>, g: &Tree<L>) -> RunStats {
        self.algorithm.run(f, g, &self.cost_model)
    }

    fn verify_in(&self, f: &Tree<L>, g: &Tree<L>, ws: &mut Workspace) -> RunStats {
        self.algorithm.run_in(f, g, &self.cost_model, ws)
    }

    fn name(&self) -> &'static str {
        self.algorithm.name()
    }
}
