//! Exact verification of surviving candidate pairs.
//!
//! Filters only ever prune pairs that provably cannot match; every
//! survivor is handed to a [`Verifier`] for an exact distance. The default
//! verifier runs RTED under unit costs, but any [`Algorithm`] and any
//! [`CostModel`] plug in — including borrowed cost models, since
//! `CostModel` is implemented for references.

use rted_core::{
    ted_at_most_run, Algorithm, BoundedResult, CostModel, RunStats, UnitCost, Workspace,
};
use rted_tree::Tree;

/// Outcome of a budget-aware verification (see [`Verifier::verify_within`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundedVerify {
    /// Exact distance (when within budget) or a certified lower bound.
    pub result: BoundedResult,
    /// DP cells computed by this verification.
    pub subproblems: u64,
    /// `true` when the verifier stopped before completing the computation
    /// because the budget was provably blown.
    pub early_exit: bool,
}

/// Computes exact tree edit distances for candidate pairs.
///
/// Implementations must be thread-safe: the parallel executor calls
/// `verify` concurrently from worker threads (each worker passes its own
/// [`Workspace`] to [`Verifier::verify_in`]).
pub trait Verifier<L>: Send + Sync {
    /// The exact distance computation for one pair, with run statistics.
    fn verify(&self, f: &Tree<L>, g: &Tree<L>) -> RunStats;

    /// [`Verifier::verify`] drawing scratch memory from a caller-provided
    /// [`Workspace`] so batch verification stops allocating once the
    /// workspace is warm. The default implementation ignores the
    /// workspace and delegates to `verify`, so existing custom verifiers
    /// keep working unchanged; results must be identical either way.
    fn verify_in(&self, f: &Tree<L>, g: &Tree<L>, ws: &mut Workspace) -> RunStats {
        let _ = ws;
        self.verify(f, g)
    }

    /// Budget-aware verification: the query only needs to know whether the
    /// pair is within distance `tau` (and the exact distance when it is),
    /// so the verifier may stop the moment the budget is provably blown.
    ///
    /// The default implementation runs the exact [`Verifier::verify_in`]
    /// and classifies its distance, so custom verifiers keep working
    /// unchanged; implementations that exit early must return
    /// [`BoundedResult::Exact`] values identical to the exact path
    /// whenever the distance is ≤ `tau` — query results must not depend
    /// on which path ran. A non-finite `tau` must behave exactly like
    /// [`Verifier::verify_in`].
    fn verify_within(
        &self,
        f: &Tree<L>,
        g: &Tree<L>,
        tau: f64,
        ws: &mut Workspace,
    ) -> BoundedVerify {
        let run = self.verify_in(f, g, ws);
        let result = if run.distance <= tau {
            BoundedResult::Exact(run.distance)
        } else {
            // The exact distance is the tightest possible lower bound.
            BoundedResult::Exceeds(run.distance)
        };
        BoundedVerify {
            result,
            subproblems: run.subproblems,
            early_exit: false,
        }
    }

    /// Human-readable name for reports.
    fn name(&self) -> &'static str {
        "custom"
    }
}

/// A verifier running one of the paper's five algorithms under a cost
/// model (RTED + unit costs by default).
#[derive(Debug, Clone, Copy)]
pub struct AlgorithmVerifier<C = UnitCost> {
    /// The exact algorithm to run.
    pub algorithm: Algorithm,
    /// The cost model (owned or borrowed — `CostModel` is implemented for
    /// references).
    pub cost_model: C,
}

impl AlgorithmVerifier<UnitCost> {
    /// RTED under unit costs.
    pub fn rted() -> Self {
        AlgorithmVerifier {
            algorithm: Algorithm::Rted,
            cost_model: UnitCost,
        }
    }

    /// Any algorithm under unit costs.
    pub fn unit(algorithm: Algorithm) -> Self {
        AlgorithmVerifier {
            algorithm,
            cost_model: UnitCost,
        }
    }
}

impl Default for AlgorithmVerifier<UnitCost> {
    fn default() -> Self {
        Self::rted()
    }
}

impl<L, C: CostModel<L> + Send + Sync> Verifier<L> for AlgorithmVerifier<C> {
    fn verify(&self, f: &Tree<L>, g: &Tree<L>) -> RunStats {
        self.algorithm.run(f, g, &self.cost_model)
    }

    fn verify_in(&self, f: &Tree<L>, g: &Tree<L>, ws: &mut Workspace) -> RunStats {
        self.algorithm.run_in(f, g, &self.cost_model, ws)
    }

    fn name(&self) -> &'static str {
        self.algorithm.name()
    }
}

/// The default budget-aware verifier: exact RTED when no budget applies
/// (unbudgeted `verify`/`verify_in` calls, metric-tree routing, the
/// τ = ∞ path), and the bounded early-exit kernel
/// [`ted_at_most`](rted_core::ted_at_most) when a query supplies a finite
/// budget. Within-budget distances are identical to the exact path, so
/// query results do not depend on which kernel ran — the bounded kernel
/// only makes "no" answers cheaper.
#[derive(Debug, Clone, Copy)]
pub struct BoundedVerifier<C = UnitCost> {
    /// The exact verifier behind the unbudgeted paths.
    pub exact: AlgorithmVerifier<C>,
}

impl BoundedVerifier<UnitCost> {
    /// Bounded verification over exact RTED under unit costs — the
    /// index default.
    pub fn rted() -> Self {
        BoundedVerifier {
            exact: AlgorithmVerifier::rted(),
        }
    }
}

impl Default for BoundedVerifier<UnitCost> {
    fn default() -> Self {
        Self::rted()
    }
}

impl<L, C: CostModel<L> + Send + Sync> Verifier<L> for BoundedVerifier<C> {
    fn verify(&self, f: &Tree<L>, g: &Tree<L>) -> RunStats {
        self.exact.verify(f, g)
    }

    fn verify_in(&self, f: &Tree<L>, g: &Tree<L>, ws: &mut Workspace) -> RunStats {
        self.exact.verify_in(f, g, ws)
    }

    fn verify_within(
        &self,
        f: &Tree<L>,
        g: &Tree<L>,
        tau: f64,
        ws: &mut Workspace,
    ) -> BoundedVerify {
        if tau == f64::INFINITY {
            // No budget to exploit: the exact kernel, verbatim.
            let run = self.verify_in(f, g, ws);
            return BoundedVerify {
                result: BoundedResult::Exact(run.distance),
                subproblems: run.subproblems,
                early_exit: false,
            };
        }
        let run = ted_at_most_run(f, g, &self.exact.cost_model, tau, ws);
        BoundedVerify {
            result: run.result,
            subproblems: run.subproblems,
            early_exit: run.early_exit,
        }
    }

    fn name(&self) -> &'static str {
        "bounded"
    }
}
