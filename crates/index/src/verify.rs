//! Exact verification of surviving candidate pairs.
//!
//! Filters only ever prune pairs that provably cannot match; every
//! survivor is handed to a [`Verifier`] for an exact distance. The default
//! verifier runs RTED under unit costs, but any [`Algorithm`] and any
//! [`CostModel`] plug in — including borrowed cost models, since
//! `CostModel` is implemented for references.

use crate::totals::{IndexTotals, PlanPair};
use rted_core::{
    ted_at_most_run, Algorithm, BoundedResult, CostModel, RunStats, UnitCost, Workspace,
};
use rted_tree::Tree;

/// Outcome of a budget-aware verification (see [`Verifier::verify_within`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundedVerify {
    /// Exact distance (when within budget) or a certified lower bound.
    pub result: BoundedResult,
    /// DP cells computed by this verification.
    pub subproblems: u64,
    /// `true` when the verifier stopped before completing the computation
    /// because the budget was provably blown.
    pub early_exit: bool,
}

/// Computes exact tree edit distances for candidate pairs.
///
/// Implementations must be thread-safe: the parallel executor calls
/// `verify` concurrently from worker threads (each worker passes its own
/// [`Workspace`] to [`Verifier::verify_in`]).
pub trait Verifier<L>: Send + Sync {
    /// The exact distance computation for one pair, with run statistics.
    fn verify(&self, f: &Tree<L>, g: &Tree<L>) -> RunStats;

    /// [`Verifier::verify`] drawing scratch memory from a caller-provided
    /// [`Workspace`] so batch verification stops allocating once the
    /// workspace is warm. The default implementation ignores the
    /// workspace and delegates to `verify`, so existing custom verifiers
    /// keep working unchanged; results must be identical either way.
    fn verify_in(&self, f: &Tree<L>, g: &Tree<L>, ws: &mut Workspace) -> RunStats {
        let _ = ws;
        self.verify(f, g)
    }

    /// Budget-aware verification: the query only needs to know whether the
    /// pair is within distance `tau` (and the exact distance when it is),
    /// so the verifier may stop the moment the budget is provably blown.
    ///
    /// The default implementation runs the exact [`Verifier::verify_in`]
    /// and classifies its distance, so custom verifiers keep working
    /// unchanged; implementations that exit early must return
    /// [`BoundedResult::Exact`] values identical to the exact path
    /// whenever the distance is ≤ `tau` — query results must not depend
    /// on which path ran. A non-finite `tau` must behave exactly like
    /// [`Verifier::verify_in`].
    fn verify_within(
        &self,
        f: &Tree<L>,
        g: &Tree<L>,
        tau: f64,
        ws: &mut Workspace,
    ) -> BoundedVerify {
        let run = self.verify_in(f, g, ws);
        let result = if run.distance <= tau {
            BoundedResult::Exact(run.distance)
        } else {
            // The exact distance is the tightest possible lower bound.
            BoundedResult::Exceeds(run.distance)
        };
        BoundedVerify {
            result,
            subproblems: run.subproblems,
            early_exit: false,
        }
    }

    /// Human-readable name for reports.
    fn name(&self) -> &'static str {
        "custom"
    }
}

/// A verifier running one of the paper's five algorithms under a cost
/// model (RTED + unit costs by default).
#[derive(Debug, Clone, Copy)]
pub struct AlgorithmVerifier<C = UnitCost> {
    /// The exact algorithm to run.
    pub algorithm: Algorithm,
    /// The cost model (owned or borrowed — `CostModel` is implemented for
    /// references).
    pub cost_model: C,
}

impl AlgorithmVerifier<UnitCost> {
    /// RTED under unit costs.
    pub fn rted() -> Self {
        AlgorithmVerifier {
            algorithm: Algorithm::Rted,
            cost_model: UnitCost,
        }
    }

    /// Any algorithm under unit costs.
    pub fn unit(algorithm: Algorithm) -> Self {
        AlgorithmVerifier {
            algorithm,
            cost_model: UnitCost,
        }
    }
}

impl Default for AlgorithmVerifier<UnitCost> {
    fn default() -> Self {
        Self::rted()
    }
}

impl<L, C: CostModel<L> + Send + Sync> Verifier<L> for AlgorithmVerifier<C> {
    fn verify(&self, f: &Tree<L>, g: &Tree<L>) -> RunStats {
        self.algorithm.run(f, g, &self.cost_model)
    }

    fn verify_in(&self, f: &Tree<L>, g: &Tree<L>, ws: &mut Workspace) -> RunStats {
        self.algorithm.run_in(f, g, &self.cost_model, ws)
    }

    fn name(&self) -> &'static str {
        self.algorithm.name()
    }
}

/// The default budget-aware verifier: exact RTED when no budget applies
/// (unbudgeted `verify`/`verify_in` calls, metric-tree routing, the
/// τ = ∞ path), and the bounded early-exit kernel
/// [`ted_at_most`](rted_core::ted_at_most) when a query supplies a finite
/// budget. Within-budget distances are identical to the exact path, so
/// query results do not depend on which kernel ran — the bounded kernel
/// only makes "no" answers cheaper.
#[derive(Debug, Clone, Copy)]
pub struct BoundedVerifier<C = UnitCost> {
    /// The exact verifier behind the unbudgeted paths.
    pub exact: AlgorithmVerifier<C>,
}

impl BoundedVerifier<UnitCost> {
    /// Bounded verification over exact RTED under unit costs — the
    /// index default.
    pub fn rted() -> Self {
        BoundedVerifier {
            exact: AlgorithmVerifier::rted(),
        }
    }
}

impl Default for BoundedVerifier<UnitCost> {
    fn default() -> Self {
        Self::rted()
    }
}

impl<L, C: CostModel<L> + Send + Sync> Verifier<L> for BoundedVerifier<C> {
    fn verify(&self, f: &Tree<L>, g: &Tree<L>) -> RunStats {
        self.exact.verify(f, g)
    }

    fn verify_in(&self, f: &Tree<L>, g: &Tree<L>, ws: &mut Workspace) -> RunStats {
        self.exact.verify_in(f, g, ws)
    }

    fn verify_within(
        &self,
        f: &Tree<L>,
        g: &Tree<L>,
        tau: f64,
        ws: &mut Workspace,
    ) -> BoundedVerify {
        if tau == f64::INFINITY {
            // No budget to exploit: the exact kernel, verbatim.
            let run = self.verify_in(f, g, ws);
            return BoundedVerify {
                result: BoundedResult::Exact(run.distance),
                subproblems: run.subproblems,
                early_exit: false,
            };
        }
        let run = ted_at_most_run(f, g, &self.exact.cost_model, tau, ws);
        BoundedVerify {
            result: run.result,
            subproblems: run.subproblems,
            early_exit: run.early_exit,
        }
    }

    fn name(&self) -> &'static str {
        "bounded"
    }
}

/// The planner's per-pair verifier portfolio — RTED's dynamic strategy
/// selection lifted one level up. For each surviving candidate pair it
/// picks the cheapest member of the exact **unit-cost** family:
///
/// * **Zhang–Shasha** (`Algorithm::ZhangL`) when the pair is small —
///   `|f| · |g|` at or below the cutoff — so RTED's strategy
///   computation would cost more than any subproblems it could save;
/// * the **bounded-τ early-exit kernel** when the query supplies a
///   finite budget (abandonment makes "no" answers nearly free);
/// * **full RTED** otherwise.
///
/// All three arms compute the *same exact distance* under unit costs
/// (Zhang–Shasha is one fixed LRH strategy; the bounded kernel returns
/// `Exact(d)` identical to RTED whenever `d ≤ τ`), so query results are
/// byte-identical to any fixed configuration — only the work changes.
/// Because the arms are pinned to unit costs, the index only installs
/// this dispatch over its *default* verifier; `with_verifier` /
/// `with_algorithm` turn it off.
///
/// Each dispatch decision is counted into the owning index's
/// `index_plan_{zs,bounded,rted}_pairs_total` metrics (lock-free — this
/// runs on verification worker threads).
#[derive(Clone, Copy)]
pub(crate) struct PlannedVerifier<'a> {
    zs_cell_cutoff: u64,
    totals: &'a IndexTotals,
}

impl<'a> PlannedVerifier<'a> {
    pub(crate) fn new(zs_cell_cutoff: u64, totals: &'a IndexTotals) -> Self {
        PlannedVerifier {
            zs_cell_cutoff,
            totals,
        }
    }

    fn small<L>(&self, f: &Tree<L>, g: &Tree<L>) -> bool {
        (f.len() as u64).saturating_mul(g.len() as u64) <= self.zs_cell_cutoff
    }
}

impl<'a, L: PartialEq + Send + Sync> Verifier<L> for PlannedVerifier<'a> {
    fn verify(&self, f: &Tree<L>, g: &Tree<L>) -> RunStats {
        self.verify_in(f, g, &mut Workspace::new())
    }

    fn verify_in(&self, f: &Tree<L>, g: &Tree<L>, ws: &mut Workspace) -> RunStats {
        if self.small(f, g) {
            self.totals.record_plan_pair(PlanPair::ZhangShasha);
            Algorithm::ZhangL.run_in(f, g, &UnitCost, ws)
        } else {
            self.totals.record_plan_pair(PlanPair::Rted);
            Algorithm::Rted.run_in(f, g, &UnitCost, ws)
        }
    }

    fn verify_within(
        &self,
        f: &Tree<L>,
        g: &Tree<L>,
        tau: f64,
        ws: &mut Workspace,
    ) -> BoundedVerify {
        if tau == f64::INFINITY || self.small(f, g) {
            // No budget to exploit, or a pair so small that even the
            // bounded kernel's band bookkeeping is overhead: run the
            // chosen exact arm and classify — identical to the default
            // `verify_within` contract.
            let run = self.verify_in(f, g, ws);
            let result = if run.distance <= tau {
                BoundedResult::Exact(run.distance)
            } else {
                BoundedResult::Exceeds(run.distance)
            };
            return BoundedVerify {
                result,
                subproblems: run.subproblems,
                early_exit: false,
            };
        }
        self.totals.record_plan_pair(PlanPair::Bounded);
        let run = ted_at_most_run(f, g, &UnitCost, tau, ws);
        BoundedVerify {
            result: run.result,
            subproblems: run.subproblems,
            early_exit: run.early_exit,
        }
    }

    fn name(&self) -> &'static str {
        "planned"
    }
}
