//! `rted-index` — an indexed, parallel similarity-search engine over tree
//! corpora.
//!
//! The paper's similarity join (§8, Table 1) is the stress test for
//! RTED's robustness, but a production search engine cannot afford an
//! O(n²·TED) all-pairs scan. This crate turns joins and queries into
//! filter-dominated scans:
//!
//! * a [`TreeCorpus`] analyzes every tree **once** at build time
//!   ([`rted_core::bounds::TreeSketch`]: size, depth, leaf/internal
//!   counts, label histogram) and keeps a size-sorted view;
//! * a staged [`FilterPipeline`] of sound [`rted_core::bounds::LowerBound`]
//!   stages (size → depth → leaf → degree → histogram) prunes candidate
//!   pairs before any exact computation, recording per-stage counters;
//! * surviving candidates go to a pluggable [`Verifier`] — the
//!   budget-aware [`BoundedVerifier`] (exact RTED under unit costs behind
//!   a band-limited early-exit kernel) by default, any
//!   [`rted_core::Algorithm`] and cost model on request. Queries hand the
//!   verifier their threshold (`tau` for `range`/`join`, the current
//!   radius for `top_k`) through [`Verifier::verify_within`], so the
//!   verifier may abandon a pair the moment the budget is provably blown
//!   — results are byte-identical to exact verification, only "no"
//!   answers get cheaper;
//! * a chunked executor ([`exec::map_chunks`]) spreads verification over
//!   scoped threads; results are bit-identical for any thread count;
//! * an optional **adaptive planner** ([`TreeIndex::with_planner`], the
//!   `rted-plan` crate) re-decides, per query, the candidate generator
//!   (linear vs. metric-tree), the verifier per surviving pair
//!   (Zhang–Shasha / bounded-τ kernel / full RTED) and the filter-stage
//!   order, from the same lifetime counters the metrics surface
//!   exports. Every planned choice is answer-invariant by construction
//!   — see [`TreeIndex::explain`] for the decision record.
//!
//! Three query APIs cover the common workloads: [`TreeIndex::range`]
//! (all trees within a distance threshold), [`TreeIndex::top_k`]
//! (k nearest neighbours, best-first with a shrinking radius), and
//! [`TreeIndex::join`] (the all-pairs similarity self-join, with a
//! sorted-by-size traversal that early-breaks on the size bound).
//!
//! Matching is strict, as in the paper's join: a tree matches iff
//! `TED < tau`, and a stage prunes iff its bound reaches `tau`.
//!
//! The standard filter stages are sound for cost models charging ≥ 1 per
//! delete/insert and ≥ 1 per rename of distinct labels (unit costs, the
//! default verifier). When plugging in a cheaper cost model via
//! [`TreeIndex::with_verifier`], disable or replace the pipeline — see
//! the `with_verifier` docs.
//!
//! # Example
//!
//! ```
//! use rted_index::TreeIndex;
//! use rted_tree::parse_bracket;
//!
//! let corpus = vec![
//!     parse_bracket("{a{b}{c}}").unwrap(),
//!     parse_bracket("{a{b}{d}}").unwrap(),
//!     parse_bracket("{x{y{z{w}}}}").unwrap(),
//! ];
//! let index = TreeIndex::build(corpus);
//!
//! let query = parse_bracket("{a{b}{c}}").unwrap();
//! let res = index.range(&query, 2.0);
//! let ids: Vec<usize> = res.neighbors.iter().map(|n| n.id).collect();
//! assert_eq!(ids, vec![0, 1]); // the deep {x...} tree is filtered out
//! assert!(res.stats.filter.total_pruned() > 0);
//!
//! let knn = index.top_k(&query, 2);
//! assert_eq!(knn.neighbors[0].id, 0);
//! assert_eq!(knn.neighbors[0].distance, 0.0);
//! ```

pub mod candidates;
pub mod corpus;
pub mod exec;
pub mod filter;
pub mod persist;
pub mod store;
mod striped;
pub mod totals;
pub mod verify;

pub use candidates::{MetricConfig, MetricSnapshot, MetricStats, VpTree};
pub use corpus::{CorpusEntry, TreeCorpus};
pub use exec::{map_chunks, map_chunks_with, ExecPolicy, PooledWorkspace, WorkspacePool};
pub use filter::{FilterPipeline, FilterStats, StagePrune};
pub use persist::{encode_corpus, salvage_corpus, CorpusFile, PersistError, RepairReport, Salvage};
pub use store::{CorpusLog, CorpusStore, LogCounts, Recovery, WalObs};
pub use totals::{IndexTotals, QueryKind, TotalsSnapshot};
pub use verify::{AlgorithmVerifier, BoundedVerifier, BoundedVerify, Verifier};

use crate::verify::PlannedVerifier;
use rted_core::bounds::{standard_bounds, TreeSketch};
use rted_core::{Algorithm, BoundedResult, Workspace};
use rted_plan::CandidateGen;
use rted_tree::Tree;
use std::collections::BinaryHeap;
use std::sync::{Arc, PoisonError, RwLock};
use std::time::{Duration, Instant};

/// Total-order wrapper for (never-NaN) distances.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct OrdF64(pub(crate) f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// One query answer: a corpus tree and its exact distance to the query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Corpus id of the matched tree.
    pub id: usize,
    /// Exact tree edit distance.
    pub distance: f64,
}

/// One matched pair of a self-join (`left < right`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JoinPair {
    /// Smaller corpus id.
    pub left: usize,
    /// Larger corpus id.
    pub right: usize,
    /// Exact tree edit distance.
    pub distance: f64,
}

/// Counters for one query run.
///
/// # Exact counter semantics per query type
///
/// * **`range`, linear path** — `candidates` is the corpus size, and the
///   counters partition it: every live tree is either pruned by exactly
///   one stage or verified, so
///   `filter.total_pruned() + verified == candidates`.
/// * **`top_k`, linear path** — same partition as `range` (`candidates`
///   is the corpus size; the sorted-size early-break books the whole
///   skipped tail on the size stage, so nothing goes uncounted).
/// * **`join`, linear path** — `candidates` is the number of unordered
///   pairs, `n·(n−1)/2`, and the partition holds pair-wise:
///   `filter.total_pruned() + verified == candidates` (the per-row size
///   early-break books the remainder of each inner loop).
/// * **metric-tree paths** — `candidates` keeps the meaning above, but
///   pruned/verified count **work done, not a partition**: routing
///   distances to vantage points are included in `verified` (see
///   [`MetricStats::routing_ted`]), bound-settled vantages are counted
///   in neither, and regions proven out by the triangle inequality
///   vanish without touching any counter — so pruned + verified may be
///   far *below* `candidates`. The metric **join** additionally runs one
///   metric range query per corpus tree, and only *reporting* is
///   restricted to higher ids: an unordered pair can be examined (and
///   pruned or verified) from **both** sides, so pruned + verified may
///   also *exceed* `candidates`. Matches are still reported exactly
///   once; only the work counters double-book relative to `range`
///   semantics.
///
/// The linear-path partition invariants are asserted in the
/// `stats_semantics` integration test.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SearchStats {
    /// Candidates considered: corpus size for `range`/`top_k`, number of
    /// unordered pairs for `join`.
    pub candidates: usize,
    /// Per-stage prune counters.
    pub filter: FilterStats,
    /// Exact distance computations performed (on the metric-tree path
    /// this includes routing distances to vantage points).
    pub verified: usize,
    /// Relevant subproblems computed by the verifier, summed.
    pub subproblems: u64,
    /// Metric-tree traversal counters (all zero on the linear path).
    pub metric: MetricStats,
    /// Time spent inside exact TED computations (strategy + distance
    /// phases, summed over all verifications of the query; budget-aware
    /// verifications contribute their wall time).
    pub ted_time: Duration,
    /// Budget-aware verifications that stopped before completing because
    /// the budget was provably blown (a subset of `verified`: an
    /// early-exited verification still counts as one verification).
    pub early_exits: usize,
    /// Wall time inside budget-aware ([`Verifier::verify_within`])
    /// verifications — a subset of `ted_time`.
    pub bounded_time: Duration,
    /// Wall-clock time of the whole query.
    pub time: Duration,
}

impl SearchStats {
    /// Folds another run's counters into this one — the scatter-gather
    /// merge for queries answered by several index shards. Work counters
    /// sum; `time` takes the maximum (shard legs run concurrently, so the
    /// slowest leg is the query's wall time).
    pub fn merge(&mut self, other: &SearchStats) {
        self.candidates += other.candidates;
        self.filter.merge(&other.filter);
        self.verified += other.verified;
        self.subproblems += other.subproblems;
        self.metric.merge(&other.metric);
        self.ted_time += other.ted_time;
        self.early_exits += other.early_exits;
        self.bounded_time += other.bounded_time;
        self.time = self.time.max(other.time);
    }
}

/// Result of a [`TreeIndex::range`] or [`TreeIndex::top_k`] query.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Matches: sorted by id for `range`, by `(distance, id)` for `top_k`.
    pub neighbors: Vec<Neighbor>,
    /// Run counters.
    pub stats: SearchStats,
}

/// Result of a [`TreeIndex::join`].
#[derive(Debug, Clone)]
pub struct JoinOutcome {
    /// Matched pairs, sorted by `(left, right)`.
    pub matches: Vec<JoinPair>,
    /// Run counters (`candidates` counts unordered pairs).
    pub stats: SearchStats,
}

/// The similarity-search engine: corpus + filter pipeline + verifier +
/// execution policy.
///
/// Built once over an immutable corpus; all queries take `&self` and are
/// safe to issue concurrently. [`fork`](Self::fork) produces a
/// copy-on-write sibling for epoch-style snapshot publication: the corpus
/// (cheap `Arc`-per-entry clones) and metric tree are copied, while the
/// pipeline, verifier, workspace pool, and lifetime totals stay shared —
/// so counters and warm scratch survive a snapshot swap.
pub struct TreeIndex<L> {
    corpus: TreeCorpus<L>,
    pipeline: Arc<FilterPipeline<L>>,
    verifier: Arc<dyn Verifier<L>>,
    policy: ExecPolicy,
    /// Recycled verification scratch, shared by all queries: one
    /// [`Workspace`](rted_core::Workspace) per concurrent worker, warm
    /// after the first query, so verification stops heap-allocating.
    scratch: Arc<WorkspacePool>,
    /// Whether `range`/`top_k`/`join` route through the metric tree.
    metric_enabled: bool,
    metric_config: MetricConfig,
    /// The lazily built vantage-point tree (`None` = not built yet, or
    /// dropped by the churn threshold). Behind an `RwLock` so concurrent
    /// queries share a built tree; only the build takes the write lock.
    metric: RwLock<Option<VpTree<L>>>,
    /// Lifetime query totals (lock-free; recorded by every query; shared
    /// across snapshot forks so a swap never resets counters).
    totals: Arc<IndexTotals>,
    /// Planner decision state (observations are fed by every query even
    /// while the planner is disabled, so [`explain`](Self::explain) and
    /// a later [`with_planner(true)`](Self::with_planner) start informed).
    plan: Arc<PlannerState<L>>,
    /// Whether queries go through the adaptive planner (off by default;
    /// the CLI and serving layers opt in).
    planner_enabled: bool,
    /// Whether the verifier is still the construction default — the only
    /// verifier the planner may dispatch around, since all its arms
    /// compute the same unit-cost distances. Cleared by
    /// [`with_verifier`](Self::with_verifier) / `with_algorithm`.
    default_verifier: bool,
}

/// Adaptive-planner state, shared across snapshot forks like
/// [`IndexTotals`] so what the planner has learned survives an epoch
/// swap: the decision constants, the lock-free per-arm observation
/// accumulators, and the cached stage-reordered pipeline.
struct PlannerState<L> {
    config: rted_plan::PlannerConfig,
    obs: rted_plan::Observations,
    /// The planner's current stage-order rebuild. `None` until the first
    /// reorder; reads are the per-query fast path, the write lock is
    /// taken only to publish a new order.
    reordered: RwLock<Option<Arc<FilterPipeline<L>>>>,
    /// Whether the base pipeline is the standard stage set — the only
    /// pipeline the planner knows how to rebuild in a different order.
    /// Custom pipelines always run in their construction order.
    reorderable: bool,
}

impl<L> PlannerState<L> {
    fn for_pipeline(pipeline: &FilterPipeline<L>) -> Self {
        const STANDARD: [&str; 6] = ["size", "depth", "leaf", "degree", "histogram", "pqgram"];
        let reorderable = pipeline.stages().len() == STANDARD.len()
            && pipeline
                .stages()
                .iter()
                .zip(STANDARD)
                .all(|(stage, name)| stage.name() == name);
        PlannerState {
            config: rted_plan::PlannerConfig::default(),
            obs: rted_plan::Observations::default(),
            reordered: RwLock::new(None),
            reorderable,
        }
    }
}

/// Recovers the guard from a poisoned lock: a panicking query left the
/// tree structurally intact (it only ever mutates under `&mut self` or
/// during the one-shot build), and refusing to read it again would
/// escalate one failed query into a dead index.
fn relock<T>(result: Result<T, PoisonError<T>>) -> T {
    result.unwrap_or_else(PoisonError::into_inner)
}

/// Per-chunk accumulator for the worker threads.
struct ChunkOut<T> {
    filter: FilterStats,
    verified: usize,
    subproblems: u64,
    ted_time: Duration,
    early_exits: usize,
    bounded_time: Duration,
    found: Vec<T>,
}

impl<T> ChunkOut<T> {
    fn new<L>(pipeline: &FilterPipeline<L>) -> Self {
        ChunkOut {
            filter: FilterStats::for_pipeline(pipeline),
            verified: 0,
            subproblems: 0,
            ted_time: Duration::ZERO,
            early_exits: 0,
            bounded_time: Duration::ZERO,
            found: Vec::new(),
        }
    }
}

/// One budget-aware verification through `verifier`, with counters folded
/// into `out`. Returns `Some(d)` — the exact distance — iff `d ≤ tau`;
/// `None` means the pair provably exceeds the budget (and, since matching
/// is strict, can never match). An infinite `tau` takes the plain exact
/// path so unbudgeted queries are bit-for-bit unchanged.
fn verify_bounded<L, T>(
    verifier: &dyn Verifier<L>,
    f: &Tree<L>,
    g: &Tree<L>,
    tau: f64,
    ws: &mut Workspace,
    out: &mut ChunkOut<T>,
) -> Option<f64> {
    if tau == f64::INFINITY {
        let run = verifier.verify_in(f, g, ws);
        out.verified += 1;
        out.subproblems += run.subproblems;
        out.ted_time += run.strategy_time + run.distance_time;
        return Some(run.distance);
    }
    let started = Instant::now();
    let bv = verifier.verify_within(f, g, tau, ws);
    let spent = started.elapsed();
    out.verified += 1;
    out.subproblems += bv.subproblems;
    out.ted_time += spent;
    out.bounded_time += spent;
    if bv.early_exit {
        out.early_exits += 1;
    }
    match bv.result {
        BoundedResult::Exact(d) => Some(d),
        BoundedResult::Exceeds(_) => None,
    }
}

impl<L> TreeIndex<L>
where
    L: Eq + std::hash::Hash + Clone + Send + Sync + 'static,
{
    /// Builds an index with the standard filter pipeline, the budget-aware
    /// RTED unit-cost verifier ([`BoundedVerifier`]), and the default
    /// execution policy.
    pub fn build(trees: impl IntoIterator<Item = Tree<L>>) -> Self {
        Self::from_corpus(TreeCorpus::build(trees))
    }

    /// Wraps an existing corpus — e.g. one loaded from disk via
    /// [`CorpusStore`] or [`CorpusFile`] — without re-analyzing any tree.
    pub fn from_corpus(corpus: TreeCorpus<L>) -> Self {
        let pipeline = FilterPipeline::standard();
        let totals = Arc::new(IndexTotals::for_pipeline(&pipeline));
        let plan = Arc::new(PlannerState::for_pipeline(&pipeline));
        TreeIndex {
            corpus,
            pipeline: Arc::new(pipeline),
            verifier: Arc::new(BoundedVerifier::rted()),
            policy: ExecPolicy::default(),
            scratch: Arc::new(WorkspacePool::new()),
            metric_enabled: false,
            metric_config: MetricConfig::default(),
            metric: RwLock::new(None),
            totals,
            plan,
            planner_enabled: false,
            default_verifier: true,
        }
    }

    /// A copy-on-write sibling of this index: the next epoch's snapshot.
    ///
    /// The corpus clones (one `Arc` bump per entry — no tree is re-analyzed)
    /// and a built metric tree is carried over verbatim, while the filter
    /// pipeline, verifier, workspace pool, and lifetime totals are
    /// **shared** with the original. A writer mutates the fork and
    /// publishes it with a single `Arc` pointer swap; readers holding the
    /// previous snapshot are never disturbed.
    pub fn fork(&self) -> Self {
        TreeIndex {
            corpus: self.corpus.clone(),
            pipeline: Arc::clone(&self.pipeline),
            verifier: Arc::clone(&self.verifier),
            policy: self.policy,
            scratch: Arc::clone(&self.scratch),
            metric_enabled: self.metric_enabled,
            metric_config: self.metric_config,
            metric: RwLock::new(relock(self.metric.read()).clone()),
            totals: Arc::clone(&self.totals),
            plan: Arc::clone(&self.plan),
            planner_enabled: self.planner_enabled,
            default_verifier: self.default_verifier,
        }
    }

    /// Inserts a tree into the corpus, returning its stable id. O(log n)
    /// index maintenance plus one O(n)-in-tree-size analysis; concurrent
    /// queries are excluded by the `&mut` borrow, nothing is rebuilt
    /// (a built metric tree absorbs the insert into its linear overflow).
    pub fn insert(&mut self, tree: Tree<L>) -> usize {
        self.insert_entry(CorpusEntry::analyze(tree))
    }

    /// Removes tree `id` from the corpus. Returns `false` if the id was
    /// not live. The id is never reused; results of later queries simply
    /// stop mentioning it. A built metric tree tombstones the id, keeping
    /// the removed entry as a routing corpse until the churn threshold
    /// triggers a rebuild.
    pub fn remove(&mut self, id: usize) -> bool {
        match self.corpus.remove(id) {
            None => false,
            Some(entry) => {
                let slot = relock(self.metric.get_mut());
                if let Some(tree) = slot.as_mut() {
                    tree.note_remove(id, entry);
                    if tree.should_rebuild(self.metric_config.rebuild_fraction) {
                        *slot = None;
                    }
                }
                true
            }
        }
    }

    /// Inserts an already-analyzed entry, returning its stable id — the
    /// path for callers that had to build the entry before committing the
    /// in-memory mutation (a durable log appends the analyzed entry
    /// first, so tree and sketch are computed exactly once).
    pub fn insert_entry(&mut self, entry: CorpusEntry<L>) -> usize {
        let id = self.corpus.id_bound();
        self.insert_entry_at(id, Arc::new(entry));
        id
    }

    /// Inserts an already-analyzed, shared entry at an **explicit id**,
    /// padding skipped ids with permanent holes — the sharded serving
    /// layer's insert path, where global ids are striped across shards and
    /// recovery can leave a shard's local id sequence with gaps (see
    /// [`TreeCorpus::insert_arc_at`]). Panics if `id` names a live entry.
    pub fn insert_entry_at(&mut self, id: usize, entry: Arc<CorpusEntry<L>>) {
        self.corpus.insert_arc_at(id, entry);
        let slot = relock(self.metric.get_mut());
        if let Some(tree) = slot.as_mut() {
            tree.note_insert(id);
            if tree.should_rebuild(self.metric_config.rebuild_fraction) {
                *slot = None;
            }
        }
    }

    /// Exact distance between two trees under this index's verifier,
    /// drawing scratch from `ws` — the serving layer's per-worker
    /// allocation-free distance path (neither tree needs to be in the
    /// corpus).
    pub fn distance_in(
        &self,
        f: &Tree<L>,
        g: &Tree<L>,
        ws: &mut rted_core::Workspace,
    ) -> rted_core::RunStats {
        let run = self.verifier.verify_in(f, g, ws);
        // Lock-free, allocation-free recording: this is the serving
        // layer's zero-allocation hot path.
        self.totals
            .record_distance(run.subproblems, run.strategy_time + run.distance_time);
        run
    }

    /// Budget-aware distance between two trees under this index's
    /// verifier: the exact distance when it is ≤ `tau`, or a certified
    /// lower bound the moment the budget is provably blown — the serving
    /// layer's `distance … at_most` path. Shares `distance_in`'s
    /// allocation-free recording; early exits land in the
    /// `index_verify_early_exit_total` metric.
    pub fn distance_within(
        &self,
        f: &Tree<L>,
        g: &Tree<L>,
        tau: f64,
        ws: &mut rted_core::Workspace,
    ) -> BoundedVerify {
        let started = Instant::now();
        let bv = self.verifier.verify_within(f, g, tau, ws);
        self.totals
            .record_bounded_distance(bv.subproblems, started.elapsed(), bv.early_exit);
        bv
    }

    /// Optimal edit mapping between two trees under **unit costs**,
    /// drawing scratch from `ws` — the serving layer's per-worker `diff`
    /// path (neither tree needs to be in the corpus). Under unit costs
    /// the mapping's cost equals the distance this index's default
    /// verifier reports for the same pair, so a served edit script is
    /// always consistent with a served `distance`.
    pub fn diff_in(
        &self,
        f: &Tree<L>,
        g: &Tree<L>,
        ws: &mut rted_core::Workspace,
    ) -> rted_core::EditMapping {
        let before = ws.lifetime_stats().subproblems;
        let started = Instant::now();
        let mapping = rted_core::edit_mapping_in(f, g, &rted_core::UnitCost, ws);
        let cells = ws.lifetime_stats().subproblems - before;
        self.totals.record_diff(cells, started.elapsed());
        mapping
    }

    /// Edit script turning corpus tree `left` into corpus tree `right`
    /// (unit costs), through a pooled workspace. `None` when either id is
    /// not live.
    pub fn diff(&self, left: usize, right: usize) -> Option<rted_core::EditScript>
    where
        L: std::fmt::Display,
    {
        let f = self.corpus.get(left)?.tree();
        let g = self.corpus.get(right)?.tree();
        let mut ws = self.scratch.take();
        let mapping = self.diff_in(f, g, ws.get());
        Some(mapping.script(f, g))
    }

    /// Cumulative counters over every query this index has answered —
    /// the signals `rted serve`'s `metrics` surface and `rted index info
    /// --stats` report (see [`totals::IndexTotals`]).
    pub fn totals(&self) -> TotalsSnapshot {
        self.totals.snapshot()
    }

    /// Replaces the filter pipeline. Lifetime per-stage totals and
    /// planner observations are reset to match the new stage order.
    pub fn with_pipeline(mut self, pipeline: FilterPipeline<L>) -> Self {
        self.totals = Arc::new(IndexTotals::for_pipeline(&pipeline));
        self.plan = Arc::new(PlannerState::for_pipeline(&pipeline));
        self.pipeline = Arc::new(pipeline);
        self
    }

    /// Disables all filtering (every candidate is verified exactly).
    pub fn unfiltered(self) -> Self {
        self.with_pipeline(FilterPipeline::none())
    }

    /// Replaces the verifier.
    ///
    /// **Soundness:** the filter stages assume the verifier's cost model
    /// charges ≥ 1 per delete/insert and ≥ 1 per rename of distinct
    /// labels (true for unit costs). A verifier with cheaper operations
    /// can have exact distances *below* the stage bounds, silently
    /// dropping true matches — pair such verifiers with
    /// [`unfiltered`](Self::unfiltered) or a custom pipeline whose stages
    /// are sound for that model.
    pub fn with_verifier(mut self, verifier: Box<dyn Verifier<L>>) -> Self {
        self.verifier = Arc::from(verifier);
        // The planner's per-pair verifier dispatch is only
        // answer-invariant over the construction default (all its arms
        // compute unit-cost distances): a custom verifier is always
        // called as given.
        self.default_verifier = false;
        // Metric routing compares fresh distances against the mu radii
        // recorded at build time; a tree built under a different verifier
        // would prune with stale geometry. Drop it for a lazy rebuild.
        *relock(self.metric.get_mut()) = None;
        self
    }

    /// Verifies with `algorithm` under unit costs.
    pub fn with_algorithm(self, algorithm: Algorithm) -> Self {
        self.with_verifier(Box::new(AlgorithmVerifier::unit(algorithm)))
    }

    /// Enables (or disables) metric-tree candidate generation:
    /// `range`/`top_k`/`join` with a finite threshold route through a
    /// vantage-point tree over the corpus (built lazily by the first
    /// eligible query, maintained incrementally under mutation) instead
    /// of the linear size-window scan. Results are **identical** either
    /// way; only the number of candidates examined changes — see
    /// [`candidates::metric`].
    ///
    /// Requires the index's verifier to compute a *metric* (true for the
    /// default unit-cost verifiers). The `*_with` explicit-verifier query
    /// variants always use the linear path: routing distances must come
    /// from the same metric that verification uses. Metric traversal runs
    /// on one workspace (sequential) — [`with_threads`](Self::with_threads)
    /// parallelism currently applies to the linear path only.
    pub fn with_metric_tree(mut self, enabled: bool) -> Self {
        self.metric_enabled = enabled;
        self
    }

    /// Replaces the metric-tree tuning (leaf size, churn threshold).
    pub fn with_metric_config(mut self, config: MetricConfig) -> Self {
        self.metric_config = config;
        *relock(self.metric.get_mut()) = None;
        self
    }

    /// Enables (or disables) the adaptive query planner.
    ///
    /// With the planner on, each `range`/`top_k`/`join` query re-decides
    /// three things from the index's lifetime counters:
    ///
    /// * the **candidate generator** — linear size-window scan vs.
    ///   metric-tree routing (when [`with_metric_tree`](Self::with_metric_tree)
    ///   made the metric path available), by observed exact-TED
    ///   computations per candidate on each arm;
    /// * the **verifier per surviving pair** — Zhang–Shasha below a
    ///   size-product cutoff, the bounded-τ kernel under a finite budget,
    ///   full RTED otherwise (only while the verifier is still the
    ///   construction default, whose arms all compute unit-cost
    ///   distances);
    /// * the **filter-stage order** — measured selectivity-per-cost,
    ///   descending, with `size` pinned first (standard pipeline only).
    ///
    /// Every choice is answer-invariant: results are byte-identical to
    /// any fixed configuration, only the work changes. Observations are
    /// collected even while disabled, so enabling the planner later (or
    /// asking [`explain`](Self::explain)) starts from real signals.
    pub fn with_planner(mut self, enabled: bool) -> Self {
        self.planner_enabled = enabled;
        self
    }

    /// Whether the adaptive planner is steering queries.
    pub fn planner_enabled(&self) -> bool {
        self.planner_enabled
    }

    /// The decision record for a hypothetical next query: which candidate
    /// generator the planner would pick (`budgeted` says whether the
    /// query would carry a finite `tau`), the active stage order, the
    /// verifier dispatch constants, and the observed per-arm rates that
    /// drove the choice. Records the probed decision into the
    /// `index_plan_*` counters like a real planned query.
    pub fn explain(&self, budgeted: bool) -> rted_plan::PlanReport {
        let metric_eligible = self.metric_enabled && budgeted && !self.corpus.is_empty();
        let (gen, pipeline) = self.plan_query(metric_eligible);
        rted_plan::PlanReport {
            candidate_gen: gen,
            stage_order: pipeline.stages().iter().map(|s| s.name()).collect(),
            zs_cell_cutoff: self.plan.config.zs_cell_cutoff,
            budgeted: budgeted && self.planner_enabled && self.default_verifier,
            linear_rate: self.plan.obs.linear.rate(),
            metric_rate: self.plan.obs.metric.rate(),
            observed_queries: self.plan.obs.linear.queries() + self.plan.obs.metric.queries(),
        }
    }

    /// One query's plan: the candidate generator and the pipeline to run.
    /// With the planner disabled this is exactly the historical fixed
    /// behavior (the configured generator, the construction stage order).
    fn plan_query(&self, metric_eligible: bool) -> (CandidateGen, Arc<FilterPipeline<L>>) {
        if !self.planner_enabled {
            let gen = if metric_eligible {
                CandidateGen::Metric
            } else {
                CandidateGen::Linear
            };
            return (gen, Arc::clone(&self.pipeline));
        }
        let gen = self.plan.obs.choose(metric_eligible);
        self.totals.record_plan(gen);
        (gen, self.planned_pipeline())
    }

    /// The stage order the planner wants right now: the base pipeline
    /// until enough queries have been observed (or when it is not the
    /// standard stage set), then the standard stages re-sorted by
    /// measured selectivity-per-cost, rebuilt and cached whenever the
    /// ranking moves. Reordering never changes answers — a pair is
    /// pruned iff *any* stage bound reaches the threshold — it only
    /// moves cheap-and-selective stages ahead so pruned pairs cost less.
    fn planned_pipeline(&self) -> Arc<FilterPipeline<L>> {
        if !self.plan.reorderable {
            return Arc::clone(&self.pipeline);
        }
        let obs = &self.plan.obs;
        if obs.linear.queries() + obs.metric.queries() < self.plan.config.reorder_after {
            return Arc::clone(&self.pipeline);
        }
        let target = rted_plan::order_stages(&self.totals.stage_prune_counts());
        let active = relock(self.plan.reordered.read())
            .clone()
            .unwrap_or_else(|| Arc::clone(&self.pipeline));
        if active
            .stages()
            .iter()
            .map(|s| s.name())
            .eq(target.iter().copied())
        {
            return active;
        }
        // The ranking moved: publish the new order. Concurrent queries
        // racing here at worst rebuild the same order twice.
        let mut stages = standard_bounds::<L>();
        stages.sort_by_key(|s| target.iter().position(|&n| n == s.name()));
        let rebuilt = Arc::new(FilterPipeline::from_stages(stages));
        *relock(self.plan.reordered.write()) = Some(Arc::clone(&rebuilt));
        self.totals.record_plan_reorder();
        rebuilt
    }

    /// The per-pair dispatching verifier, when the planner may use it
    /// (planner on, construction-default verifier still installed).
    fn planned_verifier(&self) -> Option<PlannedVerifier<'_>> {
        (self.planner_enabled && self.default_verifier)
            .then(|| PlannedVerifier::new(self.plan.config.zs_cell_cutoff, &self.totals))
    }

    /// A point-in-time view of the metric-tree state (never triggers a
    /// build).
    pub fn metric_snapshot(&self) -> MetricSnapshot {
        let guard = relock(self.metric.read());
        match guard.as_ref() {
            None => MetricSnapshot {
                enabled: self.metric_enabled,
                ..MetricSnapshot::default()
            },
            Some(tree) => MetricSnapshot {
                enabled: self.metric_enabled,
                built: tree.built_len(),
                pending: tree.pending_len(),
                tombstones: tree.tombstones(),
                build_ted: tree.build_ted(),
            },
        }
    }

    /// Sets the number of worker threads (1 = serial).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.policy.threads = threads.max(1);
        self
    }

    /// Replaces the whole execution policy.
    pub fn with_policy(mut self, policy: ExecPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The underlying corpus.
    pub fn corpus(&self) -> &TreeCorpus<L> {
        &self.corpus
    }

    /// The active filter pipeline.
    pub fn pipeline(&self) -> &FilterPipeline<L> {
        &self.pipeline
    }

    /// The active execution policy.
    pub fn policy(&self) -> &ExecPolicy {
        &self.policy
    }

    /// All corpus trees with `TED(query, tree) < tau`, sorted by id.
    ///
    /// With [`with_metric_tree`](Self::with_metric_tree) enabled and a
    /// finite positive `tau`, candidates come from the vantage-point tree
    /// instead of the linear size window — identical results, fewer
    /// candidates examined. With [`with_planner`](Self::with_planner) the
    /// generator, stage order and per-pair verifier are re-decided from
    /// observed costs instead (still identical results).
    pub fn range(&self, query: &Tree<L>, tau: f64) -> QueryResult {
        let metric_eligible =
            self.metric_enabled && tau.is_finite() && tau > 0.0 && !self.corpus.is_empty();
        let (gen, pipeline) = self.plan_query(metric_eligible);
        let planned = self.planned_verifier();
        let verifier: &dyn Verifier<L> = match &planned {
            Some(pv) => pv,
            None => self.verifier.as_ref(),
        };
        match gen {
            CandidateGen::Metric => self.range_metric(query, tau, &pipeline, verifier),
            CandidateGen::Linear => self.range_core(query, tau, verifier, &pipeline),
        }
    }

    /// The query's sketch, profiled with the **corpus's** pq-gram params:
    /// profiles under different gram lengths are incomparable (zero
    /// bound), so a re-profiled corpus — `recompute_profiles`, the CLI's
    /// `--pq` — must have its queries profiled to match or the pqgram
    /// stage would silently stop pruning.
    fn query_sketch(&self, query: &Tree<L>) -> TreeSketch<L> {
        let params = self
            .corpus
            .iter()
            .next()
            .map(|(_, e)| e.sketch().pq.params())
            .unwrap_or_default();
        TreeSketch::with_pq(query, params, &mut rted_core::PqScratch::default())
    }

    /// [`range`](Self::range) with an explicit (possibly borrowed) verifier.
    /// Always the linear path in the construction stage order.
    pub fn range_with(&self, query: &Tree<L>, tau: f64, verifier: &dyn Verifier<L>) -> QueryResult {
        self.range_core(query, tau, verifier, &Arc::clone(&self.pipeline))
    }

    fn range_core(
        &self,
        query: &Tree<L>,
        tau: f64,
        verifier: &dyn Verifier<L>,
        pipeline: &Arc<FilterPipeline<L>>,
    ) -> QueryResult {
        let start = Instant::now();
        let qsketch = self.query_sketch(query);
        let mut stats = SearchStats {
            candidates: self.corpus.len(),
            filter: FilterStats::for_pipeline(pipeline),
            ..SearchStats::default()
        };

        // The size-sorted window is the size stage, run as index arithmetic
        // instead of a per-candidate check.
        let size_stage = pipeline.leading_size_stage();
        let window: &[u32] = if size_stage.is_some() {
            self.corpus.size_window(qsketch.size, tau)
        } else {
            self.corpus.by_size()
        };
        if let Some(idx) = size_stage {
            stats
                .filter
                .record(idx, (self.corpus.len() - window.len()) as u64);
        }

        // With `tau = ∞` no finite bound can reach the threshold: skip the
        // per-candidate stage evaluation entirely.
        let filters_active = tau != f64::INFINITY;
        let chunks = map_chunks_with(
            window,
            &self.policy,
            || self.scratch.take(),
            |ws, _, chunk| {
                let mut out: ChunkOut<Neighbor> = ChunkOut::new(pipeline);
                for &id in chunk {
                    let entry = self.corpus.entry(id as usize);
                    if filters_active {
                        if let Some(stage) = pipeline.prune_stage(&qsketch, entry.sketch(), tau) {
                            out.filter.record(stage, 1);
                            continue;
                        }
                    }
                    // The verifier gets the query threshold: a pair whose
                    // distance provably exceeds `tau` cannot match, so the
                    // bounded kernel may stop early. Matching stays strict
                    // (`d < tau`); `Some(d)` guarantees `d ≤ tau` exactly.
                    if let Some(d) =
                        verify_bounded(verifier, query, entry.tree(), tau, ws.get(), &mut out)
                    {
                        if d < tau {
                            out.found.push(Neighbor {
                                id: id as usize,
                                distance: d,
                            });
                        }
                    }
                }
                out
            },
        );

        let mut neighbors = Vec::new();
        for out in chunks {
            stats.filter.merge(&out.filter);
            stats.verified += out.verified;
            stats.subproblems += out.subproblems;
            stats.ted_time += out.ted_time;
            stats.early_exits += out.early_exits;
            stats.bounded_time += out.bounded_time;
            neighbors.extend(out.found);
        }
        neighbors.sort_by_key(|n| n.id);
        stats.time = start.elapsed();
        self.observe_linear(&stats);
        self.totals.record_query(QueryKind::Range, &stats);
        QueryResult { neighbors, stats }
    }

    /// Feeds one linear-path query into the planner's linear arm (always
    /// on — see [`PlannerState`]).
    fn observe_linear(&self, stats: &SearchStats) {
        self.plan
            .obs
            .linear
            .observe(stats.candidates as u64, stats.verified as u64);
    }

    /// Feeds one metric-path query into the planner's metric arm.
    fn observe_metric(&self, stats: &SearchStats) {
        self.plan
            .obs
            .metric
            .observe(stats.candidates as u64, stats.verified as u64);
    }

    /// The `k` nearest corpus trees by exact distance (ties broken by id),
    /// sorted by `(distance, id)`.
    ///
    /// Best-first: candidates are visited in order of size difference from
    /// the query, and once `k` neighbours are known the search radius
    /// shrinks to the current k-th distance, letting the filter stages and
    /// the sorted-size early-break prune the tail. The neighbour set is
    /// identical for every thread count; with filters disabled every
    /// candidate is verified.
    pub fn top_k(&self, query: &Tree<L>, k: usize) -> QueryResult {
        let metric_eligible = self.metric_enabled && k > 0 && !self.corpus.is_empty();
        let (gen, pipeline) = self.plan_query(metric_eligible);
        let planned = self.planned_verifier();
        let verifier: &dyn Verifier<L> = match &planned {
            Some(pv) => pv,
            None => self.verifier.as_ref(),
        };
        match gen {
            CandidateGen::Metric => self.top_k_metric(query, k, &pipeline, verifier),
            CandidateGen::Linear => self.top_k_inner(query, k, verifier, &pipeline),
        }
    }

    /// [`top_k`](Self::top_k) with an explicit (possibly borrowed) verifier.
    /// Always the linear path in the construction stage order.
    pub fn top_k_with(&self, query: &Tree<L>, k: usize, verifier: &dyn Verifier<L>) -> QueryResult {
        self.top_k_inner(query, k, verifier, &Arc::clone(&self.pipeline))
    }

    fn top_k_inner(
        &self,
        query: &Tree<L>,
        k: usize,
        verifier: &dyn Verifier<L>,
        pipeline: &Arc<FilterPipeline<L>>,
    ) -> QueryResult {
        let start = Instant::now();
        let qsketch = self.query_sketch(query);
        let mut stats = SearchStats {
            candidates: self.corpus.len(),
            filter: FilterStats::for_pipeline(pipeline),
            ..SearchStats::default()
        };
        if k == 0 || self.corpus.is_empty() {
            stats.time = start.elapsed();
            self.observe_linear(&stats);
            self.totals.record_query(QueryKind::TopK, &stats);
            return QueryResult {
                neighbors: Vec::new(),
                stats,
            };
        }

        // Candidates ordered by |size − query size|: walk outward from the
        // query's position in the size-sorted view.
        let order = self.candidates_by_size_distance(qsketch.size);
        let size_stage = pipeline.leading_size_stage();

        // Max-heap on (distance, id): the top is the worst of the best k.
        // Capacity (and the batch schedule below) is sized from the
        // *effective* k — the heap can never hold more than the corpus —
        // so an absurd requested k (e.g. from an untrusted service
        // request) cannot force a huge up-front allocation or abort.
        let k_eff = k.min(order.len());
        let mut heap: BinaryHeap<(OrdF64, usize)> = BinaryHeap::with_capacity(k_eff + 1);
        // Batches grow geometrically: a small first batch establishes a
        // finite radius quickly (so later batches can prune), while later
        // batches amortize dispatch. Sizes depend only on `k` and the
        // chunk setting — never on the thread count — so prune counters
        // (not just results) are reproducible across policies.
        let mut batch = (2 * k_eff).max(16);
        let batch_cap = (self.policy.chunk.max(1) * 4).max(batch);
        let mut pos = 0;
        while pos < order.len() {
            let radius = if heap.len() == k {
                heap.peek()
                    .map(|&(OrdF64(d), _)| d)
                    .unwrap_or(f64::INFINITY)
            } else {
                f64::INFINITY
            };

            // Select this batch's survivors at the current radius. Pruning
            // is strict (`bound > radius`) because a candidate tying the
            // k-th distance can still win the id tie-break.
            let mut survivors: Vec<u32> = Vec::new();
            let batch_end = (pos + batch).min(order.len());
            batch = (batch * 2).min(batch_cap);
            // Until the heap holds k entries the radius is infinite and no
            // finite bound can prune; skip the stage evaluation.
            if radius == f64::INFINITY {
                while pos < batch_end {
                    survivors.push(order[pos]);
                    pos += 1;
                }
            }
            while pos < batch_end {
                let id = order[pos];
                let sketch = self.corpus.sketch(id as usize);
                if let Some(idx) = size_stage {
                    let size_lb = (sketch.size as f64 - qsketch.size as f64).abs();
                    if size_lb > radius {
                        // Candidates are size-ordered: everything after
                        // this one is at least as far. Prune the tail.
                        stats.filter.record(idx, (order.len() - pos) as u64);
                        pos = order.len();
                        break;
                    }
                }
                match pipeline.prune_stage_strict(&qsketch, sketch, radius) {
                    Some(stage) => stats.filter.record(stage, 1),
                    None => survivors.push(id),
                }
                pos += 1;
            }

            // Verify the survivors in parallel, then fold them into the
            // best-k heap in deterministic (batch) order. The batch-start
            // radius is the verification budget: once the heap is full, a
            // candidate that provably exceeds the current k-th distance
            // would be popped right back out, so `Exceeds` survivors are
            // simply not folded — the heap evolves identically to the
            // exact path (a tie at the radius is still returned `Exact`
            // and can win the id tie-break). The budget is fixed per batch
            // — never the mid-batch shrinking radius — so counters and
            // results are reproducible across thread counts.
            let chunk_outs = map_chunks_with(
                &survivors,
                &self.policy,
                || self.scratch.take(),
                |ws, _, chunk| {
                    let mut out: ChunkOut<(usize, f64)> = ChunkOut::new(pipeline);
                    for &id in chunk {
                        if let Some(d) = verify_bounded(
                            verifier,
                            query,
                            self.corpus.tree(id as usize),
                            radius,
                            ws.get(),
                            &mut out,
                        ) {
                            out.found.push((id as usize, d));
                        }
                    }
                    out
                },
            );
            for out in chunk_outs {
                stats.verified += out.verified;
                stats.subproblems += out.subproblems;
                stats.ted_time += out.ted_time;
                stats.early_exits += out.early_exits;
                stats.bounded_time += out.bounded_time;
                for (id, distance) in out.found {
                    heap.push((OrdF64(distance), id));
                    if heap.len() > k {
                        heap.pop();
                    }
                }
            }
        }

        let neighbors: Vec<Neighbor> = heap
            .into_sorted_vec()
            .into_iter()
            .map(|(OrdF64(distance), id)| Neighbor { id, distance })
            .collect();
        stats.time = start.elapsed();
        self.observe_linear(&stats);
        self.totals.record_query(QueryKind::TopK, &stats);
        QueryResult { neighbors, stats }
    }

    /// The similarity self-join: every pair `(i, j)`, `i < j`, with
    /// `TED < tau`, sorted by `(left, right)`.
    ///
    /// Pairs are enumerated in size-sorted order, so the size stage becomes
    /// an early-break of the inner loop; remaining stages and exact
    /// verification run per surviving pair, parallelized over chunks of
    /// outer positions.
    pub fn join(&self, tau: f64) -> JoinOutcome {
        let metric_eligible =
            self.metric_enabled && tau.is_finite() && tau > 0.0 && self.corpus.len() > 1;
        let (gen, pipeline) = self.plan_query(metric_eligible);
        let planned = self.planned_verifier();
        let verifier: &dyn Verifier<L> = match &planned {
            Some(pv) => pv,
            None => self.verifier.as_ref(),
        };
        match gen {
            CandidateGen::Metric => self.join_metric(tau, &pipeline, verifier),
            CandidateGen::Linear => self.join_core(tau, verifier, &pipeline),
        }
    }

    /// [`join`](Self::join) with an explicit (possibly borrowed) verifier.
    /// Always the linear path in the construction stage order.
    pub fn join_with(&self, tau: f64, verifier: &dyn Verifier<L>) -> JoinOutcome {
        self.join_core(tau, verifier, &Arc::clone(&self.pipeline))
    }

    fn join_core(
        &self,
        tau: f64,
        verifier: &dyn Verifier<L>,
        pipeline: &Arc<FilterPipeline<L>>,
    ) -> JoinOutcome {
        let start = Instant::now();
        let n = self.corpus.len();
        let mut stats = SearchStats {
            candidates: n.saturating_sub(1) * n / 2,
            filter: FilterStats::for_pipeline(pipeline),
            ..SearchStats::default()
        };
        let by_size = self.corpus.by_size();
        let size_stage = pipeline.leading_size_stage();
        // With `tau = ∞` no finite bound can reach the threshold: skip the
        // per-pair stage evaluation entirely.
        let filters_active = tau != f64::INFINITY;

        let chunks = map_chunks_with(
            by_size,
            &self.policy,
            || self.scratch.take(),
            |ws, chunk_start, chunk| {
                let mut out: ChunkOut<JoinPair> = ChunkOut::new(pipeline);
                for (off, &i) in chunk.iter().enumerate() {
                    let p = chunk_start + off;
                    let si = self.corpus.sketch(i as usize);
                    for (q, &j) in by_size.iter().enumerate().skip(p + 1) {
                        let sj = self.corpus.sketch(j as usize);
                        if let Some(idx) = size_stage {
                            // Sizes ascend along `by_size`: once the size bound
                            // prunes, it prunes the rest of the inner loop.
                            if (sj.size as f64 - si.size as f64) >= tau {
                                out.filter.record(idx, (n - q) as u64);
                                break;
                            }
                        }
                        if filters_active {
                            if let Some(stage) = pipeline.prune_stage(si, sj, tau) {
                                out.filter.record(stage, 1);
                                continue;
                            }
                        }
                        // Verify in original-id order: asymmetric verifiers
                        // (e.g. Klein-H) count subproblems differently per
                        // operand order, and the historical join ran (i, j)
                        // with i < j.
                        let (left, right) =
                            ((i as usize).min(j as usize), (i as usize).max(j as usize));
                        if let Some(d) = verify_bounded(
                            verifier,
                            self.corpus.tree(left),
                            self.corpus.tree(right),
                            tau,
                            ws.get(),
                            &mut out,
                        ) {
                            if d < tau {
                                out.found.push(JoinPair {
                                    left,
                                    right,
                                    distance: d,
                                });
                            }
                        }
                    }
                }
                out
            },
        );

        let mut matches = Vec::new();
        for out in chunks {
            stats.filter.merge(&out.filter);
            stats.verified += out.verified;
            stats.subproblems += out.subproblems;
            stats.ted_time += out.ted_time;
            stats.early_exits += out.early_exits;
            stats.bounded_time += out.bounded_time;
            matches.extend(out.found);
        }
        matches.sort_by_key(|m| (m.left, m.right));
        stats.time = start.elapsed();
        self.observe_linear(&stats);
        self.totals.record_query(QueryKind::Join, &stats);
        JoinOutcome { matches, stats }
    }

    /// The bipartite half of a sharded similarity join: every pair of one
    /// tree from `self` and one from `other` with `TED < tau`. Reported
    /// ids are **local** to each side (`left` from `self`, `right` from
    /// `other`, no ordering between them — the two corpora have
    /// independent id spaces); the caller maps them into its own global
    /// namespace and normalizes. A sharded self-join is the union of each
    /// shard's own [`join`](Self::join) and `join_between` over every
    /// unordered shard pair — per-pair prune and match decisions depend
    /// only on the two sketches and `tau`, so the union is exactly the
    /// unsharded join.
    ///
    /// `candidates` counts `self.len() × other.len()` pairs; the size
    /// stage books `other`'s trees outside the size window of each `self`
    /// tree, keeping the linear-path partition invariant
    /// (`pruned + verified == candidates`).
    pub fn join_between(&self, other: &TreeIndex<L>, tau: f64) -> JoinOutcome {
        let start = Instant::now();
        let mut stats = SearchStats {
            candidates: self.corpus.len() * other.corpus.len(),
            ..SearchStats::default()
        };
        // The cross-shard half-join is inherently linear (the two sides
        // have independent id spaces), but the planner's stage order and
        // per-pair verifier dispatch still apply.
        let pipeline = if self.planner_enabled {
            self.planned_pipeline()
        } else {
            Arc::clone(&self.pipeline)
        };
        stats.filter = FilterStats::for_pipeline(&pipeline);
        let size_stage = pipeline.leading_size_stage();
        let filters_active = tau != f64::INFINITY;
        let planned = self.planned_verifier();
        let verifier: &dyn Verifier<L> = match &planned {
            Some(pv) => pv,
            None => self.verifier.as_ref(),
        };
        let pipeline = &pipeline;

        let chunks = map_chunks_with(
            self.corpus.by_size(),
            &self.policy,
            || self.scratch.take(),
            |ws, _, chunk| {
                let mut out: ChunkOut<JoinPair> = ChunkOut::new(pipeline);
                for &i in chunk {
                    let si = self.corpus.sketch(i as usize);
                    let window: &[u32] = if size_stage.is_some() {
                        other.corpus.size_window(si.size, tau)
                    } else {
                        other.corpus.by_size()
                    };
                    if let Some(idx) = size_stage {
                        out.filter
                            .record(idx, (other.corpus.len() - window.len()) as u64);
                    }
                    for &j in window {
                        let sj = other.corpus.sketch(j as usize);
                        if filters_active {
                            if let Some(stage) = pipeline.prune_stage(si, sj, tau) {
                                out.filter.record(stage, 1);
                                continue;
                            }
                        }
                        if let Some(d) = verify_bounded(
                            verifier,
                            self.corpus.tree(i as usize),
                            other.corpus.tree(j as usize),
                            tau,
                            ws.get(),
                            &mut out,
                        ) {
                            if d < tau {
                                out.found.push(JoinPair {
                                    left: i as usize,
                                    right: j as usize,
                                    distance: d,
                                });
                            }
                        }
                    }
                }
                out
            },
        );

        let mut matches = Vec::new();
        for out in chunks {
            stats.filter.merge(&out.filter);
            stats.verified += out.verified;
            stats.subproblems += out.subproblems;
            stats.ted_time += out.ted_time;
            stats.early_exits += out.early_exits;
            stats.bounded_time += out.bounded_time;
            matches.extend(out.found);
        }
        matches.sort_by_key(|m| (m.left, m.right));
        stats.time = start.elapsed();
        self.observe_linear(&stats);
        self.totals.record_query(QueryKind::Join, &stats);
        JoinOutcome { matches, stats }
    }

    /// Runs `f` against the metric tree, building it first if needed (the
    /// build draws a workspace from the shared pool and uses the index's
    /// own verifier, so routing and verification distances agree).
    fn with_metric<R>(&self, f: impl FnOnce(&VpTree<L>) -> R) -> R {
        {
            let guard = relock(self.metric.read());
            if let Some(tree) = guard.as_ref() {
                return f(tree);
            }
        }
        {
            let mut guard = relock(self.metric.write());
            if guard.is_none() {
                let mut ws = self.scratch.take();
                *guard = Some(VpTree::build(
                    &self.corpus,
                    self.verifier.as_ref(),
                    ws.get(),
                    &self.metric_config,
                ));
            }
        }
        // Between the write guard dropping and this read, no one can take
        // the tree away: drops happen only under `&mut self`.
        let guard = relock(self.metric.read());
        f(guard.as_ref().expect("tree built above"))
    }

    /// [`range`](Self::range) through the vantage-point tree. The
    /// verifier must compute the same distances as the one the tree was
    /// built with (true for the planner's dispatch: all arms are exact
    /// unit-cost).
    fn range_metric(
        &self,
        query: &Tree<L>,
        tau: f64,
        pipeline: &Arc<FilterPipeline<L>>,
        verifier: &dyn Verifier<L>,
    ) -> QueryResult {
        let start = Instant::now();
        let qsketch = self.query_sketch(query);
        let mut stats = SearchStats {
            candidates: self.corpus.len(),
            filter: FilterStats::for_pipeline(pipeline),
            ..SearchStats::default()
        };
        let mut neighbors = Vec::new();
        self.with_metric(|vp| {
            let mut ws = self.scratch.take();
            vp.range(
                &self.corpus,
                query,
                &qsketch,
                tau,
                None,
                pipeline,
                verifier,
                ws.get(),
                &mut neighbors,
                &mut stats,
            );
        });
        neighbors.sort_by_key(|n| n.id);
        stats.time = start.elapsed();
        self.observe_metric(&stats);
        self.totals.record_query(QueryKind::Range, &stats);
        QueryResult { neighbors, stats }
    }

    /// [`top_k`](Self::top_k) through the vantage-point tree.
    fn top_k_metric(
        &self,
        query: &Tree<L>,
        k: usize,
        pipeline: &Arc<FilterPipeline<L>>,
        verifier: &dyn Verifier<L>,
    ) -> QueryResult {
        let start = Instant::now();
        let qsketch = self.query_sketch(query);
        let mut stats = SearchStats {
            candidates: self.corpus.len(),
            filter: FilterStats::for_pipeline(pipeline),
            ..SearchStats::default()
        };
        let neighbors = self.with_metric(|vp| {
            let mut ws = self.scratch.take();
            vp.top_k(
                &self.corpus,
                query,
                &qsketch,
                k,
                pipeline,
                verifier,
                ws.get(),
                &mut stats,
            )
        });
        stats.time = start.elapsed();
        self.observe_metric(&stats);
        self.totals.record_query(QueryKind::TopK, &stats);
        QueryResult { neighbors, stats }
    }

    /// [`join`](Self::join) through the vantage-point tree: one metric
    /// range query per corpus tree, reporting only partners with a larger
    /// id so each unordered pair is verified exactly once (in the same
    /// `(left, right)` operand order as the linear join).
    fn join_metric(
        &self,
        tau: f64,
        pipeline: &Arc<FilterPipeline<L>>,
        verifier: &dyn Verifier<L>,
    ) -> JoinOutcome {
        let start = Instant::now();
        let n = self.corpus.len();
        let mut stats = SearchStats {
            candidates: n.saturating_sub(1) * n / 2,
            filter: FilterStats::for_pipeline(pipeline),
            ..SearchStats::default()
        };
        let mut matches = Vec::new();
        self.with_metric(|vp| {
            let mut ws = self.scratch.take();
            let mut found = Vec::new();
            for (i, entry) in self.corpus.iter() {
                found.clear();
                vp.range(
                    &self.corpus,
                    entry.tree(),
                    entry.sketch(),
                    tau,
                    Some(i),
                    pipeline,
                    verifier,
                    ws.get(),
                    &mut found,
                    &mut stats,
                );
                matches.extend(found.iter().map(|nb| JoinPair {
                    left: i,
                    right: nb.id,
                    distance: nb.distance,
                }));
            }
        });
        matches.sort_by_key(|m| (m.left, m.right));
        stats.time = start.elapsed();
        self.observe_metric(&stats);
        self.totals.record_query(QueryKind::Join, &stats);
        JoinOutcome { matches, stats }
    }

    /// Corpus ids ordered by `(|size − center|, side, id)` — the best-first
    /// visit order for top-k.
    fn candidates_by_size_distance(&self, center: usize) -> Vec<u32> {
        let by_size = self.corpus.by_size();
        let split = by_size.partition_point(|&id| self.corpus.sketch(id as usize).size < center);
        let mut order = Vec::with_capacity(by_size.len());
        let (mut lo, mut hi) = (split, split);
        while lo > 0 || hi < by_size.len() {
            let below =
                (lo > 0).then(|| center - self.corpus.sketch(by_size[lo - 1] as usize).size);
            let above = (hi < by_size.len())
                .then(|| self.corpus.sketch(by_size[hi] as usize).size - center);
            // Prefer the smaller size gap; on ties, the smaller size (the
            // "below" side) — any fixed rule works, it only has to be
            // deterministic.
            match (below, above) {
                (Some(b), Some(a)) if b <= a => {
                    lo -= 1;
                    order.push(by_size[lo]);
                }
                (Some(_), None) => {
                    lo -= 1;
                    order.push(by_size[lo]);
                }
                (_, Some(_)) => {
                    order.push(by_size[hi]);
                    hi += 1;
                }
                (None, None) => unreachable!(),
            }
        }
        order
    }
}
