//! Index-side face of the serialized pq-gram profiles.
//!
//! The profile machinery itself lives in `rted_core::pqgram` (the sketch
//! must carry it, and the soundness proof belongs next to the other
//! bounds). This module holds what only the *index* layer needs:
//!
//! * corpus-wide parameter introspection ([`profile_params`]) — the CLI's
//!   `index info` and the serve layer's `status` report which gram
//!   lengths a corpus was profiled with;
//! * the re-profiling entry point is
//!   [`TreeCorpus::recompute_profiles`](crate::TreeCorpus::recompute_profiles):
//!   persistent corpora store profiles at build time, so a caller wanting
//!   different gram lengths (the CLI's `--pq P,Q`) re-profiles the loaded
//!   corpus in memory — the file is untouched.
//!
//! Every profile in a corpus must share one parameter pair: the bound
//! treats mixed-parameter pairs as incomparable (zero bound — sound but
//! useless), so partial re-profiling would silently cost filter power.
//! `recompute_profiles` therefore always sweeps the whole corpus.

use crate::corpus::TreeCorpus;
pub use rted_core::pqgram::{PqGramProfile, PqParams, PqScratch};

/// The pq-gram params shared by `corpus`'s profiles (`None` when the
/// corpus is empty). Corpora built by this crate are always uniformly
/// profiled; the first live entry is authoritative.
pub fn profile_params<L>(corpus: &TreeCorpus<L>) -> Option<PqParams> {
    corpus.iter().next().map(|(_, e)| e.sketch().pq.params())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FilterPipeline, TreeIndex};
    use rted_tree::parse_bracket;

    fn corpus() -> TreeCorpus<String> {
        TreeCorpus::build(
            ["{a{b}{c}}", "{a{c}{b}}", "{x{y{z{w{v}}}}}"]
                .iter()
                .map(|s| parse_bracket(s).unwrap()),
        )
    }

    #[test]
    fn corpora_carry_default_params() {
        let c = corpus();
        assert_eq!(profile_params(&c), Some(PqParams::default()));
        assert_eq!(
            profile_params::<String>(&TreeCorpus::build(Vec::new())),
            None
        );
    }

    #[test]
    fn recompute_changes_params_corpus_wide() {
        let mut c = corpus();
        c.recompute_profiles(PqParams::new(3, 2));
        for (_, e) in c.iter() {
            assert_eq!(e.sketch().pq.params(), PqParams::new(3, 2));
        }
        assert_eq!(profile_params(&c), Some(PqParams::new(3, 2)));
    }

    #[test]
    fn pqgram_stage_is_wired_into_the_standard_pipeline() {
        let pipeline = FilterPipeline::<String>::standard();
        assert_eq!(pipeline.stage_index("pqgram"), Some(5));
        // The stage actually prunes: two same-size same-histogram-family
        // trees with different arrangements, queried under a tight tau.
        let index = TreeIndex::from_corpus(corpus());
        let q = parse_bracket("{x{y{z{w{v}}}}}").unwrap();
        let res = index.range(&q, 2.0);
        assert_eq!(res.neighbors.len(), 1);
        assert_eq!(res.neighbors[0].distance, 0.0);
    }

    #[test]
    fn inserts_into_a_reprofiled_corpus_stay_uniform() {
        let mut c = corpus();
        c.recompute_profiles(PqParams::new(3, 2));
        // `insert` analyzes with the default params; the corpus must
        // re-profile the entry to keep the uniformity invariant.
        let id = c.insert(parse_bracket("{p{q}{r}}").unwrap());
        assert_eq!(c.sketch(id).pq.params(), PqParams::new(3, 2));
        assert_eq!(profile_params(&c), Some(PqParams::new(3, 2)));
    }

    #[test]
    fn queries_are_profiled_with_the_corpus_params() {
        // Same size, depth, leaves, degrees and label multiset — only the
        // arrangement differs, so the pqgram stage is the only one that
        // can prune. If the query sketch were profiled with the default
        // params against a re-profiled corpus, the bound would be 0 and
        // the pair would reach exact verification.
        let mut c = TreeCorpus::build(vec![parse_bracket("{r{a{d}}{c{b}}}").unwrap()]);
        c.recompute_profiles(PqParams::new(3, 2));
        let index = TreeIndex::from_corpus(c);
        let q = parse_bracket("{r{a{b}}{c{d}}}").unwrap();
        let res = index.range(&q, 1.0);
        assert!(res.neighbors.is_empty());
        assert_eq!(res.stats.verified, 0, "pqgram stage failed to engage");
        let pq = res
            .stats
            .filter
            .stages
            .iter()
            .find(|s| s.stage == "pqgram")
            .unwrap();
        assert_eq!(pq.pruned, 1);
    }

    #[test]
    fn reprofiled_corpus_answers_queries_identically() {
        // Gram lengths change how much is pruned, never what matches.
        let base = TreeIndex::from_corpus(corpus());
        let mut re = corpus();
        re.recompute_profiles(PqParams::new(1, 1));
        let re = TreeIndex::from_corpus(re);
        let q = parse_bracket("{a{b}{c}}").unwrap();
        for tau in [1.0, 2.0, 5.0] {
            assert_eq!(
                base.range(&q, tau).neighbors,
                re.range(&q, tau).neighbors,
                "tau {tau}"
            );
        }
    }
}
