//! Vantage-point tree candidate generation under the TED metric.
//!
//! Unit-cost tree edit distance is a true metric (non-negative, symmetric,
//! zero iff equal, triangle inequality — property-tested in the workspace
//! root), so the corpus can be organized for sub-linear search: a
//! **vantage-point tree** picks one corpus tree per node, splits the rest
//! by their exact distance to it at the median radius `mu` — the sorted
//! lower half (distances `≤ mu`) inside, the upper half (`≥ mu`) outside,
//! split by *index* so each side gets half the subset even when distances
//! tie (an all-equidistant cluster of near-duplicates must not degenerate
//! into an O(n)-deep spine) — and recurses. A query with threshold `tau`
//! then needs one exact distance `d = TED(q, vantage)` per visited node
//! to discard whole branches:
//!
//! * every tree in the inside branch is at distance `≤ mu` from the
//!   vantage, so its distance to `q` is at least `d − mu` — skip the
//!   branch when `d − mu ≥ tau`;
//! * every outside tree is at distance `≥ mu`, so its distance to `q` is
//!   at least `mu − d` — skip when `mu − d ≥ tau`.
//!
//! (Both exclusions are sound for the strict `< tau` match rule: a tree
//! at distance exactly `tau` is not a match.)
//!
//! The filter pipeline cooperates with the traversal: before paying for
//! an exact routing distance, the cheap sketch bounds are consulted
//! against `mu + tau` — when a bound already proves the vantage is that
//! far, the vantage cannot match, the inside branch is prunable, and the
//! outside branch must be taken anyway, so the exact computation is
//! skipped entirely.
//!
//! # Incremental maintenance
//!
//! VP trees do not support cheap structural insertion, so the tree
//! borrows the store's compaction-accounting pattern: removals of built
//! ids become **tombstones** — the tree keeps the removed entry as a
//! routing corpse (its pairwise distances are still valid metric facts)
//! but never reports it — inserts go to a **pending overflow** scanned
//! linearly, and when the combined churn exceeds a fraction of the built
//! size the tree is dropped and lazily rebuilt on the next query. The
//! trigger is multiplicative (no division, no firing on an empty corpus),
//! exactly like the serve layer's compaction threshold, and the rebuild
//! also frees the corpses.
//!
//! # Exactness
//!
//! Traversal prunes only branches whose every tree provably violates the
//! threshold (or current top-k radius), so `range`/`top_k` results are
//! **byte-identical** to the linear scan — property-tested in
//! `crates/index/tests/candidates.rs` — while the number of trees even
//! looked at falls with the query's selectivity. Routing distances are
//! computed by the index's configured verifier; the guarantee assumes it
//! is a metric (true for the default unit-cost verifiers; a custom
//! non-metric cost model must keep the linear scan).

use crate::corpus::{CorpusEntry, TreeCorpus};
use crate::filter::FilterPipeline;
use crate::verify::Verifier;
use crate::{candidates::MetricStats, Neighbor, OrdF64, SearchStats};
use rted_core::bounds::TreeSketch;
use rted_core::{BoundedResult, Workspace};
use rted_tree::Tree;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;
use std::time::Instant;

/// Absent child sentinel.
const NONE_IDX: u32 = u32::MAX;

/// One budget-aware verification of a leaf-bucket or overflow candidate,
/// with counters folded into `stats`. Returns the exact distance iff it
/// is ≤ `tau`; `None` means the budget is provably blown. Routing
/// distances to vantage points must NOT go through this — the traversal
/// needs the true distance to the vantage to bound both branches — so
/// they stay on the exact [`Verifier::verify_in`] path.
fn verify_bounded_into<L>(
    verifier: &dyn Verifier<L>,
    f: &Tree<L>,
    g: &Tree<L>,
    tau: f64,
    ws: &mut Workspace,
    stats: &mut SearchStats,
) -> Option<f64> {
    if tau == f64::INFINITY {
        let run = verifier.verify_in(f, g, ws);
        stats.verified += 1;
        stats.subproblems += run.subproblems;
        stats.ted_time += run.strategy_time + run.distance_time;
        return Some(run.distance);
    }
    let started = Instant::now();
    let bv = verifier.verify_within(f, g, tau, ws);
    let spent = started.elapsed();
    stats.verified += 1;
    stats.subproblems += bv.subproblems;
    stats.ted_time += spent;
    stats.bounded_time += spent;
    if bv.early_exit {
        stats.early_exits += 1;
    }
    match bv.result {
        BoundedResult::Exact(d) => Some(d),
        BoundedResult::Exceeds(_) => None,
    }
}

/// Tuning of the metric candidate generator.
#[derive(Debug, Clone, Copy)]
pub struct MetricConfig {
    /// Subsets at most this large become leaf buckets (scanned through
    /// the filter pipeline instead of split further). Clamped to ≥ 1.
    pub leaf_size: usize,
    /// Drop and lazily rebuild the tree when
    /// `pending + tombstones > rebuild_fraction × max(built, 1)` —
    /// the multiplicative churn trigger.
    pub rebuild_fraction: f64,
}

impl Default for MetricConfig {
    fn default() -> Self {
        MetricConfig {
            leaf_size: 4,
            rebuild_fraction: 0.25,
        }
    }
}

#[derive(Clone)]
enum VpNode {
    /// A vantage point: `mu` is the median distance of its subset, the
    /// inside (`≤ mu`) branch is `left`, the outside (`≥ mu`) is `right`
    /// (ties may sit on either side — the split is by sorted index, so
    /// both invariants are non-strict and the tree stays balanced).
    Inner {
        /// Corpus id of the vantage tree.
        id: u32,
        /// Median distance splitting the subset.
        mu: f64,
        /// Inside branch (`≤ mu`), or [`NONE_IDX`].
        left: u32,
        /// Outside branch (`≥ mu`), or [`NONE_IDX`].
        right: u32,
    },
    /// A bucket of ids in `bucket[start .. start + len]`.
    Leaf {
        /// Offset into the bucket array.
        start: u32,
        /// Bucket length.
        len: u32,
    },
}

/// A vantage-point tree over the live ids of a corpus at build time, plus
/// the tombstone/pending bookkeeping that keeps it exact under mutation.
/// Cloning is cheap relative to a rebuild (id vectors plus `Arc` corpse
/// handles — no exact distances), so snapshot forks carry the tree over.
#[derive(Clone)]
pub struct VpTree<L> {
    nodes: Vec<VpNode>,
    root: u32,
    bucket: Vec<u32>,
    /// Built ids removed since build, keeping the removed entry as a
    /// routing corpse: still a valid vantage, never reported.
    dead: HashMap<u32, Arc<CorpusEntry<L>>>,
    /// Ids inserted since build: scanned linearly alongside the tree.
    pending: Vec<u32>,
    /// Live count at build time (the churn trigger's denominator).
    built: usize,
    /// Exact TED computations the build spent (amortized over queries;
    /// not part of any per-query counter).
    build_ted: usize,
}

impl<L: Eq + std::hash::Hash + Clone> VpTree<L> {
    /// Builds the tree over every live id of `corpus`, spending
    /// O(n log n) exact distances through `verifier`/`ws`. Deterministic:
    /// subsets are kept id-sorted and the vantage is always the smallest
    /// id, so the same corpus always produces the same tree.
    pub fn build(
        corpus: &TreeCorpus<L>,
        verifier: &dyn Verifier<L>,
        ws: &mut Workspace,
        config: &MetricConfig,
    ) -> VpTree<L> {
        let ids: Vec<u32> = corpus.iter().map(|(id, _)| id as u32).collect();
        let built = ids.len();
        let mut tree = VpTree {
            nodes: Vec::new(),
            root: NONE_IDX,
            bucket: Vec::new(),
            dead: HashMap::new(),
            pending: Vec::new(),
            built,
            build_ted: 0,
        };
        let leaf = config.leaf_size.max(1);
        tree.root = tree.split(ids, corpus, verifier, ws, leaf);
        tree
    }

    fn split(
        &mut self,
        subset: Vec<u32>,
        corpus: &TreeCorpus<L>,
        verifier: &dyn Verifier<L>,
        ws: &mut Workspace,
        leaf: usize,
    ) -> u32 {
        if subset.is_empty() {
            return NONE_IDX;
        }
        if subset.len() <= leaf {
            let start = self.bucket.len() as u32;
            let len = subset.len() as u32;
            self.bucket.extend_from_slice(&subset);
            let idx = self.nodes.len() as u32;
            self.nodes.push(VpNode::Leaf { start, len });
            return idx;
        }
        let vantage = subset[0];
        let vtree = corpus.tree(vantage as usize);
        let mut dists: Vec<(f64, u32)> = subset[1..]
            .iter()
            .map(|&id| {
                let run = verifier.verify_in(vtree, corpus.tree(id as usize), ws);
                self.build_ted += 1;
                (run.distance, id)
            })
            .collect();
        dists.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        // Split at the median *index*, not the median value: value-based
        // partitioning makes no progress when distances tie (a cluster of
        // identical trees would recurse one element at a time, O(n) deep
        // and O(n²) build distances), while the index split halves the
        // subset unconditionally — depth stays O(log n). Both sides'
        // invariants are non-strict (`≤ mu` / `≥ mu`), which the
        // traversal's exclusion rules already accommodate.
        let mid = (dists.len() - 1) / 2;
        let mu = dists[mid].0;
        let mut inside: Vec<u32> = dists[..=mid].iter().map(|d| d.1).collect();
        let mut outside: Vec<u32> = dists[mid + 1..].iter().map(|d| d.1).collect();
        // Subsets stay id-sorted so vantage choice is order-independent.
        inside.sort_unstable();
        outside.sort_unstable();
        // Reserve this node's slot before recursing (children follow it).
        let idx = self.nodes.len() as u32;
        self.nodes.push(VpNode::Inner {
            id: vantage,
            mu,
            left: NONE_IDX,
            right: NONE_IDX,
        });
        let left = self.split(inside, corpus, verifier, ws, leaf);
        let right = self.split(outside, corpus, verifier, ws, leaf);
        if let VpNode::Inner {
            left: l, right: r, ..
        } = &mut self.nodes[idx as usize]
        {
            *l = left;
            *r = right;
        }
        idx
    }

    /// Records an insert since build (overflow, scanned linearly).
    pub fn note_insert(&mut self, id: usize) {
        self.pending.push(id as u32);
    }

    /// Records a removal since build: a pending id is simply dropped, a
    /// built id becomes a tombstone whose entry is retained for routing.
    pub fn note_remove(&mut self, id: usize, entry: Arc<CorpusEntry<L>>) {
        let id = id as u32;
        if let Some(pos) = self.pending.iter().position(|&p| p == id) {
            self.pending.remove(pos);
        } else {
            self.dead.insert(id, entry);
        }
    }

    /// Pending inserts plus tombstones — the churn the rebuild threshold
    /// compares against the built size.
    pub fn churn(&self) -> usize {
        self.pending.len() + self.dead.len()
    }

    /// Whether accumulated churn exceeds `fraction × max(built, 1)` and
    /// the tree should be dropped for a lazy rebuild.
    pub fn should_rebuild(&self, fraction: f64) -> bool {
        self.churn() as f64 > fraction * (self.built.max(1) as f64)
    }

    /// Live count at build time.
    pub fn built_len(&self) -> usize {
        self.built
    }

    /// Ids inserted since build (the linear overflow).
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Built ids tombstoned since build.
    pub fn tombstones(&self) -> usize {
        self.dead.len()
    }

    /// Exact TED computations the build spent.
    pub fn build_ted(&self) -> usize {
        self.build_ted
    }

    #[inline]
    fn alive(&self, id: u32) -> bool {
        !self.dead.contains_key(&id)
    }

    /// The entry behind `id` — live from the corpus, or the retained
    /// corpse of a tombstoned vantage.
    #[inline]
    fn entry_of<'a>(&'a self, corpus: &'a TreeCorpus<L>, id: u32) -> &'a CorpusEntry<L> {
        match self.dead.get(&id) {
            Some(corpse) => corpse.as_ref(),
            None => corpus.entry(id as usize),
        }
    }

    /// All live ids with `TED(query, tree) < tau`, appended to `out`
    /// (unsorted). `min_id` restricts *reporting* (not routing) to ids
    /// strictly greater — the self-join's each-pair-once rule.
    #[allow(clippy::too_many_arguments)]
    pub fn range(
        &self,
        corpus: &TreeCorpus<L>,
        query: &Tree<L>,
        qsketch: &TreeSketch<L>,
        tau: f64,
        min_id: Option<usize>,
        pipeline: &FilterPipeline<L>,
        verifier: &dyn Verifier<L>,
        ws: &mut Workspace,
        out: &mut Vec<Neighbor>,
        stats: &mut SearchStats,
    ) {
        debug_assert!(tau.is_finite() && tau > 0.0);
        let reportable = |id: u32| min_id.map_or(true, |m| id as usize > m);
        let mut metric = MetricStats::default();
        // (node, lower bound on every distance within the region) —
        // checked at pop time because an ancestor's routing distance can
        // prove a whole region out before any of it is visited.
        let mut stack: Vec<(u32, f64)> = Vec::new();
        if self.root != NONE_IDX {
            stack.push((self.root, 0.0));
        }
        while let Some((node, lo)) = stack.pop() {
            if lo >= tau {
                continue;
            }
            match self.nodes[node as usize] {
                VpNode::Leaf { start, len } => {
                    for &id in &self.bucket[start as usize..(start + len) as usize] {
                        metric.nodes_visited += 1;
                        if !self.alive(id) || !reportable(id) {
                            continue;
                        }
                        let sketch = corpus.sketch(id as usize);
                        if let Some(stage) = pipeline.prune_stage(qsketch, sketch, tau) {
                            stats.filter.record(stage, 1);
                            continue;
                        }
                        if let Some(d) = verify_bounded_into(
                            verifier,
                            query,
                            corpus.tree(id as usize),
                            tau,
                            ws,
                            stats,
                        ) {
                            if d < tau {
                                out.push(Neighbor {
                                    id: id as usize,
                                    distance: d,
                                });
                            }
                        }
                    }
                }
                VpNode::Inner {
                    id,
                    mu,
                    left,
                    right,
                } => {
                    metric.nodes_visited += 1;
                    let ventry = self.entry_of(corpus, id);
                    // Bound-guided routing: a cheap proof that
                    // d(q, vantage) ≥ mu + tau settles everything — the
                    // vantage cannot match, the inside branch is
                    // prunable, the outside branch is mandatory — without
                    // paying for the exact distance.
                    if pipeline
                        .prune_stage(qsketch, ventry.sketch(), mu + tau)
                        .is_some()
                    {
                        metric.routing_skipped += 1;
                        if right != NONE_IDX {
                            stack.push((right, lo));
                        }
                        continue;
                    }
                    let run = verifier.verify_in(query, ventry.tree(), ws);
                    metric.routing_ted += 1;
                    stats.verified += 1;
                    stats.subproblems += run.subproblems;
                    stats.ted_time += run.strategy_time + run.distance_time;
                    let d = run.distance;
                    if d < tau && self.alive(id) && reportable(id) {
                        out.push(Neighbor {
                            id: id as usize,
                            distance: d,
                        });
                    }
                    if right != NONE_IDX {
                        stack.push((right, lo.max(mu - d)));
                    }
                    if left != NONE_IDX {
                        stack.push((left, lo.max(d - mu)));
                    }
                }
            }
        }
        // The overflow: everything inserted since build, scanned like one
        // linear leaf.
        for &id in &self.pending {
            metric.pending_scanned += 1;
            if !reportable(id) {
                continue;
            }
            let sketch = corpus.sketch(id as usize);
            if let Some(stage) = pipeline.prune_stage(qsketch, sketch, tau) {
                stats.filter.record(stage, 1);
                continue;
            }
            if let Some(d) =
                verify_bounded_into(verifier, query, corpus.tree(id as usize), tau, ws, stats)
            {
                if d < tau {
                    out.push(Neighbor {
                        id: id as usize,
                        distance: d,
                    });
                }
            }
        }
        stats.metric.merge(&metric);
    }

    /// The `k` nearest live trees by `(distance, id)` — identical to the
    /// linear best-first scan, returned sorted.
    #[allow(clippy::too_many_arguments)]
    pub fn top_k(
        &self,
        corpus: &TreeCorpus<L>,
        query: &Tree<L>,
        qsketch: &TreeSketch<L>,
        k: usize,
        pipeline: &FilterPipeline<L>,
        verifier: &dyn Verifier<L>,
        ws: &mut Workspace,
        stats: &mut SearchStats,
    ) -> Vec<Neighbor> {
        debug_assert!(k > 0);
        let mut metric = MetricStats::default();
        // Max-heap on (distance, id): the top is the worst of the best k.
        let k_eff = k.min(corpus.len());
        let mut heap: BinaryHeap<(OrdF64, usize)> = BinaryHeap::with_capacity(k_eff + 1);

        // The overflow first: it seeds a finite radius before the
        // traversal starts pruning.
        for &id in &self.pending {
            metric.pending_scanned += 1;
            let r = Self::radius(&heap, k_eff);
            if r.is_finite() {
                if let Some(stage) =
                    pipeline.prune_stage_strict(qsketch, corpus.sketch(id as usize), r)
                {
                    stats.filter.record(stage, 1);
                    continue;
                }
            }
            // The current radius is the budget: a candidate proven beyond
            // the k-th distance would be popped right back out, so it is
            // simply not admitted (ties at the radius come back `Exact`
            // and still win the id tie-break) — the heap evolves exactly
            // as on the unbudgeted path.
            if let Some(d) =
                verify_bounded_into(verifier, query, corpus.tree(id as usize), r, ws, stats)
            {
                Self::admit(&mut heap, k_eff, d, id as usize);
            }
        }

        let mut stack: Vec<(u32, f64)> = Vec::new();
        if self.root != NONE_IDX {
            stack.push((self.root, 0.0));
        }
        while let Some((node, lo)) = stack.pop() {
            let r = Self::radius(&heap, k_eff);
            // Every distance in this region is at least `lo`; once the
            // heap is full, a region strictly beyond the current radius
            // cannot contribute (ties on the k-th distance lose on id
            // only against equal distances, never against `> r`).
            if r.is_finite() && lo > r {
                continue;
            }
            match self.nodes[node as usize] {
                VpNode::Leaf { start, len } => {
                    for &id in &self.bucket[start as usize..(start + len) as usize] {
                        metric.nodes_visited += 1;
                        if !self.alive(id) {
                            continue;
                        }
                        let r = Self::radius(&heap, k_eff);
                        if r.is_finite() {
                            if let Some(stage) =
                                pipeline.prune_stage_strict(qsketch, corpus.sketch(id as usize), r)
                            {
                                stats.filter.record(stage, 1);
                                continue;
                            }
                        }
                        if let Some(d) = verify_bounded_into(
                            verifier,
                            query,
                            corpus.tree(id as usize),
                            r,
                            ws,
                            stats,
                        ) {
                            Self::admit(&mut heap, k_eff, d, id as usize);
                        }
                    }
                }
                VpNode::Inner {
                    id,
                    mu,
                    left,
                    right,
                } => {
                    metric.nodes_visited += 1;
                    let ventry = self.entry_of(corpus, id);
                    let r = Self::radius(&heap, k_eff);
                    // Bound-guided routing, strict against the shrinking
                    // radius: a proof of d > mu + r rules the vantage and
                    // the whole inside branch out and mandates outside.
                    if r.is_finite()
                        && pipeline
                            .prune_stage_strict(qsketch, ventry.sketch(), mu + r)
                            .is_some()
                    {
                        metric.routing_skipped += 1;
                        if right != NONE_IDX {
                            stack.push((right, lo));
                        }
                        continue;
                    }
                    let run = verifier.verify_in(query, ventry.tree(), ws);
                    metric.routing_ted += 1;
                    stats.verified += 1;
                    stats.subproblems += run.subproblems;
                    stats.ted_time += run.strategy_time + run.distance_time;
                    let d = run.distance;
                    if self.alive(id) {
                        Self::admit(&mut heap, k_eff, d, id as usize);
                    }
                    // Near branch last → popped (and searched) first, so
                    // the radius shrinks before the far branch's pop-time
                    // check runs.
                    let lo_in = lo.max(d - mu);
                    let lo_out = lo.max(mu - d);
                    if d < mu {
                        if right != NONE_IDX {
                            stack.push((right, lo_out));
                        }
                        if left != NONE_IDX {
                            stack.push((left, lo_in));
                        }
                    } else {
                        if left != NONE_IDX {
                            stack.push((left, lo_in));
                        }
                        if right != NONE_IDX {
                            stack.push((right, lo_out));
                        }
                    }
                }
            }
        }
        stats.metric.merge(&metric);
        heap.into_sorted_vec()
            .into_iter()
            .map(|(OrdF64(distance), id)| Neighbor { id, distance })
            .collect()
    }

    /// The current search radius: the k-th best distance once the heap is
    /// full, unbounded before.
    fn radius(heap: &BinaryHeap<(OrdF64, usize)>, k_eff: usize) -> f64 {
        if heap.len() == k_eff {
            heap.peek()
                .map(|&(OrdF64(d), _)| d)
                .unwrap_or(f64::INFINITY)
        } else {
            f64::INFINITY
        }
    }

    /// Folds one verified candidate into the best-k heap.
    fn admit(heap: &mut BinaryHeap<(OrdF64, usize)>, k_eff: usize, distance: f64, id: usize) {
        heap.push((OrdF64(distance), id));
        if heap.len() > k_eff {
            heap.pop();
        }
    }
}
