//! Structure-sensitive candidate generation.
//!
//! The engine's original candidate source is the **linear size window**:
//! a contiguous slice of the size-sorted corpus view that the size lower
//! bound cannot prune, scanned candidate by candidate through the filter
//! pipeline. That scan is O(live) per query no matter how selective the
//! query is. This module adds the two cooperating layers that push
//! selective queries below O(live):
//!
//! * [`pqgram`] — the index-side face of the serialized pq-gram profiles
//!   (`rted_core::pqgram`): per-tree gram multisets stored in every
//!   [`TreeSketch`](rted_core::bounds::TreeSketch), persisted by the
//!   corpus format, and evaluated as the pipeline's final, strongest
//!   stage. Profiles shrink the *survivor set* of whatever candidate
//!   source runs.
//! * [`metric`] — a vantage-point tree over the corpus under the exact
//!   (unit-cost) tree edit distance, which is a metric. It *replaces* the
//!   linear scan for `range`/`top_k`/`join` when enabled: triangle-
//!   inequality pruning discards whole subtrees of the corpus per routing
//!   distance, so the number of trees even *looked at* falls with the
//!   query's selectivity.
//!
//! The two layers cooperate: during metric traversal the filter pipeline
//! (pq-grams included) is consulted before every exact routing distance —
//! when a cheap bound already proves the vantage point is far, the exact
//! computation is skipped and the traversal descends with bound
//! information alone.
//!
//! [`MetricStats`] surfaces what the metric layer did for one query, next
//! to the familiar per-stage prune counters.

pub mod metric;
pub mod pqgram;

pub use metric::{MetricConfig, VpTree};

/// Per-query counters of the metric-tree candidate generator. All zero
/// when a query ran on the linear scan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricStats {
    /// Vantage points and leaf-bucket entries the traversal examined.
    pub nodes_visited: usize,
    /// Exact TED computations spent on routing decisions (distances to
    /// vantage points). These double as verification for the vantage
    /// point itself, and are included in `SearchStats::verified`.
    pub routing_ted: usize,
    /// Vantage points whose exact routing distance was skipped because a
    /// cheap pipeline bound already settled every traversal decision.
    pub routing_skipped: usize,
    /// Overflow (post-build insert) entries scanned linearly.
    pub pending_scanned: usize,
}

impl MetricStats {
    /// Accumulates another query's counters (the join path runs one
    /// metric range query per corpus tree).
    pub fn merge(&mut self, other: &MetricStats) {
        self.nodes_visited += other.nodes_visited;
        self.routing_ted += other.routing_ted;
        self.routing_skipped += other.routing_skipped;
        self.pending_scanned += other.pending_scanned;
    }
}

/// A point-in-time view of an index's metric-tree state — what a serving
/// layer's `status` report surfaces.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricSnapshot {
    /// Whether metric candidate generation is enabled on the index.
    pub enabled: bool,
    /// Ids the current tree was built over (0 when not yet built — the
    /// tree is built lazily by the first eligible query — or after a
    /// churn-triggered drop).
    pub built: usize,
    /// Post-build inserts in the linear overflow.
    pub pending: usize,
    /// Built ids tombstoned since build.
    pub tombstones: usize,
    /// Exact TED computations the current build spent.
    pub build_ted: usize,
}
