//! The versioned binary on-disk corpus format.
//!
//! A corpus file is a fixed header followed by a sequence of self-checking
//! segments, replayed in order on load:
//!
//! ```text
//! file    := header segment*
//! header  := magic("RTEDIDX\0") version:u32 flags:u32
//!            next_id:u64 live:u64 reserved:u64 checksum:u64
//! segment := kind:u32 payload_len:u64 checksum:u64 payload
//! ```
//!
//! All integers are little-endian. The header checksum is FNV-1a 64 over
//! the 40 bytes preceding it; a segment checksum covers its kind, length
//! and payload, so any single corrupted byte anywhere in the file is
//! detected (each FNV-1a step `h ← (h ⊕ b)·p` is bijective in `h` and
//! injective in `b`, so one flipped byte always changes the digest).
//!
//! Two segment kinds exist:
//!
//! * **trees** ([`SEG_TREES`]) — a shared string table (labels interned in
//!   first-occurrence order) followed by tree records. Each record stores
//!   the tree as flat postorder arrays — per-node label ids and degrees,
//!   the RTED-native encoding (every decomposition strategy in the paper
//!   operates on postorder/left-path arrays) — plus its precomputed
//!   [`TreeSketch`] (max depth, leaf count, histogram as `(label_id,
//!   count)` pairs sorted by id, and — when the header's
//!   [`FLAG_PQ_PROFILES`] bit is set — the serialized pq-gram profile:
//!   `p`, `q`, then the two sorted gram-hash arrays), so loading **skips
//!   the O(n) per-tree analysis** entirely.
//! * **tombstones** ([`SEG_TOMBSTONES`]) — ids removed since the previous
//!   segment. Ids are stable across removals and compaction (see
//!   [`crate::corpus`]), which is what lets updates be appended instead of
//!   rewriting the file — see [`crate::store`].
//!
//! # Versions and feature flags
//!
//! This build writes format version 2 and still reads version 1 (the
//! PR 2-era layout): v1 records carry no pq-gram data, so their profiles
//! are recomputed during decode and the corpus opens at full filter
//! strength. The header's `flags` word is a **feature-flags** field:
//! each bit declares a record-layout extension (bit 0 =
//! [`FLAG_PQ_PROFILES`]), so future sketch additions claim a fresh bit
//! instead of a version bump, and a reader that meets an unknown bit
//! rejects the file with a clear error instead of mis-framing records.
//!
//! Encoding is canonical: for a given corpus state, [`encode_corpus`]
//! always produces the same bytes (string table in first-occurrence order,
//! trees in ascending id order, histograms sorted by label id), so
//! save→load→save is byte-identical — a property the test-suite checks.
//!
//! # Zero-copy loads
//!
//! [`CorpusFile::corpus`] reconstructs a `TreeCorpus<&str>` whose labels
//! **borrow** from the loaded byte buffer — no label bytes are copied or
//! allocated. [`CorpusFile::corpus_owned`] produces the independent
//! `TreeCorpus<String>` the long-lived [`crate::TreeIndex`] engine needs.
//!
//! # Trust model
//!
//! Checksums make accidental corruption (truncation, bit rot, concurrent
//! writers) detectable, and every structural invariant is re-validated on
//! load — malformed input yields a [`PersistError`], never a panic or a
//! silently wrong corpus. The numeric *sketch* fields are trusted as
//! written (verifying them would re-run the analysis the format exists to
//! skip); a file from a buggy or hostile writer can thus carry sketches
//! that make filters unsound, exactly as a hostile in-memory `TreeSketch`
//! would.

use crate::corpus::{CorpusEntry, TreeCorpus};
use rted_core::bounds::{LabelHistogram, TreeSketch};
use rted_core::pqgram::{PqGramProfile, PqParams, PqScratch};
use rted_tree::Tree;
use std::collections::HashMap;

/// First eight bytes of every corpus file.
pub const MAGIC: [u8; 8] = *b"RTEDIDX\0";
/// The format version this build writes. Version 2 added the feature-flags
/// discipline and per-tree pq-gram profiles (gated by
/// [`FLAG_PQ_PROFILES`]); version-1 files are still read, with profiles
/// recomputed on load — see [`MIN_FORMAT_VERSION`].
pub const FORMAT_VERSION: u32 = 2;
/// The oldest format version this build still reads.
pub const MIN_FORMAT_VERSION: u32 = 1;
/// Header feature flag: tree records carry serialized pq-gram profiles
/// (p, q, and the two sorted gram-hash arrays) after their histogram.
/// Feature bits describe *record layout extensions*, so future sketch
/// additions claim a new bit instead of a new version; readers reject
/// unknown bits rather than mis-framing records.
pub const FLAG_PQ_PROFILES: u32 = 1 << 0;
/// Every feature flag this build understands.
pub const KNOWN_FLAGS: u32 = FLAG_PQ_PROFILES;
/// Size of the fixed file header in bytes.
pub const HEADER_LEN: usize = 48;
/// Size of a segment header (kind + payload length + checksum) in bytes.
pub const SEGMENT_HEADER_LEN: usize = 20;

/// Segment kind: tree records with a shared string table.
pub const SEG_TREES: u32 = 1;
/// Segment kind: removed tree ids.
pub const SEG_TOMBSTONES: u32 = 2;

/// FNV-1a 64-bit offset basis (the streaming digest's initial state).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Streaming FNV-1a 64 update: folds `bytes` into state `h`. Feeding two
/// slices in sequence equals hashing their concatenation, so callers never
/// need to copy bytes together just to checksum them.
fn fnv1a_update(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// FNV-1a 64-bit digest (the format's checksum function).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_update(FNV_OFFSET, bytes)
}

/// Errors loading or validating a corpus file. Every variant is a rejected
/// file — the loader never silently mis-reads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// Underlying I/O failure (message includes the path).
    Io(String),
    /// The file does not start with [`MAGIC`] — not a corpus file.
    BadMagic,
    /// The file's format version is not supported by this build.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
    /// A stored checksum does not match the recomputed digest.
    ChecksumMismatch {
        /// What the checksum covered (`"header"` or `"segment"`).
        what: &'static str,
        /// Checksum stored in the file.
        stored: u64,
        /// Checksum recomputed from the bytes.
        computed: u64,
    },
    /// The file ends before a declared structure is complete.
    Truncated {
        /// The structure that was cut short.
        context: &'static str,
    },
    /// A structural invariant is violated (duplicate id, dangling
    /// tombstone, malformed tree, live-count mismatch, ...).
    Corrupt(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(msg) => write!(f, "{msg}"),
            PersistError::BadMagic => write!(f, "not a corpus file (bad magic)"),
            PersistError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported corpus format version {found} (this build reads versions \
                 {MIN_FORMAT_VERSION}..={supported})"
            ),
            PersistError::ChecksumMismatch {
                what,
                stored,
                computed,
            } => write!(
                f,
                "{what} checksum mismatch (stored {stored:#018x}, computed {computed:#018x}) — file is corrupt"
            ),
            PersistError::Truncated { context } => {
                write!(f, "file truncated inside {context}")
            }
            PersistError::Corrupt(msg) => write!(f, "corrupt corpus file: {msg}"),
        }
    }
}

impl std::error::Error for PersistError {}

fn corrupt<T>(msg: impl Into<String>) -> Result<T, PersistError> {
    Err(PersistError::Corrupt(msg.into()))
}

/// The decoded fixed file header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Format version ([`MIN_FORMAT_VERSION`]..=[`FORMAT_VERSION`]).
    pub version: u32,
    /// Feature flags (always 0 in version 1; see [`FLAG_PQ_PROFILES`]).
    pub flags: u32,
    /// The id the next inserted tree will receive (ids are never reused).
    pub next_id: u64,
    /// Live tree count after replaying every segment.
    pub live: u64,
}

impl Header {
    /// Serializes the header, computing its checksum.
    pub fn encode(&self) -> [u8; HEADER_LEN] {
        let mut buf = [0u8; HEADER_LEN];
        buf[..8].copy_from_slice(&MAGIC);
        buf[8..12].copy_from_slice(&self.version.to_le_bytes());
        buf[12..16].copy_from_slice(&self.flags.to_le_bytes());
        buf[16..24].copy_from_slice(&self.next_id.to_le_bytes());
        buf[24..32].copy_from_slice(&self.live.to_le_bytes());
        // bytes 32..40 reserved (zero)
        let checksum = fnv1a(&buf[..40]);
        buf[40..48].copy_from_slice(&checksum.to_le_bytes());
        buf
    }

    /// Parses and validates the header at the start of `buf`.
    pub fn decode(buf: &[u8]) -> Result<Header, PersistError> {
        if buf.len() < HEADER_LEN {
            if buf.len() >= MAGIC.len() && buf[..MAGIC.len()] != MAGIC {
                return Err(PersistError::BadMagic);
            }
            return Err(PersistError::Truncated { context: "header" });
        }
        if buf[..8] != MAGIC {
            return Err(PersistError::BadMagic);
        }
        let stored = u64::from_le_bytes(buf[40..48].try_into().unwrap());
        let computed = fnv1a(&buf[..40]);
        if stored != computed {
            return Err(PersistError::ChecksumMismatch {
                what: "header",
                stored,
                computed,
            });
        }
        let version = u32::from_le_bytes(buf[8..12].try_into().unwrap());
        if !(MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&version) {
            return Err(PersistError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let flags = u32::from_le_bytes(buf[12..16].try_into().unwrap());
        // Unknown feature bits mean the record layout has extensions this
        // build cannot frame: reject explicitly instead of mis-reading.
        // Version-1 writers always stamped 0, so any v1 flag is corruption.
        let known = if version == 1 { 0 } else { KNOWN_FLAGS };
        if flags & !known != 0 {
            return corrupt(format!(
                "unknown feature flag bits {:#010x} for format version {version} \
                 (file written by a newer build?)",
                flags & !known
            ));
        }
        Ok(Header {
            version,
            flags,
            next_id: u64::from_le_bytes(buf[16..24].try_into().unwrap()),
            live: u64::from_le_bytes(buf[24..32].try_into().unwrap()),
        })
    }

    /// Whether tree records in this file carry serialized pq-gram
    /// profiles ([`FLAG_PQ_PROFILES`]).
    pub fn has_pq_profiles(&self) -> bool {
        self.flags & FLAG_PQ_PROFILES != 0
    }
}

/// Bounds-checked little-endian reader over a byte slice.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    /// Name of the structure being read, for truncation errors.
    context: &'static str,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8], context: &'static str) -> Self {
        Reader {
            buf,
            pos: 0,
            context,
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let slice = &self.buf[self.pos..end];
                self.pos = end;
                Ok(slice)
            }
            None => Err(PersistError::Truncated {
                context: self.context,
            }),
        }
    }

    fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Unread bytes — the upper bound any declared element count can
    /// honestly describe. Pre-allocations must be capped by this so a
    /// crafted count cannot force a huge allocation before the bounds
    /// checks reject it.
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Wraps a payload in a segment header (kind, length, checksum over all
/// three parts).
pub(crate) fn segment_bytes(kind: u32, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(SEGMENT_HEADER_LEN + payload.len());
    put_u32(&mut out, kind);
    put_u64(&mut out, payload.len() as u64);
    let digest = fnv1a_update(fnv1a_update(FNV_OFFSET, &out[..12]), payload);
    put_u64(&mut out, digest);
    out.extend_from_slice(payload);
    out
}

/// Encodes a version-2 trees segment (records carry pq-gram profiles) —
/// see [`trees_segment_with`].
pub(crate) fn trees_segment(entries: &[(u64, &CorpusEntry<String>)]) -> Vec<u8> {
    trees_segment_with(entries, true)
}

/// Encodes a trees segment (string table + records) for `entries`, which
/// must be in ascending id order for canonical output. With `profiles`
/// false the record layout is the version-1 one (no pq-gram data) — the
/// legacy writer kept for fixtures and compatibility tests.
pub(crate) fn trees_segment_with<'a>(
    entries: &[(u64, &'a CorpusEntry<String>)],
    profiles: bool,
) -> Vec<u8> {
    // Intern labels in first-occurrence order (trees in id order, nodes in
    // postorder) — deterministic for a given corpus state.
    let mut table: Vec<&'a str> = Vec::new();
    let mut label_ids: HashMap<&'a str, u32> = HashMap::new();
    for (_, entry) in entries {
        let tree = entry.tree();
        for v in tree.nodes() {
            let label = tree.label(v).as_str();
            if !label_ids.contains_key(label) {
                label_ids.insert(label, table.len() as u32);
                table.push(label);
            }
        }
    }

    let mut payload = Vec::new();
    put_u32(&mut payload, table.len() as u32);
    for label in &table {
        put_u32(&mut payload, label.len() as u32);
        payload.extend_from_slice(label.as_bytes());
    }

    put_u32(&mut payload, entries.len() as u32);
    for &(id, entry) in entries {
        let tree = entry.tree();
        let sketch = entry.sketch();
        put_u64(&mut payload, id);
        put_u32(&mut payload, tree.len() as u32);
        for v in tree.nodes() {
            put_u32(&mut payload, label_ids[tree.label(v).as_str()]);
        }
        for d in tree.postorder_degrees() {
            put_u32(&mut payload, d);
        }
        put_u32(&mut payload, sketch.max_depth);
        put_u32(&mut payload, sketch.leaves as u32);
        // Histogram sorted by label id — the canonical order (HashMap
        // iteration order would break byte-identical re-encoding).
        let mut hist: Vec<(u32, u32)> = sketch
            .histogram
            .counts()
            .map(|(label, count)| (label_ids[label.as_str()], count))
            .collect();
        hist.sort_unstable();
        put_u32(&mut payload, hist.len() as u32);
        for (label_id, count) in hist {
            put_u32(&mut payload, label_id);
            put_u32(&mut payload, count);
        }
        if profiles {
            // pq-gram profile: params, then the two sorted gram arrays.
            // Lengths are not stored — they are determined by the node
            // count and the params (n + p − 1 / n + q − 1).
            let pq = &sketch.pq;
            put_u32(&mut payload, pq.params().p);
            put_u32(&mut payload, pq.params().q);
            for &g in pq.pre_grams() {
                put_u64(&mut payload, g);
            }
            for &g in pq.post_grams() {
                put_u64(&mut payload, g);
            }
        }
    }
    segment_bytes(SEG_TREES, &payload)
}

/// Encodes a tombstones segment for the given removed ids.
pub(crate) fn tombstones_segment(ids: &[u64]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(4 + 8 * ids.len());
    put_u32(&mut payload, ids.len() as u32);
    for &id in ids {
        put_u64(&mut payload, id);
    }
    segment_bytes(SEG_TOMBSTONES, &payload)
}

/// Serializes a corpus as a complete file image: header plus a single
/// trees segment holding every live entry. This is the canonical (compact)
/// encoding — re-encoding a loaded corpus reproduces it byte for byte.
/// Writes the current [`FORMAT_VERSION`] with [`FLAG_PQ_PROFILES`] set.
pub fn encode_corpus(corpus: &TreeCorpus<String>) -> Vec<u8> {
    encode_corpus_with(corpus, FORMAT_VERSION)
}

/// [`encode_corpus`] in the legacy version-1 layout (no feature flags, no
/// stored pq-gram profiles — loaders recompute them). Kept so tests and
/// the roundtrip CI script can fabricate PR 2-era files and prove the
/// v1 → v2 upgrade path forever.
pub fn encode_corpus_v1(corpus: &TreeCorpus<String>) -> Vec<u8> {
    encode_corpus_with(corpus, 1)
}

fn encode_corpus_with(corpus: &TreeCorpus<String>, version: u32) -> Vec<u8> {
    let profiles = version >= 2;
    let header = Header {
        version,
        flags: if profiles { FLAG_PQ_PROFILES } else { 0 },
        next_id: corpus.id_bound() as u64,
        live: corpus.len() as u64,
    };
    let mut out = header.encode().to_vec();
    if !corpus.is_empty() {
        let entries: Vec<_> = corpus
            .iter()
            .map(|(id, entry)| (id as u64, entry))
            .collect();
        out.extend_from_slice(&trees_segment_with(&entries, profiles));
    }
    out
}

/// Per-id slot table the segment decoders replay into.
///
/// In strict mode every id must fall below the header's `next_id`; in grow
/// mode (tail salvage, see [`salvage_corpus`]) the table expands to hold
/// ids a *stale* header does not cover yet — the signature state of a
/// crash between a segment append and its header rewrite.
struct SlotTable<L> {
    slots: Vec<Option<CorpusEntry<L>>>,
    grow: bool,
}

impl<L> SlotTable<L> {
    fn new(reserved: usize, grow: bool) -> Result<Self, PersistError> {
        // One slot per ever-assigned id is the corpus's own in-memory
        // layout (removed ids stay reserved), so the allocation is
        // legitimate for any honest file and cannot be bounded by the file
        // size (compaction makes next_id independent of it). `try_reserve`
        // converts direct allocation failure into an error instead of an
        // abort.
        let mut slots: Vec<Option<CorpusEntry<L>>> = Vec::new();
        slots.try_reserve_exact(reserved).map_err(|_| {
            PersistError::Corrupt(format!("cannot allocate id table for next_id {reserved}"))
        })?;
        slots.resize_with(reserved, || None);
        Ok(SlotTable { slots, grow })
    }

    fn is_live(&self, id: usize) -> bool {
        self.slots.get(id).is_some_and(|s| s.is_some())
    }

    /// Validates that a tree record may claim `id` (called during the
    /// parse phase, before anything is committed).
    fn check_tree_id(&self, id: usize) -> Result<(), PersistError> {
        if id >= self.slots.len() && !self.grow {
            return corrupt(format!("tree id {id} exceeds header next_id"));
        }
        if id >= u32::MAX as usize {
            return corrupt(format!("tree id {id} exceeds the id space"));
        }
        Ok(())
    }

    /// Grows the table to cover `max_id` (grow mode only; a no-op when it
    /// already does). Runs **before** any record of a segment is
    /// committed, so allocation failure leaves the table untouched.
    fn reserve_through(&mut self, max_id: usize) -> Result<(), PersistError> {
        if max_id < self.slots.len() {
            return Ok(());
        }
        debug_assert!(self.grow, "check_tree_id bounds ids in strict mode");
        let extra = max_id + 1 - self.slots.len();
        self.slots.try_reserve(extra).map_err(|_| {
            PersistError::Corrupt(format!("cannot allocate id table through id {max_id}"))
        })?;
        self.slots.resize_with(max_id + 1, || None);
        Ok(())
    }
}

/// Decodes one trees-segment payload, materializing labels through `make`
/// (identity for the zero-copy path, `to_string` for the owned path).
///
/// Application is **atomic**: the whole payload is parsed and validated
/// before the first slot is written, so a payload that fails mid-way
/// leaves `slots` exactly as it was — which is what lets the salvage path
/// keep the state of the last good segment when a later one is torn.
fn decode_trees_payload<'a, L, F>(
    payload: &'a [u8],
    make: &F,
    slots: &mut SlotTable<L>,
    profiles: bool,
) -> Result<(), PersistError>
where
    L: Eq + std::hash::Hash + Clone,
    F: Fn(&'a str) -> L,
{
    // Scratch for recomputing pq-gram profiles of version-1 records (one
    // arena reused across every tree of the segment).
    let mut pq_scratch = PqScratch::default();
    let mut r = Reader::new(payload, "trees segment");
    let table_len = r.u32()? as usize;
    // Each table entry occupies ≥ 4 payload bytes (its length prefix), so
    // cap the pre-allocation by what the payload can actually hold — a
    // crafted count must not force a many-GB allocation before the
    // per-entry reads reject it.
    let mut table: Vec<&'a str> = Vec::with_capacity(table_len.min(r.remaining() / 4));
    for _ in 0..table_len {
        let len = r.u32()? as usize;
        let bytes = r.take(len)?;
        let label = std::str::from_utf8(bytes)
            .map_err(|_| PersistError::Corrupt("string table entry is not UTF-8".into()))?;
        table.push(label);
    }
    let tree_count = r.u32()?;
    let mut batch: Vec<(usize, CorpusEntry<L>)> = Vec::new();
    // O(1) in-batch duplicate detection: slot occupancy only covers ids
    // from *earlier* segments (this batch commits after the full parse),
    // and a linear rescan of the batch would make loading a compacted
    // million-tree segment quadratic.
    let mut batch_ids: std::collections::HashSet<usize> = std::collections::HashSet::new();
    for _ in 0..tree_count {
        let id = r.u64()? as usize;
        let n = r.u32()? as usize;
        if n == 0 {
            return corrupt(format!("tree {id} has zero nodes"));
        }
        // Each node occupies ≥ 8 payload bytes (label id + degree): a node
        // count the remaining payload cannot hold is rejected before any
        // n-sized allocation, so a crafted `n` cannot force an abort.
        if n > r.remaining() / 8 {
            return corrupt(format!(
                "tree {id} claims {n} nodes but only {} payload bytes remain",
                r.remaining()
            ));
        }
        let mut labels: Vec<L> = Vec::with_capacity(n);
        for _ in 0..n {
            let label_id = r.u32()? as usize;
            let label = *table.get(label_id).ok_or_else(|| {
                PersistError::Corrupt(format!(
                    "tree {id} references label id {label_id} outside the string table"
                ))
            })?;
            labels.push(make(label));
        }
        let mut degrees: Vec<u32> = Vec::with_capacity(n);
        for _ in 0..n {
            degrees.push(r.u32()?);
        }
        let tree = Tree::from_postorder_degrees(labels, &degrees)
            .map_err(|e| PersistError::Corrupt(format!("tree {id}: {e}")))?;

        let max_depth = r.u32()?;
        let leaves = r.u32()? as usize;
        if leaves > n {
            return corrupt(format!(
                "tree {id}: sketch claims {leaves} leaves in {n} nodes"
            ));
        }
        let hist_len = r.u32()? as usize;
        let mut pairs: Vec<(L, u32)> = Vec::with_capacity(hist_len.min(n));
        for _ in 0..hist_len {
            let label_id = r.u32()? as usize;
            let count = r.u32()?;
            let label = *table.get(label_id).ok_or_else(|| {
                PersistError::Corrupt(format!(
                    "tree {id} histogram references label id {label_id} outside the string table"
                ))
            })?;
            pairs.push((make(label), count));
        }
        let histogram = LabelHistogram::from_counts(pairs);
        if histogram.size() != n {
            return corrupt(format!(
                "tree {id}: histogram covers {} nodes, tree has {n}",
                histogram.size()
            ));
        }
        let pq = if profiles {
            let p = r.u32()?;
            let q = r.u32()?;
            if p == 0 || q == 0 {
                return corrupt(format!(
                    "tree {id}: pq-gram params must be >= 1, got ({p},{q})"
                ));
            }
            let pre_len = n + p as usize - 1;
            let post_len = n + q as usize - 1;
            // Each gram occupies 8 payload bytes: reject counts the
            // remaining payload cannot hold before any allocation, so a
            // crafted p/q cannot force an abort.
            if pre_len.saturating_add(post_len) > r.remaining() / 8 {
                return corrupt(format!(
                    "tree {id} claims {} pq-grams but only {} payload bytes remain",
                    pre_len + post_len,
                    r.remaining()
                ));
            }
            let mut pre: Vec<u64> = Vec::with_capacity(pre_len);
            for _ in 0..pre_len {
                pre.push(r.u64()?);
            }
            let mut post: Vec<u64> = Vec::with_capacity(post_len);
            for _ in 0..post_len {
                post.push(r.u64()?);
            }
            PqGramProfile::from_parts(PqParams::new(p, q), pre, post)
        } else {
            // Version-1 record: no stored profile — recompute it, so every
            // existing corpus file opens with full filter power.
            PqGramProfile::compute_in(&tree, PqParams::default(), &mut pq_scratch)
        };
        let sketch = TreeSketch::from_parts(n, max_depth, leaves, histogram, pq);

        slots.check_tree_id(id)?;
        if slots.is_live(id) || !batch_ids.insert(id) {
            return corrupt(format!("duplicate tree id {id}"));
        }
        batch.push((id, CorpusEntry::from_parts(tree, sketch)));
    }
    if !r.done() {
        return corrupt("trailing bytes after the last tree record".to_string());
    }
    // Commit phase: every record validated, grow once, then write slots.
    if let Some(max_id) = batch.iter().map(|&(id, _)| id).max() {
        slots.reserve_through(max_id)?;
    }
    for (id, entry) in batch {
        slots.slots[id] = Some(entry);
    }
    Ok(())
}

/// Decodes a tombstones-segment payload, vacating the named slots and
/// returning how many. Like [`decode_trees_payload`], application is
/// atomic: ids are parsed and validated first, vacated only once the
/// whole payload checks out.
fn decode_tombstones_payload<L>(
    payload: &[u8],
    slots: &mut SlotTable<L>,
) -> Result<usize, PersistError> {
    let mut r = Reader::new(payload, "tombstones segment");
    let count = r.u32()?;
    let mut batch: Vec<usize> = Vec::with_capacity((count as usize).min(r.remaining() / 8));
    let mut batch_ids: std::collections::HashSet<usize> = std::collections::HashSet::new();
    for _ in 0..count {
        let id = r.u64()? as usize;
        if id >= slots.slots.len() {
            return corrupt(format!("tombstone id {id} exceeds header next_id"));
        }
        if !slots.is_live(id) || !batch_ids.insert(id) {
            return corrupt(format!("tombstone for id {id}, which is not live"));
        }
        batch.push(id);
    }
    if !r.done() {
        return corrupt("trailing bytes after the last tombstone".to_string());
    }
    let count = batch.len();
    for id in batch {
        slots.slots[id] = None;
    }
    Ok(count)
}

/// One decoded-and-applied segment: where the next one starts, and how
/// many tombstone records this one carried.
struct SegmentInfo {
    end: usize,
    tombstones: usize,
}

/// Validates and applies the segment starting at `pos`: bounds, checksum,
/// then the kind-specific payload decoder. Thanks to the decoders'
/// parse-then-commit discipline, an `Err` leaves `slots` untouched.
fn decode_segment<'a, L, F>(
    buf: &'a [u8],
    pos: usize,
    make: &F,
    slots: &mut SlotTable<L>,
    profiles: bool,
) -> Result<SegmentInfo, PersistError>
where
    L: Eq + std::hash::Hash + Clone,
    F: Fn(&'a str) -> L,
{
    let rest = &buf[pos..];
    if rest.len() < SEGMENT_HEADER_LEN {
        return Err(PersistError::Truncated {
            context: "segment header",
        });
    }
    let kind = u32::from_le_bytes(rest[0..4].try_into().unwrap());
    let payload_len = u64::from_le_bytes(rest[4..12].try_into().unwrap());
    let stored = u64::from_le_bytes(rest[12..20].try_into().unwrap());
    let payload_len = usize::try_from(payload_len)
        .ok()
        .filter(|&l| l <= rest.len() - SEGMENT_HEADER_LEN)
        .ok_or(PersistError::Truncated {
            context: "segment payload",
        })?;
    let payload = &rest[SEGMENT_HEADER_LEN..SEGMENT_HEADER_LEN + payload_len];
    let computed = fnv1a_update(fnv1a_update(FNV_OFFSET, &rest[..12]), payload);
    if stored != computed {
        return Err(PersistError::ChecksumMismatch {
            what: "segment",
            stored,
            computed,
        });
    }
    let tombstones = match kind {
        SEG_TREES => {
            decode_trees_payload(payload, make, slots, profiles)?;
            0
        }
        SEG_TOMBSTONES => decode_tombstones_payload(payload, slots)?,
        other => return corrupt(format!("unknown segment kind {other}")),
    };
    Ok(SegmentInfo {
        end: pos + SEGMENT_HEADER_LEN + payload_len,
        tombstones,
    })
}

/// Counts of what a full strict decode replayed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileStats {
    /// Segments in the file.
    pub segments: usize,
    /// Tombstone records across all segments (the compaction backlog).
    pub tombstones: usize,
}

/// Decodes a full file image into a corpus, materializing labels via
/// `make`. Validates the header, every segment checksum, and every
/// structural invariant; checks the replayed live count against the
/// header.
fn decode_corpus_full<'a, L, F>(
    buf: &'a [u8],
    make: F,
) -> Result<(TreeCorpus<L>, FileStats), PersistError>
where
    L: Eq + std::hash::Hash + Clone,
    F: Fn(&'a str) -> L,
{
    let header = Header::decode(buf)?;
    if header.next_id >= u32::MAX as u64 {
        return corrupt(format!("next_id {} exceeds the id space", header.next_id));
    }
    let mut slots = SlotTable::new(header.next_id as usize, false)?;
    let mut stats = FileStats {
        segments: 0,
        tombstones: 0,
    };
    let mut pos = HEADER_LEN;
    while pos < buf.len() {
        let info = decode_segment(buf, pos, &make, &mut slots, header.has_pq_profiles())?;
        stats.segments += 1;
        stats.tombstones += info.tombstones;
        pos = info.end;
    }

    let live = slots.slots.iter().filter(|s| s.is_some()).count();
    if live as u64 != header.live {
        return corrupt(format!(
            "header records {} live trees but segments replay to {live} \
             (file written by an interrupted or conflicting writer?)",
            header.live
        ));
    }
    Ok((TreeCorpus::from_raw_parts(slots.slots), stats))
}

/// What a tail-scan salvage pass recovered from a (possibly torn) corpus
/// file. All-zero `bytes_dropped` with `header_rewritten == false` means
/// the file was already clean.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepairReport {
    /// Complete, valid segments recovered (replayed into the corpus).
    pub segments_recovered: usize,
    /// Bytes dropped from the torn tail (0 for a clean file).
    pub bytes_dropped: u64,
    /// Whether the stored header disagreed with the replayed segments —
    /// the stale-header signature of an interrupted update — and had to
    /// be recomputed from the recovered segments.
    pub header_rewritten: bool,
    /// Live trees after recovery.
    pub live: u64,
    /// Recovered id bound (never below the stored header's `next_id`, so
    /// ids that may exist in application references are never reissued).
    pub next_id: u64,
    /// When the store transparently rewrote an old-format file in the
    /// current [`FORMAT_VERSION`] on open, the version it came from.
    /// `None` for files that were already current (or for pure salvage,
    /// which never changes a file's format).
    pub upgraded_from: Option<u32>,
}

/// The outcome of [`salvage_corpus`]: the recovered corpus plus what a
/// repairer must write back to make the file clean again.
pub struct Salvage {
    /// The corpus replayed from the recovered segment prefix.
    pub corpus: TreeCorpus<String>,
    /// Length of the valid prefix (header + recovered segments); a
    /// repairer truncates the file to this length.
    pub keep_len: usize,
    /// Header consistent with the recovered segments; a repairer writes
    /// this over the stored one when `report.header_rewritten`.
    pub header: Header,
    /// Tombstone records within the recovered segments.
    pub tombstones: usize,
    /// What happened, for operator-facing reporting.
    pub report: RepairReport,
}

/// Tail-scans a corpus file image, salvaging the longest prefix of
/// complete, valid segments and dropping the torn tail — the recovery
/// mode for files left behind by a crash mid-append.
///
/// Unlike the strict loader this accepts ids beyond the stored header's
/// `next_id` (a crash *between* segment append and header rewrite leaves
/// a complete, durable segment the stale header does not acknowledge; its
/// data is valid and is kept) and recomputes the live count from the
/// replayed segments instead of trusting the header.
///
/// Errors only when the header itself is unusable (torn below
/// [`HEADER_LEN`], bad magic, checksum-corrupt, wrong version) — there is
/// no data to salvage without a header. Corruption *behind* a valid
/// prefix (e.g. a bit flip in an early segment) truncates from that point:
/// salvage is a prefix operation, never a skip-over-holes one, because
/// tombstones and superseding inserts only make sense replayed in order.
pub fn salvage_corpus(buf: &[u8]) -> Result<Salvage, PersistError> {
    let header = Header::decode(buf)?;
    if header.next_id >= u32::MAX as u64 {
        return corrupt(format!("next_id {} exceeds the id space", header.next_id));
    }
    let make = |s: &str| s.to_string();
    let mut slots = SlotTable::new(header.next_id as usize, true)?;
    let mut keep_len = HEADER_LEN;
    let mut segments = 0;
    let mut tombstones = 0;
    while keep_len < buf.len() {
        match decode_segment(buf, keep_len, &make, &mut slots, header.has_pq_profiles()) {
            Ok(info) => {
                segments += 1;
                tombstones += info.tombstones;
                keep_len = info.end;
            }
            // The torn tail: everything from here on is dropped. The
            // failed decode did not touch `slots` (parse-then-commit).
            Err(_) => break,
        }
    }
    let live = slots.slots.iter().filter(|s| s.is_some()).count() as u64;
    let next_id = slots.slots.len() as u64;
    // The recovered header keeps the file's own version and flags: the
    // surviving segments are still laid out in that version's record
    // format, and stamping a newer version over them would mis-frame
    // every record on the next load.
    let recovered = Header {
        version: header.version,
        flags: header.flags,
        next_id,
        live,
    };
    let report = RepairReport {
        segments_recovered: segments,
        bytes_dropped: (buf.len() - keep_len) as u64,
        header_rewritten: recovered != header,
        live,
        next_id,
        upgraded_from: None,
    };
    Ok(Salvage {
        corpus: TreeCorpus::from_raw_parts(slots.slots),
        keep_len,
        header: recovered,
        tombstones,
        report,
    })
}

/// A corpus file image loaded into memory, ready to be decoded.
///
/// Reading validates only the header; [`corpus`](Self::corpus) /
/// [`corpus_owned`](Self::corpus_owned) perform the full checksum and
/// structure validation as they decode.
pub struct CorpusFile {
    buf: Vec<u8>,
}

impl CorpusFile {
    /// Reads a corpus file from disk and validates its header.
    pub fn read(path: impl AsRef<std::path::Path>) -> Result<Self, PersistError> {
        let path = path.as_ref();
        let buf = std::fs::read(path)
            .map_err(|e| PersistError::Io(format!("cannot read {}: {e}", path.display())))?;
        Self::from_bytes(buf)
    }

    /// Wraps an in-memory file image, validating its header.
    pub fn from_bytes(buf: Vec<u8>) -> Result<Self, PersistError> {
        Header::decode(&buf)?;
        Ok(CorpusFile { buf })
    }

    /// The validated file header.
    pub fn header(&self) -> Header {
        Header::decode(&self.buf).expect("header validated on construction")
    }

    /// The raw file image.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Number of segments in the file (walks segment headers; does not
    /// validate payloads).
    pub fn segment_count(&self) -> usize {
        let mut count = 0;
        let mut pos = HEADER_LEN;
        while pos + SEGMENT_HEADER_LEN <= self.buf.len() {
            let len = u64::from_le_bytes(self.buf[pos + 4..pos + 12].try_into().unwrap()) as usize;
            pos = match pos.checked_add(SEGMENT_HEADER_LEN + len) {
                Some(next) if next <= self.buf.len() => next,
                _ => break,
            };
            count += 1;
        }
        count
    }

    /// Decodes the zero-copy corpus: labels are `&str` slices **borrowing
    /// from this file's buffer** — no label bytes are copied.
    pub fn corpus(&self) -> Result<TreeCorpus<&str>, PersistError> {
        decode_corpus_full(&self.buf, |s| s).map(|(c, _)| c)
    }

    /// Decodes an owned corpus (labels copied into `String`s), suitable
    /// for handing to a long-lived [`crate::TreeIndex`].
    pub fn corpus_owned(&self) -> Result<TreeCorpus<String>, PersistError> {
        decode_corpus_full(&self.buf, |s| s.to_string()).map(|(c, _)| c)
    }

    /// [`corpus_owned`](Self::corpus_owned) plus replay counters
    /// (segments, tombstone backlog) — what a store or serving layer
    /// needs to decide when compaction is worth it.
    pub fn corpus_owned_with_stats(&self) -> Result<(TreeCorpus<String>, FileStats), PersistError> {
        decode_corpus_full(&self.buf, |s| s.to_string())
    }

    /// Tail-scan salvage of this file image — see [`salvage_corpus`].
    pub fn salvage(&self) -> Result<Salvage, PersistError> {
        salvage_corpus(&self.buf)
    }
}
