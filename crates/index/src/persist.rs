//! The versioned binary on-disk corpus format.
//!
//! A corpus file is a fixed header followed by a sequence of self-checking
//! segments, replayed in order on load:
//!
//! ```text
//! file    := header segment*
//! header  := magic("RTEDIDX\0") version:u32 flags:u32
//!            next_id:u64 live:u64 reserved:u64 checksum:u64
//! segment := kind:u32 payload_len:u64 checksum:u64 payload
//! ```
//!
//! All integers are little-endian. The header checksum is FNV-1a 64 over
//! the 40 bytes preceding it; a segment checksum covers its kind, length
//! and payload, so any single corrupted byte anywhere in the file is
//! detected (each FNV-1a step `h ← (h ⊕ b)·p` is bijective in `h` and
//! injective in `b`, so one flipped byte always changes the digest).
//!
//! Two segment kinds exist:
//!
//! * **trees** ([`SEG_TREES`]) — a shared string table (labels interned in
//!   first-occurrence order) followed by tree records. Each record stores
//!   the tree as flat postorder arrays — per-node label ids and degrees,
//!   the RTED-native encoding (every decomposition strategy in the paper
//!   operates on postorder/left-path arrays) — plus its precomputed
//!   [`TreeSketch`] (max depth, leaf count, histogram as `(label_id,
//!   count)` pairs sorted by id), so loading **skips the O(n) per-tree
//!   analysis** entirely.
//! * **tombstones** ([`SEG_TOMBSTONES`]) — ids removed since the previous
//!   segment. Ids are stable across removals and compaction (see
//!   [`crate::corpus`]), which is what lets updates be appended instead of
//!   rewriting the file — see [`crate::store`].
//!
//! Encoding is canonical: for a given corpus state, [`encode_corpus`]
//! always produces the same bytes (string table in first-occurrence order,
//! trees in ascending id order, histograms sorted by label id), so
//! save→load→save is byte-identical — a property the test-suite checks.
//!
//! # Zero-copy loads
//!
//! [`CorpusFile::corpus`] reconstructs a `TreeCorpus<&str>` whose labels
//! **borrow** from the loaded byte buffer — no label bytes are copied or
//! allocated. [`CorpusFile::corpus_owned`] produces the independent
//! `TreeCorpus<String>` the long-lived [`crate::TreeIndex`] engine needs.
//!
//! # Trust model
//!
//! Checksums make accidental corruption (truncation, bit rot, concurrent
//! writers) detectable, and every structural invariant is re-validated on
//! load — malformed input yields a [`PersistError`], never a panic or a
//! silently wrong corpus. The numeric *sketch* fields are trusted as
//! written (verifying them would re-run the analysis the format exists to
//! skip); a file from a buggy or hostile writer can thus carry sketches
//! that make filters unsound, exactly as a hostile in-memory `TreeSketch`
//! would.

use crate::corpus::{CorpusEntry, TreeCorpus};
use rted_core::bounds::{LabelHistogram, TreeSketch};
use rted_tree::Tree;
use std::collections::HashMap;

/// First eight bytes of every corpus file.
pub const MAGIC: [u8; 8] = *b"RTEDIDX\0";
/// The (only) format version this build reads and writes.
pub const FORMAT_VERSION: u32 = 1;
/// Size of the fixed file header in bytes.
pub const HEADER_LEN: usize = 48;
/// Size of a segment header (kind + payload length + checksum) in bytes.
pub const SEGMENT_HEADER_LEN: usize = 20;

/// Segment kind: tree records with a shared string table.
pub const SEG_TREES: u32 = 1;
/// Segment kind: removed tree ids.
pub const SEG_TOMBSTONES: u32 = 2;

/// FNV-1a 64-bit offset basis (the streaming digest's initial state).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Streaming FNV-1a 64 update: folds `bytes` into state `h`. Feeding two
/// slices in sequence equals hashing their concatenation, so callers never
/// need to copy bytes together just to checksum them.
fn fnv1a_update(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// FNV-1a 64-bit digest (the format's checksum function).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_update(FNV_OFFSET, bytes)
}

/// Errors loading or validating a corpus file. Every variant is a rejected
/// file — the loader never silently mis-reads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// Underlying I/O failure (message includes the path).
    Io(String),
    /// The file does not start with [`MAGIC`] — not a corpus file.
    BadMagic,
    /// The file's format version is not supported by this build.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
    /// A stored checksum does not match the recomputed digest.
    ChecksumMismatch {
        /// What the checksum covered (`"header"` or `"segment"`).
        what: &'static str,
        /// Checksum stored in the file.
        stored: u64,
        /// Checksum recomputed from the bytes.
        computed: u64,
    },
    /// The file ends before a declared structure is complete.
    Truncated {
        /// The structure that was cut short.
        context: &'static str,
    },
    /// A structural invariant is violated (duplicate id, dangling
    /// tombstone, malformed tree, live-count mismatch, ...).
    Corrupt(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(msg) => write!(f, "{msg}"),
            PersistError::BadMagic => write!(f, "not a corpus file (bad magic)"),
            PersistError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported corpus format version {found} (this build reads version {supported})"
            ),
            PersistError::ChecksumMismatch {
                what,
                stored,
                computed,
            } => write!(
                f,
                "{what} checksum mismatch (stored {stored:#018x}, computed {computed:#018x}) — file is corrupt"
            ),
            PersistError::Truncated { context } => {
                write!(f, "file truncated inside {context}")
            }
            PersistError::Corrupt(msg) => write!(f, "corrupt corpus file: {msg}"),
        }
    }
}

impl std::error::Error for PersistError {}

fn corrupt<T>(msg: impl Into<String>) -> Result<T, PersistError> {
    Err(PersistError::Corrupt(msg.into()))
}

/// The decoded fixed file header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Format version ([`FORMAT_VERSION`]).
    pub version: u32,
    /// Reserved feature flags (0 in version 1).
    pub flags: u32,
    /// The id the next inserted tree will receive (ids are never reused).
    pub next_id: u64,
    /// Live tree count after replaying every segment.
    pub live: u64,
}

impl Header {
    /// Serializes the header, computing its checksum.
    pub fn encode(&self) -> [u8; HEADER_LEN] {
        let mut buf = [0u8; HEADER_LEN];
        buf[..8].copy_from_slice(&MAGIC);
        buf[8..12].copy_from_slice(&self.version.to_le_bytes());
        buf[12..16].copy_from_slice(&self.flags.to_le_bytes());
        buf[16..24].copy_from_slice(&self.next_id.to_le_bytes());
        buf[24..32].copy_from_slice(&self.live.to_le_bytes());
        // bytes 32..40 reserved (zero)
        let checksum = fnv1a(&buf[..40]);
        buf[40..48].copy_from_slice(&checksum.to_le_bytes());
        buf
    }

    /// Parses and validates the header at the start of `buf`.
    pub fn decode(buf: &[u8]) -> Result<Header, PersistError> {
        if buf.len() < HEADER_LEN {
            if buf.len() >= MAGIC.len() && buf[..MAGIC.len()] != MAGIC {
                return Err(PersistError::BadMagic);
            }
            return Err(PersistError::Truncated { context: "header" });
        }
        if buf[..8] != MAGIC {
            return Err(PersistError::BadMagic);
        }
        let stored = u64::from_le_bytes(buf[40..48].try_into().unwrap());
        let computed = fnv1a(&buf[..40]);
        if stored != computed {
            return Err(PersistError::ChecksumMismatch {
                what: "header",
                stored,
                computed,
            });
        }
        let version = u32::from_le_bytes(buf[8..12].try_into().unwrap());
        if version != FORMAT_VERSION {
            return Err(PersistError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        Ok(Header {
            version,
            flags: u32::from_le_bytes(buf[12..16].try_into().unwrap()),
            next_id: u64::from_le_bytes(buf[16..24].try_into().unwrap()),
            live: u64::from_le_bytes(buf[24..32].try_into().unwrap()),
        })
    }
}

/// Bounds-checked little-endian reader over a byte slice.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    /// Name of the structure being read, for truncation errors.
    context: &'static str,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8], context: &'static str) -> Self {
        Reader {
            buf,
            pos: 0,
            context,
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let slice = &self.buf[self.pos..end];
                self.pos = end;
                Ok(slice)
            }
            None => Err(PersistError::Truncated {
                context: self.context,
            }),
        }
    }

    fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Unread bytes — the upper bound any declared element count can
    /// honestly describe. Pre-allocations must be capped by this so a
    /// crafted count cannot force a huge allocation before the bounds
    /// checks reject it.
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Wraps a payload in a segment header (kind, length, checksum over all
/// three parts).
pub(crate) fn segment_bytes(kind: u32, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(SEGMENT_HEADER_LEN + payload.len());
    put_u32(&mut out, kind);
    put_u64(&mut out, payload.len() as u64);
    let digest = fnv1a_update(fnv1a_update(FNV_OFFSET, &out[..12]), payload);
    put_u64(&mut out, digest);
    out.extend_from_slice(payload);
    out
}

/// Encodes a trees segment (string table + records) for `entries`, which
/// must be in ascending id order for canonical output.
pub(crate) fn trees_segment<'a>(entries: &[(u64, &'a CorpusEntry<String>)]) -> Vec<u8> {
    // Intern labels in first-occurrence order (trees in id order, nodes in
    // postorder) — deterministic for a given corpus state.
    let mut table: Vec<&'a str> = Vec::new();
    let mut label_ids: HashMap<&'a str, u32> = HashMap::new();
    for (_, entry) in entries {
        let tree = entry.tree();
        for v in tree.nodes() {
            let label = tree.label(v).as_str();
            if !label_ids.contains_key(label) {
                label_ids.insert(label, table.len() as u32);
                table.push(label);
            }
        }
    }

    let mut payload = Vec::new();
    put_u32(&mut payload, table.len() as u32);
    for label in &table {
        put_u32(&mut payload, label.len() as u32);
        payload.extend_from_slice(label.as_bytes());
    }

    put_u32(&mut payload, entries.len() as u32);
    for &(id, entry) in entries {
        let tree = entry.tree();
        let sketch = entry.sketch();
        put_u64(&mut payload, id);
        put_u32(&mut payload, tree.len() as u32);
        for v in tree.nodes() {
            put_u32(&mut payload, label_ids[tree.label(v).as_str()]);
        }
        for d in tree.postorder_degrees() {
            put_u32(&mut payload, d);
        }
        put_u32(&mut payload, sketch.max_depth);
        put_u32(&mut payload, sketch.leaves as u32);
        // Histogram sorted by label id — the canonical order (HashMap
        // iteration order would break byte-identical re-encoding).
        let mut hist: Vec<(u32, u32)> = sketch
            .histogram
            .counts()
            .map(|(label, count)| (label_ids[label.as_str()], count))
            .collect();
        hist.sort_unstable();
        put_u32(&mut payload, hist.len() as u32);
        for (label_id, count) in hist {
            put_u32(&mut payload, label_id);
            put_u32(&mut payload, count);
        }
    }
    segment_bytes(SEG_TREES, &payload)
}

/// Encodes a tombstones segment for the given removed ids.
pub(crate) fn tombstones_segment(ids: &[u64]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(4 + 8 * ids.len());
    put_u32(&mut payload, ids.len() as u32);
    for &id in ids {
        put_u64(&mut payload, id);
    }
    segment_bytes(SEG_TOMBSTONES, &payload)
}

/// Serializes a corpus as a complete file image: header plus a single
/// trees segment holding every live entry. This is the canonical (compact)
/// encoding — re-encoding a loaded corpus reproduces it byte for byte.
pub fn encode_corpus(corpus: &TreeCorpus<String>) -> Vec<u8> {
    let header = Header {
        version: FORMAT_VERSION,
        flags: 0,
        next_id: corpus.id_bound() as u64,
        live: corpus.len() as u64,
    };
    let mut out = header.encode().to_vec();
    if !corpus.is_empty() {
        let entries: Vec<_> = corpus
            .iter()
            .map(|(id, entry)| (id as u64, entry))
            .collect();
        out.extend_from_slice(&trees_segment(&entries));
    }
    out
}

/// Decodes one trees-segment payload, materializing labels through `make`
/// (identity for the zero-copy path, `to_string` for the owned path).
fn decode_trees_payload<'a, L, F>(
    payload: &'a [u8],
    make: &F,
    slots: &mut [Option<CorpusEntry<L>>],
) -> Result<(), PersistError>
where
    L: Eq + std::hash::Hash + Clone,
    F: Fn(&'a str) -> L,
{
    let mut r = Reader::new(payload, "trees segment");
    let table_len = r.u32()? as usize;
    // Each table entry occupies ≥ 4 payload bytes (its length prefix), so
    // cap the pre-allocation by what the payload can actually hold — a
    // crafted count must not force a many-GB allocation before the
    // per-entry reads reject it.
    let mut table: Vec<&'a str> = Vec::with_capacity(table_len.min(r.remaining() / 4));
    for _ in 0..table_len {
        let len = r.u32()? as usize;
        let bytes = r.take(len)?;
        let label = std::str::from_utf8(bytes)
            .map_err(|_| PersistError::Corrupt("string table entry is not UTF-8".into()))?;
        table.push(label);
    }
    let tree_count = r.u32()?;
    for _ in 0..tree_count {
        let id = r.u64()? as usize;
        let n = r.u32()? as usize;
        if n == 0 {
            return corrupt(format!("tree {id} has zero nodes"));
        }
        // Each node occupies ≥ 8 payload bytes (label id + degree): a node
        // count the remaining payload cannot hold is rejected before any
        // n-sized allocation, so a crafted `n` cannot force an abort.
        if n > r.remaining() / 8 {
            return corrupt(format!(
                "tree {id} claims {n} nodes but only {} payload bytes remain",
                r.remaining()
            ));
        }
        let mut labels: Vec<L> = Vec::with_capacity(n);
        for _ in 0..n {
            let label_id = r.u32()? as usize;
            let label = *table.get(label_id).ok_or_else(|| {
                PersistError::Corrupt(format!(
                    "tree {id} references label id {label_id} outside the string table"
                ))
            })?;
            labels.push(make(label));
        }
        let mut degrees: Vec<u32> = Vec::with_capacity(n);
        for _ in 0..n {
            degrees.push(r.u32()?);
        }
        let tree = Tree::from_postorder_degrees(labels, &degrees)
            .map_err(|e| PersistError::Corrupt(format!("tree {id}: {e}")))?;

        let max_depth = r.u32()?;
        let leaves = r.u32()? as usize;
        if leaves > n {
            return corrupt(format!(
                "tree {id}: sketch claims {leaves} leaves in {n} nodes"
            ));
        }
        let hist_len = r.u32()? as usize;
        let mut pairs: Vec<(L, u32)> = Vec::with_capacity(hist_len.min(n));
        for _ in 0..hist_len {
            let label_id = r.u32()? as usize;
            let count = r.u32()?;
            let label = *table.get(label_id).ok_or_else(|| {
                PersistError::Corrupt(format!(
                    "tree {id} histogram references label id {label_id} outside the string table"
                ))
            })?;
            pairs.push((make(label), count));
        }
        let histogram = LabelHistogram::from_counts(pairs);
        if histogram.size() != n {
            return corrupt(format!(
                "tree {id}: histogram covers {} nodes, tree has {n}",
                histogram.size()
            ));
        }
        let sketch = TreeSketch::from_parts(n, max_depth, leaves, histogram);

        let slot = slots
            .get_mut(id)
            .ok_or_else(|| PersistError::Corrupt(format!("tree id {id} exceeds header next_id")))?;
        if slot.is_some() {
            return corrupt(format!("duplicate tree id {id}"));
        }
        *slot = Some(CorpusEntry::from_parts(tree, sketch));
    }
    if !r.done() {
        return corrupt("trailing bytes after the last tree record".to_string());
    }
    Ok(())
}

/// Decodes a tombstones-segment payload, vacating the named slots.
fn decode_tombstones_payload<L>(
    payload: &[u8],
    slots: &mut [Option<CorpusEntry<L>>],
) -> Result<(), PersistError> {
    let mut r = Reader::new(payload, "tombstones segment");
    let count = r.u32()?;
    for _ in 0..count {
        let id = r.u64()? as usize;
        let slot = slots.get_mut(id).ok_or_else(|| {
            PersistError::Corrupt(format!("tombstone id {id} exceeds header next_id"))
        })?;
        if slot.take().is_none() {
            return corrupt(format!("tombstone for id {id}, which is not live"));
        }
    }
    if !r.done() {
        return corrupt("trailing bytes after the last tombstone".to_string());
    }
    Ok(())
}

/// Decodes a full file image into a corpus, materializing labels via
/// `make`. Validates the header, every segment checksum, and every
/// structural invariant; checks the replayed live count against the
/// header.
fn decode_corpus<'a, L, F>(buf: &'a [u8], make: F) -> Result<TreeCorpus<L>, PersistError>
where
    L: Eq + std::hash::Hash + Clone,
    F: Fn(&'a str) -> L,
{
    let header = Header::decode(buf)?;
    if header.next_id >= u32::MAX as u64 {
        return corrupt(format!("next_id {} exceeds the id space", header.next_id));
    }
    // One slot per ever-assigned id is the corpus's own in-memory layout
    // (removed ids stay reserved), so the allocation is legitimate for any
    // honest file and cannot be bounded by the file size (compaction makes
    // next_id independent of it). `try_reserve` converts direct allocation
    // failure into an error instead of an abort; under an overcommitting
    // allocator the OS may still kill the process when the slots are
    // touched — exactly as it would for a legitimate corpus of that size.
    let mut slots: Vec<Option<CorpusEntry<L>>> = Vec::new();
    slots
        .try_reserve_exact(header.next_id as usize)
        .map_err(|_| {
            PersistError::Corrupt(format!(
                "cannot allocate id table for next_id {}",
                header.next_id
            ))
        })?;
    slots.resize_with(header.next_id as usize, || None);

    let mut pos = HEADER_LEN;
    while pos < buf.len() {
        let rest = &buf[pos..];
        if rest.len() < SEGMENT_HEADER_LEN {
            return Err(PersistError::Truncated {
                context: "segment header",
            });
        }
        let kind = u32::from_le_bytes(rest[0..4].try_into().unwrap());
        let payload_len = u64::from_le_bytes(rest[4..12].try_into().unwrap());
        let stored = u64::from_le_bytes(rest[12..20].try_into().unwrap());
        let payload_len = usize::try_from(payload_len)
            .ok()
            .filter(|&l| l <= rest.len() - SEGMENT_HEADER_LEN)
            .ok_or(PersistError::Truncated {
                context: "segment payload",
            })?;
        let payload = &rest[SEGMENT_HEADER_LEN..SEGMENT_HEADER_LEN + payload_len];
        let computed = fnv1a_update(fnv1a_update(FNV_OFFSET, &rest[..12]), payload);
        if stored != computed {
            return Err(PersistError::ChecksumMismatch {
                what: "segment",
                stored,
                computed,
            });
        }
        match kind {
            SEG_TREES => decode_trees_payload(payload, &make, &mut slots)?,
            SEG_TOMBSTONES => decode_tombstones_payload(payload, &mut slots)?,
            other => return corrupt(format!("unknown segment kind {other}")),
        }
        pos += SEGMENT_HEADER_LEN + payload_len;
    }

    let live = slots.iter().filter(|s| s.is_some()).count();
    if live as u64 != header.live {
        return corrupt(format!(
            "header records {} live trees but segments replay to {live} \
             (file written by an interrupted or conflicting writer?)",
            header.live
        ));
    }
    Ok(TreeCorpus::from_raw_parts(slots))
}

/// A corpus file image loaded into memory, ready to be decoded.
///
/// Reading validates only the header; [`corpus`](Self::corpus) /
/// [`corpus_owned`](Self::corpus_owned) perform the full checksum and
/// structure validation as they decode.
pub struct CorpusFile {
    buf: Vec<u8>,
}

impl CorpusFile {
    /// Reads a corpus file from disk and validates its header.
    pub fn read(path: impl AsRef<std::path::Path>) -> Result<Self, PersistError> {
        let path = path.as_ref();
        let buf = std::fs::read(path)
            .map_err(|e| PersistError::Io(format!("cannot read {}: {e}", path.display())))?;
        Self::from_bytes(buf)
    }

    /// Wraps an in-memory file image, validating its header.
    pub fn from_bytes(buf: Vec<u8>) -> Result<Self, PersistError> {
        Header::decode(&buf)?;
        Ok(CorpusFile { buf })
    }

    /// The validated file header.
    pub fn header(&self) -> Header {
        Header::decode(&self.buf).expect("header validated on construction")
    }

    /// The raw file image.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Number of segments in the file (walks segment headers; does not
    /// validate payloads).
    pub fn segment_count(&self) -> usize {
        let mut count = 0;
        let mut pos = HEADER_LEN;
        while pos + SEGMENT_HEADER_LEN <= self.buf.len() {
            let len = u64::from_le_bytes(self.buf[pos + 4..pos + 12].try_into().unwrap()) as usize;
            pos = match pos.checked_add(SEGMENT_HEADER_LEN + len) {
                Some(next) if next <= self.buf.len() => next,
                _ => break,
            };
            count += 1;
        }
        count
    }

    /// Decodes the zero-copy corpus: labels are `&str` slices **borrowing
    /// from this file's buffer** — no label bytes are copied.
    pub fn corpus(&self) -> Result<TreeCorpus<&str>, PersistError> {
        decode_corpus(&self.buf, |s| s)
    }

    /// Decodes an owned corpus (labels copied into `String`s), suitable
    /// for handing to a long-lived [`crate::TreeIndex`].
    pub fn corpus_owned(&self) -> Result<TreeCorpus<String>, PersistError> {
        decode_corpus(&self.buf, |s| s.to_string())
    }
}
