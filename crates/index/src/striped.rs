//! Deterministic top-k over a striped (sharded) corpus.
//!
//! The sharded serving layer splits one logical corpus over `N` shard
//! indexes, global id `g` living on shard `g % N` as local id `g / N`.
//! Range queries and joins scatter-gather trivially — every per-pair
//! decision depends only on the pair — but top-k is a *global* argmin:
//! the search radius after `k` hits belongs to the union, not to any
//! shard. The previous implementation ran one radius-racing `top_k` per
//! shard against a shared atomic budget; results were exact, but the
//! per-shard work counters depended on cross-thread publication timing,
//! so `verified` was not reproducible run to run.
//!
//! [`TreeIndex::top_k_striped`] replaces that with one centralized
//! driver replicating the single-index best-first batch algorithm over
//! the merged candidate view: the same `(|size − q|, side, id)` visit
//! order (on *global* ids), the same geometric batch schedule, the same
//! batch-start radius — so the neighbour set **and every counter** are
//! byte-identical to an unsharded index holding the union, for any
//! shard count and thread count.

use crate::exec::map_chunks_with;
use crate::filter::FilterStats;
use crate::totals::QueryKind;
use crate::verify::{PlannedVerifier, Verifier};
use crate::{verify_bounded, ChunkOut, Neighbor, OrdF64, QueryResult, SearchStats, TreeIndex};
use rted_tree::Tree;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::Instant;

/// One merged-view candidate: where it lives and how big it is.
#[derive(Clone, Copy)]
struct Cand {
    /// Global id (`local * N + shard`) — the merge/tie-break key.
    global: usize,
    /// Owning shard (index into the `shards` slice).
    shard: u32,
    /// Id within the owning shard's corpus.
    local: u32,
    /// Subtree size (copied out of the sketch once).
    size: usize,
}

impl<L> TreeIndex<L>
where
    L: Eq + std::hash::Hash + Clone + Send + Sync + 'static,
{
    /// The `k` nearest trees across all `shards` by exact distance (ties
    /// broken by **global** id), sorted by `(distance, id)` — exactly
    /// the result (and counters) of [`top_k`](Self::top_k) on one index
    /// holding the union corpus under global ids.
    ///
    /// `shards[0]` is the driver: its filter pipeline (planner-reordered
    /// if enabled), execution policy, workspace pool and lifetime totals
    /// serve the whole query; each surviving pair is verified by its
    /// owning shard's verifier (with the planner's per-pair dispatch
    /// when that shard allows it). The query is recorded once, into the
    /// driver's totals and linear-arm observations.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is empty.
    pub fn top_k_striped(shards: &[&TreeIndex<L>], query: &Tree<L>, k: usize) -> QueryResult {
        assert!(!shards.is_empty(), "top_k_striped needs at least one shard");
        if shards.len() == 1 {
            return shards[0].top_k(query, k);
        }
        let driver = shards[0];
        let start = Instant::now();
        let qsketch = driver.query_sketch(query);
        let pipeline = if driver.planner_enabled {
            driver.planned_pipeline()
        } else {
            Arc::clone(&driver.pipeline)
        };
        let mut stats = SearchStats {
            candidates: shards.iter().map(|s| s.corpus.len()).sum(),
            filter: FilterStats::for_pipeline(&pipeline),
            ..SearchStats::default()
        };
        if k == 0 || stats.candidates == 0 {
            stats.time = start.elapsed();
            driver.observe_linear(&stats);
            driver.totals.record_query(QueryKind::TopK, &stats);
            return QueryResult {
                neighbors: Vec::new(),
                stats,
            };
        }

        let order = merged_by_size_distance(shards, qsketch.size);
        let size_stage = pipeline.leading_size_stage();
        // Per-shard verifier choice, resolved once: the planner's
        // dispatching verifier where a shard allows it, that shard's own
        // verifier otherwise.
        let planned: Vec<Option<PlannedVerifier<'_>>> =
            shards.iter().map(|s| s.planned_verifier()).collect();

        // From here on this is `top_k_inner`'s batch loop verbatim, with
        // `(shard, local)` lookups where the single index used `id` —
        // see that function for the algorithmic commentary. Schedule
        // constants must stay in lockstep for counter equality.
        let k_eff = k.min(order.len());
        let mut heap: BinaryHeap<(OrdF64, usize)> = BinaryHeap::with_capacity(k_eff + 1);
        let mut batch = (2 * k_eff).max(16);
        let batch_cap = (driver.policy.chunk.max(1) * 4).max(batch);
        let mut pos = 0;
        while pos < order.len() {
            let radius = if heap.len() == k {
                heap.peek()
                    .map(|&(OrdF64(d), _)| d)
                    .unwrap_or(f64::INFINITY)
            } else {
                f64::INFINITY
            };

            let mut survivors: Vec<Cand> = Vec::new();
            let batch_end = (pos + batch).min(order.len());
            batch = (batch * 2).min(batch_cap);
            if radius == f64::INFINITY {
                while pos < batch_end {
                    survivors.push(order[pos]);
                    pos += 1;
                }
            }
            while pos < batch_end {
                let cand = order[pos];
                let sketch = shards[cand.shard as usize]
                    .corpus
                    .sketch(cand.local as usize);
                if let Some(idx) = size_stage {
                    let size_lb = (sketch.size as f64 - qsketch.size as f64).abs();
                    if size_lb > radius {
                        stats.filter.record(idx, (order.len() - pos) as u64);
                        pos = order.len();
                        break;
                    }
                }
                match pipeline.prune_stage_strict(&qsketch, sketch, radius) {
                    Some(stage) => stats.filter.record(stage, 1),
                    None => survivors.push(cand),
                }
                pos += 1;
            }

            let chunk_outs = map_chunks_with(
                &survivors,
                &driver.policy,
                || driver.scratch.take(),
                |ws, _, chunk| {
                    let mut out: ChunkOut<(usize, f64)> = ChunkOut::new(&pipeline);
                    for cand in chunk {
                        let shard = &shards[cand.shard as usize];
                        let verifier: &dyn Verifier<L> = match &planned[cand.shard as usize] {
                            Some(pv) => pv,
                            None => shard.verifier.as_ref(),
                        };
                        if let Some(d) = verify_bounded(
                            verifier,
                            query,
                            shard.corpus.tree(cand.local as usize),
                            radius,
                            ws.get(),
                            &mut out,
                        ) {
                            out.found.push((cand.global, d));
                        }
                    }
                    out
                },
            );
            for out in chunk_outs {
                stats.verified += out.verified;
                stats.subproblems += out.subproblems;
                stats.ted_time += out.ted_time;
                stats.early_exits += out.early_exits;
                stats.bounded_time += out.bounded_time;
                for (id, distance) in out.found {
                    heap.push((OrdF64(distance), id));
                    if heap.len() > k {
                        heap.pop();
                    }
                }
            }
        }

        let neighbors: Vec<Neighbor> = heap
            .into_sorted_vec()
            .into_iter()
            .map(|(OrdF64(distance), id)| Neighbor { id, distance })
            .collect();
        stats.time = start.elapsed();
        driver.observe_linear(&stats);
        driver.totals.record_query(QueryKind::TopK, &stats);
        QueryResult { neighbors, stats }
    }
}

/// The merged best-first visit order: all live trees across all shards
/// by `(|size − center|, below-side-first, global id)` — exactly
/// `candidates_by_size_distance` run on the union corpus, where the
/// union's `by_size` view is sorted by `(size, global id)`.
fn merged_by_size_distance<L>(shards: &[&TreeIndex<L>], center: usize) -> Vec<Cand>
where
    L: Eq + std::hash::Hash + Clone + Send + Sync + 'static,
{
    let n = shards.len();
    let mut by_size: Vec<Cand> = Vec::with_capacity(shards.iter().map(|s| s.corpus.len()).sum());
    for (s, shard) in shards.iter().enumerate() {
        for &local in shard.corpus.by_size() {
            by_size.push(Cand {
                global: local as usize * n + s,
                shard: s as u32,
                local,
                size: shard.corpus.sketch(local as usize).size,
            });
        }
    }
    by_size.sort_by_key(|c| (c.size, c.global));

    let split = by_size.partition_point(|c| c.size < center);
    let mut order = Vec::with_capacity(by_size.len());
    let (mut lo, mut hi) = (split, split);
    while lo > 0 || hi < by_size.len() {
        let below = (lo > 0).then(|| center - by_size[lo - 1].size);
        let above = (hi < by_size.len()).then(|| by_size[hi].size - center);
        // Same tie rule as the single-index walk: prefer the smaller
        // size gap, and on ties the "below" side.
        match (below, above) {
            (Some(b), Some(a)) if b <= a => {
                lo -= 1;
                order.push(by_size[lo]);
            }
            (Some(_), None) => {
                lo -= 1;
                order.push(by_size[lo]);
            }
            (_, Some(_)) => {
                order.push(by_size[hi]);
                hi += 1;
            }
            (None, None) => unreachable!(),
        }
    }
    order
}
