//! The staged candidate filter pipeline.
//!
//! A pipeline is an ordered list of [`LowerBound`] stages, cheapest first.
//! For each candidate pair the stages run in order; the first stage whose
//! bound already reaches the current threshold prunes the pair, and the
//! per-stage counters record which stage did it. Only pairs surviving
//! every stage reach the exact (expensive) verifier.

use rted_core::bounds::{standard_bounds, LowerBound, SizeBound, TreeSketch};

/// An ordered list of lower-bound stages.
pub struct FilterPipeline<L> {
    stages: Vec<Box<dyn LowerBound<L> + Send + Sync>>,
    /// Index of the `size` stage when (and only when) it runs first —
    /// resolved once at construction. Queries consult this on every
    /// candidate batch to decide whether the sorted-size window may stand
    /// in for the stage, and a per-query linear name scan
    /// ([`stage_index`](Self::stage_index)) was measurable overhead.
    leading_size: Option<usize>,
}

impl<L: Eq + std::hash::Hash + Clone> FilterPipeline<L> {
    /// The standard staging:
    /// size → depth → leaf → degree → histogram → pqgram.
    pub fn standard() -> Self {
        Self::from_stages(standard_bounds::<L>())
    }

    /// Only the O(1) size stage (the seed join's `size_prune` mode).
    pub fn size_only() -> Self {
        Self::from_stages(vec![Box::new(SizeBound)])
    }
}

impl<L> FilterPipeline<L> {
    /// No filtering: every pair goes straight to exact verification.
    pub fn none() -> Self {
        Self::from_stages(Vec::new())
    }

    /// A pipeline from custom stages.
    pub fn from_stages(stages: Vec<Box<dyn LowerBound<L> + Send + Sync>>) -> Self {
        let leading_size = stages
            .first()
            .filter(|s| s.name() == "size")
            .map(|_| 0usize);
        FilterPipeline {
            stages,
            leading_size,
        }
    }

    /// The `size` stage's index when it is the pipeline's *first* stage —
    /// the only position where the sorted-size window / early-break can
    /// faithfully replace the per-candidate check under the documented
    /// "first stage that reaches the threshold prunes" counter semantics.
    #[inline]
    pub fn leading_size_stage(&self) -> Option<usize> {
        self.leading_size
    }

    /// The stages, in evaluation order.
    pub fn stages(&self) -> &[Box<dyn LowerBound<L> + Send + Sync>] {
        &self.stages
    }

    /// `true` iff the pipeline has no stages (filtering disabled).
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Index of the stage called `name`, if present.
    pub fn stage_index(&self, name: &str) -> Option<usize> {
        self.stages.iter().position(|s| s.name() == name)
    }

    /// Runs the stages in order against threshold `tau`; returns the index
    /// of the first stage that prunes the pair (`bound ≥ tau`), or `None`
    /// if the pair survives all stages and must be verified exactly.
    pub fn prune_stage(&self, f: &TreeSketch<L>, g: &TreeSketch<L>, tau: f64) -> Option<usize> {
        self.stages.iter().position(|s| s.bound(f, g) >= tau)
    }

    /// Like [`prune_stage`](Self::prune_stage) with a strict threshold:
    /// prunes only when `bound > radius`. Used by top-k queries, where a
    /// candidate tying the current k-th distance can still enter the
    /// result on the id tie-break.
    pub fn prune_stage_strict(
        &self,
        f: &TreeSketch<L>,
        g: &TreeSketch<L>,
        radius: f64,
    ) -> Option<usize> {
        self.stages.iter().position(|s| s.bound(f, g) > radius)
    }
}

/// One stage's prune counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StagePrune {
    /// Stage name (see [`LowerBound::name`]).
    pub stage: &'static str,
    /// Pairs this stage pruned.
    pub pruned: u64,
}

/// Per-stage prune counters, aligned with a pipeline's stage order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FilterStats {
    /// One counter per pipeline stage.
    pub stages: Vec<StagePrune>,
}

impl FilterStats {
    /// Zeroed counters mirroring `pipeline`'s stages.
    pub fn for_pipeline<L>(pipeline: &FilterPipeline<L>) -> Self {
        FilterStats {
            stages: pipeline
                .stages()
                .iter()
                .map(|s| StagePrune {
                    stage: s.name(),
                    pruned: 0,
                })
                .collect(),
        }
    }

    /// Adds `count` prunes to stage `idx`.
    #[inline]
    pub fn record(&mut self, idx: usize, count: u64) {
        self.stages[idx].pruned += count;
    }

    /// Accumulates another run's counters (same pipeline shape).
    pub fn merge(&mut self, other: &FilterStats) {
        debug_assert_eq!(self.stages.len(), other.stages.len());
        for (a, b) in self.stages.iter_mut().zip(&other.stages) {
            a.pruned += b.pruned;
        }
    }

    /// Total pairs pruned across all stages.
    pub fn total_pruned(&self) -> u64 {
        self.stages.iter().map(|s| s.pruned).sum()
    }
}
